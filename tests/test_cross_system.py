"""Invariants that must hold across every memory system.

A fixed lock/barrier workload is executed on all six systems; whatever
the protocol, the computed values, the operation counts, and the basic
accounting identities must agree.
"""

import pytest

from repro.config import MachineConfig
from repro.runtime import Barrier, Lock, Machine
from repro.sim.events import Compute

ALL_SYSTEMS = ["z-mc", "RCinv", "RCupd", "RCadapt", "RCcomp", "SCinv"]


def run_workload(system: str, nprocs: int = 4):
    machine = Machine(MachineConfig(nprocs=nprocs), system)
    arr = machine.shm.array(nprocs * 8, "a", align_line=True)
    total = machine.shm.scalar("total", fill=0)
    lock = Lock(machine.sync)
    bar = Barrier(machine.sync)

    def worker(ctx):
        base = ctx.pid * 8
        for i in range(8):
            yield from arr.write(base + i, ctx.pid * 10 + i)
            yield Compute(5)
        yield from bar.wait()
        other = ((ctx.pid + 1) % ctx.nprocs) * 8
        vals = yield from arr.read_range(other, other + 8)
        yield from lock.acquire()
        yield from total.incr(sum(vals))
        yield from lock.release()
        yield from bar.wait()

    result = machine.run(worker)
    return machine, result, total.value()


@pytest.fixture(scope="module")
def all_runs():
    return {s: run_workload(s) for s in ALL_SYSTEMS}


class TestValueEquivalence:
    def test_same_result_on_every_system(self, all_runs):
        values = {s: v for s, (_, _, v) in all_runs.items()}
        expected = sum(sum(p * 10 + i for i in range(8)) for p in range(4))
        assert all(v == expected for v in values.values()), values


class TestAccountingIdentities:
    def test_op_counts_identical(self, all_runs):
        counts = {
            s: (r.total_reads, r.total_writes) for s, (_, r, _) in all_runs.items()
        }
        assert len(set(counts.values())) == 1, counts

    def test_finish_time_bounds_categories(self, all_runs):
        for s, (_, r, _) in all_runs.items():
            for p in r.procs:
                assert p.accounted <= p.finish_time + 1e-6, (s, p)

    def test_total_time_is_max_finish(self, all_runs):
        for s, (_, r, _) in all_runs.items():
            assert r.total_time == pytest.approx(max(p.finish_time for p in r.procs))

    def test_nonnegative_categories(self, all_runs):
        for s, (_, r, _) in all_runs.items():
            for p in r.procs:
                assert p.busy >= 0 and p.read_stall >= 0
                assert p.write_stall >= 0 and p.buffer_flush >= 0
                assert p.sync_wait >= 0


class TestOrderings:
    def test_zmachine_is_fastest(self, all_runs):
        z = all_runs["z-mc"][1].total_time
        for s, (_, r, _) in all_runs.items():
            assert r.total_time >= z - 1e-9, s

    def test_zmachine_zero_overheads(self, all_runs):
        r = all_runs["z-mc"][1]
        assert r.mean_write_stall == 0.0
        assert r.mean_buffer_flush == 0.0

    def test_sc_never_beats_rcinv(self, all_runs):
        """Relaxing consistency can only help (same protocol otherwise)."""
        assert (
            all_runs["SCinv"][1].total_time
            >= all_runs["RCinv"][1].total_time - 1e-9
        )

    def test_sc_has_no_buffer_flush(self, all_runs):
        assert all_runs["SCinv"][1].mean_buffer_flush == 0.0

    def test_update_systems_keep_consumers_hitting(self, all_runs):
        """With one producer-consumer round, the update protocols must
        show fewer read misses than the invalidate protocol... here all
        reads are cold (single round), so they tie; run a second round
        variant to expose the difference."""
        def two_rounds(system):
            machine = Machine(MachineConfig(nprocs=4), system)
            arr = machine.shm.array(32, "a", align_line=True)
            bar = Barrier(machine.sync)

            def worker(ctx):
                for _ in range(3):
                    base = ctx.pid * 8
                    for i in range(8):
                        yield from arr.write(base + i, i)
                    yield from bar.wait()
                    other = ((ctx.pid + 1) % 4) * 8
                    yield from arr.read_range(other, other + 8)
                    yield from bar.wait()

            return machine.run(worker)

        inv = two_rounds("RCinv")
        upd = two_rounds("RCupd")
        assert upd.total_read_misses < inv.total_read_misses


class TestScaleInvariants:
    """Metamorphic checks at paper-scale P=64: growing the machine must
    not break the z-machine's role as a per-category lower bound."""

    CATEGORIES = ("read_stall", "write_stall", "buffer_flush", "sync_wait")

    @pytest.fixture(scope="class")
    def p64_runs(self):
        return {s: run_workload(s, nprocs=64) for s in ALL_SYSTEMS}

    def test_same_result_at_p64(self, p64_runs):
        expected = sum(sum(p * 10 + i for i in range(8)) for p in range(64))
        for s, (_, _, v) in p64_runs.items():
            assert v == expected, s

    def test_zmachine_stall_lower_bounds_every_category(self, p64_runs):
        z = p64_runs["z-mc"][1]
        z_cat = {
            c: sum(getattr(p, c) for p in z.procs) for c in self.CATEGORIES
        }
        for s, (_, r, _) in p64_runs.items():
            if s == "z-mc":
                continue
            for c in self.CATEGORIES:
                rc = sum(getattr(p, c) for p in r.procs)
                assert z_cat[c] <= rc + 1e-9, (s, c, z_cat[c], rc)

    def test_zmachine_total_time_lower_bound_at_p64(self, p64_runs):
        z = p64_runs["z-mc"][1].total_time
        for s, (_, r, _) in p64_runs.items():
            assert r.total_time >= z - 1e-9, s

    def test_accounting_identities_survive_p64(self, p64_runs):
        for s, (_, r, _) in p64_runs.items():
            assert len(r.procs) == 64, s
            for p in r.procs:
                assert p.accounted <= p.finish_time + 1e-6, (s, p)
                assert p.busy >= 0 and p.read_stall >= 0
                assert p.write_stall >= 0 and p.buffer_flush >= 0
                assert p.sync_wait >= 0


class TestTrafficConsistency:
    def test_network_bytes_positive_on_real_systems(self, all_runs):
        for s, (_, r, _) in all_runs.items():
            if s != "z-mc":
                assert r.network_bytes > 0

    def test_update_traffic_counted(self, all_runs):
        machine, _, _ = all_runs["RCupd"]
        assert machine.memsys.traffic_summary()["updates"] > 0

    def test_invalidate_traffic_counted(self, all_runs):
        machine, _, _ = all_runs["RCinv"]
        assert machine.memsys.traffic_summary()["invalidations"] > 0
