"""Full-map directory state."""

from repro.mem.directory import NORMAL, SPECIAL, DirEntry, Directory


class TestDirEntry:
    def test_fresh_entry(self):
        e = DirEntry()
        assert e.sharers == 0
        assert e.owner is None
        assert e.mode == NORMAL
        assert e.write_count == 0

    def test_add_remove_sharer(self):
        e = DirEntry()
        e.add_sharer(3)
        e.add_sharer(5)
        assert e.is_sharer(3)
        assert e.is_sharer(5)
        assert not e.is_sharer(4)
        e.remove_sharer(3)
        assert not e.is_sharer(3)
        assert e.is_sharer(5)

    def test_add_idempotent(self):
        e = DirEntry()
        e.add_sharer(2)
        e.add_sharer(2)
        assert e.num_sharers() == 1

    def test_remove_missing_is_noop(self):
        e = DirEntry()
        e.remove_sharer(7)
        assert e.sharers == 0

    def test_sharer_list_sorted(self):
        e = DirEntry()
        for p in (9, 1, 4):
            e.add_sharer(p)
        assert e.sharer_list() == [1, 4, 9]

    def test_sharer_list_exclude(self):
        e = DirEntry()
        for p in (0, 1, 2):
            e.add_sharer(p)
        assert e.sharer_list(exclude=1) == [0, 2]

    def test_num_sharers(self):
        e = DirEntry()
        for p in range(16):
            e.add_sharer(p)
        assert e.num_sharers() == 16

    def test_clear(self):
        e = DirEntry()
        e.add_sharer(1)
        e.owner = 1
        e.clear()
        assert e.sharers == 0 and e.owner is None

    def test_mode_transitions(self):
        e = DirEntry()
        e.mode = SPECIAL
        assert e.mode == SPECIAL


class TestDirectory:
    def test_entry_created_on_demand(self):
        d = Directory()
        assert d.peek(5) is None
        e = d.entry(5)
        assert d.peek(5) is e
        assert len(d) == 1

    def test_entry_is_stable(self):
        d = Directory()
        assert d.entry(1) is d.entry(1)

    def test_blocks(self):
        d = Directory()
        d.entry(2)
        d.entry(9)
        assert sorted(d.blocks()) == [2, 9]

    def test_total_writes(self):
        d = Directory()
        d.entry(0).write_count = 3
        d.entry(1).write_count = 4
        assert d.total_writes() == 7
