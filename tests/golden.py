"""Golden-fixture machinery for engine differential tests.

The fixture ``tests/fixtures/engine_golden.json`` records, for every
application x memory-system pair at smoke scale, the observable outcome
of a simulation under the engine that produced it: the final shared
memory contents, the full per-processor stall decomposition, and the
traffic counters.  ``tests/test_engine_equivalence.py`` replays the same
runs on the current engine and requires bit-identical results — the
safety net for scheduler-core refactors.

The run/capture machinery itself lives in :mod:`repro.sim.reference`
(promoted there so the fuzz harness can use it without importing from
``tests/``); this module owns the fixture file and the case matrix.

Verify the committed fixture is reproducible without rewriting it::

    PYTHONPATH=src python -m tests.golden --check

Regenerate (only when an *intentional* timing change is made, with a
commit message explaining why the timing moved)::

    PYTHONPATH=src python -m tests.golden

Floats survive the JSON round-trip exactly (``json`` emits
``repr``-style shortest representations, which parse back to the same
IEEE-754 double), so equality below really is bit-level.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.apps.factory import AppFactory
from repro.apps.presets import smoke_scale
from repro.sim.reference import PROC_FIELDS, run_case  # noqa: F401  (PROC_FIELDS re-exported)

FIXTURE = Path(__file__).parent / "fixtures" / "engine_golden.json"

#: Every memory system the repo models.
ALL_SYSTEMS = ("z-mc", "RCinv", "RCupd", "RCadapt", "RCcomp", "SCinv")


def golden_cases() -> dict[str, tuple[AppFactory, bool]]:
    """The five apps at smoke scale; the bool is ``verify``."""
    cases = {name: (factory, True) for name, (factory, _) in smoke_scale().items()}
    # RacyDemo is intentionally racy: its verify() documents the lost
    # updates, so the fixture only pins timing + memory image.
    cases["RacyDemo"] = (AppFactory("RacyDemo"), False)
    return cases


def build_fixture(nprocs: int = 16) -> dict:
    runs = {}
    for app_name, (factory, verify) in golden_cases().items():
        for system in ALL_SYSTEMS:
            runs[f"{app_name}/{system}"] = run_case(factory, system, verify, nprocs)
    return {"nprocs": nprocs, "scale": "smoke", "runs": runs}


def check_fixture(path: Path = FIXTURE) -> list[str]:
    """Rebuild every run and diff it against the committed fixture.

    Returns a list of problems (empty = reproducible).  Nothing is
    rewritten: this is the read-only verification behind ``--check``.
    """
    if not path.exists():
        return [f"fixture {path} does not exist (regenerate with 'python -m tests.golden')"]
    want = json.loads(path.read_text())
    got = json.loads(json.dumps(build_fixture(nprocs=want.get("nprocs", 16))))
    problems = []
    want_runs = want.get("runs", {})
    got_runs = got["runs"]
    for key in sorted(set(want_runs) | set(got_runs)):
        if key not in got_runs:
            problems.append(f"{key}: in fixture but no longer produced")
        elif key not in want_runs:
            problems.append(f"{key}: produced but missing from fixture")
        elif got_runs[key] != want_runs[key]:
            fields = [f for f in want_runs[key] if got_runs[key].get(f) != want_runs[key][f]]
            problems.append(f"{key}: differs in {', '.join(fields)}")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="tests.golden", description="golden engine fixture: regenerate or verify"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify the committed fixture is reproducible; write nothing",
    )
    parser.add_argument(
        "--fixture",
        type=Path,
        default=FIXTURE,
        metavar="PATH",
        help="fixture file to verify or write (default: the committed one)",
    )
    args = parser.parse_args(argv)
    if args.check:
        problems = check_fixture(args.fixture)
        if problems:
            for problem in problems:
                print(f"STALE {problem}")
            print(f"{args.fixture}: {len(problems)} run(s) not reproducible")
            return 1
        print(f"{args.fixture}: reproducible bit-for-bit")
        return 0
    doc = build_fixture()
    args.fixture.parent.mkdir(parents=True, exist_ok=True)
    args.fixture.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    print(f"wrote {args.fixture} ({len(doc['runs'])} runs)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
