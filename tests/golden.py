"""Golden-fixture machinery for engine differential tests.

The fixture ``tests/fixtures/engine_golden.json`` records, for every
application x memory-system pair at smoke scale, the observable outcome
of a simulation under the engine that produced it: the final shared
memory contents, the full per-processor stall decomposition, and the
traffic counters.  ``tests/test_engine_equivalence.py`` replays the same
runs on the current engine and requires bit-identical results — the
safety net for scheduler-core refactors.

Regenerate (only when an *intentional* timing change is made, with a
commit message explaining why the timing moved)::

    PYTHONPATH=src python -m tests.golden

Floats survive the JSON round-trip exactly (``json`` emits
``repr``-style shortest representations, which parse back to the same
IEEE-754 double), so equality below really is bit-level.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.apps.factory import AppFactory
from repro.apps.presets import smoke_scale
from repro.config import MachineConfig
from repro.runtime.context import Machine

FIXTURE = Path(__file__).parent / "fixtures" / "engine_golden.json"

#: Every memory system the repo models.
ALL_SYSTEMS = ("z-mc", "RCinv", "RCupd", "RCadapt", "RCcomp", "SCinv")

#: Per-proc counters that must match bit-for-bit.
PROC_FIELDS = (
    "busy", "read_stall", "write_stall", "buffer_flush", "sync_wait",
    "reads", "writes", "read_hits", "read_misses",
    "acquires", "releases", "barriers", "fences", "finish_time",
)


def golden_cases() -> dict[str, tuple[AppFactory, bool]]:
    """The five apps at smoke scale; the bool is ``verify``."""
    cases = {name: (factory, True) for name, (factory, _) in smoke_scale().items()}
    # RacyDemo is intentionally racy: its verify() documents the lost
    # updates, so the fixture only pins timing + memory image.
    cases["RacyDemo"] = (AppFactory("RacyDemo"), False)
    return cases


def run_case(
    factory: AppFactory,
    system: str,
    verify: bool,
    nprocs: int = 16,
    config: MachineConfig | None = None,
) -> dict:
    """One simulation -> JSON-able observable outcome.

    ``config`` overrides the default machine (the neutrality tests pass
    a config with an all-1.0 degradation spec installed).
    """
    app = factory()
    machine = Machine(config if config is not None else MachineConfig(nprocs=nprocs), system)
    app.setup(machine)
    result = machine.run(app.worker)
    if verify:
        app.verify()
    memory = [
        {"name": arr.name, "base": arr.base, "data": arr.snapshot()}
        for arr in machine.shm.arrays
    ]
    return {
        "total_time": result.total_time,
        "ops": result.ops,
        "procs": [
            {field: getattr(p, field) for field in PROC_FIELDS} for p in result.procs
        ],
        "network_messages": result.network_messages,
        "network_bytes": result.network_bytes,
        "traffic": machine.memsys.traffic_summary(),
        "memory": memory,
    }


def build_fixture(nprocs: int = 16) -> dict:
    runs = {}
    for app_name, (factory, verify) in golden_cases().items():
        for system in ALL_SYSTEMS:
            runs[f"{app_name}/{system}"] = run_case(factory, system, verify, nprocs)
    return {"nprocs": nprocs, "scale": "smoke", "runs": runs}


def main() -> None:
    doc = build_fixture()
    FIXTURE.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    print(f"wrote {FIXTURE} ({len(doc['runs'])} runs)")


if __name__ == "__main__":
    main()
