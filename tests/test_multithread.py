"""Multithreaded-processor latency tolerance (switch-on-miss)."""

import pytest

from repro.config import MachineConfig
from repro.runtime import Barrier, ContextError, Machine, interleave
from repro.sim.events import Compute


def scan_machine(nprocs=4, contexts_per_proc=1, words_per_ctx=64, switch_cost=4.0):
    """Each processor runs several scan contexts over disjoint slices."""
    machine = Machine(MachineConfig(nprocs=nprocs), "RCinv")
    total_words = nprocs * contexts_per_proc * words_per_ctx
    data = machine.shm.array(total_words, "data", align_line=True)
    data.poke_many([float(i % 13) for i in range(total_words)])
    barrier = Barrier(machine.sync)
    sums = {}

    def make_context(pid, k):
        def ctx_gen():
            base = (pid * contexts_per_proc + k) * words_per_ctx
            total = 0.0
            for i in range(base, base + words_per_ctx):
                total += yield from data.read(i)
                yield Compute(3)
            sums[(pid, k)] = total
        return ctx_gen()

    def worker(ctx):
        bodies = [make_context(ctx.pid, k) for k in range(contexts_per_proc)]
        yield from interleave(bodies, switch_cost=switch_cost)
        yield from barrier.wait()

    return machine, worker, data, sums, words_per_ctx, contexts_per_proc


class TestCorrectness:
    @pytest.mark.parametrize("contexts", [1, 2, 4])
    def test_all_contexts_complete_with_correct_sums(self, contexts):
        machine, worker, data, sums, wpc, cpp = scan_machine(contexts_per_proc=contexts)
        machine.run(worker)
        assert len(sums) == 4 * contexts
        for (pid, k), total in sums.items():
            base = (pid * cpp + k) * wpc
            want = sum(data.peek(i) for i in range(base, base + wpc))
            assert total == want

    def test_empty_context_list_is_noop(self):
        machine = Machine(MachineConfig(nprocs=1), "RCinv")

        def worker(ctx):
            yield from interleave([])
            yield Compute(1)

        res = machine.run(worker)
        assert res.procs[0].busy == pytest.approx(1.0)

    def test_sync_inside_context_rejected(self):
        machine = Machine(MachineConfig(nprocs=1), "RCinv")
        bar = Barrier(machine.sync, participants=1)

        def bad_ctx():
            yield from bar.wait()

        def worker(ctx):
            yield from interleave([bad_ctx()])

        with pytest.raises(ContextError):
            machine.run(worker)

    def test_negative_switch_cost_rejected(self):
        machine = Machine(MachineConfig(nprocs=1), "RCinv")

        def ctx_gen():
            yield Compute(1)

        def worker(ctx):
            yield from interleave([ctx_gen()], switch_cost=-1)

        with pytest.raises(ValueError):
            machine.run(worker)


class TestLatencyTolerance:
    def test_two_contexts_hide_read_stall(self):
        """Switch-on-miss must cut read stall vs a single context."""
        m1, w1, *_ = scan_machine(contexts_per_proc=1, words_per_ctx=128)
        res1 = m1.run(w1)
        m2, w2, *_ = scan_machine(contexts_per_proc=2, words_per_ctx=64)
        res2 = m2.run(w2)
        # same total work, second machine overlaps misses across contexts
        assert res2.mean_read_stall < 0.8 * res1.mean_read_stall

    def test_more_contexts_help_more(self):
        stalls = {}
        for contexts in (1, 2, 4):
            m, w, *_ = scan_machine(
                contexts_per_proc=contexts, words_per_ctx=128 // contexts
            )
            stalls[contexts] = m.run(w).mean_read_stall
        # two contexts hide a large share; beyond that the gains saturate
        # (extra contexts issue misses concurrently and add contention)
        assert stalls[2] < stalls[1]
        assert stalls[4] < stalls[1]
        assert stalls[4] < stalls[2] * 1.25

    def test_switch_cost_is_charged_as_busy(self):
        m_free, w_free, *_ = scan_machine(contexts_per_proc=2, switch_cost=0.0)
        res_free = m_free.run(w_free)
        m_cost, w_cost, *_ = scan_machine(contexts_per_proc=2, switch_cost=50.0)
        res_cost = m_cost.run(w_cost)
        assert res_cost.mean_busy > res_free.mean_busy

    def test_huge_switch_latency_threshold_disables_switching(self):
        """With an enormous threshold no miss justifies a switch, so the
        behaviour degrades to the single-context stall profile."""
        m, w, *_ = scan_machine(contexts_per_proc=2, words_per_ctx=64)
        res_on = m.run(w)

        machine = Machine(MachineConfig(nprocs=4), "RCinv")
        data = machine.shm.array(4 * 2 * 64, "data", align_line=True)
        data.poke_many([0.0] * (4 * 2 * 64))
        from repro.runtime.multithread import interleave as ilv

        def make_ctx(pid, k):
            def g():
                base = (pid * 2 + k) * 64
                for i in range(base, base + 64):
                    yield from data.read(i)
                    yield Compute(3)
            return g()

        def worker(ctx):
            yield from ilv(
                [make_ctx(ctx.pid, 0), make_ctx(ctx.pid, 1)],
                min_switch_latency=1e9,
            )

        res_off = machine.run(worker)
        assert res_off.mean_read_stall > res_on.mean_read_stall
