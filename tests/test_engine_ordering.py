"""Regression tests for global issue-order correctness.

The engine once ran a thread past a freshly woken, earlier-clock thread
(the run horizon was captured only at resume), which issued operations
out of global time order — observable as z-machine read stalls larger
than the link latency L.  These tests pin the invariants.
"""

from repro.config import MachineConfig
from repro.mem.systems.zmachine import ZMachine
from repro.runtime import Barrier, Lock, Machine, TaskPool
from repro.sim.events import Compute


class TestZMachineStallBound:
    """On the z-machine every read stall is bounded by L — any larger
    stall means operations were issued out of order."""

    def _assert_bounded(self, machine, worker):
        memsys = machine.memsys
        assert isinstance(memsys, ZMachine)
        bound = memsys.latency + 1e-9
        orig = ZMachine.read
        violations = []

        def patched(self, proc, addr, now):
            res = orig(self, proc, addr, now)
            if res.read_stall > bound:
                violations.append((proc, addr, res.read_stall))
            return res

        ZMachine.read = patched
        try:
            machine.run(worker)
        finally:
            ZMachine.read = orig
        assert not violations, f"stalls exceeding L: {violations[:5]}"

    def test_lock_heavy_workload(self):
        machine = Machine(MachineConfig(nprocs=8), "z-mc")
        lock = Lock(machine.sync)
        counter = machine.shm.scalar("c", fill=0)

        def worker(ctx):
            for _ in range(20):
                yield from lock.acquire()
                yield from counter.incr(1)
                yield from lock.release()
                yield Compute(5)

        self._assert_bounded(machine, worker)
        assert counter.value() == 160

    def test_task_pool_workload(self):
        machine = Machine(MachineConfig(nprocs=8), "z-mc")
        pool = TaskPool(machine.shm, machine.sync, capacity=64)
        pool.seed([1])
        done = []

        def worker(ctx):
            while True:
                t = yield from pool.get_task()
                if t is None:
                    break
                done.append(t)
                if t < 20:
                    yield from pool.add_task(2 * t)
                    yield from pool.add_task(2 * t + 1)
                yield Compute(100)
                yield from pool.task_done()

        self._assert_bounded(machine, worker)
        assert sorted(done) == list(range(1, 40))

    def test_barrier_heavy_workload(self):
        machine = Machine(MachineConfig(nprocs=8), "z-mc")
        bar = Barrier(machine.sync)
        arr = machine.shm.array(8, "a")

        def worker(ctx):
            for step in range(10):
                yield from arr.write(ctx.pid, step * 8 + ctx.pid)
                yield from bar.wait()
                v = yield from arr.read((ctx.pid + 1) % 8)
                assert v == step * 8 + (ctx.pid + 1) % 8
                yield from bar.wait()

        self._assert_bounded(machine, worker)


class TestValueCausality:
    def test_woken_thread_does_not_see_future_writes(self):
        """A thread woken at an early grant time must read the value
        written before its resume time, not a later one."""
        machine = Machine(MachineConfig(nprocs=3), "RCinv")
        lock = Lock(machine.sync)
        x = machine.shm.array(1, "x", fill=0)
        seen = []

        def worker(ctx):
            if ctx.pid == 0:
                yield from lock.acquire()
                yield from x.write(0, 1)
                yield Compute(5000)  # hold the lock for a long time
                yield from lock.release()
                # long after release, write again
                yield Compute(50000)
                yield from x.write(0, 2)
            elif ctx.pid == 1:
                yield Compute(10)
                yield from lock.acquire()  # blocks until ~5000
                v = yield from x.read(0)
                seen.append(v)
                yield from lock.release()
            else:
                yield Compute(1)

        machine.run(worker)
        assert seen == [1]
