"""Remaining runtime/application surface: helpers, error paths, internals."""

import pytest

from repro.apps import Maxflow
from repro.apps.base import Application, run_machine, run_on
from repro.config import MachineConfig
from repro.runtime import Machine
from repro.runtime.primitives import compute, critical, fence
from repro.sim.events import Compute, Fence


class TestPrimitiveHelpers:
    def test_compute_helper(self):
        gen = compute(25.0)
        op = next(gen)
        assert isinstance(op, Compute)
        assert op.cycles == 25.0

    def test_fence_helper(self):
        op = next(fence())
        assert isinstance(op, Fence)

    def test_critical_is_documentation_only(self):
        with pytest.raises(TypeError):
            critical(None)


class TestApplicationBase:
    def test_abstract_methods(self):
        app = Application()
        with pytest.raises(NotImplementedError):
            app.setup(None)
        with pytest.raises(NotImplementedError):
            app.worker(None)
        with pytest.raises(NotImplementedError):
            app.verify()

    def test_run_on_skips_verification_when_asked(self):
        class Broken(Application):
            name = "broken"

            def setup(self, machine):
                pass

            def worker(self, ctx):
                yield Compute(1)

            def verify(self):
                raise AssertionError("always fails")

        cfg = MachineConfig(nprocs=2)
        run_on(Broken(), "RCinv", cfg, verify=False)  # must not raise
        with pytest.raises(AssertionError):
            run_on(Broken(), "RCinv", cfg, verify=True)

    def test_run_machine_returns_machine(self):
        class Tiny(Application):
            name = "tiny"

            def setup(self, machine):
                pass

            def worker(self, ctx):
                yield Compute(1)

            def verify(self):
                pass

        machine, result = run_machine(Tiny(), "RCupd", MachineConfig(nprocs=2))
        assert machine.system_name == "RCupd"
        assert result.total_time > 0

    def test_machine_runs_once(self):
        machine = Machine(MachineConfig(nprocs=1), "RCinv")

        def worker(ctx):
            yield Compute(1)

        machine.run(worker)
        with pytest.raises(RuntimeError):
            machine.run(worker)


class TestMaxflowInternals:
    def test_load_balancing_pushes_to_global_queue(self, monkeypatch):
        import repro.apps.maxflow as mf

        monkeypatch.setattr(mf, "_LOCAL_HIGH", 1)
        app = Maxflow(n=16, extra_edges=30, seed=2)
        machine, _ = run_machine(app, "RCinv", MachineConfig(nprocs=2))
        # with a 1-entry local queue, overflow work must have flowed
        # through the global queue
        assert app.global_q.tail.value() > 0

    def test_initial_preflow_saturates_source(self):
        app = Maxflow(n=10, extra_edges=10, seed=3)
        machine = Machine(MachineConfig(nprocs=2), "RCinv")
        app.setup(machine)
        net = app.net
        for e in net.adj[net.source]:
            e = int(e)
            if net.cap[e] > 0:
                assert app.flow.peek(e) == net.cap[e]

    def test_height_initialised_to_n_at_source(self):
        app = Maxflow(n=10, extra_edges=10, seed=3)
        machine = Machine(MachineConfig(nprocs=2), "RCinv")
        app.setup(machine)
        assert app.height.peek(app.net.source) == app.net.n


class TestWakeErrorPath:
    def test_wake_non_blocked_thread_rejected(self):
        machine = Machine(MachineConfig(nprocs=2), "RCinv")

        def worker(ctx):
            yield Compute(1)

        machine.engine.spawn(0, worker(None))
        with pytest.raises(RuntimeError):
            machine.engine.wake(0, 10.0)
