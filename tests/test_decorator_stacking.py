"""Observability decorators must commute and never perturb results.

Every permutation of the tracer / metrics / attribution / checked
decorators stacked on one machine must produce a simulated outcome
bit-identical to the bare run — the observer-neutrality contract the
``decorators`` fuzz oracle enforces, pinned here exhaustively for a
fixed configuration (and spot-checked with the host profiler and under
a degraded scenario).
"""

from __future__ import annotations

import json
from dataclasses import replace
from itertools import permutations

import pytest

from repro.analysis.fuzz import FuzzDraw, run_decorated
from repro.sim.reference import run_case

BASE = FuzzDraw(
    app="IS",
    app_kwargs=(("n_keys", 128), ("nbuckets", 16), ("seed", 0)),
    system="RCinv",
    nprocs=4,
)

STACKS_4 = list(permutations(("tracer", "metrics", "attrib", "checked")))


@pytest.fixture(scope="module")
def bare():
    return json.loads(json.dumps(
        run_case(BASE.factory(), BASE.system, BASE.verify, config=BASE.config())
    ))


def _stacked(draw):
    return json.loads(json.dumps(run_decorated(draw)))


@pytest.mark.parametrize("stack", STACKS_4, ids="-".join)
def test_all_four_decorator_orders_are_neutral(stack, bare):
    assert _stacked(replace(BASE, decorators=stack)) == bare


@pytest.mark.parametrize(
    "stack",
    [
        ("profiler", "tracer", "metrics", "attrib", "checked"),
        ("checked", "attrib", "metrics", "tracer", "profiler"),
        ("metrics", "profiler", "checked"),
    ],
    ids="-".join,
)
def test_profiler_composes_with_other_decorators(stack, bare):
    assert _stacked(replace(BASE, decorators=stack)) == bare


def test_stacking_is_neutral_under_degradation():
    degraded = replace(
        BASE, scenario="bursty", knobs=(("duty", 0.5), ("factor", 2.0))
    )
    bare = json.loads(json.dumps(
        run_case(degraded.factory(), degraded.system, degraded.verify,
                 config=degraded.config())
    ))
    stacked = replace(degraded, decorators=("checked", "tracer", "metrics", "attrib"))
    assert _stacked(stacked) == bare
