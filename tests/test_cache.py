"""Cache model: lookup, timestamped invalidation, LRU capacity."""

from repro.mem.cache import OWNED, SHARED, Cache, CacheLine


class TestBasics:
    def test_empty_lookup(self):
        c = Cache()
        assert c.lookup(5, 0.0) is None

    def test_insert_then_hit(self):
        c = Cache()
        c.insert(5, SHARED)
        line = c.lookup(5, 10.0)
        assert line is not None
        assert line.state == SHARED

    def test_contains(self):
        c = Cache()
        c.insert(1, OWNED)
        assert 1 in c
        assert 2 not in c

    def test_len(self):
        c = Cache()
        for b in range(4):
            c.insert(b, SHARED)
        assert len(c) == 4

    def test_drop(self):
        c = Cache()
        c.insert(1, SHARED)
        c.drop(1)
        assert c.lookup(1, 0.0) is None

    def test_drop_missing_is_noop(self):
        Cache().drop(42)

    def test_reinsert_replaces_state(self):
        c = Cache()
        c.insert(1, SHARED)
        c.insert(1, OWNED)
        assert c.lookup(1, 0.0).state == OWNED

    def test_blocks_listing(self):
        c = Cache()
        c.insert(3, SHARED)
        c.insert(7, SHARED)
        assert sorted(c.blocks()) == [3, 7]


class TestTimestampedInvalidation:
    def test_valid_before_invalidation_arrives(self):
        c = Cache()
        c.insert(1, SHARED)
        c.invalidate_at(1, when=100.0)
        assert c.lookup(1, 99.9) is not None

    def test_invalid_after_arrival(self):
        c = Cache()
        c.insert(1, SHARED)
        c.invalidate_at(1, when=100.0)
        assert c.lookup(1, 100.0) is None

    def test_earlier_invalidation_wins(self):
        c = Cache()
        c.insert(1, SHARED)
        c.invalidate_at(1, when=100.0)
        c.invalidate_at(1, when=200.0)  # later one must not extend life
        assert c.lookup(1, 150.0) is None

    def test_earlier_overrides_later(self):
        c = Cache()
        c.insert(1, SHARED)
        c.invalidate_at(1, when=200.0)
        c.invalidate_at(1, when=100.0)
        assert c.lookup(1, 150.0) is None

    def test_invalidate_missing_returns_false(self):
        assert Cache().invalidate_at(9, 1.0) is False

    def test_reinsert_clears_pending_invalidation(self):
        c = Cache()
        c.insert(1, SHARED)
        c.invalidate_at(1, when=100.0)
        c.insert(1, SHARED)  # fresh fetch
        assert c.lookup(1, 150.0) is not None

    def test_lazy_removal_happens_once(self):
        c = Cache()
        c.insert(1, SHARED)
        c.invalidate_at(1, when=10.0)
        assert c.lookup(1, 20.0) is None
        assert c.lookup(1, 5.0) is None  # line is gone entirely now


class TestCapacity:
    def test_unbounded_by_default(self):
        c = Cache()
        for b in range(1000):
            assert c.insert(b, SHARED) is None
        assert len(c) == 1000

    def test_eviction_at_capacity(self):
        c = Cache(capacity_lines=2)
        c.insert(1, SHARED)
        c.insert(2, SHARED)
        evicted = c.insert(3, SHARED)
        assert evicted is not None
        assert evicted[0] == 1  # LRU
        assert len(c) == 2
        assert c.evictions == 1

    def test_lookup_refreshes_recency(self):
        c = Cache(capacity_lines=2)
        c.insert(1, SHARED)
        c.insert(2, SHARED)
        c.lookup(1, 0.0)  # 1 becomes MRU
        evicted = c.insert(3, SHARED)
        assert evicted[0] == 2

    def test_reinsert_does_not_evict(self):
        c = Cache(capacity_lines=2)
        c.insert(1, SHARED)
        c.insert(2, SHARED)
        assert c.insert(2, OWNED) is None

    def test_capacity_validation(self):
        import pytest

        with pytest.raises(ValueError):
            Cache(capacity_lines=0)


class TestCacheLine:
    def test_defaults(self):
        line = CacheLine(SHARED)
        assert line.inval_at is None
        assert line.ready_at == 0.0
        assert line.updates_since_read == 0

    def test_ready_at_for_prefetch(self):
        line = CacheLine(SHARED, ready_at=55.0)
        assert line.ready_at == 55.0
