"""Study harness, Table 1, Figure 1 scenario, rendering and claims."""

import pytest

from repro import MachineConfig, figure1_scenario, run_study, table1, table1_row
from repro.analysis import (
    format_claims,
    format_comparison,
    format_figure,
    format_table1,
    standard_claims,
)
from repro.analysis.claims import check_zmachine_near_zero
from repro.apps import IntegerSort

CFG = MachineConfig(nprocs=4)


def small_is():
    return IntegerSort(n_keys=256, nbuckets=16)


@pytest.fixture(scope="module")
def study():
    return run_study(small_is, MachineConfig(nprocs=4))


class TestRunStudy:
    def test_default_systems(self, study):
        assert [s.system for s in study.systems] == [
            "z-mc", "RCinv", "RCupd", "RCadapt", "RCcomp",
        ]

    def test_by_system(self, study):
        assert study.by_system("RCinv").system == "RCinv"
        with pytest.raises(KeyError):
            study.by_system("nope")

    def test_zmachine_property(self, study):
        assert study.zmachine.system == "z-mc"

    def test_overhead_decomposition_sums(self, study):
        for s in study.systems:
            assert s.overhead == pytest.approx(
                s.read_stall + s.write_stall + s.buffer_flush
            )
            assert 0 <= s.overhead_pct <= 100

    def test_zmachine_fastest(self, study):
        z = study.zmachine.total_time
        for s in study.systems:
            assert s.total_time >= z

    def test_traffic_attached(self, study):
        assert study.by_system("RCinv").traffic["messages"] > 0

    def test_subset_of_systems(self):
        st = run_study(small_is, CFG, systems=("z-mc", "RCinv"))
        assert len(st.systems) == 2

    def test_custom_app_name(self, study):
        assert study.app_name == "IS"


class TestTable1:
    def test_row_fields(self):
        row = table1_row(small_is, CFG)
        assert row.app == "IS"
        assert row.shared_writes > 0
        assert row.total_time > 0
        assert 0 <= row.write_pct < 100
        assert row.observed_cost >= 0.0
        assert row.network_cycles == pytest.approx(row.shared_writes * 6.4)

    def test_observed_cost_is_tiny(self):
        row = table1_row(small_is, CFG)
        assert row.observed_cost / row.total_time < 0.01

    def test_table_of_multiple_apps(self):
        rows = table1({"IS": small_is}, CFG)
        assert len(rows) == 1


class TestFigure1:
    def test_zmachine_classification(self):
        t = figure1_scenario("z-mc", CFG)
        assert t.early_kind == "inherent"
        assert t.late_kind == "hidden"
        assert t.early_read.stall <= t.link_latency

    @pytest.mark.parametrize("system", ["RCinv", "RCupd", "SCinv"])
    def test_real_systems_show_overhead(self, system):
        t = figure1_scenario(system, CFG)
        assert t.late_kind == "overhead"
        assert t.late_read.stall > 0

    def test_needs_three_procs(self):
        with pytest.raises(ValueError):
            figure1_scenario("z-mc", MachineConfig(nprocs=2))


class TestRendering:
    def test_figure_contains_all_systems(self, study):
        text = format_figure(study)
        for name in ("z-mc", "RCinv", "RCupd", "RCadapt", "RCcomp"):
            assert name in text
        assert "ovh%" in text

    def test_figure_custom_title(self, study):
        assert format_figure(study, "My Title").startswith("My Title")

    def test_table1_render(self):
        text = format_table1([table1_row(small_is, CFG)])
        assert "IS" in text
        assert "Observed" in text

    def test_comparison_line(self, study):
        line = format_comparison(study)
        assert "IS" in line and "RCinv" in line


class TestClaims:
    def test_standard_claims_structure(self, study):
        checks = standard_claims(study, expect_reuse=False)
        assert len(checks) == 5
        text = format_claims(checks)
        assert "PASS" in text or "FAIL" in text

    def test_zmachine_claim_passes(self, study):
        assert check_zmachine_near_zero(study).holds

    def test_zmachine_claim_tolerance(self, study):
        strict = check_zmachine_near_zero(study, tol_pct=0.0)
        loose = check_zmachine_near_zero(study, tol_pct=100.0)
        assert loose.holds
        assert strict.holds == (study.zmachine.overhead_pct <= 0.0)
