"""Differential conformance tests for the scheduler core.

``tests/fixtures/engine_golden.json`` was recorded with the seed engine
(global ``heapq`` loop, pre event-wheel) for every application x memory
system at smoke scale.  These tests replay the identical runs on the
current engine and require the outcome to be **bit-identical**: final
shared-memory contents, per-processor stall decomposition, op counts,
and network traffic.  JSON round-trips floats exactly, so ``==`` on the
loaded values is bit-level equality.

If one of these fails you changed simulation *semantics*, not just
speed.  Only regenerate the fixture (``PYTHONPATH=src python -m
tests.golden``) for an intentional timing change, with the justification in
the commit message.
"""

from __future__ import annotations

import json

import pytest

from tests.golden import FIXTURE, PROC_FIELDS, golden_cases, run_case

GOLDEN = json.loads(FIXTURE.read_text())

CASE_IDS = sorted(GOLDEN["runs"])


@pytest.fixture(scope="module")
def cases():
    return golden_cases()


@pytest.mark.parametrize("case_id", CASE_IDS)
def test_bit_identical_to_seed_engine(case_id, cases):
    app_name, system = case_id.split("/")
    factory, verify = cases[app_name]
    expected = GOLDEN["runs"][case_id]
    actual = run_case(factory, system, verify, nprocs=GOLDEN["nprocs"])

    assert actual["total_time"] == expected["total_time"], "total_time diverged"
    assert actual["ops"] == expected["ops"], "op count diverged"
    for proc, (got, want) in enumerate(zip(actual["procs"], expected["procs"])):
        for field in PROC_FIELDS:
            assert got[field] == want[field], (
                f"proc {proc} field {field}: {got[field]!r} != {want[field]!r}"
            )
    assert actual["network_messages"] == expected["network_messages"]
    assert actual["network_bytes"] == expected["network_bytes"]
    assert actual["traffic"] == expected["traffic"]
    assert actual["memory"] == expected["memory"], "shared-memory image diverged"


def test_fixture_covers_every_app_and_system(cases):
    apps = {cid.split("/")[0] for cid in CASE_IDS}
    systems = {cid.split("/")[1] for cid in CASE_IDS}
    assert apps == set(cases), "fixture missing an app"
    from tests.golden import ALL_SYSTEMS

    assert systems == set(ALL_SYSTEMS), "fixture missing a memory system"
