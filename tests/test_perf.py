"""Bench-history ledger tests: round-trip, dedup, regression flagging."""

from __future__ import annotations

import json

from repro.core import perf

#: A fixed timestamp so entries are reproducible.
T0 = 1754650000.0


def _engine_doc(events_per_sec: float) -> dict:
    return {
        "schema": 1,
        "bench": "engine-throughput",
        "scale": "default",
        "nprocs": 16,
        "events_per_sec": events_per_sec,
        "cpu_count": 8,
    }


def _profile_doc(ratio: float) -> dict:
    return {
        "schema": 1,
        "bench": "profiler-overhead",
        "scale": "default",
        "nprocs": 16,
        "overhead_ratio": ratio,
        "cpu_count": 8,
    }


def _write(tmp_path, name: str, doc: dict):
    path = tmp_path / name
    path.write_text(json.dumps(doc))
    return path


def test_metric_value_dotted_path():
    doc = {"modes": {"both": {"ratio": 1.7}}}
    assert perf.metric_value(doc, "modes.both.ratio") == 1.7
    assert perf.metric_value(doc, "modes.missing.ratio") is None
    assert perf.metric_value({"x": "nan-string"}, "x") is None


def test_make_entry_extracts_headline_metric():
    entry = perf.make_entry(_engine_doc(400_000.0), commit="abc1234", recorded_at=T0)
    assert entry["bench"] == "engine-throughput"
    assert entry["metric"] == "events_per_sec"
    assert entry["direction"] == "higher"
    assert entry["value"] == 400_000.0
    assert entry["commit"] == "abc1234"
    assert entry["recorded_at"].startswith("2025-")
    assert perf.make_entry({"not": "a bench"}) is None


def test_record_round_trip_and_dedup(tmp_path):
    hist = tmp_path / "history.jsonl"
    p = _write(tmp_path, "BENCH_engine.json", _engine_doc(400_000.0))
    appended = perf.record([p], history=hist, commit="abc", recorded_at=T0)
    assert len(appended) == 1
    assert perf.load_history(hist) == appended
    # Same commit + value: idempotent.
    assert perf.record([p], history=hist, commit="abc", recorded_at=T0) == []
    # New commit: a new ledger entry.
    assert len(perf.record([p], history=hist, commit="def", recorded_at=T0)) == 1
    assert len(perf.load_history(hist)) == 2
    # Non-bench files are skipped quietly.
    junk = _write(tmp_path, "BENCH_junk.json", {"hello": 1})
    assert perf.record([junk, tmp_path / "missing.json"], history=hist) == []


def test_report_flags_synthetic_regression(tmp_path):
    """A >20% drop in a higher-is-better metric (and a >20% rise in a
    lower-is-better one) must be flagged; smaller movement must not."""
    baseline_dir = tmp_path / "repo"
    baseline_dir.mkdir()
    _write(baseline_dir, "BENCH_engine.json", _engine_doc(400_000.0))
    _write(baseline_dir, "BENCH_profile.json", _profile_doc(1.2))
    hist = tmp_path / "history.jsonl"
    perf.record(
        [
            _write(tmp_path, "BENCH_e2.json", _engine_doc(300_000.0)),  # -25%
            _write(tmp_path, "BENCH_p2.json", _profile_doc(1.5)),  # +25%
        ],
        history=hist,
        commit="bad",
        recorded_at=T0,
    )
    report = perf.build_report(
        perf.load_history(hist), perf.collect_baselines(baseline_dir)
    )
    assert report["regressions"] == 2
    by_bench = {s["bench"]: s for s in report["series"]}
    assert by_bench["engine-throughput"]["regressed"]
    assert by_bench["engine-throughput"]["delta_pct"] == -25.0
    assert by_bench["profiler-overhead"]["regressed"]
    text = perf.format_report(report)
    assert "REGRESSED" in text

    # Within tolerance: ok.
    hist_ok = tmp_path / "ok.jsonl"
    perf.record(
        [_write(tmp_path, "BENCH_e3.json", _engine_doc(350_000.0))],  # -12.5%
        history=hist_ok,
        commit="ok",
        recorded_at=T0,
    )
    report_ok = perf.build_report(
        perf.load_history(hist_ok), perf.collect_baselines(baseline_dir)
    )
    assert report_ok["regressions"] == 0


def test_improvements_never_flagged(tmp_path):
    baseline_dir = tmp_path / "repo"
    baseline_dir.mkdir()
    _write(baseline_dir, "BENCH_engine.json", _engine_doc(400_000.0))
    hist = tmp_path / "history.jsonl"
    perf.record(
        [_write(tmp_path, "BENCH_fast.json", _engine_doc(900_000.0))],  # +125%
        history=hist,
        commit="fast",
        recorded_at=T0,
    )
    report = perf.build_report(
        perf.load_history(hist), perf.collect_baselines(baseline_dir)
    )
    assert report["regressions"] == 0
    (series,) = report["series"]
    assert series["delta_pct"] == 125.0


def test_series_isolation_by_scale_and_nprocs(tmp_path):
    """Entries measured at a different scale/nprocs form their own
    series and are never compared against the committed baseline."""
    baseline_dir = tmp_path / "repo"
    baseline_dir.mkdir()
    _write(baseline_dir, "BENCH_engine.json", _engine_doc(400_000.0))
    other = _engine_doc(100_000.0)
    other["nprocs"] = 256  # much slower, but a different machine size
    hist = tmp_path / "history.jsonl"
    perf.record(
        [_write(tmp_path, "BENCH_p256.json", other)],
        history=hist, commit="x", recorded_at=T0,
    )
    report = perf.build_report(
        perf.load_history(hist), perf.collect_baselines(baseline_dir)
    )
    (series,) = report["series"]
    assert series["baseline"] is None
    assert not series["regressed"]
    assert report["regressions"] == 0


def test_record_only_series_never_flagged(tmp_path):
    doc = {"schema": 1, "bench": "scenario-degradation", "scale": "small", "nprocs": 16}
    hist = tmp_path / "history.jsonl"
    perf.record(
        [_write(tmp_path, "BENCH_scn.json", doc)], history=hist, commit="x", recorded_at=T0
    )
    report = perf.build_report(perf.load_history(hist), {})
    (series,) = report["series"]
    assert series["metric"] is None
    assert not series["regressed"]
    assert "record-only" in perf.format_report(report)


def test_trend_accumulates(tmp_path):
    hist = tmp_path / "history.jsonl"
    for i, eps in enumerate((300_000.0, 350_000.0, 400_000.0)):
        perf.record(
            [_write(tmp_path, f"BENCH_{i}.json", _engine_doc(eps))],
            history=hist, commit=f"c{i}", recorded_at=T0 + i,
        )
    report = perf.build_report(perf.load_history(hist), {})
    (series,) = report["series"]
    assert series["entries"] == 3
    assert series["trend"] == [300_000.0, 350_000.0, 400_000.0]
    assert series["latest"] == 400_000.0
    assert series["latest_commit"] == "c2"


def test_committed_ledger_reports_clean():
    """The repo's own ledger must report no regressions against the
    committed BENCH baselines (both were produced by the same commit)."""
    entries = perf.load_history()
    if not entries:  # ledger not seeded yet in this checkout
        return
    report = perf.build_report(entries, perf.collect_baselines())
    assert report["regressions"] == 0, perf.format_report(report)
