"""Memory-system publish/self-invalidate hooks (decoupled data flow)."""

import pytest

from repro.config import MachineConfig
from repro.mem.cache import OWNED
from repro.mem.systems import default_network
from repro.mem.systems.rcinv import RCInv
from repro.mem.systems.rcupd import RCUpd
from repro.mem.systems.zmachine import ZMachine


def make_upd(nprocs=4, **kw):
    cfg = MachineConfig(nprocs=nprocs, **kw)
    return RCUpd(cfg, default_network(cfg))


class TestPublish:
    def test_publish_flushes_only_matching_merge_lines(self):
        m = make_upd()
        m.write(0, 0, 0.0)    # block 0 in merge buffer
        m.write(0, 64, 1.0)   # evicts block 0 -> transaction; block 2 open
        before = m.write_transactions
        m.publish(0, (5,), 2.0)  # unrelated block: nothing flushed
        assert m.write_transactions == before
        assert m.merge_buffers[0].has(2)
        m.publish(0, (2,), 3.0)
        assert m.write_transactions == before + 1
        assert not m.merge_buffers[0].has(2)

    def test_publish_reports_home_arrival(self):
        m = make_upd()
        m.write(0, 64, 0.0)
        proceed, ready = m.publish(0, (2,), 1.0)
        assert proceed >= 1.0
        assert ready > 1.0  # data had to travel to its home
        assert ready == m.directory.entry(2).avail_time

    def test_publish_never_waits_for_sharer_acks(self):
        m = make_upd()
        for p in (1, 2, 3):
            m.read(p, 64, 0.0)  # three sharers to fan out to
        m.write(0, 64, 1000.0)
        _, ready = m.publish(0, (2,), 1001.0)
        # the fan-out acks finish later than the home arrival we wait for
        assert m.fanout_done[0] > ready

    def test_base_publish_is_noop(self):
        cfg = MachineConfig(nprocs=4)
        inv = RCInv(cfg, default_network(cfg))
        inv.write(0, 64, 0.0)
        proceed, ready = inv.publish(0, (2,), 5.0)
        assert (proceed, ready) == (5.0, 5.0)

    def test_zmachine_publish_reports_counter_deadline(self):
        z = ZMachine(MachineConfig(nprocs=4))
        z.write(0, 0, 100.0)
        _, ready = z.publish(0, (0,), 101.0)
        assert ready == pytest.approx(100.0 + z.latency)


class TestSelfInvalidate:
    def test_drops_cached_copy_and_presence(self):
        m = make_upd()
        m.read(1, 64, 0.0)
        assert m.directory.entry(2).is_sharer(1)
        m.self_invalidate(1, (2,), 10.0)
        assert m.caches[1].peek(2) is None
        assert not m.directory.entry(2).is_sharer(1)

    def test_never_drops_own_dirty_line(self):
        cfg = MachineConfig(nprocs=4)
        inv = RCInv(cfg, default_network(cfg))
        inv.write(0, 64, 0.0)  # proc 0 owns block 2 dirty
        inv.self_invalidate(0, (2,), 10.0)
        line = inv.caches[0].peek(2)
        assert line is not None and line.state == OWNED
        assert inv.directory.entry(2).owner == 0

    def test_missing_block_is_noop(self):
        m = make_upd()
        m.self_invalidate(0, (99,), 0.0)  # nothing cached: no error

    def test_refetch_after_self_invalidation(self):
        m = make_upd()
        m.read(1, 64, 0.0)
        m.self_invalidate(1, (2,), 10.0)
        res = m.read(1, 64, 1000.0)
        assert not res.hit  # fresh fetch
