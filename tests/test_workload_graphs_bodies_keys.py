"""Flow networks, body sets and key streams."""

import numpy as np
import pytest

from repro.workloads.bodies import direct_forces, two_clusters, uniform_disc
from repro.workloads.graphs import random_flow_network, reference_max_flow
from repro.workloads.keys import nas_keys, reference_ranks, uniform_keys


class TestFlowNetwork:
    def test_paper_shape_defaults(self):
        net = random_flow_network()
        assert net.n == 200
        assert net.num_arcs >= 2 * 400

    def test_arc_pairing(self):
        net = random_flow_network(30, 60, seed=2)
        for e in range(net.num_arcs):
            assert net.reverse(net.reverse(e)) == e
            assert net.tail[e] == net.head[net.reverse(e)]

    def test_adjacency_lists_out_arcs(self):
        net = random_flow_network(20, 40, seed=1)
        for v in range(net.n):
            for e in net.adj[v]:
                assert net.tail[int(e)] == v

    def test_backbone_guarantees_positive_flow(self):
        net = random_flow_network(25, 0, seed=5)
        assert reference_max_flow(net) > 0

    def test_deterministic_by_seed(self):
        a = random_flow_network(20, 40, seed=7)
        b = random_flow_network(20, 40, seed=7)
        assert np.array_equal(a.cap, b.cap)
        assert np.array_equal(a.head, b.head)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            random_flow_network(1, 0)

    def test_no_self_loops_or_duplicate_pairs(self):
        net = random_flow_network(15, 30, seed=3)
        seen = set()
        for e in range(0, net.num_arcs, 2):
            u, v = int(net.tail[e]), int(net.head[e])
            assert u != v
            key = (min(u, v), max(u, v))
            assert key not in seen
            seen.add(key)


class TestBodies:
    def test_uniform_disc_inside_radius(self):
        b = uniform_disc(100, radius=2.0, seed=1)
        assert np.all(np.hypot(b.pos[:, 0], b.pos[:, 1]) <= 2.0 + 1e-9)
        assert b.n == 100
        assert np.all(b.mass > 0)

    def test_two_clusters_separated(self):
        b = two_clusters(64, separation=6.0, seed=2)
        left = b.pos[:32, 0]
        right = b.pos[32:, 0]
        assert left.mean() < -2
        assert right.mean() > 2

    def test_bounding_box_contains_all(self):
        b = uniform_disc(50, seed=3)
        xmin, ymin, size = b.bounding_box()
        assert np.all(b.pos[:, 0] >= xmin - 1e-12)
        assert np.all(b.pos[:, 0] <= xmin + size + 1e-9)

    def test_direct_forces_antisymmetric_for_two_equal_masses(self):
        import repro.workloads.bodies as wb

        b = wb.BodySet(
            pos=np.array([[0.0, 0.0], [1.0, 0.0]]),
            vel=np.zeros((2, 2)),
            mass=np.array([1.0, 1.0]),
        )
        f = direct_forces(b, eps=0.0)
        assert np.allclose(f[0], -f[1])
        assert f[0][0] > 0  # attraction toward the other body

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            uniform_disc(0)


class TestKeys:
    def test_nas_keys_in_range(self):
        k = nas_keys(1000, 256, seed=1)
        assert k.min() >= 0 and k.max() < 256
        assert len(k) == 1000

    def test_nas_keys_clustered_around_middle(self):
        k = nas_keys(20000, 1024, seed=2)
        # mean of 4 uniforms: strongly concentrated near max_key/2
        assert abs(k.mean() - 512) < 30
        assert k.std() < 512 * 0.4

    def test_uniform_keys_spread(self):
        k = uniform_keys(20000, 1024, seed=2)
        assert k.std() > nas_keys(20000, 1024, seed=2).std()

    def test_deterministic(self):
        assert np.array_equal(nas_keys(100, 64, seed=9), nas_keys(100, 64, seed=9))

    def test_reference_ranks_sort(self):
        k = nas_keys(500, 64, seed=3)
        r = reference_ranks(k)
        assert sorted(r) == list(range(500))
        sorted_keys = np.empty(500, dtype=np.int64)
        sorted_keys[r] = k
        assert np.all(np.diff(sorted_keys) >= 0)

    def test_reference_ranks_stable(self):
        k = np.array([5, 1, 5, 1])
        assert reference_ranks(k).tolist() == [2, 0, 3, 1]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            nas_keys(0, 10)
        with pytest.raises(ValueError):
            uniform_keys(10, 0)
