"""Access tracing facility."""

import pytest

from repro.config import MachineConfig
from repro.runtime import Lock, Machine
from repro.sim.trace import TracingMemory
from repro.sim.events import Compute


def run_traced(system="RCinv", max_events=100_000):
    machine = Machine(MachineConfig(nprocs=2), system)
    arr = machine.shm.array(16, "a", align_line=True)
    lock = Lock(machine.sync)
    tracer = TracingMemory.attach(machine, max_events=max_events)

    def worker(ctx):
        if ctx.pid == 0:
            for i in range(16):
                yield from arr.write(i, i)
            yield from lock.acquire()
            yield from lock.release()
        else:
            yield Compute(50000)
            for i in range(16):
                yield from arr.read(i)

    result = machine.run(worker)
    return machine, tracer, result


class TestTracing:
    def test_events_recorded_with_kinds(self):
        _, tracer, _ = run_traced()
        kinds = {e.kind for e in tracer.events}
        assert {"read", "write", "release"} <= kinds

    def test_counts_match_engine_stats(self):
        _, tracer, result = run_traced()
        reads = [e for e in tracer.events if e.kind == "read"]
        writes = [e for e in tracer.events if e.kind == "write"]
        assert len(reads) == result.total_reads
        assert len(writes) == result.total_writes

    def test_latency_nonnegative_and_consistent(self):
        _, tracer, _ = run_traced()
        for e in tracer.events:
            assert e.latency >= 0
            assert e.complete >= e.issue

    def test_stall_totals_match_proc_stats(self):
        _, tracer, result = run_traced()
        traced = sum(e.read_stall for e in tracer.events)
        from_stats = sum(p.read_stall for p in result.procs)
        assert traced == pytest.approx(from_stats)

    def test_hottest_blocks_identify_shared_lines(self):
        _, tracer, _ = run_traced()
        hot = tracer.hottest_blocks(3)
        assert hot  # consumer misses stall on the written lines
        assert all(stall > 0 for _, stall in hot)

    def test_busiest_blocks(self):
        _, tracer, _ = run_traced()
        busy = tracer.busiest_blocks(2)
        assert busy[0][1] >= busy[-1][1]

    def test_events_for_proc(self):
        _, tracer, _ = run_traced()
        for e in tracer.events_for_proc(1):
            assert e.proc == 1

    def test_summary(self):
        _, tracer, _ = run_traced()
        s = tracer.summary()
        assert s["recorded"] == s["events"]
        assert 0 <= s["read_miss_rate"] <= 1
        assert s["total_stall"] > 0

    def test_bounded_events(self):
        _, tracer, _ = run_traced(max_events=5)
        assert len(tracer.events) == 5
        assert tracer.dropped > 0
        assert tracer.summary()["events"] == 5 + tracer.dropped

    def test_delegates_inner_attributes(self):
        machine, tracer, _ = run_traced()
        assert tracer.inner is machine.memsys
        assert tracer.traffic_summary() == machine.memsys.traffic_summary()
        assert tracer.line_size == 32

    def test_invalid_max_events(self):
        with pytest.raises(ValueError):
            TracingMemory(inner=None, max_events=0)

    def test_default_max_events_single_source(self):
        """attach() and __init__ both inherit DEFAULT_MAX_EVENTS."""
        machine = Machine(MachineConfig(nprocs=2), "RCinv")
        tracer = TracingMemory.attach(machine)
        assert tracer.max_events == TracingMemory.DEFAULT_MAX_EVENTS
        direct = TracingMemory(machine.memsys)
        assert direct.max_events == TracingMemory.DEFAULT_MAX_EVENTS
        explicit = TracingMemory(machine.memsys, max_events=7)
        assert explicit.max_events == 7

    def test_hottest_accessed_alias(self):
        _, tracer, _ = run_traced()
        assert tracer.hottest_accessed(3) == tracer.busiest_blocks(3)

    def test_perfetto_sidecar_carries_hot_blocks(self):
        from repro.obs.timeline import to_perfetto

        machine, tracer, result = run_traced()
        doc = to_perfetto(tracer, 2, total_time=result.total_time)
        other = doc["otherData"]
        assert other["hottest_blocks"] == tracer.hottest_blocks()
        assert other["hottest_accessed"] == tracer.hottest_accessed()
        # a bare event list gets no rankings (nothing to rank from)
        bare = to_perfetto(list(tracer.events), 2, total_time=result.total_time)
        assert "hottest_blocks" not in bare["otherData"]

    def test_results_unchanged_by_tracing(self):
        """Tracing must be observationally transparent."""
        def run(traced):
            machine = Machine(MachineConfig(nprocs=2), "RCupd")
            arr = machine.shm.array(8, "a")
            if traced:
                TracingMemory.attach(machine)

            def worker(ctx):
                yield from arr.write(ctx.pid, ctx.pid)
                yield Compute(1000)
                v = yield from arr.read(1 - ctx.pid)
                yield Compute(v + 1)

            return machine.run(worker).total_time

        assert run(False) == run(True)
