"""The observability subsystem: metrics, timeline export, manifests.

Covers the guarantees docs/observability.md documents: interval
metrics reproduce the SimResult stall decomposition exactly, bucket
splitting preserves totals across boundaries, the Perfetto export is
valid Chrome-trace JSON with monotonic timestamps, manifests round-trip
through disk, and tracing stays cheap enough to leave on.
"""

from __future__ import annotations

import json
import time

from repro import MachineConfig
from repro.apps import AppFactory
from repro.apps.base import run_machine
from repro.core.bench import TRACE_MODES, run_trace_bench
from repro.obs import (
    MetricsCollector,
    build_manifest,
    read_manifest,
    to_perfetto,
    write_manifest,
    write_trace,
)
from repro.obs.log import Logger
from repro.obs.metrics import CATEGORIES, Counter, Gauge, Histogram
from repro.runtime.context import Machine
from repro.sim.trace import TracingMemory

CFG = MachineConfig(nprocs=4)

IS_FACTORY = AppFactory("IS", n_keys=128, nbuckets=16)
CHOLESKY_FACTORY = AppFactory("Cholesky", grid=(6, 6))


def run_observed(factory, system, cfg=CFG, interval=500.0, trace=True):
    """Run one app with tracer + collector attached; return all pieces."""
    app = factory()
    machine = Machine(cfg, system)
    app.setup(machine)
    tracer = TracingMemory.attach(machine) if trace else None
    collector = MetricsCollector.attach(machine, interval=interval)
    result = machine.run(app.worker)
    return machine, result, tracer, collector


# ---------------------------------------------------------------------------
# metric primitives


def test_counter_gauge_histogram():
    c = Counter("n")
    c.inc()
    c.inc(3)
    assert c.value == 4
    g = Gauge("depth")
    g.set(2.0)
    g.set(7.0)
    g.set(1.0)
    assert g.value == 1.0 and g.peak == 7.0
    h = Histogram("lat", bounds=(1.0, 10.0))
    for v in (0.5, 5.0, 50.0):
        h.observe(v)
    assert h.count == 3
    assert h.counts == [1, 1, 1]
    assert h.mean == (0.5 + 5.0 + 50.0) / 3
    d = h.to_dict()
    assert d["count"] == 3 and len(d["counts"]) == len(d["bounds"]) + 1


# ---------------------------------------------------------------------------
# bucket splitting


def test_deposit_splits_across_bucket_boundary_exactly():
    mc = MetricsCollector(nprocs=1, interval=100.0)
    # A 50-cycle busy span straddling the t=100 boundary: 30 cycles in
    # bucket 0, 20 in bucket 1, preserving the total bit-for-bit.
    mc._deposit(0, 70.0, 50.0, busy=50.0)
    b0, b1 = mc._bucket(0), mc._bucket(1)
    assert abs(b0["busy"][0] - 30.0) < 1e-12
    assert abs(b1["busy"][0] - 20.0) < 1e-12
    assert b0["busy"][0] + b1["busy"][0] == 50.0


def test_deposit_span_ending_on_boundary_stays_in_lower_bucket():
    mc = MetricsCollector(nprocs=1, interval=100.0)
    mc._deposit(0, 50.0, 50.0, busy=50.0)  # [50, 100) ends exactly at the edge
    assert mc._bucket(0)["busy"][0] == 50.0
    assert 1 not in mc._buckets


def test_deposit_many_buckets_total_preserved():
    mc = MetricsCollector(nprocs=2, interval=10.0)
    amount = 123.456789
    mc._deposit(1, 3.25, 97.5, sync_wait=amount)
    total = sum(b["sync_wait"][1] for b in mc._buckets.values())
    assert total == amount  # exact, not approximate: remainder goes last


# ---------------------------------------------------------------------------
# end-to-end: metrics reproduce the simulator's own accounting


def test_metrics_totals_match_simresult_exactly():
    # The acceptance scenario: cholesky on RCadapt, summed per-bucket
    # decomposition vs the SimResult per-processor totals.
    _, result, _, collector = run_observed(CHOLESKY_FACTORY, "RCadapt")
    totals = collector.totals()
    want = {
        "busy": sum(p.busy for p in result.procs),
        "read_stall": sum(p.read_stall for p in result.procs),
        "write_stall": sum(p.write_stall for p in result.procs),
        "buffer_flush": sum(p.buffer_flush for p in result.procs),
        "sync_wait": sum(p.sync_wait for p in result.procs),
    }
    for cat in CATEGORIES:
        assert abs(totals[cat] - want[cat]) < 1e-6, (cat, totals[cat], want[cat])


def test_metrics_per_proc_totals_match_procstats():
    _, result, _, collector = run_observed(IS_FACTORY, "RCinv")
    per = collector.per_proc_totals()
    for p, stats in enumerate(result.procs):
        assert abs(per["busy"][p] - stats.busy) < 1e-6
        assert abs(per["sync_wait"][p] - stats.sync_wait) < 1e-6


def test_metrics_per_proc_totals_match_at_p64():
    """Paper-scale machine: every one of the 64 per-processor bucket
    sums must reproduce the SimResult decomposition to 1e-6."""
    factory = AppFactory("IS", n_keys=512, nbuckets=64)
    _, result, _, collector = run_observed(
        factory, "RCupd", cfg=MachineConfig(nprocs=64), trace=False
    )
    assert len(result.procs) == 64
    per = collector.per_proc_totals()
    for p, stats in enumerate(result.procs):
        for cat in CATEGORIES:
            assert abs(per[cat][p] - getattr(stats, cat)) < 1e-6, (cat, p)
    totals = collector.totals()
    for cat in CATEGORIES:
        want = sum(getattr(p, cat) for p in result.procs)
        assert abs(totals[cat] - want) < 1e-6, cat


def test_metrics_observability_is_timing_transparent():
    plain = run_machine(IS_FACTORY(), "RCinv", CFG)[1]
    _, observed, _, _ = run_observed(IS_FACTORY, "RCinv")
    assert observed.total_time == plain.total_time
    assert observed.ops == plain.ops


def test_metrics_to_dict_schema():
    _, result, _, collector = run_observed(IS_FACTORY, "RCinv")
    doc = collector.to_dict()
    assert doc["schema"] == MetricsCollector.SCHEMA
    assert doc["categories"] == list(CATEGORIES)
    assert doc["nprocs"] == CFG.nprocs
    assert doc["buckets"], "expected at least one bucket"
    for bucket in doc["buckets"]:
        assert bucket["t1"] - bucket["t0"] == collector.interval
        for cat in CATEGORIES:
            assert len(bucket[cat]) == CFG.nprocs
    json.dumps(doc)  # must be JSON-serialisable as-is


# ---------------------------------------------------------------------------
# Perfetto timeline export


def golden_trace(tmp_path):
    machine, result, tracer, _ = run_observed(IS_FACTORY, "RCinv")
    doc = to_perfetto(
        tracer, CFG.nprocs, total_time=result.total_time, app="IS", system="RCinv"
    )
    path = tmp_path / "trace.json"
    write_trace(path, doc)
    return doc, path


def test_perfetto_document_shape(tmp_path):
    doc, path = golden_trace(tmp_path)
    loaded = json.loads(path.read_text())
    assert loaded["displayTimeUnit"] == "ms"
    events = loaded["traceEvents"]
    phs = {e["ph"] for e in events}
    assert {"M", "X"} <= phs, "metadata and slices required"
    # One named lane per processor.
    names = [e for e in events if e["ph"] == "M" and e["name"] == "thread_name"]
    lanes = {e["args"]["name"] for e in names}
    assert {f"proc {p}" for p in range(CFG.nprocs)} <= lanes


def test_perfetto_timestamps_monotonic(tmp_path):
    doc, _ = golden_trace(tmp_path)
    body = [e for e in doc["traceEvents"] if e["ph"] != "M"]
    ts = [e["ts"] for e in body]
    assert ts == sorted(ts)
    assert all(t >= 0 for t in ts)


def test_perfetto_includes_phase_markers_and_barrier_flows(tmp_path):
    doc, _ = golden_trace(tmp_path)
    body = doc["traceEvents"]
    phase_slices = [
        e for e in body if e["ph"] == "X" and e.get("tid", 0) >= 1000
    ]
    assert phase_slices, "IS phase() markers should become phase-lane slices"
    names = {e["name"] for e in phase_slices}
    assert {"histogram", "rank"} <= names
    flows = [e for e in body if e["ph"] in ("s", "t", "f")]
    assert flows, "barrier episodes should produce flow events"
    finishes = [e for e in flows if e["ph"] == "f"]
    assert all(e.get("bp") == "e" for e in finishes)


def test_perfetto_accepts_plain_event_list():
    _, result, tracer, _ = run_observed(IS_FACTORY, "RCinv")
    from_list = to_perfetto(list(tracer.events), CFG.nprocs, total_time=result.total_time)
    from_tracer = to_perfetto(tracer, CFG.nprocs, total_time=result.total_time)
    assert len(from_list["traceEvents"]) == len(from_tracer["traceEvents"])


# ---------------------------------------------------------------------------
# manifests


def test_manifest_roundtrip(tmp_path):
    manifest = build_manifest(
        "study",
        config=CFG,
        app="IS",
        systems=["z-mc", "RCinv"],
        wall_seconds=1.25,
        extra={"note": "unit"},
    )
    path = tmp_path / "manifest.json"
    write_manifest(path, manifest)
    loaded = read_manifest(path)
    assert loaded == json.loads(json.dumps(manifest))  # JSON-stable
    assert loaded["kind"] == "study"
    assert loaded["config"]["nprocs"] == CFG.nprocs
    assert loaded["code_fingerprint"] and loaded["host"]["python"]
    assert loaded["note"] == "unit"


def test_study_attaches_manifest():
    from repro import run_study

    study = run_study(IS_FACTORY, CFG, systems=("z-mc", "RCinv"))
    m = study.manifest
    assert m["kind"] == "study" and m["app"] == "IS"
    assert [j["system"] for j in m["jobs"]] == ["z-mc", "RCinv"]
    assert m["events"] == sum(j["events"] for j in m["jobs"]) > 0
    assert m["cache"] == {"hits": 0, "misses": 2, "hit_rate": 0.0}


# ---------------------------------------------------------------------------
# logger


def test_logger_modes(capsys):
    log = Logger()
    log.out("payload")
    log.info("diag")
    cap = capsys.readouterr()
    assert cap.out == "payload\n" and "diag" in cap.err

    log = Logger(quiet=True)
    log.info("hidden")
    log.warn("kept")
    cap = capsys.readouterr()
    assert "hidden" not in cap.err and "warn: kept" in cap.err

    log = Logger(json_mode=True)
    log.out("table", rows=2)
    cap = capsys.readouterr()
    rec = json.loads(cap.out)
    assert rec == {"level": "out", "msg": "table", "rows": 2}


def test_logger_debug_requires_verbose(capsys):
    Logger().debug("no")
    Logger(verbose=True).debug("yes")
    cap = capsys.readouterr()
    assert "no" not in cap.err and "yes" in cap.err


# ---------------------------------------------------------------------------
# overhead guard


def test_tracing_overhead_bounded():
    # Observability must stay cheap enough to leave on: best-of-N traced
    # wall-clock within 1.3x of untraced (generous for CI noise).
    def best(trace):
        walls = []
        for _ in range(3):
            app = IS_FACTORY()
            machine = Machine(CFG, "RCinv")
            app.setup(machine)
            if trace:
                TracingMemory.attach(machine)
            t0 = time.perf_counter()
            machine.run(app.worker)
            walls.append(time.perf_counter() - t0)
        return min(walls)

    base = best(False)
    traced = best(True)
    assert traced <= base * 1.3 + 0.05, f"tracing overhead {traced / base:.2f}x"


def test_run_trace_bench_document(tmp_path):
    out = tmp_path / "BENCH_trace.json"
    doc = run_trace_bench(scale="smoke", repeats=1, out=out)
    loaded = json.loads(out.read_text())
    assert loaded["bench"] == "observability-overhead"
    assert set(loaded["modes"]) == set(TRACE_MODES)
    assert loaded["modes"]["plain"]["ratio"] == 1.0
    assert doc["events"] > 0
    assert loaded["manifest"]["kind"] == "trace-bench"
