"""Property-based tests at the application level.

Each property runs the real parallel algorithm through the simulator on
randomly drawn inputs/configurations and relies on the applications'
built-in verification against independent references.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import MachineConfig
from repro.apps import BarnesHut, Cholesky, IntegerSort, Maxflow
from repro.apps.base import run_on
from repro.workloads.matrices import random_spd

SLOW = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

SYSTEMS = st.sampled_from(["z-mc", "RCinv", "RCupd", "RCadapt", "RCcomp", "SCinv"])


@SLOW
@given(
    n_keys=st.integers(16, 300),
    nbuckets=st.integers(2, 32),
    nprocs=st.integers(1, 8),
    system=SYSTEMS,
    seed=st.integers(0, 1000),
)
def test_is_ranks_always_correct(n_keys, nbuckets, nprocs, system, seed):
    app = IntegerSort(n_keys=n_keys, nbuckets=nbuckets, seed=seed)
    run_on(app, system, MachineConfig(nprocs=nprocs))  # verifies internally


@SLOW
@given(
    rows=st.integers(2, 5),
    cols=st.integers(2, 5),
    nprocs=st.integers(1, 6),
    system=SYSTEMS,
)
def test_cholesky_factor_always_correct(rows, cols, nprocs, system):
    app = Cholesky(grid=(rows, cols))
    run_on(app, system, MachineConfig(nprocs=nprocs))


@SLOW
@given(
    n=st.integers(12, 40),
    density=st.floats(0.05, 0.3),
    seed=st.integers(0, 100),
)
def test_cholesky_random_spd(n, density, seed):
    app = Cholesky(matrix=random_spd(n, density=density, seed=seed))
    run_on(app, "RCinv", MachineConfig(nprocs=4))


@SLOW
@given(
    n_bodies=st.integers(4, 24),
    steps=st.integers(1, 3),
    boost=st.integers(0, 3),
    system=SYSTEMS,
    seed=st.integers(0, 100),
)
def test_barneshut_matches_reference(n_bodies, steps, boost, system, seed):
    app = BarnesHut(n_bodies=n_bodies, steps=steps, boost_interval=boost, seed=seed)
    run_on(app, system, MachineConfig(nprocs=4))


@SLOW
@given(
    n=st.integers(6, 20),
    extra=st.integers(0, 30),
    nprocs=st.integers(1, 6),
    seed=st.integers(0, 50),
)
def test_maxflow_matches_networkx(n, extra, nprocs, seed):
    app = Maxflow(n=n, extra_edges=extra, seed=seed)
    run_on(app, "RCinv", MachineConfig(nprocs=nprocs))
