"""Ideal and routed network timing models."""

import pytest

from repro.network.ideal import IdealNetwork
from repro.network.routed import RoutedNetwork
from repro.network.topology import Mesh2D


class TestIdealNetwork:
    def test_latency_is_bytes_times_speed(self):
        net = IdealNetwork(cycles_per_byte=1.6)
        assert net.latency(4) == pytest.approx(6.4)

    def test_header_and_fixed_cost(self):
        net = IdealNetwork(1.0, header_bytes=8, fixed_cycles=5.0)
        assert net.latency(4) == pytest.approx(5.0 + 12.0)

    def test_transfer_adds_latency(self):
        net = IdealNetwork(2.0)
        assert net.transfer(0, 1, 10, start=100.0) == pytest.approx(120.0)

    def test_local_transfer_free(self):
        net = IdealNetwork(2.0)
        assert net.transfer(3, 3, 10, start=100.0) == pytest.approx(100.0)

    def test_no_contention(self):
        net = IdealNetwork(1.6)
        a = net.transfer(0, 1, 100, 0.0)
        b = net.transfer(0, 1, 100, 0.0)
        assert a == b  # second message sees no queueing

    def test_multicast_simultaneous(self):
        net = IdealNetwork(1.6)
        arrivals = net.multicast(0, [1, 2, 3], 4, 0.0)
        assert len(set(arrivals.values())) == 1  # ideal fan-out: same L

    def test_stats_recorded(self):
        net = IdealNetwork(1.0)
        net.transfer(0, 1, 10, 0.0)
        net.transfer(0, 2, 10, 0.0)
        assert net.stats.messages == 2
        assert net.stats.bytes == 20

    def test_negative_speed_rejected(self):
        with pytest.raises(ValueError):
            IdealNetwork(-1.0)


class TestRoutedNetwork:
    def make(self, **kw):
        defaults = dict(cycles_per_byte=1.6, header_bytes=8, router_delay=2.0)
        defaults.update(kw)
        return RoutedNetwork(Mesh2D(2, 2), **defaults)

    def test_zero_load_latency(self):
        net = self.make()
        # 0 -> 1 is one hop: router_delay + (8+8)*1.6
        expect = 2.0 + 16 * 1.6
        assert net.transfer(0, 1, 8, 0.0) == pytest.approx(expect)
        assert net.min_latency(0, 1, 8) == pytest.approx(expect)

    def test_two_hop_latency(self):
        net = self.make()
        # 0 -> 3: two hops
        expect = 2 * 2.0 + 16 * 1.6
        assert net.transfer(0, 3, 8, 0.0) == pytest.approx(expect)

    def test_local_delivery_free(self):
        net = self.make()
        assert net.transfer(1, 1, 100, 50.0) == pytest.approx(50.0)

    def test_contention_queues_second_message(self):
        net = self.make()
        a = net.transfer(0, 1, 8, 0.0)
        b = net.transfer(0, 1, 8, 0.0)  # same link, same instant
        ser = (8 + 8) * 1.6
        assert b == pytest.approx(a + ser)

    def test_contention_recorded_in_stats(self):
        net = self.make()
        net.transfer(0, 1, 8, 0.0)
        net.transfer(0, 1, 8, 0.0)
        assert net.stats.contention_cycles > 0

    def test_disjoint_routes_no_interference(self):
        net = self.make()
        a = net.transfer(0, 1, 8, 0.0)
        b = net.transfer(2, 3, 8, 0.0)  # disjoint links
        assert a == pytest.approx(b)

    def test_later_message_after_drain_sees_no_queue(self):
        net = self.make()
        net.transfer(0, 1, 8, 0.0)
        late = net.transfer(0, 1, 8, 1000.0)
        assert late == pytest.approx(1000.0 + net.min_latency(0, 1, 8))

    def test_multicast_serialised_at_source(self):
        net = self.make()
        arrivals = net.multicast(0, [1, 2, 3], 8, 0.0)
        assert len(arrivals) == 3
        assert len(set(arrivals.values())) > 1  # staggered injections

    def test_reset_clears_reservations(self):
        net = self.make()
        net.transfer(0, 1, 8, 0.0)
        net.reset()
        assert net.stats.messages == 0
        assert net.transfer(0, 1, 8, 0.0) == pytest.approx(net.min_latency(0, 1, 8))

    def test_monotone_in_size(self):
        net = self.make()
        small = net.min_latency(0, 3, 4)
        large = net.min_latency(0, 3, 64)
        assert large > small

    def test_invalid_speed(self):
        with pytest.raises(ValueError):
            RoutedNetwork(Mesh2D(2, 2), cycles_per_byte=0.0)

    def test_link_utilisation_diagnostic(self):
        net = self.make()
        net.transfer(0, 1, 8, 0.0)
        assert (0, 1) in net.link_utilisation
