"""Property-based tests for the DataChannel and TaskPool."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import MachineConfig
from repro.runtime import DataChannel, Machine, TaskPool
from repro.sim.events import Compute

SLOW = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@SLOW
@given(
    system=st.sampled_from(["z-mc", "RCinv", "RCupd", "RCcomp", "RCadapt"]),
    epochs=st.integers(1, 6),
    nwords=st.integers(1, 24),
    depth=st.integers(1, 4),
    nprocs=st.integers(2, 6),
    gaps=st.booleans(),
)
def test_channel_delivers_every_epoch_in_order(system, epochs, nwords, depth, nprocs, gaps):
    machine = Machine(MachineConfig(nprocs=nprocs), system)
    chan = DataChannel(machine, nwords=nwords, consumers=nprocs - 1, depth=depth)
    seen: dict[int, list[int]] = {p: [] for p in range(1, nprocs)}

    def worker(ctx):
        if ctx.pid == 0:
            for e in range(epochs):
                if gaps:
                    yield Compute(500)
                yield from chan.produce([e] * nwords)
        else:
            reader = chan.reader()
            for _ in range(epochs):
                vals = yield from reader.next()
                assert len(set(vals)) == 1  # payloads are never torn
                seen[ctx.pid].append(int(vals[0]))
                if not gaps:
                    yield Compute(300)

    machine.run(worker)
    for pid, epochs_seen in seen.items():
        assert epochs_seen == list(range(epochs))


@SLOW
@given(
    system=st.sampled_from(["z-mc", "RCinv", "RCupd"]),
    seeds=st.lists(st.integers(1, 30), min_size=1, max_size=6, unique=True),
    fanout=st.integers(0, 2),
    nprocs=st.integers(1, 6),
)
def test_taskpool_executes_every_task_exactly_once(system, seeds, fanout, nprocs):
    machine = Machine(MachineConfig(nprocs=nprocs), system)
    pool = TaskPool(machine.shm, machine.sync, capacity=512)
    pool.seed(seeds)
    done: list[int] = []

    def worker(ctx):
        while True:
            t = yield from pool.get_task()
            if t is None:
                break
            done.append(t)
            if t < 200:
                for k in range(fanout):
                    yield from pool.add_task(1000 + t * 4 + k)
            yield Compute(20)
            yield from pool.task_done()

    machine.run(worker)
    expected = sorted(seeds) + sorted(
        1000 + t * 4 + k for t in seeds if t < 200 for k in range(fanout)
    )
    assert sorted(done) == sorted(expected)
