"""Scenario registry, injector neutrality, and degradation direction.

The load-bearing property is **injector neutrality**: a
:class:`~repro.scenarios.inject.Degradation` whose every factor is
exactly 1.0 must exercise all the injection code paths (engine Compute
scaling, per-home memory cost table, degraded link routing) while
producing results bit-identical to the undegraded engine.  That is
pinned against the full golden fixture — the same 36 runs
``tests/test_engine_equivalence.py`` replays — so the degradation
threading cannot perturb the baseline.

The directional tests then check the injectors do what they claim when
the factors are *not* 1.0: CPU degradation strictly increases busy
time, memory/link degradation strictly increases the affected stall
categories, every scenario strictly increases somebody's total time.
"""

from __future__ import annotations

import json

import pytest

from repro.apps.factory import AppFactory
from repro.config import MachineConfig
from repro.core.study import run_study
from repro.mem.systems import make_system
from repro.scenarios import (
    SCENARIO_NAMES,
    SCENARIO_REGISTRY,
    Degradation,
    apply_scenario,
    build_report,
    get_scenario,
    neutral_degradation,
    parse_overrides,
    run_scenario_matrix,
)
from repro.scenarios.registry import undirected_links
from tests.golden import FIXTURE, PROC_FIELDS, golden_cases, run_case

GOLDEN = json.loads(FIXTURE.read_text())
CASE_IDS = sorted(GOLDEN["runs"])


# ---------------------------------------------------------------------------
# Degradation spec validation


def test_degradation_defaults_are_neutral():
    d = Degradation()
    assert d.is_neutral
    assert not d.affects_cpu
    assert d.cpu_factor(0) == 1.0
    assert d.mem_factor(5) == 1.0


def test_degradation_rejects_bad_factors():
    with pytest.raises(ValueError):
        Degradation(node_cpu=((0, 0.0),))
    with pytest.raises(ValueError):
        Degradation(node_mem=((0, -1.0),))
    with pytest.raises(ValueError):
        Degradation(node_cpu=((0, 2.0), (0, 3.0)))  # duplicate node
    with pytest.raises(ValueError):
        Degradation(links=((3, 3, 2.0, 2.0),))  # self-link
    with pytest.raises(ValueError):
        Degradation(burst_duty=1.5)


def test_config_validates_node_range():
    with pytest.raises(ValueError):
        MachineConfig(nprocs=4, degradation=Degradation(node_cpu=((7, 2.0),)))
    with pytest.raises(ValueError):
        MachineConfig(nprocs=4, degradation=Degradation(links=((0, 9, 2.0, 2.0),)))


def test_degrade_link_rejects_non_physical_link():
    cfg = MachineConfig()
    # (0, 5) is not a mesh link on the 4x4 mesh (nodes 0 and 5 are diagonal).
    with pytest.raises(ValueError):
        make_system("RCinv", cfg.replace(degradation=Degradation(links=((0, 5, 2.0, 2.0),))))


def test_factor_tables_are_dense():
    d = Degradation(node_cpu=((1, 2.0),), node_mem=((3, 4.0),))
    assert d.cpu_factors(4) == [1.0, 2.0, 1.0, 1.0]
    assert d.mem_factors(4) == [1.0, 1.0, 1.0, 4.0]


# ---------------------------------------------------------------------------
# registry surface


def test_registry_names_and_baseline():
    assert SCENARIO_NAMES[0] == "baseline"
    assert set(SCENARIO_NAMES) == {
        "baseline", "hotspot", "limping_nodes", "slow_links", "bursty", "heterogeneous",
    }
    cfg = MachineConfig()
    assert apply_scenario("baseline", cfg).degradation is None


@pytest.mark.parametrize("name", SCENARIO_NAMES)
def test_every_scenario_builds_a_valid_config(name):
    cfg = MachineConfig()
    scn_cfg = apply_scenario(name, cfg)  # MachineConfig.__post_init__ validates
    if name != "baseline":
        assert scn_cfg.degradation is not None
        assert not scn_cfg.degradation.is_neutral


@pytest.mark.parametrize("name", SCENARIO_NAMES)
def test_scenarios_are_deterministic(name):
    cfg = MachineConfig()
    assert apply_scenario(name, cfg) == apply_scenario(name, cfg)


def test_knob_overrides_and_rejection():
    cfg = MachineConfig()
    scn = apply_scenario("hotspot", cfg, {"hot_nodes": 3, "mem_factor": 8.0})
    assert scn.degradation.node_mem == ((0, 8.0), (5, 8.0), (10, 8.0))
    with pytest.raises(ValueError, match="no knob"):
        apply_scenario("hotspot", cfg, {"bogus": 1.0})
    with pytest.raises(ValueError, match="unknown scenario"):
        get_scenario("nope")


def test_parse_overrides():
    assert parse_overrides(["a=2", "b=0.5"]) == {"a": 2.0, "b": 0.5}
    with pytest.raises(ValueError):
        parse_overrides(["nonsense"])
    with pytest.raises(ValueError):
        parse_overrides(["a=abc"])


def test_scenarios_work_on_every_topology():
    for topology in ("mesh", "torus", "ring", "hypercube"):
        cfg = MachineConfig(topology=topology)
        scn_cfg = apply_scenario("slow_links", cfg)
        links = set(undirected_links(cfg))
        for u, v, _, _ in scn_cfg.degradation.links:
            assert (u, v) in links


# ---------------------------------------------------------------------------
# injector neutrality: all-1.0 factors bit-identical across the goldens


def test_neutral_degradation_touches_every_axis():
    cfg = MachineConfig()
    nd = neutral_degradation(cfg)
    assert nd.is_neutral
    assert nd.affects_cpu  # the engine branch runs
    assert len(nd.node_cpu) == cfg.nprocs
    assert len(nd.node_mem) == cfg.nprocs
    assert len(nd.links) == len(undirected_links(cfg))


@pytest.mark.parametrize("case_id", CASE_IDS)
def test_all_one_factors_bit_identical_to_goldens(case_id):
    app_name, system = case_id.split("/")
    factory, verify = golden_cases()[app_name]
    nprocs = GOLDEN["nprocs"]
    cfg = MachineConfig(nprocs=nprocs)
    neutral_cfg = cfg.replace(degradation=neutral_degradation(cfg))
    expected = GOLDEN["runs"][case_id]
    actual = run_case(factory, system, verify, config=neutral_cfg)

    assert actual["total_time"] == expected["total_time"]
    assert actual["ops"] == expected["ops"]
    for got, want in zip(actual["procs"], expected["procs"]):
        for field in PROC_FIELDS:
            assert got[field] == want[field], f"{case_id}: {field} diverged"
    assert actual["network_messages"] == expected["network_messages"]
    assert actual["network_bytes"] == expected["network_bytes"]
    assert actual["traffic"] == expected["traffic"]
    assert actual["memory"] == expected["memory"]


# ---------------------------------------------------------------------------
# direction: non-1.0 factors move the affected categories the right way


def _smoke_factory(app="Nbody"):
    from repro.apps.presets import smoke_scale

    return smoke_scale()[app][0]


def _one(config, system="RCinv", app="Nbody"):
    study = run_study(_smoke_factory(app), config=config, systems=(system,))
    return study.systems[0]


def test_cpu_degradation_strictly_increases_busy():
    cfg = MachineConfig()
    base = _one(cfg)
    limp = _one(apply_scenario("limping_nodes", cfg))
    assert limp.busy > base.busy
    assert limp.total_time > base.total_time


def test_heterogeneous_strictly_increases_busy():
    cfg = MachineConfig()
    base = _one(cfg)
    het = _one(apply_scenario("heterogeneous", cfg))
    assert het.busy > base.busy


def test_bursty_strictly_increases_busy():
    cfg = MachineConfig()
    base = _one(cfg)
    burst = _one(apply_scenario("bursty", cfg))
    assert burst.busy > base.busy


def test_hotspot_strictly_increases_read_stall():
    cfg = MachineConfig()
    base = _one(cfg)
    hot = _one(apply_scenario("hotspot", cfg, {"hot_nodes": 4, "mem_factor": 8.0}))
    assert hot.read_stall > base.read_stall


def test_slow_links_strictly_increase_read_stall_and_time():
    cfg = MachineConfig()
    base = _one(cfg)
    slow = _one(apply_scenario("slow_links", cfg))
    assert slow.read_stall > base.read_stall
    assert slow.total_time > base.total_time


def test_zmachine_unaffected_by_mem_and_link_degradation():
    """The z-machine is the ideal reference: hotspot/slow_links leave it
    untouched (it rides an IdealNetwork and models no directory cost)."""
    cfg = MachineConfig()
    base = _one(cfg, system="z-mc")
    for scenario in ("hotspot", "slow_links"):
        deg = _one(apply_scenario(scenario, cfg), system="z-mc")
        assert deg.total_time == base.total_time, scenario


def test_degraded_network_queues_behind_slow_link():
    """Back-to-back messages over a bandwidth-degraded link queue longer."""
    cfg = MachineConfig()
    links = undirected_links(cfg)
    u, v = links[0]
    slow_cfg = cfg.replace(degradation=Degradation(links=((u, v, 1.0, 10.0),)))
    fast = make_system("RCinv", cfg).network
    slow = make_system("RCinv", slow_cfg).network
    t_fast = [fast.transfer(u, v, 32, 0.0) for _ in range(3)]
    t_slow = [slow.transfer(u, v, 32, 0.0) for _ in range(3)]
    assert t_slow[0] > t_fast[0]          # serialisation tail is slower
    assert (t_slow[2] - t_slow[0]) > (t_fast[2] - t_fast[0])  # queueing grows


# ---------------------------------------------------------------------------
# knob edge cases: the corners of the fuzz draw space
#
# Factors of exactly 1.0, zero-width burst windows, and single-node /
# single-link selections must either be bit-identical to the clean
# machine (neutral knobs exercise the injection paths without perturbing
# results) or be rejected with a ValueError — never silently wrong.

EDGE_APP = AppFactory("IS", n_keys=128, nbuckets=16)


@pytest.fixture(scope="module")
def edge_baseline():
    return json.loads(json.dumps(
        run_case(EDGE_APP, "RCinv", True, config=MachineConfig(nprocs=4))
    ))


def _edge_run(scenario, overrides):
    cfg = apply_scenario(scenario, MachineConfig(nprocs=4), overrides)
    return json.loads(json.dumps(run_case(EDGE_APP, "RCinv", True, config=cfg)))


@pytest.mark.parametrize(
    "scenario,overrides",
    [
        ("hotspot", {"mem_factor": 1.0}),
        ("limping_nodes", {"cpu_factor": 1.0, "mem_factor": 1.0}),
        ("slow_links", {"latency_factor": 1.0, "bandwidth_factor": 1.0}),
        ("bursty", {"factor": 1.0}),
        ("heterogeneous", {"max_factor": 1.0}),
    ],
    ids=lambda v: v if isinstance(v, str) else "",
)
def test_unit_factors_bit_identical_to_baseline(scenario, overrides, edge_baseline):
    assert _edge_run(scenario, overrides) == edge_baseline


def test_zero_width_burst_window_bit_identical(edge_baseline):
    # duty=0.0 with a large factor: the burst window never opens, so the
    # burst schedule code runs but scales nothing.
    assert _edge_run("bursty", {"duty": 0.0, "factor": 4.0}) == edge_baseline


def test_full_duty_burst_is_valid_and_slower(edge_baseline):
    # duty=1.0 is the other inclusive endpoint: always bursting.
    slowed = _edge_run("bursty", {"duty": 1.0, "factor": 2.0})
    assert slowed["total_time"] > edge_baseline["total_time"]


def test_hotspot_single_node_selection():
    cfg = apply_scenario("hotspot", MachineConfig(nprocs=4), {"hot_nodes": 1})
    assert len(cfg.degradation.node_mem) == 1
    (node, factor), = cfg.degradation.node_mem
    assert 0 <= node < 4 and factor == 4.0
    run_case(EDGE_APP, "RCinv", True, config=cfg)  # runs and verifies


def test_slow_links_single_link_selection():
    cfg = apply_scenario("slow_links", MachineConfig(nprocs=4), {"n_links": 1})
    assert len(cfg.degradation.links) == 1
    run_case(EDGE_APP, "RCinv", True, config=cfg)


def test_slow_links_on_single_node_machine():
    # A one-node machine has no links: the selection is empty, the spec
    # is (vacuously) neutral, and the run still verifies.
    cfg = apply_scenario("slow_links", MachineConfig(nprocs=1))
    assert cfg.degradation.links == ()
    run_case(AppFactory("IS", n_keys=64, nbuckets=8), "RCinv", True, config=cfg)


def test_edge_knob_values_correctly_rejected():
    cfg = MachineConfig(nprocs=4)
    with pytest.raises(ValueError):
        apply_scenario("hotspot", cfg, {"mem_factor": 0.0})
    with pytest.raises(ValueError):
        apply_scenario("limping_nodes", cfg, {"cpu_factor": -1.0})
    with pytest.raises(ValueError):
        apply_scenario("bursty", cfg, {"duty": 1.5})
    with pytest.raises(ValueError):
        apply_scenario("slow_links", cfg, {"bandwidth_factor": 0.0})
    # period=0.0 is the documented off-switch, not an error
    off = apply_scenario("bursty", cfg, {"period": 0.0})
    assert off.degradation.is_neutral


# ---------------------------------------------------------------------------
# matrix + report


def test_scenario_matrix_report_shape():
    report = run_scenario_matrix(
        ["hotspot"], scale="smoke", apps=["IS"], systems=("z-mc", "RCinv"), jobs=1
    )
    assert report["bench"] == "scenario-degradation"
    assert set(report["scenarios"]) == {"baseline", "hotspot"}
    entry = report["scenarios"]["hotspot"]["apps"]["IS"]["systems"]["RCinv"]
    assert entry["total_time"] > 0
    assert "slowdown_vs_z" in entry
    assert "vs_baseline" in entry
    assert report["scenarios"]["hotspot"]["knobs"] == {"hot_nodes": 1, "mem_factor": 4.0}
    base_entry = report["scenarios"]["baseline"]["apps"]["IS"]["systems"]["RCinv"]
    assert "vs_baseline" not in base_entry
    assert report["manifest"]["kind"] == "scenario-matrix"


def test_report_builds_without_zmachine():
    report = run_scenario_matrix(
        ["bursty"], scale="smoke", apps=["IS"], systems=("RCinv",), jobs=1
    )
    entry = report["scenarios"]["bursty"]["apps"]["IS"]["systems"]["RCinv"]
    assert "slowdown_vs_z" not in entry
    assert entry["vs_baseline"]["slowdown"] > 0


def test_build_report_is_pure():
    """build_report over hand-made runs — no simulation needed."""
    from repro.core.parallel import JobResult
    from repro.sim.stats import SimResult, ProcStats

    def fake(total):
        procs = [ProcStats() for _ in range(2)]
        procs[0].busy = total / 2
        return JobResult(system="RCinv", result=SimResult(total_time=total, procs=procs), app="IS")

    index = [("baseline", "IS", "RCinv"), ("bursty", "IS", "RCinv")]
    results = [fake(100.0), fake(150.0)]
    report = build_report(
        index, results, {"baseline": {}, "bursty": {"period": 10.0}},
        scale="smoke", nprocs=2, systems=["RCinv"],
    )
    entry = report["scenarios"]["bursty"]["apps"]["IS"]["systems"]["RCinv"]
    assert entry["vs_baseline"]["slowdown"] == 1.5


# ---------------------------------------------------------------------------
# CLI surface


def test_cli_scenario_list_and_describe(capsys):
    from repro.__main__ import main

    assert main(["scenario", "list"]) == 0
    out = capsys.readouterr().out
    for name in SCENARIO_NAMES:
        assert name in out
    assert main(["scenario", "describe", "limping_nodes"]) == 0
    out = capsys.readouterr().out
    for knob in SCENARIO_REGISTRY["limping_nodes"].knobs:
        assert knob.name in out


def test_cli_scenario_run_smoke(tmp_path, capsys):
    from repro.__main__ import main

    out = tmp_path / "report.json"
    rc = main([
        "scenario", "run", "--scenario", "hotspot", "--app", "IS", "--smoke",
        "--systems", "z-mc", "RCinv", "--no-cache", "--out", str(out),
    ])
    assert rc == 0
    report = json.loads(out.read_text())
    assert set(report["scenarios"]) == {"baseline", "hotspot"}
    assert capsys.readouterr().out  # the text table was printed


def test_cli_scenario_run_rejects_unknowns():
    from repro.__main__ import main

    with pytest.raises(SystemExit):
        main(["scenario", "run", "--scenario", "nope", "--smoke", "--no-cache"])
    with pytest.raises(SystemExit):
        main(["scenario", "run", "--scenario", "hotspot", "--set", "bogus=2",
              "--smoke", "--no-cache"])
