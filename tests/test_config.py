"""MachineConfig validation and derived quantities."""

import pytest

from repro.config import DEFAULT_CONFIG, MachineConfig, _mesh_dims


class TestDefaults:
    def test_paper_defaults(self):
        cfg = MachineConfig()
        assert cfg.nprocs == 16
        assert cfg.line_size == 32
        assert cfg.z_line_size == 4
        assert cfg.cycles_per_byte == pytest.approx(1.6)
        assert cfg.store_buffer_entries == 4
        assert cfg.merge_buffer_lines == 1
        assert cfg.cache_lines is None  # infinite caches

    def test_default_config_is_shared_instance(self):
        assert DEFAULT_CONFIG.nprocs == 16

    def test_words_per_line(self):
        assert MachineConfig().words_per_line == 8
        assert MachineConfig(line_size=16).words_per_line == 4


class TestValidation:
    @pytest.mark.parametrize("bad", [0, -1, -16])
    def test_nprocs_positive(self, bad):
        with pytest.raises(ValueError):
            MachineConfig(nprocs=bad)

    def test_line_size_multiple_of_word(self):
        with pytest.raises(ValueError):
            MachineConfig(line_size=30)

    def test_z_line_size_multiple_of_word(self):
        with pytest.raises(ValueError):
            MachineConfig(z_line_size=3)

    def test_store_buffer_min(self):
        with pytest.raises(ValueError):
            MachineConfig(store_buffer_entries=0)

    def test_merge_buffer_min(self):
        with pytest.raises(ValueError):
            MachineConfig(merge_buffer_lines=0)

    def test_cache_lines_positive_or_none(self):
        with pytest.raises(ValueError):
            MachineConfig(cache_lines=0)
        assert MachineConfig(cache_lines=64).cache_lines == 64

    def test_threshold_positive(self):
        with pytest.raises(ValueError):
            MachineConfig(competitive_threshold=0)

    def test_cycles_per_byte_positive(self):
        with pytest.raises(ValueError):
            MachineConfig(cycles_per_byte=0.0)


class TestMeshDims:
    @pytest.mark.parametrize(
        "n,expect",
        [(1, (1, 1)), (2, (1, 2)), (4, (2, 2)), (6, (2, 3)), (8, (2, 4)),
         (12, (3, 4)), (16, (4, 4)), (15, (3, 5)), (7, (1, 7)), (36, (6, 6))],
    )
    def test_most_square_factorisation(self, n, expect):
        assert _mesh_dims(n) == expect

    def test_mesh_dims_property(self):
        assert MachineConfig(nprocs=16).mesh_dims == (4, 4)

    def test_mesh_dims_rejects_zero(self):
        with pytest.raises(ValueError):
            _mesh_dims(0)


class TestHelpers:
    def test_replace_returns_new_config(self):
        cfg = MachineConfig()
        cfg2 = cfg.replace(nprocs=8)
        assert cfg.nprocs == 16
        assert cfg2.nprocs == 8
        assert cfg2.line_size == cfg.line_size

    def test_replace_validates(self):
        with pytest.raises(ValueError):
            MachineConfig().replace(nprocs=-1)

    def test_frozen(self):
        cfg = MachineConfig()
        with pytest.raises(AttributeError):
            cfg.nprocs = 8  # type: ignore[misc]

    def test_home_node_interleaving(self):
        cfg = MachineConfig(nprocs=4)
        assert [cfg.home_node(b) for b in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_block_of_default_line(self):
        cfg = MachineConfig()
        assert cfg.block_of(0) == 0
        assert cfg.block_of(31) == 0
        assert cfg.block_of(32) == 1

    def test_block_of_explicit_line(self):
        cfg = MachineConfig()
        assert cfg.block_of(7, line_size=4) == 1
