"""Unit + conformance tests for the plain-heapq reference engine.

:class:`repro.sim.reference.ReferenceEngine` is the differential oracle
``repro fuzz`` cross-checks the wheel engine against, so it carries the
same bit-identity contract the production engine does: it must replay
the golden fixture exactly, agree with the wheel engine on configs the
fixture does not cover (odd processor counts, degradation scenarios),
and expose the same scheduling surface (spawn validation, wake
accounting, op budget, deadlock detection).
"""

from __future__ import annotations

import json

import pytest

from repro.apps.factory import AppFactory
from repro.config import MachineConfig
from repro.runtime.context import Machine
from repro.scenarios import apply_scenario
from repro.sim.engine import DeadlockError
from repro.sim.events import Acquire, BarrierWait, Compute
from repro.sim.reference import (
    ENGINES,
    PROC_FIELDS,
    ReferenceEngine,
    run_case,
    use_reference_engine,
)
from tests.golden import FIXTURE, golden_cases

GOLDEN = json.loads(FIXTURE.read_text())
CASE_IDS = sorted(GOLDEN["runs"])


# ---------------------------------------------------------------------------
# golden conformance: the reference engine replays the fixture bit-for-bit


@pytest.fixture(scope="module")
def cases():
    return golden_cases()


@pytest.mark.parametrize("case_id", CASE_IDS)
def test_reference_engine_bit_identical_to_fixture(case_id, cases):
    app_name, system = case_id.split("/")
    factory, verify = cases[app_name]
    expected = GOLDEN["runs"][case_id]
    actual = run_case(
        factory, system, verify, nprocs=GOLDEN["nprocs"], engine="reference"
    )
    assert actual["total_time"] == expected["total_time"], "total_time diverged"
    assert actual["ops"] == expected["ops"], "op count diverged"
    for proc, (got, want) in enumerate(zip(actual["procs"], expected["procs"])):
        for field in PROC_FIELDS:
            assert got[field] == want[field], (
                f"proc {proc} field {field}: {got[field]!r} != {want[field]!r}"
            )
    assert actual["network_messages"] == expected["network_messages"]
    assert actual["network_bytes"] == expected["network_bytes"]
    assert actual["traffic"] == expected["traffic"]
    assert actual["memory"] == expected["memory"], "shared-memory image diverged"


# ---------------------------------------------------------------------------
# wheel-vs-reference differential beyond the fixture's draw point


@pytest.mark.parametrize(
    "app,kwargs,system,nprocs,scenario",
    [
        ("IS", {"n_keys": 128, "nbuckets": 16}, "RCupd", 3, "bursty"),
        ("Maxflow", {"n": 12, "extra_edges": 18, "seed": 1}, "SCinv", 6, "hotspot"),
        ("Cholesky", {"grid": (4, 4)}, "RCadapt", 5, "slow_links"),
        ("RacyDemo", {}, "RCinv", 2, "heterogeneous"),
    ],
    ids=lambda v: str(v) if isinstance(v, (str, int)) else "",
)
def test_wheel_and_reference_agree_off_fixture(app, kwargs, system, nprocs, scenario):
    config = apply_scenario(scenario, MachineConfig(nprocs=nprocs))
    factory = AppFactory(app, **kwargs)
    verify = app != "RacyDemo"
    wheel = run_case(factory, system, verify, config=config, engine="wheel")
    ref = run_case(factory, system, verify, config=config, engine="reference")
    assert json.loads(json.dumps(wheel)) == json.loads(json.dumps(ref))


# ---------------------------------------------------------------------------
# scheduling surface


def _machine(nprocs=2, system="RCinv"):
    return Machine(MachineConfig(nprocs=nprocs), system)


def test_use_reference_engine_swaps_and_rebinds():
    machine = _machine()
    original = machine.engine
    ref = use_reference_engine(machine)
    assert machine.engine is ref
    assert isinstance(ref, ReferenceEngine)
    assert ref.memsys is original.memsys
    assert ref.syncmgr is original.syncmgr
    # the sync manager now wakes the reference engine, not the old one
    assert machine.sync._engine is ref


def test_run_case_rejects_unknown_engine():
    with pytest.raises(ValueError, match="unknown engine"):
        run_case(AppFactory("RacyDemo"), "RCinv", False, engine="warp")
    assert set(ENGINES) == {"wheel", "reference"}


def test_spawn_validation():
    ref = use_reference_engine(_machine())

    def gen():
        yield Compute(1.0)

    ref.spawn(0, gen())
    with pytest.raises(ValueError, match="already spawned"):
        ref.spawn(0, gen())
    with pytest.raises(ValueError, match="outside processor range"):
        ref.spawn(7, gen())


def test_wake_requires_blocked_thread():
    ref = use_reference_engine(_machine())

    def gen():
        yield Compute(1.0)

    ref.spawn(0, gen())
    with pytest.raises(RuntimeError, match="non-blocked"):
        ref.wake(0, 5.0)


def test_profiler_is_rejected():
    ref = use_reference_engine(_machine())
    ref.profiler = object()
    with pytest.raises(RuntimeError, match="does not support host self-profiling"):
        ref.run()


def test_deadlock_detection():
    machine = _machine(nprocs=2)
    use_reference_engine(machine)
    lock = machine.sync.new_lock("jam")

    def worker(ctx):
        # Non-reentrant lock acquired twice: blocks forever.
        yield Acquire(lock)
        yield Acquire(lock)

    with pytest.raises(DeadlockError, match="deadlocked"):
        machine.run(worker)


def test_op_budget_enforced():
    machine = Machine(MachineConfig(nprocs=1), "RCinv", max_ops=5)
    use_reference_engine(machine)

    def worker(ctx):
        while True:
            yield Compute(1.0)

    with pytest.raises(RuntimeError, match="operation budget exceeded"):
        machine.run(worker)


def test_feedback_is_thread_clock():
    machine = Machine(MachineConfig(nprocs=1), "RCinv")
    use_reference_engine(machine)
    seen = []

    def worker(ctx):
        t1 = yield Compute(10.0)
        seen.append(t1)
        t2 = yield Compute(2.5)
        seen.append(t2)

    machine.run(worker)
    assert seen == [10.0, 12.5]


def test_barrier_wake_accounts_sync_wait():
    machine = _machine(nprocs=2)
    use_reference_engine(machine)
    barrier = machine.sync.new_barrier()

    def worker(ctx):
        if ctx.pid == 0:
            yield Compute(100.0)
        yield BarrierWait(barrier)

    result = machine.run(worker)
    # proc 1 reached the barrier early and waited for proc 0
    assert result.procs[1].sync_wait > 0.0
    assert result.procs[0].barriers == 1
    assert result.procs[1].barriers == 1


def test_observer_neutrality_on_reference_engine():
    """Attaching metrics must not perturb reference-engine results."""
    from repro.obs.metrics import MetricsCollector

    factory = AppFactory("IS", n_keys=128, nbuckets=16)
    bare = run_case(factory, "RCinv", True, nprocs=4, engine="reference")

    app = factory()
    machine = Machine(MachineConfig(nprocs=4), "RCinv")
    use_reference_engine(machine)
    app.setup(machine)
    MetricsCollector.attach(machine)
    result = machine.run(app.worker)
    app.verify()
    from repro.sim.reference import capture_outcome

    observed = capture_outcome(machine, result)
    assert json.loads(json.dumps(bare)) == json.loads(json.dumps(observed))
