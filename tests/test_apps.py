"""The four applications: correctness on every memory system.

Every run executes the real algorithm through the simulator and is
verified against an independent reference (numpy Cholesky, stable
ranks, sequential Barnes-Hut, networkx max-flow).
"""

import numpy as np
import pytest

from repro.config import MachineConfig
from repro.apps import BarnesHut, Cholesky, IntegerSort, Maxflow
from repro.apps.base import run_on
from repro.apps.intsort import bucket_stable_ranks
from repro.workloads.graphs import reference_max_flow
from repro.workloads.matrices import random_spd

PAPER_SYSTEMS = ["z-mc", "RCinv", "RCupd", "RCadapt", "RCcomp"]

CFG = MachineConfig(nprocs=4)


class TestIntegerSort:
    @pytest.mark.parametrize("system", PAPER_SYSTEMS)
    def test_correct_on_every_system(self, system):
        run_on(IntegerSort(n_keys=256, nbuckets=16), system, CFG)

    def test_correct_on_sc(self):
        run_on(IntegerSort(n_keys=256, nbuckets=16), "SCinv", CFG)

    @pytest.mark.parametrize("nprocs", [1, 2, 3, 5, 8])
    def test_odd_processor_counts(self, nprocs):
        run_on(IntegerSort(n_keys=100, nbuckets=8), "RCinv", MachineConfig(nprocs=nprocs))

    def test_keys_exceeding_buckets(self):
        run_on(IntegerSort(n_keys=200, nbuckets=8, max_key=64), "RCinv", CFG)

    def test_more_procs_than_convenient_split(self):
        run_on(IntegerSort(n_keys=10, nbuckets=4), "RCinv", MachineConfig(nprocs=8))

    def test_bucket_stable_ranks_reference(self):
        keys = np.array([3, 1, 3, 0, 1])
        ranks = bucket_stable_ranks(keys, 4, 4)
        assert ranks.tolist() == [3, 1, 4, 0, 2]

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            IntegerSort(n_keys=0)
        with pytest.raises(ValueError):
            IntegerSort(n_keys=10, nbuckets=16, max_key=8)

    def test_verification_catches_corruption(self):
        app = IntegerSort(n_keys=64, nbuckets=8)
        run_on(app, "RCinv", CFG)
        app.ranks.poke(0, 99999)
        with pytest.raises(AssertionError):
            app.verify()


class TestCholesky:
    @pytest.mark.parametrize("system", PAPER_SYSTEMS)
    def test_correct_on_every_system(self, system):
        run_on(Cholesky(grid=(4, 4)), system, CFG)

    @pytest.mark.parametrize("grid", [(2, 2), (3, 5), (6, 6)])
    def test_grid_shapes(self, grid):
        run_on(Cholesky(grid=grid), "RCinv", CFG)

    def test_random_spd_matrix(self):
        run_on(Cholesky(matrix=random_spd(24, density=0.15, seed=4)), "RCupd", CFG)

    def test_single_processor(self):
        run_on(Cholesky(grid=(4, 4)), "RCinv", MachineConfig(nprocs=1))

    def test_factor_matches_numpy(self):
        app = Cholesky(grid=(5, 5))
        run_on(app, "RCadapt", CFG)
        want = np.linalg.cholesky(app.a.dense())
        assert np.allclose(app.computed_factor(), want, atol=1e-8)

    def test_verification_catches_corruption(self):
        app = Cholesky(grid=(3, 3))
        run_on(app, "RCinv", CFG)
        app.lvals.poke(0, 1e9)
        with pytest.raises(AssertionError):
            app.verify()


class TestBarnesHut:
    @pytest.mark.parametrize("system", PAPER_SYSTEMS)
    def test_correct_on_every_system(self, system):
        run_on(BarnesHut(n_bodies=16, steps=2), system, CFG)

    def test_rotation_epochs(self):
        # 6 steps with rotation every 2: three different assignments
        run_on(BarnesHut(n_bodies=16, steps=6, boost_interval=2), "RCinv", CFG)

    def test_no_boost(self):
        run_on(BarnesHut(n_bodies=12, steps=3, boost_interval=0), "RCupd", CFG)

    def test_bodies_not_divisible_by_procs(self):
        run_on(BarnesHut(n_bodies=13, steps=2), "RCinv", CFG)

    def test_single_step(self):
        run_on(BarnesHut(n_bodies=8, steps=1), "RCcomp", CFG)

    def test_verification_catches_corruption(self):
        app = BarnesHut(n_bodies=8, steps=1)
        run_on(app, "RCinv", CFG)
        app.px.poke(0, 1e9)
        with pytest.raises(AssertionError):
            app.verify()


class TestMaxflow:
    @pytest.mark.parametrize("system", PAPER_SYSTEMS)
    def test_correct_on_every_system(self, system):
        run_on(Maxflow(n=12, extra_edges=18, seed=1), system, CFG)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_graphs(self, seed):
        app = Maxflow(n=14, extra_edges=20, seed=seed)
        run_on(app, "RCinv", CFG)
        assert app.flow_value() == reference_max_flow(app.net)

    def test_single_processor(self):
        run_on(Maxflow(n=10, extra_edges=12, seed=2), "RCinv", MachineConfig(nprocs=1))

    def test_flow_conservation_everywhere(self):
        app = Maxflow(n=16, extra_edges=24, seed=5)
        run_on(app, "RCupd", CFG)
        net = app.net
        for v in range(net.n):
            inflow = sum(app.flow.peek(int(e)) for e in net.adj[v])
            if v == net.source:
                assert inflow > 0 or app.flow_value() == 0
            elif v == net.sink:
                assert inflow == -app.flow_value()

    def test_backbone_only_graph(self):
        run_on(Maxflow(n=8, extra_edges=0, seed=3), "RCinv", CFG)

    def test_verification_catches_corruption(self):
        app = Maxflow(n=10, extra_edges=12, seed=1)
        run_on(app, "RCinv", CFG)
        app.excess.poke(app.net.sink, 10**9)
        with pytest.raises(AssertionError):
            app.verify()
