"""End-to-end integration: the paper's pipeline at reduced scale.

These tests run the complete methodology — all four applications on all
five systems — and assert the paper's headline results hold:

1. z-machine overhead ~0% everywhere (PRAM equivalence),
2. the per-system overhead orderings and component signatures.
"""

import pytest

from repro import MachineConfig, run_study
from repro.analysis import standard_claims
from repro.apps import BarnesHut, Cholesky, IntegerSort, Maxflow

CFG = MachineConfig(nprocs=8)

FACTORIES = {
    "Cholesky": (lambda: Cholesky(grid=(6, 6)), False),
    "IS": (lambda: IntegerSort(n_keys=512, nbuckets=32), False),
    "Maxflow": (lambda: Maxflow(n=24, extra_edges=40, seed=1), True),
    "Nbody": (lambda: BarnesHut(n_bodies=48, steps=4, boost_interval=2), True),
}


@pytest.fixture(scope="module", params=list(FACTORIES))
def study(request):
    factory, reuse = FACTORIES[request.param]
    return run_study(factory, CFG), reuse


class TestHeadlineResult:
    def test_zmachine_overhead_near_zero(self, study):
        st, _ = study
        assert st.zmachine.overhead_pct < 1.0, (
            f"{st.app_name}: z-machine overhead {st.zmachine.overhead_pct:.2f}%"
        )

    def test_zmachine_no_write_stall_or_flush(self, study):
        st, _ = study
        z = st.zmachine
        assert z.write_stall == 0.0
        assert z.buffer_flush == 0.0

    def test_real_systems_slower_than_ideal(self, study):
        st, _ = study
        z = st.zmachine.total_time
        for s in st.systems:
            if s.system != "z-mc":
                assert s.total_time > z

    def test_every_system_has_overhead(self, study):
        st, _ = study
        for s in st.systems:
            if s.system != "z-mc":
                assert s.overhead > 0


class TestComponentSignatures:
    def test_rcinv_read_stall_dominant(self, study):
        st, _ = study
        s = st.by_system("RCinv")
        assert s.read_stall >= s.write_stall
        assert s.read_stall >= s.buffer_flush

    def test_rcinv_read_stall_highest_of_all(self, study):
        st, _ = study
        rs_inv = st.by_system("RCinv").read_stall
        for name in ("RCupd", "RCcomp"):
            assert rs_inv >= st.by_system(name).read_stall * 0.9

    def test_update_systems_flush_more(self, study):
        st, _ = study
        bf_inv = st.by_system("RCinv").buffer_flush
        bf_upd = st.by_system("RCupd").buffer_flush
        total = st.by_system("RCinv").total_time
        assert bf_upd >= bf_inv - 0.02 * total

    def test_reuse_gap(self, study):
        st, reuse = study
        rs_inv = st.by_system("RCinv").read_stall
        rs_upd = st.by_system("RCupd").read_stall
        if reuse:
            assert rs_inv > 1.4 * rs_upd, (
                f"{st.app_name}: expected reuse gap, got {rs_inv:.0f} vs {rs_upd:.0f}"
            )


class TestClaimChecker:
    def test_all_standard_claims_pass(self, study):
        st, reuse = study
        failed = [c for c in standard_claims(st, expect_reuse=reuse) if not c.holds]
        assert not failed, "\n".join(f"{c.claim}: {c.detail}" for c in failed)
