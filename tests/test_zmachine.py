"""The z-machine model: oracle producer, counter-delayed reads."""

import pytest

from repro.config import MachineConfig
from repro.mem.systems.zmachine import ZMachine


@pytest.fixture
def z():
    return ZMachine(MachineConfig(nprocs=4))


L = 6.4  # 4 bytes * 1.6 cycles/byte


class TestWrites:
    def test_producer_never_stalls(self, z):
        res = z.write(0, 0, now=100.0)
        assert res.time == pytest.approx(100.0 + 1.0)
        assert res.write_stall == 0.0
        assert res.buffer_flush == 0.0

    def test_write_schedules_propagation(self, z):
        z.write(0, 0, now=100.0)
        entry = z.directory.peek(0)
        assert entry.avail_time == pytest.approx(100.0 + L)
        assert entry.last_writer == 0

    def test_overlapping_writes_extend_deadline(self, z):
        z.write(0, 0, now=100.0)
        z.write(1, 0, now=102.0)
        assert z.directory.peek(0).avail_time == pytest.approx(102.0 + L)

    def test_write_counts(self, z):
        z.write(0, 0, 0.0)
        z.write(0, 4, 0.0)
        assert z.shared_writes == 2
        assert z.directory.peek(0).write_count == 1
        assert z.directory.peek(1).write_count == 1

    def test_network_cycles_accumulate(self, z):
        z.write(0, 0, 0.0)
        z.write(0, 4, 0.0)
        assert z.network_cycles == pytest.approx(2 * L)


class TestReads:
    def test_early_consumer_pays_inherent_cost(self, z):
        z.write(1, 0, now=100.0)
        res = z.read(0, 0, now=102.0)
        assert res.read_stall == pytest.approx(100.0 + L - 102.0)
        assert not res.hit

    def test_late_consumer_free(self, z):
        z.write(1, 0, now=100.0)
        res = z.read(0, 0, now=200.0)
        assert res.read_stall == 0.0
        assert res.hit

    def test_stall_bounded_by_L(self, z):
        z.write(1, 0, now=100.0)
        res = z.read(0, 0, now=100.0)
        assert res.read_stall <= L + 1e-9

    def test_producer_reads_own_write_immediately(self, z):
        z.write(1, 0, now=100.0)
        res = z.read(1, 0, now=101.0)
        assert res.read_stall == 0.0

    def test_cold_read_free(self, z):
        res = z.read(0, 1234, now=5.0)
        assert res.read_stall == 0.0

    def test_word_granularity(self, z):
        """4-byte lines: writing word 0 never delays reads of word 1."""
        z.write(1, 0, now=100.0)
        res = z.read(0, 4, now=101.0)
        assert res.read_stall == 0.0

    def test_stalled_reads_counted(self, z):
        z.write(1, 0, now=100.0)
        z.read(0, 0, now=101.0)
        z.read(0, 0, now=200.0)
        assert z.stalled_reads == 1


class TestSyncSemantics:
    def test_release_is_free(self, z):
        res = z.release(0, now=50.0)
        assert res.time == 50.0
        assert res.buffer_flush == 0.0

    def test_acquire_is_free(self, z):
        assert z.acquire(0, now=50.0).time == 50.0


class TestTraffic:
    def test_summary_keys(self, z):
        z.write(0, 0, 0.0)
        s = z.traffic_summary()
        assert s["shared_writes"] == 1
        assert s["network_cycles"] == pytest.approx(L)
        assert s["contention_cycles"] == 0.0

    def test_latency_uses_z_line_size(self):
        cfg = MachineConfig(nprocs=4, z_line_size=8)
        z = ZMachine(cfg)
        assert z.latency == pytest.approx(8 * 1.6)

    def test_rejects_non_ideal_network(self):
        from repro.mem.systems import make_system
        from repro.network.routed import RoutedNetwork
        from repro.network.topology import Mesh2D

        with pytest.raises(ValueError):
            make_system(
                "z-mc",
                MachineConfig(nprocs=4),
                RoutedNetwork(Mesh2D(2, 2), 1.6),
            )
