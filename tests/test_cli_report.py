"""CLI entry point and machine-readable exports."""

import csv
import io
import json

import pytest

from repro import MachineConfig, run_study, table1_row
from repro.__main__ import build_parser, main
from repro.analysis.report import (
    STUDY_FIELDS,
    studies_to_csv,
    studies_to_json,
    study_rows,
    table1_to_csv,
)
from repro.apps import IntegerSort


@pytest.fixture(scope="module")
def study():
    return run_study(
        lambda: IntegerSort(n_keys=256, nbuckets=16), MachineConfig(nprocs=4)
    )


class TestReportExports:
    def test_study_rows_fields(self, study):
        rows = study_rows(study)
        assert len(rows) == 5
        for row in rows:
            assert set(row) == set(STUDY_FIELDS)
            assert row["app"] == "IS"

    def test_csv_round_trip(self, study):
        text = studies_to_csv([study])
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert len(parsed) == 5
        assert parsed[0]["system"] == "z-mc"
        assert float(parsed[0]["overhead_pct"]) < 1.0

    def test_json_round_trip(self, study):
        doc = json.loads(studies_to_json([study]))
        assert len(doc) == 1
        assert doc[0]["app"] == "IS"
        assert doc[0]["config"]["nprocs"] == 4
        assert len(doc[0]["systems"]) == 5

    def test_table1_csv(self):
        row = table1_row(
            lambda: IntegerSort(n_keys=256, nbuckets=16), MachineConfig(nprocs=4)
        )
        text = table1_to_csv([row])
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert parsed[0]["app"] == "IS"
        assert int(parsed[0]["shared_writes"]) > 0


class TestCLI:
    def test_systems_command(self, capsys):
        assert main(["systems"]) == 0
        out = capsys.readouterr().out
        assert "RCinv" in out and "Cholesky" in out

    def test_study_text(self, capsys):
        rc = main(["--nprocs", "4", "study", "--app", "IS", "--systems", "z-mc", "RCinv"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "RCinv" in out and "ovh%" in out

    def test_study_json(self, capsys):
        rc = main([
            "--nprocs", "4", "study", "--app", "IS",
            "--systems", "z-mc", "--format", "json",
        ])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc[0]["systems"][0]["system"] == "z-mc"

    def test_study_unknown_app(self):
        with pytest.raises(SystemExit):
            main(["study", "--app", "LINPACK"])

    def test_study_unknown_system(self):
        with pytest.raises(SystemExit):
            main(["study", "--app", "IS", "--systems", "MESI"])

    def test_fig1(self, capsys):
        assert main(["--nprocs", "4", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "inherent" in out and "overhead" in out

    def test_table1_csv_format(self, capsys):
        rc = main(["--nprocs", "4", "table1", "--app", "IS", "--format", "csv"])
        assert rc == 0
        assert capsys.readouterr().out.startswith("app,")

    def test_claims_exit_code(self, capsys):
        rc = main(["--nprocs", "4", "claims", "--app", "IS"])
        assert rc == 0
        assert "PASS" in capsys.readouterr().out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
