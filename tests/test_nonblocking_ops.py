"""ReadNB / Stall engine operations and the feedback protocol."""

import pytest

from repro.config import MachineConfig
from repro.runtime import Machine
from repro.sim.events import Compute, ReadNB, Stall, STALL_CATEGORIES


class TestReadNB:
    def test_clock_advances_by_issue_cost_only(self):
        machine = Machine(MachineConfig(nprocs=1), "RCinv")
        arr = machine.shm.array(8, "a")
        feedback = []

        def worker(ctx):
            fb = yield ReadNB(arr.addr(0))
            feedback.append(fb)

        res = machine.run(worker)
        (now, access) = feedback[0]
        assert now == pytest.approx(machine.config.cache_hit_cycles)
        assert access.time > now  # data arrives later (it was a cold miss)
        assert res.procs[0].read_stall == 0.0
        assert res.procs[0].read_misses == 1

    def test_hit_data_ready_immediately(self):
        machine = Machine(MachineConfig(nprocs=1), "RCinv")
        arr = machine.shm.array(8, "a")
        feedback = []

        def worker(ctx):
            yield ReadNB(arr.addr(0))  # miss, warms the cache
            yield Compute(100000)
            fb = yield ReadNB(arr.addr(0))
            feedback.append(fb)

        machine.run(worker)
        now, access = feedback[0]
        assert access.hit
        assert access.time <= now + machine.config.cache_hit_cycles

    def test_feedback_after_ordinary_ops(self):
        # Ordinary ops feed the thread's clock back as a bare float
        # (only ReadNB carries a (time, AccessResult) tuple).
        machine = Machine(MachineConfig(nprocs=1), "RCinv")
        feedback = []

        def worker(ctx):
            fb = yield Compute(25)
            feedback.append(fb)

        machine.run(worker)
        assert feedback[0] == pytest.approx(25.0)


class TestStall:
    @pytest.mark.parametrize("category,attr", [
        ("read", "read_stall"),
        ("write", "write_stall"),
        ("flush", "buffer_flush"),
        ("sync", "sync_wait"),
    ])
    def test_categories_charged(self, category, attr):
        machine = Machine(MachineConfig(nprocs=1), "RCinv")

        def worker(ctx):
            yield Stall(42.0, category)

        res = machine.run(worker)
        assert getattr(res.procs[0], attr) == pytest.approx(42.0)
        assert res.total_time == pytest.approx(42.0)

    def test_invalid_category(self):
        with pytest.raises(ValueError):
            Stall(1.0, "banana")

    def test_negative_cycles(self):
        with pytest.raises(ValueError):
            Stall(-1.0)

    def test_categories_constant(self):
        assert set(STALL_CATEGORIES) == {"read", "write", "flush", "sync"}
