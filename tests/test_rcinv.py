"""RCinv: write-invalidate protocol under release consistency."""

import pytest

from repro.config import MachineConfig
from repro.mem.cache import OWNED
from repro.mem.systems import default_network
from repro.mem.systems.rcinv import RCInv


def make(nprocs=4, **kw):
    cfg = MachineConfig(nprocs=nprocs, **kw)
    return RCInv(cfg, default_network(cfg)), cfg


class TestReads:
    def test_cold_miss_pays_fetch(self):
        m, cfg = make()
        res = m.read(0, 64, 0.0)
        assert not res.hit
        assert res.read_stall > 0
        assert res.time > cfg.cache_hit_cycles

    def test_second_read_hits(self):
        m, cfg = make()
        m.read(0, 64, 0.0)
        res = m.read(0, 64, 1000.0)
        assert res.hit
        assert res.read_stall == 0.0

    def test_same_line_hits(self):
        m, _ = make()
        m.read(0, 64, 0.0)
        res = m.read(0, 68, 1000.0)  # same 32B line
        assert res.hit

    def test_miss_registers_sharer(self):
        m, _ = make()
        m.read(2, 64, 0.0)
        assert m.directory.entry(64 // 32).is_sharer(2)

    def test_read_forwards_from_store_buffer(self):
        m, _ = make()
        m.write(0, 64, 0.0)  # pending in store buffer
        res = m.read(0, 64, 1.0)
        assert res.hit


class TestWrites:
    def test_write_miss_buffered_not_stalled(self):
        m, _ = make()
        res = m.write(0, 64, 0.0)
        assert res.write_stall == 0.0  # buffer has room

    def test_write_grants_ownership(self):
        m, _ = make()
        m.write(0, 64, 0.0)
        entry = m.directory.entry(2)
        assert entry.owner == 0
        line = m.caches[0].peek(2)
        assert line is not None and line.state == OWNED

    def test_owned_hit_completes_locally(self):
        m, cfg = make()
        m.write(0, 64, 0.0)
        res = m.write(0, 64, 5000.0)
        assert res.hit
        assert res.time == pytest.approx(5000.0 + cfg.cache_hit_cycles)

    def test_store_buffer_fills_and_stalls(self):
        m, _ = make(store_buffer_entries=1)
        m.write(0, 0, 0.0)
        m.write(0, 32, 0.0)
        res = m.write(0, 64, 0.0)
        assert res.write_stall > 0

    def test_write_invalidates_sharers(self):
        m, _ = make()
        m.read(1, 64, 0.0)  # proc 1 caches the line
        m.write(0, 64, 1000.0)
        # proc 1's copy must be gone once the invalidation arrives
        assert m.caches[1].lookup(2, 5000.0) is None

    def test_invalidated_sharer_misses_again(self):
        m, _ = make()
        m.read(1, 64, 0.0)
        m.write(0, 64, 1000.0)
        res = m.read(1, 64, 5000.0)
        assert not res.hit

    def test_sharer_hit_before_invalidation_arrival(self):
        m, _ = make()
        m.read(1, 64, 0.0)
        m.write(0, 64, 1000.0)
        res = m.read(1, 64, 1000.5)  # invalidation still in flight
        assert res.hit

    def test_coalesce_pending_ownership(self):
        m, _ = make()
        m.write(0, 64, 0.0)
        res = m.write(0, 68, 0.5)  # same line, ownership pending
        assert res.hit

    def test_dirty_remote_fetch_goes_through_owner(self):
        m, _ = make()
        m.write(0, 64, 0.0)
        m.release(0, 0.0)
        before = m.network.stats.messages
        res = m.read(1, 64, 10000.0)
        assert not res.hit
        # request -> home -> owner -> reply = at least 3 messages
        assert m.network.stats.messages - before >= 3


class TestRelease:
    def test_release_drains_buffer(self):
        m, _ = make()
        m.write(0, 0, 0.0)
        res = m.release(0, 1.0)
        assert res.buffer_flush > 0

    def test_release_when_empty_is_free(self):
        m, _ = make()
        res = m.release(0, 100.0)
        assert res.buffer_flush == 0.0
        assert res.time == 100.0

    def test_release_waits_for_invalidation_acks(self):
        m, _ = make()
        for p in range(1, 4):
            m.read(p, 64, 0.0)  # three sharers
        m.write(0, 64, 1000.0)
        res = m.release(0, 1001.0)
        assert res.time >= m.fanout_done[0] or m.fanout_done[0] == 0.0
        assert res.buffer_flush > 0

    def test_fanout_reset_after_release(self):
        m, _ = make()
        m.read(1, 64, 0.0)
        m.write(0, 64, 1000.0)
        m.release(0, 1001.0)
        assert m.fanout_done[0] == 0.0


class TestPrefetch:
    def test_prefetch_issues_extra_fetches(self):
        m, _ = make(prefetch_depth=2)
        m.read(0, 0, 0.0)
        assert m.prefetches_issued == 2
        assert m.caches[0].peek(1) is not None
        assert m.caches[0].peek(2) is not None

    def test_prefetched_line_partial_stall(self):
        m, _ = make(prefetch_depth=1)
        m.read(0, 0, 0.0)
        line = m.caches[0].peek(1)
        early = m.read(0, 32, line.ready_at - 5.0)
        assert 0 < early.read_stall <= 5.0 + 1e-9

    def test_prefetched_line_free_when_ready(self):
        m, _ = make(prefetch_depth=1)
        m.read(0, 0, 0.0)
        line = m.caches[0].peek(1)
        res = m.read(0, 32, line.ready_at + 10.0)
        assert res.hit
        assert res.read_stall == 0.0

    def test_no_prefetch_by_default(self):
        m, _ = make()
        m.read(0, 0, 0.0)
        assert m.prefetches_issued == 0


class TestFiniteCache:
    def test_eviction_and_refetch(self):
        m, _ = make(cache_lines=2)
        m.read(0, 0, 0.0)
        m.read(0, 32, 100.0)
        m.read(0, 64, 200.0)  # evicts line 0
        assert m.caches[0].evictions == 1
        res = m.read(0, 0, 300.0)
        assert not res.hit  # capacity miss

    def test_dirty_eviction_writes_back(self):
        m, _ = make(cache_lines=1)
        m.write(0, 0, 0.0)
        m.read(0, 32, 100.0)  # evicts owned line 0
        assert m.writebacks >= 1
        assert m.directory.entry(0).owner is None
