"""Property-based tests (hypothesis) for core invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.config import MachineConfig
from repro.mem.buffers import MergeBuffer, StoreBuffer
from repro.mem.directory import DirEntry
from repro.network.routed import RoutedNetwork
from repro.network.topology import Hypercube, Mesh2D, Ring, Torus2D
from repro.runtime import Machine


# ----------------------------------------------------------------------
# topology properties
# ----------------------------------------------------------------------
@given(
    rows=st.integers(1, 6),
    cols=st.integers(1, 6),
    data=st.data(),
)
def test_mesh_route_connects_endpoints(rows, cols, data):
    m = Mesh2D(rows, cols)
    s = data.draw(st.integers(0, m.nnodes - 1))
    d = data.draw(st.integers(0, m.nnodes - 1))
    route = m.route(s, d)
    cur = s
    for a, b in route:
        assert a == cur
        cur = b
    assert cur == d


@given(rows=st.integers(1, 5), cols=st.integers(1, 5), data=st.data())
def test_torus_never_longer_than_mesh(rows, cols, data):
    t, m = Torus2D(rows, cols), Mesh2D(rows, cols)
    s = data.draw(st.integers(0, rows * cols - 1))
    d = data.draw(st.integers(0, rows * cols - 1))
    assert t.hops(s, d) <= m.hops(s, d)


@given(n=st.integers(2, 16), data=st.data())
def test_ring_route_at_most_half(n, data):
    r = Ring(n)
    s = data.draw(st.integers(0, n - 1))
    d = data.draw(st.integers(0, n - 1))
    assert r.hops(s, d) <= n // 2


@given(bits=st.integers(1, 5), data=st.data())
def test_hypercube_routes_symmetric_length(bits, data):
    h = Hypercube(1 << bits)
    s = data.draw(st.integers(0, h.nnodes - 1))
    d = data.draw(st.integers(0, h.nnodes - 1))
    assert h.hops(s, d) == h.hops(d, s)


# ----------------------------------------------------------------------
# network properties
# ----------------------------------------------------------------------
@given(
    starts=st.lists(st.floats(0, 1e4), min_size=1, max_size=20),
    nbytes=st.integers(1, 128),
)
def test_network_arrivals_after_injection(starts, nbytes):
    net = RoutedNetwork(Mesh2D(2, 2), cycles_per_byte=1.6)
    for t in starts:
        arrival = net.transfer(0, 3, nbytes, t)
        assert arrival >= t + net.min_latency(0, 3, nbytes) - 1e-9


@given(seq=st.lists(st.integers(1, 64), min_size=2, max_size=20))
def test_same_link_fifo_ordering(seq):
    """Messages injected in time order on one link arrive in order."""
    net = RoutedNetwork(Mesh2D(1, 2), cycles_per_byte=1.0)
    last = -1.0
    t = 0.0
    for nbytes in seq:
        arrival = net.transfer(0, 1, nbytes, t)
        assert arrival > last
        last = arrival
        t += 1.0


# ----------------------------------------------------------------------
# buffer properties
# ----------------------------------------------------------------------
@given(
    latencies=st.lists(st.floats(1, 500), min_size=1, max_size=30),
    capacity=st.integers(1, 8),
)
def test_store_buffer_retires_in_fifo_and_flush_covers_all(latencies, capacity):
    sb = StoreBuffer(capacity)
    t = 0.0
    retire_expected = 0.0
    for lat in latencies:
        proceed, stall = sb.push(t, lambda s, lat=lat: s + lat)
        assert proceed >= t
        assert stall >= 0.0
        t = proceed + 1.0
    done, stall = sb.flush(t)
    assert done >= t
    assert sb.occupancy(done) == 0


@given(
    writes=st.lists(st.tuples(st.integers(0, 5), st.integers(0, 7)), min_size=1, max_size=50),
    capacity=st.integers(1, 3),
)
def test_merge_buffer_conserves_lines(writes, capacity):
    """Every distinct written line is either still open or was evicted."""
    mb = MergeBuffer(capacity)
    evicted = []
    for block, word in writes:
        e = mb.write(block, word, 0.0)
        if e is not None:
            evicted.append(e.block)
    final = [e.block for e in mb.flush_all()]
    # each written block appears among evictions+final at least once
    for block, _ in writes:
        assert block in evicted or block in final
    assert len(final) <= capacity


# ----------------------------------------------------------------------
# directory properties
# ----------------------------------------------------------------------
@given(ops=st.lists(st.tuples(st.booleans(), st.integers(0, 31)), max_size=60))
def test_direntry_bitmask_matches_set_model(ops):
    e = DirEntry()
    model = set()
    for add, p in ops:
        if add:
            e.add_sharer(p)
            model.add(p)
        else:
            e.remove_sharer(p)
            model.discard(p)
    assert e.sharer_list() == sorted(model)
    assert e.num_sharers() == len(model)


# ----------------------------------------------------------------------
# end-to-end determinism and value correctness
# ----------------------------------------------------------------------
@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    system=st.sampled_from(["z-mc", "RCinv", "RCupd", "RCadapt", "RCcomp"]),
)
def test_parallel_sum_matches_serial(seed, system):
    """Random data, lock-protected reduction: result must equal numpy."""
    rng = np.random.default_rng(seed)
    data = [int(v) for v in rng.integers(0, 100, size=16)]

    def build():
        machine = Machine(MachineConfig(nprocs=4), system)
        arr = machine.shm.array(16, "a")
        arr.poke_many(data)
        total = machine.shm.scalar("sum", fill=0)
        from repro.runtime import Barrier, Lock

        lock = Lock(machine.sync)
        bar = Barrier(machine.sync)

        def worker(ctx):
            lo = ctx.pid * 4
            vals = yield from arr.read_range(lo, lo + 4)
            part = sum(vals)
            yield from lock.acquire()
            yield from total.incr(part)
            yield from lock.release()
            yield from bar.wait()

        res = machine.run(worker)
        return total.value(), res.total_time

    v1, t1 = build()
    v2, t2 = build()
    assert v1 == v2 == sum(data)
    assert t1 == t2  # deterministic simulation
