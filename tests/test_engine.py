"""Execution-driven engine: scheduling, accounting, error handling."""

import pytest

from repro.config import MachineConfig
from repro.runtime import Barrier, Lock, Machine
from repro.sim.engine import DeadlockError, Engine
from repro.sim.events import Acquire, Compute, Fence, Read, Write
from repro.sim.stats import AccessResult


class FreeMemory:
    """Memory system stub: everything completes instantly."""

    def read(self, proc, addr, now):
        return AccessResult(time=now + 1, hit=True)

    def write(self, proc, addr, now):
        return AccessResult(time=now + 1, hit=True)

    def acquire(self, proc, now, sync=None):
        return AccessResult(time=now)

    def release(self, proc, now, sync=None):
        return AccessResult(time=now)


class NullSync:
    def bind(self, engine):
        self.engine = engine

    def acquire(self, proc, lock_id, now):
        return now

    def release(self, proc, lock_id, now):
        return now

    def barrier_wait(self, proc, barrier_id, now):
        return now


def make_engine(nprocs=2, **kw):
    return Engine(MachineConfig(nprocs=nprocs), FreeMemory(), NullSync(), **kw)


class TestBasicScheduling:
    def test_single_thread_compute(self):
        eng = make_engine(1)

        def w():
            yield Compute(100)
            yield Compute(50)

        eng.spawn(0, w())
        res = eng.run()
        assert res.total_time == pytest.approx(150.0)
        assert res.procs[0].busy == pytest.approx(150.0)

    def test_total_is_max_finish(self):
        eng = make_engine(2)

        def w(c):
            yield Compute(c)

        eng.spawn(0, w(100))
        eng.spawn(1, w(400))
        res = eng.run()
        assert res.total_time == pytest.approx(400.0)

    def test_empty_thread_finishes_at_zero(self):
        eng = make_engine(1)

        def w():
            return
            yield  # pragma: no cover

        eng.spawn(0, w())
        assert eng.run().total_time == 0.0

    def test_spawn_all(self):
        eng = make_engine(3)

        def w():
            yield Compute(1)

        eng.spawn_all(w() for _ in range(3))
        assert eng.run().nprocs == 3

    def test_duplicate_spawn_rejected(self):
        eng = make_engine(2)

        def w():
            yield Compute(1)

        eng.spawn(0, w())
        with pytest.raises(ValueError):
            eng.spawn(0, w())

    def test_out_of_range_tid_rejected(self):
        eng = make_engine(2)
        with pytest.raises(ValueError):
            eng.spawn(5, iter(()))

    def test_negative_compute_rejected(self):
        with pytest.raises(ValueError):
            Compute(-1)

    def test_non_op_yield_raises(self):
        eng = make_engine(1)

        def w():
            yield "banana"

        eng.spawn(0, w())
        with pytest.raises(TypeError):
            eng.run()

    def test_max_ops_budget(self):
        eng = make_engine(1, max_ops=10)

        def w():
            while True:
                yield Compute(1)

        eng.spawn(0, w())
        with pytest.raises(RuntimeError, match="budget"):
            eng.run()


class TestOrdering:
    def test_global_time_order_of_writes(self):
        """Values must reflect global simulated-time order, including
        across a wake-up of an earlier-clock thread."""
        cfg = MachineConfig(nprocs=2)
        machine = Machine(cfg, "RCinv")
        x = machine.shm.array(1, "x")
        observed = []

        def worker(ctx):
            if ctx.pid == 0:
                yield Compute(10)
                yield from x.write(0, 1)
                yield Compute(1000)
                yield from x.write(0, 2)
            else:
                yield Compute(500)
                v = yield from x.read(0)
                observed.append(v)

        machine.run(worker)
        assert observed == [1]  # read at t~500 sees the t~10 write only

    def test_deterministic_repeat(self):
        def build():
            cfg = MachineConfig(nprocs=4)
            machine = Machine(cfg, "RCupd")
            arr = machine.shm.array(16, "a")
            lock = Lock(machine.sync)
            bar = Barrier(machine.sync)

            def worker(ctx):
                for i in range(4):
                    yield from arr.write(ctx.pid * 4 + i, ctx.pid)
                yield from bar.wait()
                yield from lock.acquire()
                v = yield from arr.read((ctx.pid * 4 + 7) % 16)
                yield Compute(v + 1)
                yield from lock.release()

            return machine.run(worker)

        a, b = build(), build()
        assert a.total_time == b.total_time
        assert [p.busy for p in a.procs] == [p.busy for p in b.procs]


class TestAccounting:
    def test_stall_categories_charged(self):
        class StallMem(FreeMemory):
            def read(self, proc, addr, now):
                return AccessResult(time=now + 30, read_stall=30.0)

            def write(self, proc, addr, now):
                return AccessResult(time=now + 20, write_stall=15.0)

            def release(self, proc, now, sync=None):
                return AccessResult(time=now + 7, buffer_flush=7.0)

        eng = Engine(MachineConfig(nprocs=1), StallMem(), NullSync())

        def w():
            yield Read(0)
            yield Write(0)
            yield Fence()

        eng.spawn(0, w())
        res = eng.run()
        p = res.procs[0]
        assert p.read_stall == pytest.approx(30.0)
        assert p.write_stall == pytest.approx(15.0)
        assert p.buffer_flush == pytest.approx(7.0)
        # unclaimed write latency (20-15) is busy time
        assert p.busy == pytest.approx(5.0)

    def test_counters(self):
        eng = make_engine(1)

        def w():
            yield Read(0)
            yield Read(4)
            yield Write(8)
            yield Acquire(0)

        # NullSync acquires instantly; FreeMemory reads hit.
        eng.syncmgr = NullSync()
        eng.syncmgr.bind(eng)
        eng.spawn(0, w())
        res = eng.run()
        p = res.procs[0]
        assert p.reads == 2
        assert p.writes == 1
        assert p.read_hits == 2
        assert p.acquires == 1

    def test_backwards_completion_rejected(self):
        class BadMem(FreeMemory):
            def read(self, proc, addr, now):
                return AccessResult(time=now - 5)

        eng = Engine(MachineConfig(nprocs=1), BadMem(), NullSync())

        def w():
            yield Read(0)

        eng.spawn(0, w())
        with pytest.raises(RuntimeError):
            eng.run()


class TestDeadlock:
    def test_lock_never_released_deadlocks(self):
        cfg = MachineConfig(nprocs=2)
        machine = Machine(cfg, "RCinv")
        lock = Lock(machine.sync)

        def worker(ctx):
            yield from lock.acquire()
            # pid 0 never releases; pid 1 blocks forever

        with pytest.raises(DeadlockError):
            machine.run(worker)

    def test_partial_barrier_deadlocks(self):
        cfg = MachineConfig(nprocs=2)
        machine = Machine(cfg, "RCinv")
        bar = Barrier(machine.sync)  # participants = 2

        def worker(ctx):
            if ctx.pid == 0:
                yield from bar.wait()
            else:
                yield Compute(1)

        with pytest.raises(DeadlockError):
            machine.run(worker)
