"""RCcomp (competitive update) and RCadapt (adaptive selective-write)."""

from repro.config import MachineConfig
from repro.mem.directory import NORMAL, SPECIAL
from repro.mem.systems import default_network
from repro.mem.systems.rcadapt import RCAdapt
from repro.mem.systems.rccomp import RCComp


def make_comp(nprocs=4, threshold=2, **kw):
    cfg = MachineConfig(nprocs=nprocs, competitive_threshold=threshold, **kw)
    return RCComp(cfg, default_network(cfg)), cfg


def make_adapt(nprocs=4, **kw):
    cfg = MachineConfig(nprocs=nprocs, **kw)
    return RCAdapt(cfg, default_network(cfg)), cfg


def push_update(m, writer, addr, now):
    """Issue a write and flush it so the update fans out."""
    m.write(writer, addr, now)
    m.release(writer, now + 1.0)


class TestCompetitive:
    def test_self_invalidation_after_threshold(self):
        m, _ = make_comp(threshold=2)
        m.read(1, 64, 0.0)  # proc 1 becomes a sharer
        push_update(m, 0, 64, 1000.0)
        assert m.self_invalidations == 0
        push_update(m, 0, 64, 2000.0)  # second useless update
        assert m.self_invalidations == 1
        assert not m.directory.entry(2).is_sharer(1)

    def test_read_resets_counter(self):
        m, _ = make_comp(threshold=2)
        m.read(1, 64, 0.0)
        push_update(m, 0, 64, 1000.0)
        m.read(1, 64, 5000.0)  # consumes the update: counter resets
        push_update(m, 0, 64, 9000.0)
        assert m.self_invalidations == 0

    def test_invalidated_sharer_misses_then_rejoins(self):
        m, _ = make_comp(threshold=1)
        m.read(1, 64, 0.0)
        push_update(m, 0, 64, 1000.0)  # threshold 1: immediate cut-off
        res = m.read(1, 64, 50000.0)
        assert not res.hit
        assert m.directory.entry(2).is_sharer(1)

    def test_no_invalidation_below_threshold(self):
        m, _ = make_comp(threshold=64)
        m.read(1, 64, 0.0)
        for k in range(10):
            push_update(m, 0, 64, 1000.0 * (k + 1))
        assert m.self_invalidations == 0

    def test_notify_message_charged(self):
        m, _ = make_comp(threshold=1)
        m.read(1, 64, 0.0)
        before = m.network.stats.messages
        push_update(m, 0, 64, 1000.0)
        # update + ack + replacement hint
        assert m.network.stats.messages - before >= 3


class TestAdaptive:
    def test_write_enters_special_state(self):
        m, _ = make_adapt()
        push_update(m, 0, 64, 0.0)
        assert m.directory.entry(2).mode == SPECIAL

    def test_established_sharers_get_updates(self):
        m, _ = make_adapt()
        m.read(1, 64, 0.0)
        push_update(m, 0, 64, 1000.0)
        res = m.read(1, 64, 50000.0)
        assert res.hit  # update kept the copy warm

    def test_new_reader_triggers_reinitialisation(self):
        m, _ = make_adapt()
        m.read(1, 64, 0.0)
        push_update(m, 0, 64, 1000.0)  # block SPECIAL, sharers {0,1}
        m.read(2, 64, 50000.0)  # new consumer: phase change
        assert m.reinitialisations == 1
        entry = m.directory.entry(2)
        assert entry.mode == NORMAL
        assert entry.is_sharer(2)
        assert not entry.is_sharer(1)  # old active set invalidated

    def test_reinit_invalidates_old_sharers_caches(self):
        m, _ = make_adapt()
        m.read(1, 64, 0.0)
        push_update(m, 0, 64, 1000.0)
        m.read(2, 64, 50000.0)
        assert m.caches[1].lookup(2, 100000.0) is None

    def test_sharer_rebuild_after_reinit(self):
        m, _ = make_adapt()
        m.read(1, 64, 0.0)
        push_update(m, 0, 64, 1000.0)
        m.read(2, 64, 50000.0)  # re-init
        m.read(1, 64, 60000.0)  # old consumer rejoins (NORMAL mode: no re-init)
        assert m.reinitialisations == 1
        entry = m.directory.entry(2)
        assert entry.is_sharer(1) and entry.is_sharer(2)

    def test_miss_on_normal_block_no_reinit(self):
        m, _ = make_adapt()
        m.read(1, 64, 0.0)
        m.read(2, 64, 100.0)
        assert m.reinitialisations == 0

    def test_writer_hit_does_not_reinit(self):
        m, _ = make_adapt()
        push_update(m, 0, 64, 0.0)
        res = m.read(0, 64, 5000.0)  # writer reads its own line: hit
        assert res.hit
        assert m.reinitialisations == 0
