"""Topologies and routing."""

import pytest

from repro.network.topology import Hypercube, Mesh2D, Ring, Torus2D, make_topology


class TestMesh2D:
    def test_coords_roundtrip(self):
        m = Mesh2D(4, 4)
        for node in range(16):
            r, c = m.coords(node)
            assert m.node_at(r, c) == node

    def test_self_route_empty(self):
        m = Mesh2D(4, 4)
        assert m.route(3, 3) == ()

    def test_neighbour_route(self):
        m = Mesh2D(2, 2)
        assert m.route(0, 1) == ((0, 1),)

    def test_dimension_order_x_then_y(self):
        m = Mesh2D(4, 4)
        # node 0 = (0,0), node 5 = (1,1): X first -> 1, then Y -> 5
        assert m.route(0, 5) == ((0, 1), (1, 5))

    def test_hops_manhattan(self):
        m = Mesh2D(4, 4)
        for s in range(16):
            for d in range(16):
                r0, c0 = m.coords(s)
                r1, c1 = m.coords(d)
                assert m.hops(s, d) == abs(r0 - r1) + abs(c0 - c1)

    def test_route_links_are_adjacent(self):
        m = Mesh2D(3, 5)
        for s in range(15):
            for d in range(15):
                route = m.route(s, d)
                cur = s
                for a, b in route:
                    assert a == cur
                    assert m.hops(a, b) == 1
                    cur = b
                if route:
                    assert cur == d

    def test_links_count(self):
        # 2D mesh rows x cols has 2*(rows*(cols-1) + cols*(rows-1)) directed links
        m = Mesh2D(3, 3)
        assert len(m.links()) == 2 * (3 * 2 + 3 * 2)

    def test_out_of_range(self):
        m = Mesh2D(2, 2)
        with pytest.raises(ValueError):
            m.route(0, 4)

    def test_bad_dims(self):
        with pytest.raises(ValueError):
            Mesh2D(0, 3)


class TestTorus2D:
    def test_wraps_shorter_way(self):
        t = Torus2D(1, 5)
        # 0 -> 4 is one hop backwards around the ring
        assert t.route(0, 4) == ((0, 4),)

    def test_forward_when_shorter(self):
        t = Torus2D(1, 5)
        assert t.route(0, 2) == ((0, 1), (1, 2))

    def test_hops_never_exceed_half(self):
        t = Torus2D(4, 4)
        for s in range(16):
            for d in range(16):
                assert t.hops(s, d) <= 4  # 2 + 2


class TestRing:
    def test_shorter_direction(self):
        r = Ring(6)
        assert r.route(0, 5) == ((0, 5),)
        assert r.hops(0, 3) == 3

    def test_route_validity(self):
        r = Ring(7)
        for s in range(7):
            for d in range(7):
                route = r.route(s, d)
                assert len(route) <= 3  # floor(7/2)
                cur = s
                for a, b in route:
                    assert a == cur
                    cur = b
                if s != d:
                    assert cur == d


class TestHypercube:
    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            Hypercube(6)

    def test_hops_is_hamming_distance(self):
        h = Hypercube(8)
        for s in range(8):
            for d in range(8):
                assert h.hops(s, d) == bin(s ^ d).count("1")

    def test_route_flips_one_bit_per_hop(self):
        h = Hypercube(16)
        for a, b in h.route(0, 15):
            assert bin(a ^ b).count("1") == 1


class TestFactory:
    def test_make_mesh(self):
        t = make_topology("mesh", 12, (3, 4))
        assert isinstance(t, Mesh2D)

    def test_make_torus(self):
        assert isinstance(make_topology("torus", 4, (2, 2)), Torus2D)

    def test_make_ring(self):
        assert isinstance(make_topology("ring", 5), Ring)

    def test_make_hypercube(self):
        assert isinstance(make_topology("hypercube", 8), Hypercube)

    def test_mesh_requires_dims(self):
        with pytest.raises(ValueError):
            make_topology("mesh", 16)

    def test_mesh_dims_must_match(self):
        with pytest.raises(ValueError):
            make_topology("mesh", 16, (3, 4))

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_topology("butterfly", 16)
