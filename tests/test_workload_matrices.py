"""Sparse SPD generation and symbolic Cholesky."""

import numpy as np
import pytest

from repro.workloads.matrices import (
    find_supernodes,
    grid_laplacian,
    nested_dissection_order,
    random_spd,
    reference_cholesky,
    symbolic_cholesky,
)


class TestGridLaplacian:
    def test_dimensions(self):
        a = grid_laplacian(3, 4)
        assert a.n == 12

    def test_symmetric_positive_definite(self):
        dense = grid_laplacian(4, 4).dense()
        assert np.allclose(dense, dense.T)
        assert np.all(np.linalg.eigvalsh(dense) > 0)

    def test_five_point_stencil_nnz(self):
        a = grid_laplacian(3, 3, ordering="natural")
        # 9 diagonal + 12 grid edges (lower triangle)
        assert a.nnz_lower == 9 + 12

    def test_nd_is_permutation_of_natural(self):
        nat = grid_laplacian(4, 5, ordering="natural").dense()
        nd = grid_laplacian(4, 5, ordering="nd").dense()
        assert np.allclose(sorted(np.linalg.eigvalsh(nat)), sorted(np.linalg.eigvalsh(nd)))

    def test_columns_sorted_diagonal_first(self):
        a = grid_laplacian(4, 4)
        for j, rows in enumerate(a.cols):
            assert rows[0] == j
            assert all(rows[k] < rows[k + 1] for k in range(len(rows) - 1))

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            grid_laplacian(0, 3)

    def test_unknown_ordering(self):
        with pytest.raises(ValueError):
            grid_laplacian(3, 3, ordering="amd")


class TestNestedDissection:
    @pytest.mark.parametrize("rows,cols", [(2, 2), (3, 5), (8, 8), (7, 3)])
    def test_is_permutation(self, rows, cols):
        perm = nested_dissection_order(rows, cols)
        assert sorted(perm) == list(range(rows * cols))

    def test_gives_parallel_etree(self):
        sym_nd = symbolic_cholesky(grid_laplacian(8, 8, ordering="nd"))
        sym_nat = symbolic_cholesky(grid_laplacian(8, 8, ordering="natural"))
        leaves_nd = sum(1 for r in sym_nd.row_struct if len(r) == 0)
        leaves_nat = sum(1 for r in sym_nat.row_struct if len(r) == 0)
        assert leaves_nd > leaves_nat


class TestRandomSPD:
    def test_spd(self):
        dense = random_spd(20, density=0.2, seed=1).dense()
        assert np.allclose(dense, dense.T)
        assert np.all(np.linalg.eigvalsh(dense) > 0)

    def test_deterministic_by_seed(self):
        a = random_spd(15, seed=3).dense()
        b = random_spd(15, seed=3).dense()
        assert np.array_equal(a, b)

    def test_density_bounds(self):
        with pytest.raises(ValueError):
            random_spd(10, density=1.5)


class TestSymbolicCholesky:
    def test_structure_covers_numeric_factor(self):
        """The symbolic pattern must contain every numeric non-zero."""
        a = grid_laplacian(5, 5)
        sym = symbolic_cholesky(a)
        l = reference_cholesky(a)
        for j in range(a.n):
            pattern = set(int(i) for i in sym.col_struct[j])
            numeric = set(np.nonzero(np.abs(l[:, j]) > 1e-12)[0].tolist())
            assert numeric <= pattern

    def test_etree_parent_is_first_offdiagonal(self):
        a = grid_laplacian(4, 4)
        sym = symbolic_cholesky(a)
        for j in range(a.n):
            struct = sym.col_struct[j]
            if len(struct) > 1:
                assert sym.parent[j] == struct[1]
            else:
                assert sym.parent[j] == -1

    def test_row_struct_inverts_col_struct(self):
        sym = symbolic_cholesky(grid_laplacian(4, 4))
        for j in range(sym.n):
            for k in sym.row_struct[j]:
                assert j in set(int(i) for i in sym.col_struct[int(k)])

    def test_dep_counts(self):
        sym = symbolic_cholesky(grid_laplacian(3, 3))
        counts = sym.dep_counts()
        assert counts[0] == 0  # first column never depends on anything
        assert all(counts[j] == len(sym.row_struct[j]) for j in range(sym.n))

    def test_nnz_at_least_input(self):
        a = grid_laplacian(6, 6)
        sym = symbolic_cholesky(a)
        assert sym.nnz >= a.nnz_lower  # fill-in only adds


class TestSupernodes:
    def test_partition_covers_all_columns(self):
        sym = symbolic_cholesky(grid_laplacian(6, 6))
        cols = []
        for first, last in sym.supernodes:
            cols.extend(range(first, last + 1))
        assert cols == list(range(sym.n))

    def test_supernode_chains_have_nested_structure(self):
        sym = symbolic_cholesky(grid_laplacian(6, 6))
        for first, last in sym.supernodes:
            for j in range(first, last):
                assert sym.parent[j] == j + 1

    def test_find_supernodes_matches_attribute(self):
        sym = symbolic_cholesky(grid_laplacian(5, 5))
        assert find_supernodes(sym) == sym.supernodes
