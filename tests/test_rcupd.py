"""RCupd: write-update protocol with merge buffer."""

import pytest

from repro.config import MachineConfig
from repro.mem.systems import default_network
from repro.mem.systems.rcupd import RCUpd


def make(nprocs=4, **kw):
    cfg = MachineConfig(nprocs=nprocs, **kw)
    return RCUpd(cfg, default_network(cfg)), cfg


class TestWrites:
    def test_write_allocates_locally_without_fetch(self):
        m, cfg = make()
        res = m.write(0, 64, 0.0)
        assert res.time == pytest.approx(cfg.cache_hit_cycles)
        assert m.caches[0].peek(2) is not None
        assert m.directory.entry(2).is_sharer(0)

    def test_writes_to_same_line_merge(self):
        m, _ = make()
        m.write(0, 64, 0.0)
        m.write(0, 68, 1.0)
        m.write(0, 72, 2.0)
        assert m.merge_buffers[0].has(2)
        assert m.write_transactions == 0  # nothing sent yet

    def test_line_switch_evicts_and_sends_update(self):
        m, _ = make()
        m.write(0, 64, 0.0)
        m.write(0, 128, 1.0)  # different line: eviction
        assert m.write_transactions == 1

    def test_update_keeps_sharers_valid(self):
        m, _ = make()
        m.read(1, 64, 0.0)  # proc 1 caches the line
        m.write(0, 64, 1000.0)
        m.release(0, 1001.0)  # pushes the update out
        res = m.read(1, 64, 5000.0)
        assert res.hit  # still valid: update, not invalidate

    def test_update_counts_messages_to_sharers(self):
        m, _ = make()
        for p in (1, 2, 3):
            m.read(p, 64, 0.0)
        m.write(0, 64, 1000.0)
        m.release(0, 1001.0)
        assert m.updates_sent == 3


class TestReads:
    def test_cold_miss_fetches_from_home(self):
        m, _ = make()
        res = m.read(0, 64, 0.0)
        assert not res.hit
        assert res.read_stall > 0

    def test_merge_buffer_forwarding(self):
        m, _ = make()
        m.write(0, 64, 0.0)
        res = m.read(0, 64, 0.5)
        assert res.hit


class TestRelease:
    def test_release_flushes_merge_buffer(self):
        m, _ = make()
        m.write(0, 64, 0.0)
        assert m.write_transactions == 0
        res = m.release(0, 1.0)
        assert m.write_transactions == 1
        assert res.buffer_flush > 0

    def test_release_waits_for_update_acks(self):
        m, _ = make()
        m.read(1, 64, 0.0)
        m.read(2, 64, 0.0)
        m.write(0, 64, 1000.0)
        res = m.release(0, 1000.5)
        # flush must cover the full fan-out completion
        assert res.time > 1000.5
        assert m.fanout_done[0] == 0.0  # reset afterwards

    def test_release_empty_free(self):
        m, _ = make()
        res = m.release(0, 10.0)
        assert res.buffer_flush == 0.0

    def test_dirty_words_only_in_payload(self):
        """A single-word update sends fewer bytes than a full line."""
        m1, _ = make()
        m1.read(1, 64, 0.0)
        m1.write(0, 64, 1000.0)
        m1.release(0, 1000.0)
        single = m1.network.stats.bytes

        m2, _ = make()
        m2.read(1, 64, 0.0)
        for w in range(8):
            m2.write(0, 64 + 4 * w, 1000.0)
        m2.release(0, 1000.0)
        full = m2.network.stats.bytes
        assert full > single


class TestMergeCapacity:
    def test_two_line_merge_buffer(self):
        m, _ = make(merge_buffer_lines=2)
        m.write(0, 0, 0.0)
        m.write(0, 32, 1.0)  # second open line, no eviction
        assert m.write_transactions == 0
        m.write(0, 64, 2.0)  # evicts the oldest
        assert m.write_transactions == 1
