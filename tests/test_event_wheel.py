"""Property tests pinning EventWheel to a plain-heapq reference model.

The wheel's contract is *exact* lexicographic ``(time, seq, tid)`` order
with wheel-assigned arrival ``seq`` and lazy cancellation — i.e. it must
be observationally identical to one global ``heapq`` carrying the same
entries.  These tests drive both structures with random interleavings of
every public operation and compare every observable after each step.

Deterministic companions pin the structural edge cases a random walk can
miss being *on the intended path*: the ``epoch == cur`` division edge
for non-power-of-two widths, the demote path for earlier-epoch pushes,
the ``_lo``/``_hi`` reset when the wheel drains and refills, and the
lazy-deletion caveat of the fused ``push_pop_peek`` fast path.
"""

from heapq import heappop, heappush

from hypothesis import given, settings, strategies as st

from repro.sim.wheel import EventWheel

_INF = float("inf")


class HeapReference:
    """One global heap with the wheel's exact observable semantics."""

    def __init__(self):
        self._heap: list[tuple[float, int, int]] = []
        self._seq = 0
        self._cancelled: set[int] = set()

    def push(self, time: float, tid: int) -> int:
        self._seq += 1
        heappush(self._heap, (time, self._seq, tid))
        return self._seq

    def pop(self):
        while self._heap:
            entry = heappop(self._heap)
            if entry[1] in self._cancelled:
                self._cancelled.discard(entry[1])
                continue
            return entry
        return None

    def peek_time(self) -> float:
        # Mirrors the wheel's documented caveat: cancelled entries that
        # have not yet surfaced still count.
        return self._heap[0][0] if self._heap else _INF

    def pop_and_peek(self):
        return self.pop(), self.peek_time()

    def push_pop_peek(self, time: float, tid: int):
        self.push(time, tid)
        return self.pop_and_peek()

    def cancel(self, seq: int) -> None:
        self._cancelled.add(seq)

    def __len__(self) -> int:
        return len(self._heap)


# Widths: powers of two, non-powers-of-two (division/boundary edges),
# tiny (many epochs per run) and huge (everything in one epoch).
WIDTHS = st.sampled_from([0.1, 0.3, 0.7, 1.0, 3.7, 8.0, 64.0, 1024.0, 1e9])

# Times: small integers collide constantly (tie-break coverage), floats
# spread entries across many epochs for the small widths above.
TIMES = st.one_of(
    st.integers(0, 30).map(float),
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
)

OPS = st.lists(
    st.one_of(
        st.tuples(st.just("push"), TIMES),
        st.tuples(st.just("ppp"), TIMES),
        st.just(("pop",)),
        st.just(("pop_peek",)),
        st.just(("peek",)),
        st.tuples(st.just("cancel"), st.integers(0, 300)),
    ),
    max_size=150,
)


@settings(deadline=None, max_examples=200)
@given(width=WIDTHS, ops=OPS)
def test_wheel_matches_heapq_reference(width, ops):
    wheel = EventWheel(width)
    ref = HeapReference()
    seqs: list[int] = []
    tid = 0
    for op in ops:
        kind = op[0]
        if kind == "push":
            got = wheel.push(op[1], tid)
            want = ref.push(op[1], tid)
            assert got == want  # wheel-assigned seq is the arrival counter
            seqs.append(got)
            tid += 1
        elif kind == "ppp":
            assert wheel.push_pop_peek(op[1], tid) == ref.push_pop_peek(op[1], tid)
            tid += 1
        elif kind == "pop":
            assert wheel.pop() == ref.pop()
        elif kind == "pop_peek":
            assert wheel.pop_and_peek() == ref.pop_and_peek()
        elif kind == "peek":
            assert wheel.peek_time() == ref.peek_time()
        else:  # cancel: target a previously assigned seq (incl. popped ones)
            if seqs:
                seq = seqs[op[1] % len(seqs)]
                wheel.cancel(seq)
                ref.cancel(seq)
        assert len(wheel) == len(ref)
        assert bool(wheel) == (len(ref) > 0)
    # Drain: remaining live entries must come out in identical order.
    while True:
        got, want = wheel.pop(), ref.pop()
        assert got == want
        if got is None:
            break
    assert len(wheel) == 0 and not wheel


@settings(deadline=None, max_examples=100)
@given(width=WIDTHS, n=st.integers(1, 40), time=TIMES)
def test_same_time_entries_pop_in_push_order(width, n, time):
    wheel = EventWheel(width)
    for i in range(n):
        wheel.push(time, i)
    assert [wheel.pop()[2] for _ in range(n)] == list(range(n))
    assert wheel.pop() is None


@settings(deadline=None, max_examples=100)
@given(width=WIDTHS, rounds=st.lists(st.lists(TIMES, max_size=10), max_size=8))
def test_drain_and_refill_cycles(width, rounds):
    """Fully draining the wheel must reset the epoch fast-path bounds;
    a refill then reopens cleanly (regression: stale ``_lo``/``_hi``)."""
    wheel = EventWheel(width)
    ref = HeapReference()
    for times in rounds:
        for t in times:
            wheel.push(t, 0)
            ref.push(t, 0)
        while True:
            got, want = wheel.pop(), ref.pop()
            assert got == want
            if got is None:
                break
        assert wheel.peek_time() == _INF


def test_earlier_epoch_push_demotes_current_bucket():
    wheel = EventWheel(10.0)
    wheel.push(25.0, 1)  # opens epoch 2
    wheel.push(27.0, 2)
    wheel.push(3.0, 3)  # earlier epoch: demote path
    assert wheel.pop() == (3.0, 3, 3)
    assert wheel.pop() == (25.0, 1, 1)
    assert wheel.pop() == (27.0, 2, 2)
    assert wheel.pop() is None


def test_non_power_of_two_width_boundary_edge():
    """Width 0.1, epoch 5: ``t = 0.6`` fails the ``[lo, hi)`` compare
    (``hi`` is exactly 0.6) but ``int(t / width)`` still says epoch 5 —
    the ``epoch == cur`` branch of ``_push_slow`` must catch it."""
    wheel = EventWheel(0.1)
    wheel.push(0.55, 0)  # opens epoch 5: lo = 0.5, hi = 0.6
    assert not (wheel._lo <= 0.6 < wheel._hi)
    assert int(0.6 / 0.1) == 5
    wheel.push(0.6, 1)
    # The entry landed in the current bucket, not a future epoch.
    assert not wheel._buckets
    assert wheel.pop() == (0.55, 1, 0)
    assert wheel.pop() == (0.6, 2, 1)
    assert wheel.pop() is None


def test_push_pop_peek_matches_push_then_pop_and_peek():
    a, b = EventWheel(8.0), EventWheel(8.0)
    script = [5.0, 21.0, 3.0, 21.0, 9.0, 0.0]
    for t in script:
        fused = a.push_pop_peek(t, 7)
        b.push(t, 7)
        assert fused == b.pop_and_peek()
        assert len(a) == len(b)


def test_push_pop_peek_cancellation_fallback():
    """Pending cancellations disable the fused fast path; the result must
    still match push-then-pop, and the peeked time keeps the documented
    lazy-deletion caveat (a cancelled entry still counts until popped)."""
    wheel = EventWheel(8.0)
    s = wheel.push(5.0, 0)
    wheel.push(6.0, 1)
    wheel.cancel(s)
    entry, nxt = wheel.push_pop_peek(3.0, 2)
    assert entry == (3.0, 3, 2)
    assert nxt == 5.0  # cancelled entry not yet surfaced still peeks
    assert wheel.pop() == (6.0, 2, 1)  # the cancelled one was discarded
    assert wheel.pop() is None


def test_cancel_all_then_empty():
    wheel = EventWheel(4.0)
    seqs = [wheel.push(float(t), t) for t in (3, 1, 2)]
    for s in seqs:
        wheel.cancel(s)
    assert len(wheel) == 3  # lazy: still pending until surfaced
    assert wheel.pop() is None
    assert len(wheel) == 0
