"""Input presets: structure and paper-size parameters."""

import pytest

from repro.apps import SCALES, default_scale, large_scale, paper_scale, preset, smoke_scale
from repro.apps.base import run_on
from repro.config import MachineConfig


class TestPresetStructure:
    @pytest.mark.parametrize(
        "preset", [paper_scale, default_scale, large_scale, smoke_scale]
    )
    def test_all_four_apps(self, preset):
        p = preset()
        assert set(p) == {"Cholesky", "IS", "Maxflow", "Nbody"}
        for name, (factory, reuse) in p.items():
            assert callable(factory)
            assert isinstance(reuse, bool)

    def test_reuse_flags_match_paper(self):
        p = paper_scale()
        assert p["Cholesky"][1] is False
        assert p["IS"][1] is False
        assert p["Maxflow"][1] is True
        assert p["Nbody"][1] is True


class TestPaperSizes:
    def test_cholesky_matrix_size(self):
        app = paper_scale()["Cholesky"][0]()
        assert app.n == 33 * 33  # 1089, the paper's 1086-column analogue

    def test_is_keys_and_buckets(self):
        app = paper_scale()["IS"][0]()
        assert app.n == 32768
        assert app.nbuckets == 1024

    def test_maxflow_graph(self):
        app = paper_scale()["Maxflow"][0]()
        assert app.net.n == 200
        # 400 bidirectional edges + backbone, each contributing 2 arcs
        assert app.net.num_arcs >= 2 * 400

    def test_nbody_parameters(self):
        app = paper_scale()["Nbody"][0]()
        assert app.n == 128
        assert app.steps == 50
        assert app.boost_interval == 10


class TestLargeScale:
    def test_large_in_scales_and_lookup(self):
        assert "large" in SCALES
        assert set(preset("large")) == {"Cholesky", "IS", "Maxflow", "Nbody"}

    def test_large_grows_default_by_an_order_of_magnitude(self):
        """'large' must carry roughly 10x the default problem sizes so
        P=64/256 machines have enough parallel slack per processor."""
        large, small = large_scale(), default_scale()
        l_is, s_is = large["IS"][0](), small["IS"][0]()
        assert l_is.n == 10 * s_is.n
        l_ch, s_ch = large["Cholesky"][0](), small["Cholesky"][0]()
        assert l_ch.n == 4 * s_ch.n  # factor work grows superlinearly
        l_mf, s_mf = large["Maxflow"][0](), small["Maxflow"][0]()
        assert l_mf.net.n > 3 * s_mf.net.n
        l_nb, s_nb = large["Nbody"][0](), small["Nbody"][0]()
        assert l_nb.n == 4 * s_nb.n  # force phase is O(n log n) per step

    def test_large_workloads_feed_64_processors(self):
        """Every large workload decomposes into at least P=64 units of
        parallel work (keys, columns, vertices, bodies)."""
        large = large_scale()
        assert large["IS"][0]().n >= 64 * 8
        assert large["Cholesky"][0]().n >= 64
        assert large["Maxflow"][0]().net.n >= 64
        assert large["Nbody"][0]().n >= 64 * 4


class TestSmokeRuns:
    @pytest.mark.parametrize("name", ["Cholesky", "IS", "Maxflow", "Nbody"])
    def test_smoke_preset_runs_and_verifies(self, name):
        factory, _ = smoke_scale()[name]
        run_on(factory(), "RCinv", MachineConfig(nprocs=4))

    def test_factories_are_fresh_instances(self):
        factory, _ = smoke_scale()["IS"]
        assert factory() is not factory()
