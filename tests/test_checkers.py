"""Correctness-analysis subsystem: race detector + invariant checker."""

import json

import pytest

from repro.__main__ import main
from repro.analysis.checkers import (
    CheckSpec,
    CheckedMemorySystem,
    detect_races,
    execute_check,
    run_checks,
)
from repro.apps.factory import AppFactory
from repro.config import MachineConfig
from repro.core.parallel import ResultCache
from repro.runtime import Barrier, Lock, Machine
from repro.runtime.channel import DataChannel
from repro.sim.events import Compute
from repro.sim.stats import AccessResult
from repro.sim.trace import TracingMemory


def run_detected(worker, nprocs=2, system="RCinv", setup=None):
    """Run ``worker`` traced and return the race report."""
    machine = Machine(MachineConfig(nprocs=nprocs), system)
    state = setup(machine) if setup else None
    tracer = TracingMemory.attach(machine)
    machine.run(lambda ctx: worker(ctx, machine, state))
    return detect_races(tracer.events, nprocs, shm=machine.shm)


class TestRaceDetector:
    def test_locked_counter_is_clean(self):
        def setup(machine):
            return machine.shm.scalar("ctr"), Lock(machine.sync)

        def worker(ctx, machine, state):
            ctr, lock = state
            for _ in range(3):
                yield from lock.acquire()
                yield from ctr.incr(1)
                yield from lock.release()
                yield Compute(25.0)

        report = run_detected(worker, setup=setup)
        assert report.clean
        assert report.accesses > 0
        assert report.sync_events > 0

    def test_unlocked_counter_races(self):
        def setup(machine):
            return machine.shm.scalar("ctr")

        def worker(ctx, machine, ctr):
            for _ in range(3):
                yield from ctr.incr(1)
                yield Compute(25.0)

        report = run_detected(worker, setup=setup)
        assert not report.clean
        race = report.races[0]
        assert race.array == "ctr"
        assert race.element == 0
        assert {race.first.kind, race.second.kind} <= {"read", "write"}
        assert race.first.proc != race.second.proc

    def test_barrier_orders_producer_and_consumer(self):
        def setup(machine):
            return machine.shm.array(8, "data", align_line=True), Barrier(machine.sync)

        def worker(ctx, machine, state):
            data, barrier = state
            if ctx.pid == 0:
                for i in range(8):
                    yield from data.write(i, i)
            yield from barrier.wait()
            if ctx.pid == 1:
                for i in range(8):
                    yield from data.read(i)

        report = run_detected(worker, setup=setup)
        assert report.clean

    def test_missing_barrier_races(self):
        def setup(machine):
            return machine.shm.array(8, "data", align_line=True)

        def worker(ctx, machine, data):
            if ctx.pid == 0:
                for i in range(8):
                    yield from data.write(i, i)
            else:
                yield Compute(5000.0)
                for i in range(8):
                    yield from data.read(i)

        report = run_detected(worker, setup=setup)
        assert not report.clean
        kinds = {(r.first.kind, r.second.kind) for r in report.races}
        assert ("write", "read") in kinds or ("read", "write") in kinds

    def test_flag_channel_is_clean(self):
        def setup(machine):
            return DataChannel(machine, nwords=8, consumers=1)

        def worker(ctx, machine, chan):
            if ctx.pid == 0:
                for epoch in range(3):
                    yield from chan.produce([epoch] * 8)
            else:
                reader = chan.reader()
                for _ in range(3):
                    yield from reader.next()

        report = run_detected(worker, setup=setup)
        assert report.clean
        assert report.sync_events > 0

    def test_relaxed_read_label_suppresses_read_races(self):
        def setup(machine):
            return machine.shm.array(4, "poll", align_line=True, relaxed="read")

        def worker(ctx, machine, poll):
            if ctx.pid == 0:
                yield from poll.write(0, 1)
            else:
                yield Compute(500.0)
                yield from poll.read(0)

        report = run_detected(worker, setup=setup)
        assert report.clean
        assert report.relaxed_skipped > 0

    def test_relaxed_read_still_reports_write_write(self):
        def setup(machine):
            return machine.shm.array(4, "poll", align_line=True, relaxed="read")

        def worker(ctx, machine, poll):
            yield from poll.write(0, ctx.pid)

        report = run_detected(worker, setup=setup)
        assert not report.clean
        assert report.races[0].first.kind == "write"
        assert report.races[0].second.kind == "write"

    def test_relaxed_all_suppresses_everything(self):
        def setup(machine):
            return machine.shm.array(4, "free", align_line=True, relaxed="all")

        def worker(ctx, machine, free):
            yield from free.write(0, ctx.pid)
            yield from free.read(0)

        report = run_detected(worker, setup=setup)
        assert report.clean
        assert report.relaxed_skipped > 0

    def test_invalid_relaxed_label_rejected(self):
        machine = Machine(MachineConfig(nprocs=2), "RCinv")
        with pytest.raises(ValueError):
            machine.shm.array(4, "bad", relaxed="sometimes")

    def test_without_shm_reports_raw_addresses(self):
        machine = Machine(MachineConfig(nprocs=2), "RCinv")
        arr = machine.shm.array(4, "data", align_line=True)
        tracer = TracingMemory.attach(machine)

        def worker(ctx):
            yield from arr.write(0, ctx.pid)

        machine.run(worker)
        report = detect_races(tracer.events, 2, shm=None)
        assert not report.clean
        assert report.races[0].array.startswith("addr@")


class _FakeMem:
    """Minimal memory system returning whatever results a test injects."""

    line_size = 32

    def __init__(self, result):
        self.result = result

    def block_of(self, addr):
        return addr // self.line_size

    def read(self, proc, addr, now):
        return self.result

    def write(self, proc, addr, now):
        return self.result

    def acquire(self, proc, now, sync=None):
        return self.result

    def release(self, proc, now, sync=None):
        return self.result

    def sync_note(self, proc, now, sync):
        pass


class TestInvariantChecker:
    def run_checked(self, system="RCinv", nprocs=4):
        machine = Machine(MachineConfig(nprocs=nprocs), system)
        data = machine.shm.array(32, "data", align_line=True)
        lock = Lock(machine.sync)
        checked = CheckedMemorySystem.attach(machine)

        def worker(ctx):
            for i in range(8):
                yield from data.write(ctx.pid * 8 + i, ctx.pid)
            yield from lock.acquire()
            yield from data.read(0)
            yield from lock.release()

        machine.run(worker)
        return machine, checked

    @pytest.mark.parametrize("system", ["RCinv", "RCupd", "RCadapt", "RCcomp", "SCinv", "z-mc"])
    def test_real_protocols_are_clean(self, system):
        _, checked = self.run_checked(system=system)
        checked.final_check()
        assert checked.clean, checked.describe()
        assert checked.checks_run > 0

    def test_mutated_presence_bits_caught(self):
        machine, checked = self.run_checked()
        inner = checked.inner
        # Find a block some cache currently holds, then corrupt the
        # directory by clearing its presence bits behind the protocol's
        # back — the audit must notice the inconsistency.
        for block in inner.directory.blocks():
            holders = [
                p
                for p, cache in enumerate(inner.caches)
                if cache.peek(block) is not None and cache.peek(block).inval_at is None
            ]
            if holders:
                inner.directory.entry(block).sharers = 0
                inner.directory.entry(block).owner = None
                break
        else:
            pytest.fail("no currently-cached block to corrupt")
        checked.full_check(now=1e9)
        assert not checked.clean
        assert any(v.rule == "presence-bits" for v in checked.violations)

    def test_mutated_directory_owner_caught(self):
        machine, checked = self.run_checked()
        inner = checked.inner
        block = inner.directory.blocks()[0]
        entry = inner.directory.entry(block)
        # Point the owner field at a processor with no OWNED copy.
        entry.owner = machine.config.nprocs - 1
        inner.caches[entry.owner].invalidate_at(block, 0.0)
        checked.full_check(now=1e9)
        assert not checked.clean
        assert any(v.rule == "directory-owner" for v in checked.violations)

    def test_completion_before_issue_caught(self):
        checked = CheckedMemorySystem(_FakeMem(AccessResult(time=5.0)))
        checked.read(0, 0, now=10.0)
        assert any(v.rule == "completion-before-issue" for v in checked.violations)

    def test_negative_stall_caught(self):
        checked = CheckedMemorySystem(_FakeMem(AccessResult(time=20.0, read_stall=-3.0)))
        checked.read(0, 0, now=10.0)
        assert any(v.rule == "negative-stall" for v in checked.violations)

    def test_stall_exceeding_latency_caught(self):
        checked = CheckedMemorySystem(_FakeMem(AccessResult(time=11.0, write_stall=50.0)))
        checked.write(0, 0, now=10.0)
        assert any(v.rule == "stall-exceeds-latency" for v in checked.violations)

    def test_duplicate_violations_deduplicated(self):
        checked = CheckedMemorySystem(_FakeMem(AccessResult(time=20.0, read_stall=-3.0)))
        for _ in range(5):
            checked.read(0, 0, now=10.0)
        assert len(checked.violations) == 1
        assert checked.dropped == 4

    def test_transparent_timing(self):
        def run(check):
            machine = Machine(MachineConfig(nprocs=2), "RCupd")
            arr = machine.shm.array(8, "a")
            if check:
                CheckedMemorySystem.attach(machine)

            def worker(ctx):
                yield from arr.write(ctx.pid, ctx.pid)
                yield Compute(1000)
                yield from arr.read(1 - ctx.pid)

            return machine.run(worker).total_time

        assert run(False) == run(True)


class TestCheckedFixture:
    def test_fixture_attaches_and_audits(self, checked_machine):
        machine = Machine(MachineConfig(nprocs=2), "RCinv")
        arr = machine.shm.array(8, "a", align_line=True)
        checked_machine(machine)

        def worker(ctx):
            yield from arr.write(ctx.pid, ctx.pid)

        machine.run(worker)
        # teardown asserts the invariants held


class TestRunner:
    SMOKE = MachineConfig(nprocs=4)

    def test_racy_demo_flagged_end_to_end(self):
        outcome = execute_check(CheckSpec(AppFactory("RacyDemo"), "RCinv", self.SMOKE))
        assert not outcome.clean
        assert outcome.races.total > 0
        assert any(r.array == "racy.data" for r in outcome.races.races)
        assert outcome.violation_total == 0

    def test_clean_app_end_to_end(self):
        spec = CheckSpec(AppFactory("IS", n_keys=128, nbuckets=16), "RCupd", self.SMOKE)
        outcome = execute_check(spec)
        assert outcome.clean, outcome.describe()
        assert outcome.events > 0

    def test_cache_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = CheckSpec(AppFactory("RacyDemo"), "RCinv", self.SMOKE)
        first = run_checks([spec], jobs=1, cache=cache)
        second = run_checks([spec], jobs=1, cache=cache)
        assert not first[0].cached
        assert second[0].cached
        assert second[0].races.total == first[0].races.total

    def test_spec_fingerprint_distinguishes(self):
        a = CheckSpec(AppFactory("RacyDemo"), "RCinv", self.SMOKE)
        b = CheckSpec(AppFactory("RacyDemo"), "RCupd", self.SMOKE)
        c = CheckSpec(AppFactory("RacyDemo"), "RCinv", self.SMOKE, max_events=7)
        assert len({a.fingerprint(), b.fingerprint(), c.fingerprint()}) == 3

    def test_spec_fingerprint_distinguishes_machine_size(self):
        """Cache entries at different P must never collide — the config
        (including nprocs) is part of the spec identity."""
        fps = {
            CheckSpec(
                AppFactory("RacyDemo"), "RCinv", MachineConfig(nprocs=p)
            ).fingerprint()
            for p in (4, 5, 16, 64)
        }
        assert len(fps) == 4

    def test_check_runs_clean_at_odd_and_paper_scale_p(self):
        """Nothing in the checker stack assumes P=16 (or a power of two):
        vector clocks, barrier accumulators and flag epochs size off the
        config, and thread ids stay dense 0..P-1."""
        for p in (5, 64):
            spec = CheckSpec(
                AppFactory("IS", n_keys=128, nbuckets=16),
                "RCinv",
                MachineConfig(nprocs=p),
            )
            outcome = execute_check(spec)
            assert outcome.clean, (p, outcome.describe())

    def test_check_bench_doc_records_nprocs(self, tmp_path):
        from repro.analysis.checkers import write_check_bench

        spec = CheckSpec(AppFactory("RacyDemo"), "RCinv", MachineConfig(nprocs=5))
        outcomes = [execute_check(spec)]
        out = tmp_path / "BENCH_check.json"
        doc = write_check_bench(outcomes, 0.1, jobs=1, scale="paper", out=out, nprocs=5)
        assert doc["nprocs"] == 5
        import json

        assert json.loads(out.read_text())["nprocs"] == 5


class TestCheckCLI:
    def test_racy_demo_exits_nonzero(self, capsys):
        code = main(
            ["--nprocs", "4", "check", "--app", "RacyDemo", "--systems", "RCinv", "--no-cache"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "racy.data" in out
        assert "unordered with" in out
        assert "FAIL" in out

    def test_clean_app_exits_zero(self, capsys):
        code = main(
            [
                "--nprocs", "4", "check", "--app", "IS", "--systems", "RCinv",
                "--scale", "smoke", "--no-cache",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "OK" in out

    def test_bench_out_written(self, tmp_path, capsys):
        out_file = tmp_path / "BENCH_check.json"
        code = main(
            [
                "--nprocs", "4", "check", "--app", "IS", "--systems", "RCinv",
                "--scale", "smoke", "--no-cache", "--bench-out", str(out_file),
            ]
        )
        assert code == 0
        doc = json.loads(out_file.read_text())
        assert doc["bench"] == "correctness-check"
        assert doc["n_runs"] == 1
        assert doc["wall_s"] >= 0

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            main(["check", "--app", "NoSuchApp", "--no-cache"])

    def test_unknown_system_rejected(self):
        with pytest.raises(SystemExit):
            main(["check", "--app", "IS", "--systems", "bogus", "--no-cache"])
