"""Shared-memory allocator and simulated arrays."""

import pytest

from repro.config import MachineConfig
from repro.runtime import Machine
from repro.runtime.sharedmem import SharedMemory


@pytest.fixture
def shm():
    return SharedMemory(MachineConfig(nprocs=4))


class TestAllocator:
    def test_sequential_allocation(self, shm):
        a = shm.alloc_words(4)
        b = shm.alloc_words(4)
        assert b == a + 16

    def test_line_alignment(self, shm):
        shm.alloc_words(3)  # 12 bytes
        base = shm.alloc_words(1, align_line=True)
        assert base % 32 == 0

    def test_negative_rejected(self, shm):
        with pytest.raises(ValueError):
            shm.alloc_words(-1)

    def test_bytes_allocated(self, shm):
        shm.alloc_words(10)
        assert shm.bytes_allocated == 40

    def test_pad_to_line_isolates_next_array(self, shm):
        a = shm.array(3, "a", align_line=True, pad_to_line=True)
        b = shm.array(1, "b")
        assert b.base % 32 == 0
        assert b.base >= a.base + 32

    def test_arrays_registered(self, shm):
        shm.array(4, "x")
        shm.scalar("y")
        assert [a.name for a in shm.arrays] == ["x", "y"]


class TestSharedArray:
    def test_addr_layout(self, shm):
        arr = shm.array(8, "a")
        assert arr.addr(0) == arr.base
        assert arr.addr(3) == arr.base + 12

    def test_peek_poke(self, shm):
        arr = shm.array(4, "a", fill=7.0)
        assert arr.peek(2) == 7.0
        arr.poke(2, 9.0)
        assert arr.peek(2) == 9.0

    def test_poke_many_and_snapshot(self, shm):
        arr = shm.array(3, "a")
        arr.poke_many([1, 2, 3])
        assert arr.snapshot() == [1, 2, 3]

    def test_poke_many_length_checked(self, shm):
        arr = shm.array(3, "a")
        with pytest.raises(ValueError):
            arr.poke_many([1, 2])

    def test_bounds_checked(self, shm):
        arr = shm.array(3, "a")
        with pytest.raises(IndexError):
            arr.peek(3)
        with pytest.raises(IndexError):
            arr.poke(-1, 0)

    def test_len(self, shm):
        assert len(shm.array(5, "a")) == 5

    def test_scalar_value(self, shm):
        s = shm.scalar("s", fill=3)
        assert s.value() == 3


class TestSimulatedAccess:
    def _machine(self, system="RCinv"):
        return Machine(MachineConfig(nprocs=2), system)

    def test_read_write_roundtrip(self):
        m = self._machine()
        arr = m.shm.array(8, "a")
        got = []

        def worker(ctx):
            if ctx.pid == 0:
                yield from arr.write(3, 42.5)
            else:
                yield from ctx.compute(10000)
                got.append((yield from arr.read(3)))

        m.run(worker)
        assert got == [42.5]

    def test_add_returns_new_value(self):
        m = self._machine()
        s = m.shm.scalar("s", fill=10)
        results = []

        def worker(ctx):
            if ctx.pid == 0:
                results.append((yield from s.incr(5)))
            else:
                yield from ctx.compute(1)

        m.run(worker)
        assert results == [15]
        assert s.value() == 15

    def test_read_range_write_range(self):
        m = self._machine()
        arr = m.shm.array(8, "a")
        got = []

        def worker(ctx):
            if ctx.pid == 0:
                yield from arr.write_range(2, [1.0, 2.0, 3.0])
            else:
                yield from ctx.compute(10000)
                got.append((yield from arr.read_range(2, 5)))

        m.run(worker)
        assert got == [[1.0, 2.0, 3.0]]

    def test_range_bounds(self):
        m = self._machine()
        arr = m.shm.array(4, "a")

        def worker(ctx):
            if ctx.pid == 0:
                yield from arr.read_range(2, 5)
            else:
                yield from ctx.compute(1)

        with pytest.raises(IndexError):
            m.run(worker)

    def test_write_range_bounds(self):
        m = self._machine()
        arr = m.shm.array(4, "a")

        def worker(ctx):
            if ctx.pid == 0:
                yield from arr.write_range(3, [1, 2])
            else:
                yield from ctx.compute(1)

        with pytest.raises(IndexError):
            m.run(worker)

    def test_simulated_reads_counted(self):
        m = self._machine()
        arr = m.shm.array(8, "a")

        def worker(ctx):
            if ctx.pid == 0:
                for i in range(8):
                    yield from arr.read(i)
            else:
                yield from ctx.compute(1)

        res = m.run(worker)
        assert res.procs[0].reads == 8
