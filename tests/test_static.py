"""Static analysis subsystem: lockset pass, determinism lint, baseline.

The differential test at the bottom is the load-bearing one: every race
the *dynamic* detector finds on RacyDemo must also be flagged
*statically*, so the static pass is a sound gate for the deliberately
racy oracle.
"""

import json
import textwrap

import pytest

from repro.__main__ import main
from repro.analysis.checkers import CheckSpec, execute_check
from repro.analysis.naming import sync_label
from repro.analysis.static import (
    analyze_app_module,
    lint_file,
    load_baseline,
    repo_root,
    run_lint,
    write_baseline,
)
from repro.analysis.static.model import (
    Finding,
    LintReport,
    SuppressionIndex,
    scan_pragmas,
)
from repro.apps.factory import AppFactory
from repro.config import MachineConfig
from repro.runtime.context import Machine


def analyze_snippet(tmp_path, source):
    """Write a synthetic app module and run Pass 1 over it."""
    path = tmp_path / "snippet.py"
    path.write_text(textwrap.dedent(source))
    return analyze_app_module(path, "snippet.py")


class TestLocksetPass:
    def test_locked_accesses_are_clean(self, tmp_path):
        report = analyze_snippet(
            tmp_path,
            """
            class App:
                def setup(self, machine):
                    self.data = machine.shm.array(8, "data")
                    self.lock = Lock(machine.sync)

                def worker(self, ctx):
                    yield from self.lock.acquire()
                    v = yield from self.data.read(0)
                    yield from self.data.write(0, v + 1)
                    yield from self.lock.release()
            """,
        )
        assert report.classes == ["App"]
        assert report.findings == []
        assert "data" in {d.label for d in report.decls.values()}

    def test_unlocked_write_write_races(self, tmp_path):
        report = analyze_snippet(
            tmp_path,
            """
            class App:
                def setup(self, machine):
                    self.data = machine.shm.array(8, "data")

                def worker(self, ctx):
                    yield from self.data.write(0, ctx.pid)
            """,
        )
        assert report.race_labels == {"data"}
        assert any(f.rule == "lockset-race" for f in report.findings)
        # Attribution: file, line, and the shared label all surface.
        f = report.findings[0]
        assert f.path == "snippet.py"
        assert f.line > 0
        assert "data" in f.message

    def test_barrier_separates_intervals(self, tmp_path):
        report = analyze_snippet(
            tmp_path,
            """
            class App:
                def setup(self, machine):
                    self.data = machine.shm.array(8, "data")
                    self.bar = Barrier(machine.sync)

                def worker(self, ctx):
                    yield from self.data.write(0, 1)
                    yield from self.bar.wait()
                    v = yield from self.data.read(0)
            """,
        )
        # Write and read are in different barrier intervals -> only the
        # same-interval write/write self-pair could fire, and a single
        # unconditional write to the same site races with itself.
        labels = {f.detail for f in report.findings}
        assert not any("r@worker" in d for d in labels)

    def test_exclusive_guard_suppresses_self_race(self, tmp_path):
        report = analyze_snippet(
            tmp_path,
            """
            class App:
                def setup(self, machine):
                    self.data = machine.shm.array(8, "data")

                def worker(self, ctx):
                    if ctx.pid == 0:
                        yield from self.data.write(0, 1)
            """,
        )
        assert report.findings == []

    def test_owner_disjoint_indices_do_not_race(self, tmp_path):
        report = analyze_snippet(
            tmp_path,
            """
            class App:
                def setup(self, machine):
                    self.data = machine.shm.array(8, "data")

                def worker(self, ctx):
                    yield from self.data.write(ctx.pid, 1)
            """,
        )
        # Same canonical owner form ("pid") on both sides: disjoint per
        # processor, so no conflict.
        assert report.findings == []

    def test_cross_owner_forms_race(self, tmp_path):
        report = analyze_snippet(
            tmp_path,
            """
            class App:
                def setup(self, machine):
                    self.data = machine.shm.array(8, "data")

                def worker(self, ctx):
                    yield from self.data.write(ctx.pid, 1)
                    v = yield from self.data.read(1 - ctx.pid)
            """,
        )
        assert report.race_labels == {"data"}

    def test_relaxed_read_keeps_write_write(self, tmp_path):
        report = analyze_snippet(
            tmp_path,
            """
            class App:
                def setup(self, machine):
                    self.data = machine.shm.array(8, "data", relaxed="read")

                def worker(self, ctx):
                    v = yield from self.data.read(0)
                    yield from self.data.write(0, v)
            """,
        )
        # read/write pairs suppressed, write/write still reported.
        kinds = {f.detail for f in report.findings}
        assert any("w@worker vs w@worker" in d for d in kinds)
        assert not any("r@worker" in d for d in kinds)
        assert report.suppressed  # the read/write pair went somewhere

    def test_relaxed_all_suppresses_everything(self, tmp_path):
        report = analyze_snippet(
            tmp_path,
            """
            class App:
                def setup(self, machine):
                    self.data = machine.shm.array(8, "data", relaxed="all")

                def worker(self, ctx):
                    v = yield from self.data.read(0)
                    yield from self.data.write(0, v)
            """,
        )
        assert report.findings == []
        assert report.suppressed

    def test_unused_relaxed_label_is_reported(self, tmp_path):
        report = analyze_snippet(
            tmp_path,
            """
            class App:
                def setup(self, machine):
                    self.data = machine.shm.array(8, "data", relaxed="read")
                    self.lock = Lock(machine.sync)

                def worker(self, ctx):
                    yield from self.lock.acquire()
                    yield from self.data.write(0, 1)
                    yield from self.lock.release()
            """,
        )
        assert report.findings == []
        assert any(f.rule == "unused-suppression" for f in report.unused)

    def test_helper_inlining_carries_lockset(self, tmp_path):
        report = analyze_snippet(
            tmp_path,
            """
            class App:
                def setup(self, machine):
                    self.data = machine.shm.array(8, "data")
                    self.lock = Lock(machine.sync)

                def _bump(self):
                    v = yield from self.data.read(0)
                    yield from self.data.write(0, v + 1)

                def worker(self, ctx):
                    yield from self.lock.acquire()
                    yield from self._bump()
                    yield from self.lock.release()
            """,
        )
        assert report.findings == []
        # The inlined accesses carry the caller's lockset...
        data_sites = [s for s in report.sites if s.array == "data"]
        assert data_sites and all("lock" in s.lockset for s in data_sites)
        # ...and are attributed to the helper in the per-function summary.
        helper = report.summaries["App._bump"]
        assert helper.reads == 1 and helper.writes == 1
        assert report.summaries["App.worker"].acquires == 1

    def test_function_summaries_count_sync_ops(self, tmp_path):
        report = analyze_snippet(
            tmp_path,
            """
            class App:
                def setup(self, machine):
                    self.data = machine.shm.array(8, "data")
                    self.lock = Lock(machine.sync)
                    self.bar = Barrier(machine.sync)

                def worker(self, ctx):
                    yield from self.lock.acquire()
                    yield from self.data.write(0, 1)
                    yield from self.lock.release()
                    yield from self.bar.wait()
            """,
        )
        s = report.summaries["App.worker"]
        assert s.acquires == 1
        assert s.releases == 1
        assert s.barrier_waits == 1


class TestDeterminismPass:
    def lint_snippet(self, tmp_path, source, name="mod.py"):
        path = tmp_path / name
        path.write_text(textwrap.dedent(source))
        return lint_file(path, name)

    def test_clean_module(self, tmp_path):
        findings = self.lint_snippet(
            tmp_path,
            """
            import random

            def pick(seq, seed):
                rng = random.Random(seed)
                return rng.choice(sorted(seq))
            """,
        )
        assert findings == []

    def test_wall_clock_flagged(self, tmp_path):
        findings = self.lint_snippet(
            tmp_path,
            """
            import time

            def stamp():
                return time.time()
            """,
        )
        assert [f.rule for f in findings] == ["wall-clock"]

    def test_unseeded_random_flagged(self, tmp_path):
        findings = self.lint_snippet(
            tmp_path,
            """
            import random

            def pick(seq):
                return random.choice(seq)
            """,
        )
        assert [f.rule for f in findings] == ["unseeded-random"]

    def test_set_iteration_flagged(self, tmp_path):
        findings = self.lint_snippet(
            tmp_path,
            """
            def walk(items):
                pending = {1, 2, 3}
                for x in pending:
                    items.append(x)
            """,
        )
        assert [f.rule for f in findings] == ["set-iteration"]

    def test_sorted_set_iteration_is_clean(self, tmp_path):
        findings = self.lint_snippet(
            tmp_path,
            """
            def walk(items):
                pending = {1, 2, 3}
                for x in sorted(pending):
                    items.append(x)
            """,
        )
        assert findings == []

    def test_nonfrozen_config_flagged(self, tmp_path):
        findings = self.lint_snippet(
            tmp_path,
            """
            from dataclasses import dataclass

            @dataclass
            class CacheConfig:
                lines: int = 64
            """,
        )
        assert [f.rule for f in findings] == ["nonfrozen-config"]

    def test_frozen_config_is_clean(self, tmp_path):
        findings = self.lint_snippet(
            tmp_path,
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class CacheConfig:
                lines: int = 64
            """,
        )
        assert findings == []

    def test_hot_class_without_slots_flagged(self, tmp_path):
        findings = self.lint_snippet(
            tmp_path,
            """
            class Line:  # lint: hot
                def __init__(self):
                    self.tag = 0
            """,
        )
        assert [f.rule for f in findings] == ["hot-slots"]

    def test_hot_class_with_slots_is_clean(self, tmp_path):
        findings = self.lint_snippet(
            tmp_path,
            """
            class Line:  # lint: hot
                __slots__ = ("tag",)

                def __init__(self):
                    self.tag = 0
            """,
        )
        assert findings == []

    def test_fastpath_alloc_flagged(self, tmp_path):
        findings = self.lint_snippet(
            tmp_path,
            """
            def drain(heap):
                while heap:  # lint: fastpath
                    try:
                        heap.pop()
                    except IndexError:
                        break
            """,
        )
        assert [f.rule for f in findings] == ["fastpath-alloc"]

    def test_fastpath_clean_loop(self, tmp_path):
        findings = self.lint_snippet(
            tmp_path,
            """
            def drain(heap):
                while heap:  # lint: fastpath
                    heap.pop()
            """,
        )
        assert findings == []


class TestBaselineAndPragmas:
    def make_report(self):
        report = LintReport()
        report.findings.append(
            Finding(rule="lockset-race", path="a.py", line=3, message="boom")
        )
        report.findings.append(
            Finding(rule="wall-clock", path="b.py", line=9, message="tick")
        )
        report.files_scanned = 2
        return report

    def test_baseline_round_trip(self, tmp_path):
        report = self.make_report()
        path = write_baseline(tmp_path / "base.json", report)
        baseline = load_baseline(path)
        assert set(baseline) == {f.key() for f in report.findings}
        assert report.new_against(set(baseline)) == []

    def test_new_findings_survive_baseline(self, tmp_path):
        report = self.make_report()
        path = write_baseline(tmp_path / "base.json", report)
        baseline = load_baseline(path)
        report.findings.append(
            Finding(rule="lockset-race", path="c.py", line=1, message="new")
        )
        new = report.new_against(set(baseline))
        assert [f.path for f in new] == ["c.py"]

    def test_stale_baseline_entries_detected(self, tmp_path):
        report = self.make_report()
        path = write_baseline(tmp_path / "base.json", report)
        baseline = load_baseline(path)
        fixed = LintReport()
        fixed.findings.append(report.findings[0])
        stale = fixed.stale_baseline(set(baseline))
        assert stale == [report.findings[1].key()]

    def test_baseline_keys_are_line_independent(self):
        a = Finding(rule="r", path="p.py", line=3, message="m", detail="d")
        b = Finding(rule="r", path="p.py", line=99, message="m", detail="d")
        assert a.key() == b.key()

    def test_bad_schema_rejected(self, tmp_path):
        path = tmp_path / "base.json"
        path.write_text(json.dumps({"schema": 999, "findings": []}))
        with pytest.raises(ValueError):
            load_baseline(path)

    def test_pragma_scan_and_match(self):
        src = "x = 1  # lint: ok[wall-clock]\n# lint: ok-module[set-iteration]\n"
        pragmas = scan_pragmas("m.py", src)
        assert {(p.rule, p.module_wide) for p in pragmas} == {
            ("wall-clock", False),
            ("set-iteration", True),
        }
        index = SuppressionIndex()
        index.add_file("m.py", src)
        same_line = Finding(rule="wall-clock", path="m.py", line=1, message="x")
        anywhere = Finding(rule="set-iteration", path="m.py", line=40, message="y")
        other = Finding(rule="wall-clock", path="m.py", line=40, message="z")
        assert index.matches(same_line)
        assert index.matches(anywhere)
        assert not index.matches(other)
        assert index.unused() == []

    def test_unused_pragma_reported(self):
        index = SuppressionIndex()
        index.add_file("m.py", "x = 1  # lint: ok[wall-clock]\n")
        assert [p.rule for p in index.unused()] == ["wall-clock"]


class TestSyncNaming:
    def test_sync_label_format(self):
        assert sync_label("lock", "racy.lock", 0) == "lock:racy.lock#0"
        assert sync_label("lock", "", 3) == "lock:#3"
        assert sync_label("flag_set") == "flag"

    def test_manager_names_round_trip(self):
        machine = Machine(MachineConfig(nprocs=2), "RCinv")
        sync = machine.sync
        lid = sync.new_lock("mf.count_lock")
        bid = sync.new_barrier(2, name="phase")
        anon = sync.new_lock()  # anonymous: not in sync_names()
        assert sync.sync_name("lock", lid) == "mf.count_lock"
        assert sync.sync_name("barrier", bid) == "phase"
        names = sync.sync_names()
        assert names[("lock", lid)] == "mf.count_lock"
        assert ("lock", anon) not in names
        # The shared pretty-printer renders the dynamic name the same way
        # the static pass labels the declaration.
        assert sync_label("lock", names[("lock", lid)], lid) == f"lock:mf.count_lock#{lid}"


class TestRepoLint:
    def test_repo_is_clean_against_baseline(self):
        root = repo_root()
        report, app_reports = run_lint(root=root)
        baseline = load_baseline(root / "lint_baseline.json")
        assert report.new_against(set(baseline)) == []
        assert report.stale_baseline(set(baseline)) == []
        assert report.unused_suppressions == []
        assert report.files_scanned >= 30
        # Every analysed app produced per-function summaries.
        assert app_reports
        for app in app_reports:
            assert app.summaries

    def test_core_has_no_unsuppressed_determinism_findings(self):
        report, _ = run_lint(apps=False, core=True)
        assert report.findings == []

    def test_cli_lint_clean_exit(self, capsys):
        assert main(["lint", "--all"]) == 0
        out = capsys.readouterr().out
        assert "0 new finding(s)" in out

    def test_cli_lint_json_report(self, tmp_path, capsys):
        out_path = tmp_path / "report.json"
        assert main(["lint", "--all", "--report", str(out_path), "--format", "json"]) == 0
        capsys.readouterr()
        doc = json.loads(out_path.read_text())
        assert doc["new"] == []
        assert any(path.endswith("racy.py") for path in doc["apps"])
        racy = doc["apps"]["src/repro/apps/racy.py"]
        assert racy["race_labels"] == ["racy.data"]


class TestRacyDifferential:
    """Dynamic races on RacyDemo must be a subset of the static report."""

    def test_every_dynamic_race_is_statically_flagged(self):
        root = repo_root()
        static = analyze_app_module(
            root / "src" / "repro" / "apps" / "racy.py", "src/repro/apps/racy.py"
        )
        assert static.race_labels  # the oracle must be flagged at all

        spec = CheckSpec(
            factory=AppFactory("RacyDemo", rounds=2),
            system="RCinv",
            config=MachineConfig(nprocs=2),
            verify=False,
        )
        outcome = execute_check(spec)
        assert not outcome.races.clean  # the dynamic oracle still fires
        dynamic_labels = {race.array for race in outcome.races.races}
        assert dynamic_labels  # sanity: attribution worked
        assert dynamic_labels <= static.race_labels
