"""Locks and barriers: semantics and timing."""

import pytest

from repro.config import MachineConfig
from repro.runtime import Barrier, Lock, Machine
from repro.sim.events import Compute


def run(machine, worker):
    return machine.run(worker)


class TestLock:
    def test_mutual_exclusion(self):
        machine = Machine(MachineConfig(nprocs=4), "RCinv")
        lock = Lock(machine.sync)
        trace = []

        def worker(ctx):
            for _ in range(3):
                yield from lock.acquire()
                trace.append(("in", ctx.pid))
                yield Compute(20)
                trace.append(("out", ctx.pid))
                yield from lock.release()

        run(machine, worker)
        # trace must alternate in/out with matching pids (never nested)
        depth = 0
        current = None
        for kind, pid in trace:
            if kind == "in":
                assert depth == 0
                depth, current = 1, pid
            else:
                assert depth == 1 and pid == current
                depth = 0

    def test_uncontended_cost_is_round_trip(self):
        machine = Machine(MachineConfig(nprocs=2), "RCinv")
        lock = Lock(machine.sync)

        def worker(ctx):
            if ctx.pid == 0:
                yield from lock.acquire()
                yield from lock.release()

        res = run(machine, worker)
        assert res.procs[0].sync_wait > 0  # grant round trip
        assert res.procs[0].sync_wait < 200

    def test_contended_waiter_charged_sync_wait(self):
        machine = Machine(MachineConfig(nprocs=2), "RCinv")
        lock = Lock(machine.sync)

        def worker(ctx):
            if ctx.pid == 0:
                yield from lock.acquire()
                yield Compute(1000)
                yield from lock.release()
            else:
                yield Compute(10)  # arrive while pid 0 holds the lock
                yield from lock.acquire()
                yield from lock.release()

        res = run(machine, worker)
        assert res.procs[1].sync_wait > 900

    def test_fifo_grant_order(self):
        machine = Machine(MachineConfig(nprocs=4), "RCinv")
        lock = Lock(machine.sync)
        order = []

        def worker(ctx):
            yield Compute(ctx.pid * 10 + 1)  # stagger arrivals 1,11,21,31
            yield from lock.acquire()
            order.append(ctx.pid)
            yield Compute(500)
            yield from lock.release()

        run(machine, worker)
        assert order == [0, 1, 2, 3]

    def test_release_by_non_holder_raises(self):
        machine = Machine(MachineConfig(nprocs=2), "RCinv")
        lock = Lock(machine.sync)

        def worker(ctx):
            if ctx.pid == 1:
                yield from lock.release()
            else:
                yield Compute(1)

        with pytest.raises(RuntimeError):
            run(machine, worker)

    def test_stats_counted(self):
        machine = Machine(MachineConfig(nprocs=2), "RCinv")
        lock = Lock(machine.sync)

        def worker(ctx):
            yield Compute(ctx.pid)
            yield from lock.acquire()
            yield Compute(100)
            yield from lock.release()

        run(machine, worker)
        assert machine.sync.lock_acquires == 2
        assert machine.sync.lock_contended == 1

    def test_many_locks_have_distinct_homes(self):
        machine = Machine(MachineConfig(nprocs=4), "RCinv")
        locks = [Lock(machine.sync) for _ in range(8)]
        homes = {machine.sync._locks[lk.lock_id].home for lk in locks}
        assert homes == {0, 1, 2, 3}


class TestBarrier:
    def test_all_wait_for_last(self):
        machine = Machine(MachineConfig(nprocs=4), "RCinv")
        bar = Barrier(machine.sync)
        after = []

        def worker(ctx):
            yield Compute(100 * (ctx.pid + 1))
            yield from bar.wait()
            after.append(ctx.pid)

        res = run(machine, worker)
        # everyone departs after the slowest arriver; departures stagger
        # only by the serialised release multicast (~tens of cycles)
        finishes = [p.finish_time for p in res.procs]
        assert max(finishes) - min(finishes) < 200
        assert min(finishes) >= 400

    def test_fast_arrivals_accumulate_sync_wait(self):
        machine = Machine(MachineConfig(nprocs=2), "RCinv")
        bar = Barrier(machine.sync)

        def worker(ctx):
            yield Compute(10 if ctx.pid == 0 else 2000)
            yield from bar.wait()

        res = run(machine, worker)
        assert res.procs[0].sync_wait > 1800
        assert res.procs[1].sync_wait < 200

    def test_reusable_across_episodes(self):
        machine = Machine(MachineConfig(nprocs=4), "RCinv")
        bar = Barrier(machine.sync)
        counter = []

        def worker(ctx):
            for i in range(5):
                yield Compute((ctx.pid + 1) * (i + 1))
                yield from bar.wait()
                if ctx.pid == 0:
                    counter.append(i)

        run(machine, worker)
        assert counter == [0, 1, 2, 3, 4]
        assert machine.sync.barrier_episodes == 5

    def test_subset_barrier(self):
        machine = Machine(MachineConfig(nprocs=4), "RCinv")
        bar = Barrier(machine.sync, participants=2)

        def worker(ctx):
            if ctx.pid < 2:
                yield from bar.wait()
            else:
                yield Compute(1)

        run(machine, worker)  # must not deadlock

    def test_invalid_participants(self):
        machine = Machine(MachineConfig(nprocs=4), "RCinv")
        with pytest.raises(ValueError):
            Barrier(machine.sync, participants=0)

    def test_barrier_counts_stat(self):
        machine = Machine(MachineConfig(nprocs=2), "RCinv")
        bar = Barrier(machine.sync)

        def worker(ctx):
            yield from bar.wait()

        res = run(machine, worker)
        assert all(p.barriers == 1 for p in res.procs)


class TestRCCoupling:
    def test_release_flushes_store_buffer(self):
        """A lock release must drain pending writes (buffer flush > 0)."""
        machine = Machine(MachineConfig(nprocs=2), "RCinv")
        lock = Lock(machine.sync)
        arr = machine.shm.array(64, "a", align_line=True)

        def worker(ctx):
            if ctx.pid == 0:
                yield from lock.acquire()
                for i in range(0, 64, 8):
                    yield from arr.write(i, 1.0)
                yield from lock.release()
            else:
                yield Compute(1)

        res = run(machine, worker)
        assert res.procs[0].buffer_flush > 0

    def test_zmachine_release_free(self):
        machine = Machine(MachineConfig(nprocs=2), "z-mc")
        lock = Lock(machine.sync)
        arr = machine.shm.array(64, "a")

        def worker(ctx):
            if ctx.pid == 0:
                yield from lock.acquire()
                for i in range(0, 64, 8):
                    yield from arr.write(i, 1.0)
                yield from lock.release()
            else:
                yield Compute(1)

        res = run(machine, worker)
        assert res.procs[0].buffer_flush == 0.0
