"""Tests for the differential fuzzing harness (``repro fuzz``).

Covers all three oracle families, the delta-debugging shrinker (including
the injected-engine-bug acceptance scenario: a fault is caught, shrunk to
<= 4 processors at smoke scale, and written as a replayable repro file),
and the corpus ledger's resume/dedup round-trips.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.analysis import fuzz
from repro.analysis.fuzz import (
    DECORATORS,
    ORACLES,
    SYSTEMS,
    FuzzDraw,
    FuzzJob,
    append_corpus,
    diff_outcomes,
    draw_stream,
    evaluate_draw,
    failure_predicate,
    first_divergence,
    is_smoke_scale,
    load_corpus,
    make_draw,
    oracle_checkers,
    oracle_decorators,
    oracle_reference,
    replay_repro,
    reproduce_command,
    run_fuzz,
    shrink_draw,
    write_repro,
)


def _draw(app="IS", kwargs=None, system="RCinv", nprocs=2, **rest):
    if kwargs is None:
        kwargs = {"n_keys": 64, "nbuckets": 8, "seed": 0}
    return FuzzDraw(
        app=app,
        app_kwargs=tuple(sorted(kwargs.items())),
        system=system,
        nprocs=nprocs,
        **rest,
    )


# ---------------------------------------------------------------------------
# draws: determinism, round-trips, coverage


def test_make_draw_is_deterministic():
    assert make_draw(7, 3) == make_draw(7, 3)
    stream = draw_stream(7)
    assert [next(stream) for _ in range(4)] == [make_draw(7, i) for i in range(4)]


def test_draw_key_ignores_provenance():
    draw = make_draw(0, 0)
    relabeled = replace(draw, seed=99, index=42)
    assert relabeled.key() == draw.key()
    assert replace(draw, nprocs=draw.nprocs + 1).key() != draw.key()


def test_draw_doc_round_trip():
    for draw in (make_draw(1, i) for i in range(20)):
        doc = json.loads(json.dumps(draw.to_doc()))
        assert FuzzDraw.from_doc(doc) == draw


def test_draw_space_coverage_and_validity():
    draws = [make_draw(0, i) for i in range(200)]
    assert {d.app for d in draws} == set(fuzz.APP_MODULES)
    assert {d.system for d in draws} == set(SYSTEMS)
    assert any(d.scenario is None for d in draws)
    assert {d.scenario for d in draws if d.scenario is not None} >= {"hotspot", "bursty"}
    assert any(d.decorators for d in draws)
    assert {dec for d in draws for dec in d.decorators} == set(DECORATORS)
    for draw in draws:
        draw.config()  # raises if the drawn degradation spec is invalid
        draw.factory()


def test_is_smoke_scale():
    assert is_smoke_scale(_draw())
    assert not is_smoke_scale(_draw(kwargs={"n_keys": 512, "nbuckets": 8}))
    assert is_smoke_scale(_draw(app="Cholesky", kwargs={"grid": (4, 4)}))
    assert not is_smoke_scale(_draw(app="Cholesky", kwargs={"grid": (6, 6)}))
    # omitted kwargs fall back to constructor defaults (full scale)
    assert not is_smoke_scale(_draw(app="Nbody", kwargs={}))


# ---------------------------------------------------------------------------
# divergence reporting


def test_first_divergence():
    assert first_divergence({"a": 1}, {"a": 1}) is None
    assert first_divergence({"a": {"b": 1}}, {"a": {"b": 2}}) == "$.a.b"
    assert first_divergence({"a": [1, 2]}, {"a": [1, 3]}) == "$.a[1]"
    assert first_divergence({"a": [1]}, {"a": [1, 2]}) == "$.a.len"
    assert first_divergence({"a": 1}, {"a": 1.5}) == "$.a"  # type mismatch
    assert first_divergence({"a": 1}, {"a": 1, "b": 2}) == "$.b"


def test_diff_outcomes_normalises_tuples_and_reports_values():
    assert diff_outcomes({"x": (1, 2)}, {"x": [1, 2]}, "a", "b") is None
    report = diff_outcomes(
        {"procs": [{"busy": 1.0}]}, {"procs": [{"busy": 2.0}]}, "wheel", "ref"
    )
    assert report == "$.procs[0].busy: wheel=1.0 vs ref=2.0"


# ---------------------------------------------------------------------------
# the three oracle families, clean on real draws


def test_oracle_reference_clean():
    assert oracle_reference(_draw()) is None


def test_oracle_decorators_clean():
    draw = _draw(decorators=("metrics", "checked"))
    assert oracle_decorators(draw) is None
    # no decorators drawn -> vacuously clean, no simulation needed
    assert oracle_decorators(_draw()) is None


def test_oracle_checkers_clean_on_clean_app():
    assert oracle_checkers(_draw()) is None


def test_oracle_checkers_tolerates_statically_flagged_races():
    # RacyDemo races by design; the static analyzer flags it, so the
    # dynamic findings are a subset and the oracle stays quiet.
    assert oracle_checkers(_draw(app="RacyDemo", kwargs={"rounds": 2})) is None


def test_evaluate_draw_statuses():
    ok = evaluate_draw(_draw(), oracles=("reference",))
    assert ok.ok and ok.status == "ok" and not ok.failures

    bad_knob = _draw(scenario="hotspot", knobs=(("mem_factor", 0.0),))
    invalid = evaluate_draw(bad_knob, oracles=("reference",))
    assert invalid.status == "invalid"
    assert invalid.failures[0]["oracle"] == "draw"

    def crash(draw):
        raise RuntimeError("boom")

    crashed = evaluate_draw(_draw(), ("reference",), {"reference": crash})
    assert crashed.status == "mismatch"
    assert "oracle crashed: RuntimeError: boom" in crashed.failures[0]["detail"]


def test_fuzz_job_fingerprint_covers_draw_and_oracles():
    draw = make_draw(0, 0)
    a = FuzzJob(draw, ORACLES).fingerprint()
    assert draw.key() in a
    assert FuzzJob(draw, ("reference",)).fingerprint() != a
    assert FuzzJob(replace(draw, nprocs=draw.nprocs + 1), ORACLES).fingerprint() != a


# ---------------------------------------------------------------------------
# injected engine bug: the reference oracle must see a perturbed engine


def test_injected_engine_bug_is_caught(monkeypatch):
    from repro.sim.reference import ReferenceEngine

    orig = ReferenceEngine._charge

    def buggy(self, stats, tid, now, res):
        t = orig(self, stats, tid, now, res)
        stats.busy += 1e-9  # mis-accounts one nano-cycle per access
        return t

    monkeypatch.setattr(ReferenceEngine, "_charge", buggy)
    detail = oracle_reference(_draw())
    assert detail is not None and "busy" in detail


# ---------------------------------------------------------------------------
# shrinker


def _faulty_reference(draw: FuzzDraw) -> str | None:
    """Stub fault model: the 'bug' needs IS and at least two processors."""
    if draw.app == "IS" and draw.nprocs >= 2:
        return "$.procs[0].busy: wheel=1.0 vs reference=2.0"
    return None


FAULTY = {"reference": _faulty_reference}


def test_shrinker_converges_to_smoke_scale():
    big = _draw(
        kwargs={"n_keys": 512, "nbuckets": 64, "seed": 1},
        system="RCupd",
        nprocs=16,
        scenario="slow_links",
        knobs=(("bandwidth_factor", 2.0), ("latency_factor", 4.0), ("n_links", 2)),
        decorators=("metrics", "tracer"),
    )
    shrunk, attempts = shrink_draw(big, failure_predicate(("reference",), FAULTY))
    assert shrunk.nprocs == 2  # the fault needs >= 2 procs; greedy stops there
    assert is_smoke_scale(shrunk)
    assert shrunk.scenario is None and shrunk.knobs == ()
    assert shrunk.decorators == ()
    assert 0 < attempts < 200


def test_shrinker_respects_attempt_budget():
    big = _draw(kwargs={"n_keys": 512, "nbuckets": 64}, nprocs=16)
    shrunk, attempts = shrink_draw(
        big, failure_predicate(("reference",), FAULTY), max_attempts=1
    )
    assert attempts == 1
    assert shrunk.nprocs <= big.nprocs


def test_shrinker_steps_over_invalid_candidates():
    # A predicate that fails for every *valid* draw: shrinking must not
    # crash when a candidate leaves the valid draw space.
    def always(draw):
        return evaluate_draw(draw, ("reference",), {"reference": lambda d: "x"})
    shrunk, _ = shrink_draw(
        _draw(nprocs=8), lambda d: always(d).status == "mismatch", max_attempts=30
    )
    assert shrunk.nprocs == 1


# ---------------------------------------------------------------------------
# corpus ledger


def test_corpus_round_trip_last_wins(tmp_path):
    ledger = tmp_path / "corpus.jsonl"
    assert load_corpus(ledger) == {}
    append_corpus(ledger, [{"key": "k1", "status": "ok"}, {"key": "k2", "status": "ok"}])
    append_corpus(ledger, [{"key": "k1", "status": "mismatch"}])
    ledger.open("a").write("not json\n\n")  # garbage + blank lines tolerated
    corpus = load_corpus(ledger)
    assert set(corpus) == {"k1", "k2"}
    assert corpus["k1"]["status"] == "mismatch"  # last record wins


def test_run_fuzz_resumes_from_ledger(tmp_path):
    ledger = tmp_path / "corpus.jsonl"
    ok_funcs = {"reference": lambda draw: None}
    first = run_fuzz(
        seed=3, max_draws=5, oracles=("reference",), ledger=ledger,
        repro_dir=tmp_path / "repros", oracle_funcs=ok_funcs,
    )
    assert first.clean and first.evaluated == 5 and first.skipped == 0
    second = run_fuzz(
        seed=3, max_draws=5, oracles=("reference",), ledger=ledger,
        repro_dir=tmp_path / "repros", oracle_funcs=ok_funcs,
    )
    assert second.clean and second.evaluated == 5
    assert second.skipped >= 5  # the first session's draws deduplicate
    assert len(load_corpus(ledger)) == 10
    # resume disabled: the same early draws are evaluated again
    third = run_fuzz(
        seed=3, max_draws=2, oracles=("reference",), ledger=tmp_path / "other.jsonl",
        repro_dir=tmp_path / "repros", resume=False, oracle_funcs=ok_funcs,
    )
    assert third.evaluated == 2 and third.skipped == 0


# ---------------------------------------------------------------------------
# end-to-end: a faulty oracle is caught, shrunk, written, and replayable


def test_run_fuzz_catches_shrinks_and_writes_repro(tmp_path):
    seed = 0
    target = next(
        i for i in range(500) if _faulty_reference(make_draw(seed, i)) is not None
    )
    report = run_fuzz(
        seed=seed,
        max_draws=target + 1,
        oracles=("reference",),
        ledger=tmp_path / "corpus.jsonl",
        repro_dir=tmp_path / "repros",
        oracle_funcs=FAULTY,
    )
    assert not report.clean
    record = report.mismatches[0]
    assert record["status"] == "mismatch"
    assert record["app"] == "IS"
    shrunk = FuzzDraw.from_doc(record["shrunk"])
    assert shrunk.nprocs <= 4
    assert is_smoke_scale(shrunk)
    assert record["shrink_evals"] > 0

    path = record["repro"]
    doc = json.loads(open(path).read())
    assert doc["command"] == reproduce_command(path)
    assert doc["shrunk_from"] == make_draw(seed, target).to_doc()
    assert doc["failures"][0]["oracle"] == "reference"

    # still failing under the fault model...
    draw, ev = replay_repro(path, FAULTY)
    assert draw == shrunk and ev.status == "mismatch"
    # ...and clean once the 'bug' is fixed
    _, fixed = replay_repro(path, {"reference": lambda d: None})
    assert fixed.ok

    # the mismatch and its shrink metadata land in the ledger
    corpus = load_corpus(tmp_path / "corpus.jsonl")
    assert corpus[record["key"]]["status"] == "mismatch"
    assert corpus[record["key"]]["repro"] == path


def test_write_repro_keeps_original_when_shrink_regresses(tmp_path):
    # If the shrunk draw no longer fails, run_fuzz falls back to the
    # original; write_repro itself just records what it is given.
    draw = _draw()
    ev = evaluate_draw(draw, ("reference",), FAULTY)
    assert ev.status == "mismatch"
    path = write_repro(draw, ev, tmp_path)
    doc = json.loads(path.read_text())
    assert "shrunk_from" not in doc
    assert FuzzDraw.from_doc(doc["draw"]) == draw


# ---------------------------------------------------------------------------
# golden --check mode (satellite: fixture verification without rewriting)


def test_golden_check_mode(tmp_path, monkeypatch):
    import tests.golden as golden

    doc = {"nprocs": 2, "scale": "smoke", "runs": {"A/B": {"total_time": 1.0}}}
    monkeypatch.setattr(
        golden, "build_fixture", lambda nprocs=16: json.loads(json.dumps(doc))
    )
    fixture = tmp_path / "golden.json"
    fixture.write_text(json.dumps(doc))
    before = fixture.read_text()
    assert golden.main(["--check", "--fixture", str(fixture)]) == 0
    assert fixture.read_text() == before  # --check never rewrites

    stale = {"nprocs": 2, "scale": "smoke", "runs": {"A/B": {"total_time": 2.0}}}
    fixture.write_text(json.dumps(stale))
    assert golden.main(["--check", "--fixture", str(fixture)]) == 1
    assert json.loads(fixture.read_text()) == stale

    assert golden.main(["--check", "--fixture", str(tmp_path / "missing.json")]) == 1


# ---------------------------------------------------------------------------
# CLI


def test_cli_fuzz_smoke(tmp_path):
    from repro.__main__ import main

    out = tmp_path / "report.json"
    rc = main([
        "fuzz", "--budget", "30", "--seed", "3", "--max-draws", "2",
        "--ledger", str(tmp_path / "corpus.jsonl"),
        "--repro-dir", str(tmp_path / "repros"),
        "--out", str(out), "--no-cache",
    ])
    assert rc == 0
    report = json.loads(out.read_text())
    assert report["clean"] and report["evaluated"] == 2
    assert len(load_corpus(tmp_path / "corpus.jsonl")) == 2


def test_cli_fuzz_replay(tmp_path):
    from repro.__main__ import main

    # A repro file recorded against a clean draw: replay must report that
    # the mismatch no longer reproduces and exit 0.
    draw = _draw()
    ev = evaluate_draw(draw, ("reference",), FAULTY)
    path = write_repro(draw, ev, tmp_path)
    assert main(["fuzz", "--replay", str(path)]) == 0


@pytest.mark.parametrize("flag", ["--budget", "--seed", "--oracle", "--replay"])
def test_cli_fuzz_flags_exist(flag, capsys):
    from repro.__main__ import main

    with pytest.raises(SystemExit):
        main(["fuzz", "--help"])
    assert flag in capsys.readouterr().out
