"""Self-profiler tests: bit-identity, accounting invariant, reporting.

The profiler's contract is twofold: with ``engine.profiler`` unset the
hot path pays one ``is None`` check and results are byte-for-byte what
they always were (the golden suite pins that globally); with a profiler
attached the *results are still bit-identical* — only host wall-time is
observed — and every attributed nanosecond is accounted against a
component without the totals exceeding the measured wall time.
"""

from __future__ import annotations

import json

import pytest

from repro import MachineConfig
from repro.apps.factory import AppFactory
from repro.obs.metrics import MetricsCollector
from repro.obs.profile import COMPONENTS, HostProfiler
from repro.runtime.context import Machine
from repro.sim.trace import TracingMemory

from .golden import PROC_FIELDS, run_case

#: (app preset, system) cases for the bit-identity matrix: one cheap
#: app on three very different systems plus a sync-heavy app.
CASES = [
    ("IS", "z-mc"),
    ("IS", "RCinv"),
    ("Cholesky", "SCinv"),
    ("Nbody", "RCupd"),
]


def _run(name: str, system: str, profiled: bool, tracer: bool = False):
    from repro.apps import preset

    factory = preset("smoke")[name][0]
    app = factory()
    machine = Machine(MachineConfig(nprocs=16), system)
    app.setup(machine)
    if tracer:
        TracingMemory.attach(machine, max_events=100_000)
    prof = HostProfiler.attach(machine) if profiled else None
    result = machine.run(app.worker)
    return result, machine, prof


def _fingerprint(result, machine) -> dict:
    doc = {
        "total_time": result.total_time,
        "ops": result.ops,
        "network_messages": machine.network.stats.messages,
        "network_bytes": machine.network.stats.bytes,
    }
    for field in PROC_FIELDS:
        doc[field] = [getattr(p, field) for p in result.procs]
    return doc


@pytest.mark.parametrize("name,system", CASES)
def test_profiled_run_bit_identical(name, system):
    plain, m_plain, _ = _run(name, system, profiled=False)
    prof_res, m_prof, prof = _run(name, system, profiled=True)
    assert _fingerprint(plain, m_plain) == _fingerprint(prof_res, m_prof)
    assert prof.ops == prof_res.ops


def test_profiled_run_bit_identical_under_tracer():
    """Profiling composes with the tracer without changing results."""
    plain, m_plain, _ = _run("IS", "RCinv", profiled=False, tracer=True)
    prof_res, m_prof, prof = _run("IS", "RCinv", profiled=True, tracer=True)
    assert _fingerprint(plain, m_plain) == _fingerprint(prof_res, m_prof)
    assert prof.has_decorators
    # Decorator overhead was split out of the memory component.
    assert prof.ns["tracer"] > 0


def test_accounting_invariant():
    """Components are non-negative and sum to at most the wall time."""
    _, _, prof = _run("IS", "RCinv", profiled=True)
    assert prof.wall_ns > 0
    assert prof.ops > 0
    assert prof.segments > 0
    for name in COMPONENTS:
        assert prof.ns[name] >= 0, f"negative attribution for {name}"
    attributed = prof.attributed_ns()
    assert attributed <= prof.wall_ns
    # The marks themselves are the only untracked time; they are cheap
    # relative to the work between them.
    assert attributed >= 0.8 * prof.wall_ns


def test_golden_results_match_unprofiled(golden_cases=None):
    """Spot-check three goldens: profiled == recorded unprofiled run."""
    for name, system in (("IS", "z-mc"), ("IS", "RCinv"), ("Cholesky", "SCinv")):
        factory = (
            AppFactory("RacyDemo")
            if name == "RacyDemo"
            else __import__("repro.apps", fromlist=["preset"]).preset("smoke")[name][0]
        )
        expected = run_case(factory, system, verify=False)
        res, machine, _ = _run(name, system, profiled=True)
        assert res.total_time == expected["total_time"]
        assert res.ops == expected["ops"]


def test_to_dict_and_table():
    _, _, prof = _run("IS", "RCinv", profiled=True)
    doc = prof.to_dict()
    assert doc["schema"] == 1
    assert doc["profile"] == "host-component-attribution"
    assert set(doc["components"]) == set(COMPONENTS)
    assert doc["wall_ns"] == prof.wall_ns
    assert doc["attributed_ns"] + doc["unattributed_ns"] == doc["wall_ns"]
    table = prof.table()
    for name in COMPONENTS:
        assert name in table
    assert "ns/op" in table


def test_to_perfetto_flame():
    _, _, prof = _run("IS", "RCinv", profiled=True)
    doc = prof.to_perfetto()
    events = doc["traceEvents"]
    root = [e for e in events if e.get("name") == "engine.run"]
    assert len(root) == 1
    slices = [e for e in events if e["ph"] == "X" and e["name"] != "engine.run"]
    assert slices, "expected component slices"
    # Children tile the root without overlap and fit inside it.
    cursor = 0.0
    for s in sorted(slices, key=lambda e: e["ts"]):
        assert s["ts"] == pytest.approx(cursor)
        cursor += s["dur"]
    assert cursor <= root[0]["dur"] * 1.001
    json.dumps(doc)  # must be serialisable


def test_metrics_collector_composes():
    """MetricsCollector's direct read/write bindings get re-pointed so
    the tracer/mem split stays exact (no negative components)."""
    from repro.apps import preset

    factory = preset("smoke")["IS"][0]
    app = factory()
    machine = Machine(MachineConfig(nprocs=16), "RCinv")
    app.setup(machine)
    MetricsCollector.attach(machine, interval=1000.0)
    prof = HostProfiler.attach(machine)
    machine.run(app.worker)
    assert prof.has_decorators
    for name in COMPONENTS:
        assert prof.ns[name] >= 0, f"negative attribution for {name}"


def test_disabled_profiler_is_default():
    """No profiler attached -> engine.profiler stays None (no hooks)."""
    machine = Machine(MachineConfig(nprocs=16), "RCinv")
    assert machine.engine.profiler is None
