"""Central work queue and task pool."""

import pytest

from repro.config import MachineConfig
from repro.runtime import CentralQueue, Machine, TaskPool
from repro.sim.events import Compute


def machine(nprocs=4, system="RCinv"):
    return Machine(MachineConfig(nprocs=nprocs), system)


class TestCentralQueue:
    def test_fifo_single_producer(self):
        m = machine(2)
        q = CentralQueue(m.shm, m.sync, capacity=16)
        got = []

        def worker(ctx):
            if ctx.pid == 0:
                for t in (5, 7, 9):
                    yield from q.put(t)
            else:
                yield from ctx.compute(50000)
                for _ in range(3):
                    got.append((yield from q.get()))
                got.append((yield from q.get()))

        m.run(worker)
        assert got == [5, 7, 9, None]

    def test_empty_get_returns_none(self):
        m = machine(1)
        q = CentralQueue(m.shm, m.sync, capacity=4)
        got = []

        def worker(ctx):
            got.append((yield from q.get()))

        m.run(worker)
        assert got == [None]

    def test_overflow_raises(self):
        m = machine(1)
        q = CentralQueue(m.shm, m.sync, capacity=2)

        def worker(ctx):
            yield from q.put(1)
            yield from q.put(2)
            yield from q.put(3)

        with pytest.raises(OverflowError):
            m.run(worker)

    def test_wraparound(self):
        m = machine(1)
        q = CentralQueue(m.shm, m.sync, capacity=2)
        got = []

        def worker(ctx):
            for t in range(6):
                yield from q.put(t)
                got.append((yield from q.get()))

        m.run(worker)
        assert got == list(range(6))

    def test_capacity_validation(self):
        m = machine(1)
        with pytest.raises(ValueError):
            CentralQueue(m.shm, m.sync, capacity=0)

    def test_concurrent_producers_consumers_conserve_items(self):
        m = machine(4)
        q = CentralQueue(m.shm, m.sync, capacity=64)
        consumed = []

        def worker(ctx):
            if ctx.pid < 2:
                for i in range(8):
                    yield from q.put(ctx.pid * 100 + i)
            else:
                for _ in range(20):
                    t = yield from q.get()
                    if t is not None:
                        consumed.append(t)
                    yield Compute(100)

        m.run(worker)
        assert len(consumed) == len(set(consumed)) <= 16


class TestTaskPool:
    def test_seed_and_drain(self):
        m = machine(2)
        pool = TaskPool(m.shm, m.sync, capacity=8)
        pool.seed([1, 2, 3])
        done = []

        def worker(ctx):
            while True:
                t = yield from pool.get_task()
                if t is None:
                    break
                done.append(t)
                yield Compute(10)
                yield from pool.task_done()

        m.run(worker)
        assert sorted(done) == [1, 2, 3]

    def test_dynamic_task_creation(self):
        """Tasks spawning tasks: all must be executed exactly once."""
        m = machine(4)
        pool = TaskPool(m.shm, m.sync, capacity=64)
        pool.seed([1])
        done = []

        def worker(ctx):
            while True:
                t = yield from pool.get_task()
                if t is None:
                    break
                done.append(t)
                if t < 16:
                    yield from pool.add_task(2 * t)
                    yield from pool.add_task(2 * t + 1)
                yield from pool.task_done()

        m.run(worker)
        assert sorted(done) == list(range(1, 32))

    def test_workers_terminate_when_empty(self):
        m = machine(4)
        pool = TaskPool(m.shm, m.sync, capacity=8)
        # no seed: all workers must exit immediately

        def worker(ctx):
            t = yield from pool.get_task()
            assert t is None

        m.run(worker)

    def test_seed_overflow_checked(self):
        m = machine(1)
        pool = TaskPool(m.shm, m.sync, capacity=2)
        with pytest.raises(OverflowError):
            pool.seed([1, 2, 3])
