"""Data-carrying flag synchronisation (DataChannel, paper Section 6)."""

import pytest

from repro.config import MachineConfig
from repro.runtime import Barrier, DataChannel, Machine
from repro.sim.events import Compute, FlagSet, FlagWait

ALL_SYSTEMS = ["z-mc", "RCinv", "RCupd", "RCadapt", "RCcomp", "SCinv"]


def pipeline(system, epochs=4, nwords=16, nprocs=4, depth=2, producer_gap=100):
    machine = Machine(MachineConfig(nprocs=nprocs), system)
    chan = DataChannel(machine, nwords=nwords, consumers=nprocs - 1, depth=depth)
    seen: list[tuple[int, int, list]] = []

    def worker(ctx):
        if ctx.pid == 0:
            for e in range(epochs):
                yield Compute(producer_gap)
                yield from chan.produce([e * 1000 + i for i in range(nwords)])
        else:
            reader = chan.reader()
            for e in range(epochs):
                vals = yield from reader.next()
                seen.append((ctx.pid, e, vals))

    result = machine.run(worker)
    return machine, result, seen


class TestCorrectness:
    @pytest.mark.parametrize("system", ALL_SYSTEMS)
    def test_every_consumer_sees_every_epoch(self, system):
        _, _, seen = pipeline(system)
        assert len(seen) == 3 * 4
        for pid, e, vals in seen:
            assert vals == [e * 1000 + i for i in range(16)]

    def test_depth_one_fully_synchronous(self):
        _, _, seen = pipeline("RCupd", depth=1)
        assert all(vals[0] == e * 1000 for _, e, vals in seen)

    def test_deep_ring(self):
        _, _, seen = pipeline("RCinv", epochs=8, depth=4)
        assert len(seen) == 3 * 8

    def test_slow_consumers_backpressure_producer(self):
        machine = Machine(MachineConfig(nprocs=2), "RCinv")
        chan = DataChannel(machine, nwords=8, consumers=1, depth=2)
        order = []

        def worker(ctx):
            if ctx.pid == 0:
                for e in range(4):
                    yield from chan.produce([e] * 8)
                    order.append(("produced", e))
            else:
                reader = chan.reader()
                for e in range(4):
                    yield Compute(5000)  # slow consumer
                    vals = yield from reader.next()
                    order.append(("consumed", int(vals[0])))

        machine.run(worker)
        # the producer can never be more than `depth` epochs ahead
        outstanding = 0
        for kind, _ in order:
            outstanding += 1 if kind == "produced" else -1
            assert outstanding <= 2

    def test_validation(self):
        machine = Machine(MachineConfig(nprocs=2), "RCinv")
        with pytest.raises(ValueError):
            DataChannel(machine, nwords=0, consumers=1)
        with pytest.raises(ValueError):
            DataChannel(machine, nwords=4, consumers=0)
        with pytest.raises(ValueError):
            DataChannel(machine, nwords=4, consumers=1, depth=0)
        chan = DataChannel(machine, nwords=4, consumers=1)
        with pytest.raises(ValueError):
            next(chan.produce([1, 2]))  # wrong payload size
        with pytest.raises(ValueError):
            next(chan.consume(0))  # epochs are 1-based


class TestDecoupledOverheads:
    def test_producer_pays_no_buffer_flush(self):
        for system in ("RCinv", "RCupd", "RCcomp"):
            _, result, _ = pipeline(system)
            assert result.procs[0].buffer_flush == 0.0, system

    def test_channel_beats_barrier_sync_on_updates(self):
        """The same producer-consumer pattern via barriers forces the
        producer to flush at every barrier; the channel avoids it."""
        epochs, nwords, nprocs = 4, 16, 4

        def barrier_version():
            machine = Machine(MachineConfig(nprocs=nprocs), "RCupd")
            data = machine.shm.array(nwords, "data", align_line=True)
            bar = Barrier(machine.sync)

            def worker(ctx):
                for e in range(epochs):
                    if ctx.pid == 0:
                        yield Compute(100)
                        yield from data.write_range(0, [e * 1000 + i for i in range(nwords)])
                    yield from bar.wait()
                    if ctx.pid != 0:
                        yield from data.read_range(0, nwords)
                    yield from bar.wait()

            return machine.run(worker)

        res_barrier = barrier_version()
        _, res_chan, _ = pipeline("RCupd", epochs=epochs, nwords=nwords, nprocs=nprocs)
        assert res_barrier.procs[0].buffer_flush > 0
        assert res_chan.procs[0].buffer_flush == 0.0


class TestFlagPrimitive:
    def test_wait_after_set_is_immediate(self):
        machine = Machine(MachineConfig(nprocs=2), "RCinv")
        flag = machine.sync.new_flag()

        def worker(ctx):
            if ctx.pid == 0:
                yield FlagSet(flag, ())
            else:
                yield Compute(10000)
                yield FlagWait(flag, 1)

        res = machine.run(worker)
        assert res.procs[1].sync_wait < 200  # just the round trip

    def test_wait_blocks_until_set(self):
        machine = Machine(MachineConfig(nprocs=2), "RCinv")
        flag = machine.sync.new_flag()

        def worker(ctx):
            if ctx.pid == 0:
                yield Compute(5000)
                yield FlagSet(flag, ())
            else:
                yield FlagWait(flag, 1)

        res = machine.run(worker)
        assert res.procs[1].sync_wait > 4000

    def test_epoch_semantics(self):
        machine = Machine(MachineConfig(nprocs=2), "RCinv")
        flag = machine.sync.new_flag()

        def worker(ctx):
            if ctx.pid == 0:
                for _ in range(3):
                    yield Compute(100)
                    yield FlagSet(flag, ())
            else:
                yield FlagWait(flag, 3)  # waits for the third set
                assert machine.sync.flag_epoch(flag) >= 3

        machine.run(worker)

    def test_invalid_epoch(self):
        with pytest.raises(ValueError):
            FlagWait(0, epoch=0)
