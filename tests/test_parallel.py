"""The parallel execution layer: pool fan-out, caching, determinism.

Covers the guarantees docs/performance.md documents: serial and
parallel execution produce bit-identical results in deterministic
order, every run payload is picklable, and the on-disk cache hits only
when (job spec, code fingerprint) both match.
"""

from __future__ import annotations

import pickle

import pytest

from repro import MachineConfig, run_study, table1
from repro.apps import AppFactory, smoke_scale
from repro.core import parallel
from repro.core.bench import run_bench
from repro.core.parallel import (
    JobSpec,
    ResultCache,
    cache_key,
    code_fingerprint,
    execute_job,
    resolve_jobs,
    run_jobs,
)
from repro.core.sweep import sweep

CFG = MachineConfig(nprocs=4)

IS_FACTORY = AppFactory("IS", n_keys=128, nbuckets=16)


def is_specs(systems=("z-mc", "RCinv", "RCupd")) -> list[JobSpec]:
    return [JobSpec(factory=IS_FACTORY, system=s, config=CFG) for s in systems]


# ---------------------------------------------------------------------------
# AppFactory


def test_app_factory_builds_fresh_instances():
    a, b = IS_FACTORY(), IS_FACTORY()
    assert a is not b
    assert a.name == "IS"


def test_app_factory_value_semantics():
    same = AppFactory("IS", nbuckets=16, n_keys=128)  # kwarg order irrelevant
    assert same == IS_FACTORY
    assert hash(same) == hash(IS_FACTORY)
    assert repr(same) == repr(IS_FACTORY)


def test_app_factory_pickle_roundtrip():
    clone = pickle.loads(pickle.dumps(IS_FACTORY))
    assert clone == IS_FACTORY
    assert clone().name == "IS"


def test_app_factory_rejects_unknown_app():
    with pytest.raises(ValueError, match="unknown application"):
        AppFactory("NoSuchApp")


def test_all_presets_are_picklable():
    for factory, _ in smoke_scale().values():
        pickle.loads(pickle.dumps(factory))()


# ---------------------------------------------------------------------------
# payload picklability (regression: nothing heavyweight crosses the pool)


def test_every_job_payload_is_picklable():
    for factory, _ in smoke_scale().values():
        spec = JobSpec(factory=factory, system="RCinv", config=CFG)
        job = execute_job(spec)
        clone = pickle.loads(pickle.dumps(job))
        assert clone.result == job.result
        assert clone.traffic == job.traffic


def test_sweep_points_are_picklable():
    res = sweep(IS_FACTORY, "store_buffer_entries", [1, 4], base_config=CFG, jobs=2)
    for point in res.points:
        assert point.machine is None  # heavyweight machine not shipped
        clone = pickle.loads(pickle.dumps(point))
        assert clone.result == point.result


def test_sweep_in_process_still_attaches_machine():
    res = sweep(IS_FACTORY, "store_buffer_entries", [1, 4], base_config=CFG)
    assert all(p.machine is not None for p in res.points)


# ---------------------------------------------------------------------------
# serial/parallel equivalence and ordering


def test_parallel_results_bit_identical_to_serial():
    specs = is_specs()
    serial = run_jobs(specs, jobs=1)
    pooled = run_jobs(specs, jobs=2)
    assert [j.system for j in pooled] == [j.system for j in serial]
    for a, b in zip(serial, pooled):
        assert a.result == b.result  # SimResult/ProcStats dataclass equality
        assert a.traffic == b.traffic


def test_result_order_follows_spec_order():
    systems = ("RCupd", "z-mc", "RCinv")
    assert [j.system for j in run_jobs(is_specs(systems), jobs=2)] == list(systems)


def test_run_study_jobs_equivalence():
    serial = run_study(IS_FACTORY, CFG, jobs=1)
    pooled = run_study(IS_FACTORY, CFG, jobs=2)
    assert pooled.app_name == serial.app_name == "IS"
    assert pooled.systems == serial.systems


def test_table1_jobs_equivalence():
    factories = {"IS": IS_FACTORY}
    (serial,) = table1(factories, CFG, jobs=1)
    (pooled,) = table1(factories, CFG, jobs=2)
    assert pooled == serial
    assert pooled.app == "IS"


def test_unpicklable_factory_falls_back_in_process():
    # a lambda cannot cross the pool; run_jobs must still succeed
    baseline = run_jobs(is_specs(("z-mc",)), jobs=1)
    specs = [JobSpec(factory=lambda: IS_FACTORY(), system="z-mc", config=CFG)]
    jobs = run_jobs(specs, jobs=4)
    assert jobs[0].result == baseline[0].result


def test_resolve_jobs():
    assert resolve_jobs(3) == 3
    assert resolve_jobs(None) >= 1
    assert resolve_jobs(0) >= 1
    with pytest.raises(ValueError):
        resolve_jobs(-1)


# ---------------------------------------------------------------------------
# cache behavior


def test_cache_miss_then_hit(tmp_path):
    cache = ResultCache(tmp_path)
    specs = is_specs(("z-mc",))
    first = run_jobs(specs, jobs=1, cache=cache)
    assert not first[0].cached and cache.hits == 0 and cache.misses == 1
    second = run_jobs(specs, jobs=1, cache=cache)
    assert second[0].cached and cache.hits == 1
    assert second[0].result == first[0].result


def test_cache_key_sensitive_to_spec(tmp_path):
    base = is_specs(("RCinv",))[0]
    assert cache_key(base) == cache_key(is_specs(("RCinv",))[0])
    assert cache_key(base) != cache_key(JobSpec(IS_FACTORY, "RCupd", CFG))
    assert cache_key(base) != cache_key(JobSpec(IS_FACTORY, "RCinv", CFG.replace(nprocs=8)))
    other_app = JobSpec(AppFactory("IS", n_keys=256, nbuckets=16), "RCinv", CFG)
    assert cache_key(base) != cache_key(other_app)


def test_cache_invalidated_by_code_change(tmp_path, monkeypatch):
    cache = ResultCache(tmp_path)
    specs = is_specs(("z-mc",))
    run_jobs(specs, jobs=1, cache=cache)
    monkeypatch.setattr(parallel, "_CODE_FINGERPRINT", "different-code-version")
    run_jobs(specs, jobs=1, cache=cache)
    assert cache.hits == 0 and cache.misses == 2


def test_cache_clear(tmp_path):
    cache = ResultCache(tmp_path)
    run_jobs(is_specs(("z-mc", "RCinv")), jobs=1, cache=cache)
    assert cache.clear() == 2
    assert cache.clear() == 0


def test_cache_ignores_corrupt_entries(tmp_path):
    cache = ResultCache(tmp_path)
    (spec,) = is_specs(("z-mc",))
    run_jobs([spec], jobs=1, cache=cache)
    entry = next(tmp_path.glob("*.pkl"))
    entry.write_bytes(b"not a pickle")
    jobs = run_jobs([spec], jobs=1, cache=cache)
    assert not jobs[0].cached  # recomputed, not crashed


def test_lambda_specs_are_never_cached(tmp_path):
    cache = ResultCache(tmp_path)
    spec = JobSpec(factory=lambda: IS_FACTORY(), system="z-mc", config=CFG)
    run_jobs([spec], jobs=1, cache=cache)
    run_jobs([spec], jobs=1, cache=cache)
    assert cache.hits == 0  # no stable fingerprint -> recompute both times


def test_code_fingerprint_stable():
    assert code_fingerprint() == code_fingerprint()
    assert len(code_fingerprint()) == 64


def test_sweep_with_cache_hits(tmp_path):
    cache = ResultCache(tmp_path)
    kwargs = dict(base_config=CFG, system="RCupd", cache=cache)
    cold = sweep(IS_FACTORY, "merge_buffer_lines", [1, 2], **kwargs)
    warm = sweep(IS_FACTORY, "merge_buffer_lines", [1, 2], **kwargs)
    assert cache.hits == 2
    assert [p.result for p in warm.points] == [p.result for p in cold.points]


# ---------------------------------------------------------------------------
# bench harness


def test_run_bench_smoke(tmp_path):
    out = tmp_path / "BENCH_parallel.json"
    doc = run_bench(scale="smoke", jobs=2, out=out)
    assert out.is_file()
    assert doc["results_identical"] is True
    assert doc["cache_hit_rate"] == 1.0
    assert doc["n_runs"] == 20  # 4 apps x 5 paper systems
    assert set(doc["phases"]) == {"serial", "parallel", "cached"}
    assert doc["phases"]["cached"]["wall_s"] < doc["phases"]["serial"]["wall_s"]


def test_run_engine_bench_smoke(tmp_path):
    import json

    from repro.core.bench import format_engine_bench, run_engine_bench

    out = tmp_path / "BENCH_engine.json"
    doc = run_engine_bench(scale="smoke", nprocs=4, reps=2, out=out)
    assert out.is_file()
    assert json.loads(out.read_text()) == doc
    assert doc["bench"] == "engine-throughput"
    assert doc["scale"] == "smoke" and doc["nprocs"] == 4
    assert doc["events"] > 0
    assert doc["events_per_sec"] > 0
    assert len(doc["wall_s_all_reps"]) == 2
    assert doc["wall_s"] == min(doc["wall_s_all_reps"])
    assert "events/sec" in format_engine_bench(doc)


def test_engine_regression_check():
    from repro.core.bench import check_engine_regression

    base = {"scale": "default", "nprocs": 16, "events_per_sec": 100_000.0}
    ok, _ = check_engine_regression(
        {"scale": "default", "nprocs": 16, "events_per_sec": 85_000.0}, base
    )
    assert ok  # -15% is inside the 20% tolerance
    ok, msg = check_engine_regression(
        {"scale": "default", "nprocs": 16, "events_per_sec": 70_000.0}, base
    )
    assert not ok and "REGRESSION" in msg
    # Apples-to-oranges docs never fail the gate.
    ok, msg = check_engine_regression(
        {"scale": "smoke", "nprocs": 16, "events_per_sec": 1.0}, base
    )
    assert ok and "not comparable" in msg
    ok, msg = check_engine_regression(
        {"scale": "default", "nprocs": 64, "events_per_sec": 1.0}, base
    )
    assert ok and "not comparable" in msg
