"""Claim-check logic on synthetic study results."""

import pytest

from repro.analysis.claims import (
    check_buffer_flush_order,
    check_rcinv_read_stall_dominant,
    check_read_stall_gap,
    check_write_stall_order,
    check_zmachine_near_zero,
    format_claims,
    standard_claims,
)
from repro.config import MachineConfig
from repro.core.study import StudyResult, SystemResult


def sysres(system, total=1000.0, rs=0.0, ws=0.0, bf=0.0):
    return SystemResult(
        system=system,
        total_time=total,
        busy=total - rs - ws - bf,
        read_stall=rs,
        write_stall=ws,
        buffer_flush=bf,
        sync_wait=0.0,
        overhead_pct=100.0 * (rs + ws + bf) / total,
        reads=0,
        writes=0,
        read_misses=0,
        network_messages=0,
        network_bytes=0,
    )


def make_study(**per_system):
    systems = [sysres(name, **kw) for name, kw in per_system.items()]
    return StudyResult(app_name="Synthetic", config=MachineConfig(nprocs=4), systems=systems)


class TestZMachineClaim:
    def test_holds_below_tolerance(self):
        study = make_study(**{"z-mc": dict(rs=5.0)})
        assert check_zmachine_near_zero(study, tol_pct=1.0).holds

    def test_fails_above_tolerance(self):
        study = make_study(**{"z-mc": dict(rs=100.0)})
        assert not check_zmachine_near_zero(study, tol_pct=1.0).holds


class TestDominance:
    def test_read_stall_dominant(self):
        study = make_study(RCinv=dict(rs=100, ws=10, bf=10))
        assert check_rcinv_read_stall_dominant(study).holds

    def test_not_dominant(self):
        study = make_study(RCinv=dict(rs=10, ws=100, bf=10))
        assert not check_rcinv_read_stall_dominant(study).holds


class TestGap:
    def test_reuse_requires_large_ratio(self):
        study = make_study(RCinv=dict(rs=300), RCupd=dict(rs=100))
        assert check_read_stall_gap(study, expect_reuse=True).holds
        study2 = make_study(RCinv=dict(rs=120), RCupd=dict(rs=100))
        assert not check_read_stall_gap(study2, expect_reuse=True).holds

    def test_no_reuse_allows_small_ratio(self):
        study = make_study(RCinv=dict(rs=120), RCupd=dict(rs=100))
        assert check_read_stall_gap(study, expect_reuse=False).holds

    def test_zero_upd_stall_counts_as_gap(self):
        study = make_study(RCinv=dict(rs=120), RCupd=dict(rs=0))
        assert check_read_stall_gap(study, expect_reuse=True).holds


class TestOrderings:
    def test_write_stall_order_holds(self):
        study = make_study(
            RCinv=dict(ws=10), RCupd=dict(ws=100), RCcomp=dict(ws=50), RCadapt=dict(ws=60)
        )
        assert check_write_stall_order(study).holds

    def test_write_stall_order_materiality(self):
        # RCinv nominally higher but both immaterial (< 2% of total)
        study = make_study(RCinv=dict(ws=15), RCupd=dict(ws=5))
        assert check_write_stall_order(study).holds

    def test_write_stall_order_fails_when_material(self):
        study = make_study(RCinv=dict(ws=300), RCupd=dict(ws=5))
        assert not check_write_stall_order(study).holds

    def test_buffer_flush_order(self):
        good = make_study(RCinv=dict(bf=10), RCupd=dict(bf=200), RCcomp=dict(bf=150))
        assert check_buffer_flush_order(good).holds
        bad = make_study(RCinv=dict(bf=300), RCupd=dict(bf=10))
        assert not check_buffer_flush_order(bad).holds


class TestFormatting:
    def test_format_claims_marks(self):
        study = make_study(
            **{"z-mc": dict(rs=0.0)},
            RCinv=dict(rs=100, ws=1, bf=1),
            RCupd=dict(rs=40, ws=5, bf=30),
            RCcomp=dict(rs=50, ws=3, bf=20),
            RCadapt=dict(rs=50, ws=3, bf=20),
        )
        checks = standard_claims(study, expect_reuse=True)
        text = format_claims(checks)
        assert text.count("\n") == len(checks) - 1
        assert "[PASS]" in text or "[FAIL]" in text

    def test_missing_system_raises(self):
        study = make_study(RCinv=dict())
        with pytest.raises(KeyError):
            check_read_stall_gap(study, expect_reuse=False)
