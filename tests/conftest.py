"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.config import MachineConfig
from repro.runtime import Machine

ALL_SYSTEMS = ["z-mc", "RCinv", "RCupd", "RCadapt", "RCcomp", "SCinv"]
REAL_SYSTEMS = ["RCinv", "RCupd", "RCadapt", "RCcomp", "SCinv"]
PAPER_SYSTEMS = ["z-mc", "RCinv", "RCupd", "RCadapt", "RCcomp"]


@pytest.fixture
def cfg4() -> MachineConfig:
    return MachineConfig(nprocs=4)


@pytest.fixture
def cfg8() -> MachineConfig:
    return MachineConfig(nprocs=8)


@pytest.fixture
def cfg16() -> MachineConfig:
    return MachineConfig(nprocs=16)


def make_machine(system: str = "RCinv", nprocs: int = 4, **cfg_kwargs) -> Machine:
    return Machine(MachineConfig(nprocs=nprocs, **cfg_kwargs), system)
