"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.config import MachineConfig
from repro.runtime import Machine

ALL_SYSTEMS = ["z-mc", "RCinv", "RCupd", "RCadapt", "RCcomp", "SCinv"]
REAL_SYSTEMS = ["RCinv", "RCupd", "RCadapt", "RCcomp", "SCinv"]
PAPER_SYSTEMS = ["z-mc", "RCinv", "RCupd", "RCadapt", "RCcomp"]


@pytest.fixture
def checked_machine():
    """Attach a :class:`CheckedMemorySystem` to machines under test.

    Yields an ``attach(machine)`` callable; at teardown every attached
    checker runs its final audit and the test fails on any protocol
    invariant violation.  Opt in from protocol/integration tests to get
    directory/cache/buffer auditing for free.
    """
    from repro.analysis.checkers import CheckedMemorySystem

    attached: list[CheckedMemorySystem] = []

    def _attach(machine, **kwargs) -> CheckedMemorySystem:
        checker = CheckedMemorySystem.attach(machine, **kwargs)
        attached.append(checker)
        return checker

    yield _attach
    for checker in attached:
        checker.final_check()
        assert checker.clean, checker.describe()


@pytest.fixture
def cfg4() -> MachineConfig:
    return MachineConfig(nprocs=4)


@pytest.fixture
def cfg8() -> MachineConfig:
    return MachineConfig(nprocs=8)


@pytest.fixture
def cfg16() -> MachineConfig:
    return MachineConfig(nprocs=16)


def make_machine(system: str = "RCinv", nprocs: int = 4, **cfg_kwargs) -> Machine:
    return Machine(MachineConfig(nprocs=nprocs, **cfg_kwargs), system)
