"""Store buffer and merge buffer semantics."""

import pytest

from repro.mem.buffers import MergeBuffer, StoreBuffer


def const_service(latency):
    return lambda start: start + latency


class TestStoreBuffer:
    def test_push_into_empty_no_stall(self):
        sb = StoreBuffer(4)
        proceed, stall = sb.push(10.0, const_service(100))
        assert proceed == 10.0
        assert stall == 0.0

    def test_serial_retirement(self):
        sb = StoreBuffer(4)
        sb.push(0.0, const_service(100))  # retires at 100
        sb.push(0.0, const_service(100))  # starts at 100, retires at 200
        assert sb.last_retire == pytest.approx(200.0)

    def test_full_buffer_stalls_until_oldest_retires(self):
        sb = StoreBuffer(2)
        sb.push(0.0, const_service(100))  # retires 100
        sb.push(0.0, const_service(100))  # retires 200
        proceed, stall = sb.push(0.0, const_service(100))
        assert stall == pytest.approx(100.0)
        assert proceed == pytest.approx(100.0)
        assert sb.full_stalls == 1

    def test_drain_frees_slots(self):
        sb = StoreBuffer(1)
        sb.push(0.0, const_service(50))
        proceed, stall = sb.push(100.0, const_service(50))  # already retired
        assert stall == 0.0
        assert proceed == 100.0

    def test_occupancy(self):
        sb = StoreBuffer(4)
        sb.push(0.0, const_service(100))
        sb.push(0.0, const_service(100))
        assert sb.occupancy(50.0) == 2
        assert sb.occupancy(150.0) == 1
        assert sb.occupancy(250.0) == 0

    def test_flush_waits_for_last_retire(self):
        sb = StoreBuffer(4)
        sb.push(0.0, const_service(100))
        sb.push(0.0, const_service(100))
        done, stall = sb.flush(50.0)
        assert done == pytest.approx(200.0)
        assert stall == pytest.approx(150.0)

    def test_flush_empty_is_free(self):
        sb = StoreBuffer(4)
        done, stall = sb.flush(42.0)
        assert done == 42.0
        assert stall == 0.0

    def test_flush_after_drain_is_free(self):
        sb = StoreBuffer(4)
        sb.push(0.0, const_service(10))
        done, stall = sb.flush(100.0)
        assert stall == 0.0

    def test_pending_block_tracking(self):
        sb = StoreBuffer(4)
        sb.push(0.0, const_service(100), block=7)
        assert sb.has_pending(7)
        assert not sb.has_pending(8)

    def test_pending_blocks_cleared_on_flush(self):
        sb = StoreBuffer(4)
        sb.push(0.0, const_service(100), block=7)
        sb.flush(0.0)
        assert not sb.has_pending(7)

    def test_service_must_not_go_backwards(self):
        sb = StoreBuffer(4)
        with pytest.raises(ValueError):
            sb.push(10.0, lambda start: start - 1)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            StoreBuffer(0)

    def test_total_entries_counted(self):
        sb = StoreBuffer(4)
        for _ in range(5):
            sb.push(0.0, const_service(1))
        assert sb.total_entries == 5


class TestMergeBuffer:
    def test_first_write_opens_line(self):
        mb = MergeBuffer(1)
        assert mb.write(3, 0, 0.0) is None
        assert mb.has(3)

    def test_same_line_merges(self):
        mb = MergeBuffer(1)
        mb.write(3, 0, 0.0)
        assert mb.write(3, 1, 1.0) is None
        assert len(mb) == 1

    def test_repeated_word_counts_merged(self):
        mb = MergeBuffer(1)
        mb.write(3, 0, 0.0)
        mb.write(3, 0, 1.0)
        assert mb.merged_writes == 1

    def test_new_line_evicts_oldest_when_full(self):
        mb = MergeBuffer(1)
        mb.write(3, 0, 0.0)
        mb.write(3, 1, 0.0)
        evicted = mb.write(9, 2, 5.0)
        assert evicted is not None
        assert evicted.block == 3
        assert evicted.nwords == 2
        assert mb.has(9) and not mb.has(3)
        assert mb.evictions == 1

    def test_capacity_two_holds_two_lines(self):
        mb = MergeBuffer(2)
        assert mb.write(1, 0, 0.0) is None
        assert mb.write(2, 0, 0.0) is None
        evicted = mb.write(3, 0, 0.0)
        assert evicted.block == 1

    def test_flush_all_returns_and_clears(self):
        mb = MergeBuffer(2)
        mb.write(1, 0, 0.0)
        mb.write(2, 0, 0.0)
        entries = mb.flush_all()
        assert sorted(e.block for e in entries) == [1, 2]
        assert len(mb) == 0
        assert mb.flush_all() == []

    def test_nwords_counts_distinct_words(self):
        mb = MergeBuffer(1)
        mb.write(1, 0, 0.0)
        mb.write(1, 5, 0.0)
        mb.write(1, 5, 0.0)
        (entry,) = mb.flush_all()
        assert entry.nwords == 2

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            MergeBuffer(0)
