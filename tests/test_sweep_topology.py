"""The sweep API and configurable topologies."""

import pytest

from repro.config import MachineConfig
from repro.core.sweep import sweep
from repro.apps import IntegerSort
from repro.apps.base import run_on
from repro.mem.systems import default_network
from repro.network.topology import Hypercube, Mesh2D, Ring, Torus2D


def small_is():
    return IntegerSort(n_keys=128, nbuckets=8)


CFG = MachineConfig(nprocs=4)


class TestSweep:
    def test_series_ordered_by_values(self):
        res = sweep(small_is, "cycles_per_byte", [0.8, 1.6, 3.2], base_config=CFG)
        assert res.values() == [0.8, 1.6, 3.2]
        assert res.parameter == "cycles_per_byte"
        assert len(res.points) == 3

    def test_total_time_grows_with_link_slowness(self):
        res = sweep(small_is, "cycles_per_byte", [0.8, 1.6, 3.2], base_config=CFG)
        assert res.is_monotone("total_time", increasing=True)

    def test_series_metric_access(self):
        res = sweep(small_is, "store_buffer_entries", [1, 4], base_config=CFG, system="RCupd")
        pairs = res.series("mean_write_stall")
        assert [v for v, _ in pairs] == [1, 4]
        assert pairs[0][1] >= pairs[1][1]

    def test_format_contains_rows(self):
        res = sweep(small_is, "nprocs", [2, 4])
        text = res.format()
        assert "sweep of nprocs" in text
        assert "2" in text and "4" in text

    def test_unknown_parameter(self):
        with pytest.raises(ValueError):
            sweep(small_is, "flux_capacitor", [1])

    def test_machines_retained_for_inspection(self):
        res = sweep(small_is, "nprocs", [2], system="RCupd")
        assert res.points[0].machine.system_name == "RCupd"

    def test_point_conveniences(self):
        res = sweep(small_is, "nprocs", [2])
        p = res.points[0]
        assert p.total_time == p.result.total_time
        assert p.overhead_pct == p.result.overhead_pct


class TestTopologyConfig:
    @pytest.mark.parametrize(
        "topo,cls",
        [("mesh", Mesh2D), ("torus", Torus2D), ("ring", Ring), ("hypercube", Hypercube)],
    )
    def test_network_built_for_topology(self, topo, cls):
        net = default_network(MachineConfig(nprocs=4, topology=topo))
        assert isinstance(net.topology, cls)

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError):
            MachineConfig(topology="butterfly")

    def test_hypercube_needs_power_of_two(self):
        with pytest.raises(ValueError):
            MachineConfig(nprocs=6, topology="hypercube")
        MachineConfig(nprocs=8, topology="hypercube")  # fine

    @pytest.mark.parametrize("topo", ["mesh", "torus", "ring", "hypercube"])
    def test_apps_correct_on_every_topology(self, topo):
        cfg = MachineConfig(nprocs=4, topology=topo)
        run_on(small_is(), "RCinv", cfg)  # verifies internally

    def test_zmachine_ignores_topology(self):
        cfg = MachineConfig(nprocs=4, topology="ring")
        run_on(small_is(), "z-mc", cfg)
