"""Barnes-Hut quadtree substrate."""

import numpy as np
import pytest

from repro.apps.quadtree import accel_kernel, build_tree, force_reference, opens
from repro.workloads.bodies import direct_forces, uniform_disc


def tree_of(n=32, seed=0):
    b = uniform_disc(n, seed=seed)
    xs = [float(v) for v in b.pos[:, 0]]
    ys = [float(v) for v in b.pos[:, 1]]
    ms = [float(v) for v in b.mass]
    return build_tree(xs, ys, ms), xs, ys, ms, b


class TestBuild:
    def test_mass_conserved_at_root(self):
        tree, xs, ys, ms, _ = tree_of()
        assert tree.mass[0] == pytest.approx(sum(ms))

    def test_com_is_weighted_mean(self):
        tree, xs, ys, ms, _ = tree_of()
        total = sum(ms)
        assert tree.comx[0] == pytest.approx(sum(m * x for m, x in zip(ms, xs)) / total)
        assert tree.comy[0] == pytest.approx(sum(m * y for m, y in zip(ms, ys)) / total)

    def test_every_body_in_exactly_one_leaf(self):
        tree, *_ = tree_of(48)
        bodies = [b for b in tree.body if b >= 0]
        assert sorted(bodies) == list(range(48))

    def test_children_within_parent_box(self):
        tree, *_ = tree_of(64)
        for nid in range(tree.nnodes):
            for q in range(4):
                c = tree.child[4 * nid + q]
                if c != -1:
                    assert abs(tree.cx[c] - tree.cx[nid]) <= tree.half[nid]
                    assert abs(tree.cy[c] - tree.cy[nid]) <= tree.half[nid]
                    assert tree.half[c] == pytest.approx(tree.half[nid] / 2)

    def test_single_body_tree(self):
        tree = build_tree([1.0], [2.0], [3.0])
        assert tree.nnodes == 1
        assert tree.body[0] == 0
        assert tree.mass[0] == pytest.approx(3.0)

    def test_coincident_bodies_aggregate(self):
        tree = build_tree([0.5, 0.5, 1.0], [0.5, 0.5, 1.0], [1.0, 2.0, 4.0])
        assert tree.mass[0] == pytest.approx(7.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            build_tree([], [], [])

    def test_leaf_count_bounded(self):
        tree, *_ = tree_of(128)
        assert tree.nnodes < 16 * 128 + 64  # the app's capacity bound


class TestForces:
    def test_theta_zero_matches_direct_sum(self):
        tree, xs, ys, ms, b = tree_of(24, seed=5)
        want = direct_forces(b, eps=0.05)
        for i in range(24):
            ax, ay = force_reference(tree, i, xs, ys, theta=0.0, eps=0.05)
            assert ax == pytest.approx(want[i, 0], rel=1e-9, abs=1e-12)
            assert ay == pytest.approx(want[i, 1], rel=1e-9, abs=1e-12)

    def test_larger_theta_approximates(self):
        tree, xs, ys, ms, b = tree_of(64, seed=6)
        want = direct_forces(b, eps=0.05)
        got = np.array([force_reference(tree, i, xs, ys, 0.6, 0.05) for i in range(64)])
        rel = np.abs(got - want) / (np.abs(want) + 1e-9)
        assert np.median(rel) < 0.05  # a few % error for theta=0.6

    def test_no_self_interaction(self):
        tree = build_tree([0.0], [0.0], [5.0])
        ax, ay = force_reference(tree, 0, [0.0], [0.0], 0.5, 0.05)
        assert ax == 0.0 and ay == 0.0

    def test_kernel_attracts(self):
        fx, fy = accel_kernel(1.0, 0.0, 2.0, 0.0)
        assert fx > 0 and fy == 0.0

    def test_opens_monotone_in_distance(self):
        assert opens(half=1.0, dx=0.5, dy=0.0, eps=0.0, theta=0.5)
        assert not opens(half=1.0, dx=100.0, dy=0.0, eps=0.0, theta=0.5)

    def test_deterministic(self):
        tree, xs, ys, ms, _ = tree_of(32, seed=7)
        a = force_reference(tree, 3, xs, ys, 0.5, 0.05)
        b2 = force_reference(tree, 3, xs, ys, 0.5, 0.05)
        assert a == b2
