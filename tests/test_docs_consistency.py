"""Docs-consistency checks, wired into the tier-1 run.

Guards against documentation drift:

* every CLI subcommand (including nested ones, e.g. ``repro scenario
  run``) and long flag that ``repro.__main__.build_parser`` defines
  must be mentioned in README.md;
* the machine-constants table in docs/cost_model.md must list every
  :class:`MachineConfig` field with its actual default;
* every registered degradation scenario (and each of its knobs) must be
  documented in docs/scenarios.md;
* module paths referenced in the docs must import.
"""

from __future__ import annotations

import argparse
import dataclasses
import importlib
import re
from pathlib import Path

import pytest

from repro.__main__ import build_parser
from repro.config import MachineConfig
from repro.scenarios import SCENARIO_NAMES, get_scenario

ROOT = Path(__file__).resolve().parent.parent
README = (ROOT / "README.md").read_text()
COST_MODEL = (ROOT / "docs" / "cost_model.md").read_text()
SCENARIOS_DOC = (ROOT / "docs" / "scenarios.md").read_text()


def _walk_parser(
    parser: argparse.ArgumentParser, prefix: str, commands: set[str], flags: set[str]
) -> None:
    for action in parser._actions:
        flags.update(opt for opt in action.option_strings if opt.startswith("--"))
        if isinstance(action, argparse._SubParsersAction):
            for name, sub in action.choices.items():
                path = f"{prefix} {name}".strip()
                commands.add(path)
                _walk_parser(sub, path, commands, flags)


def cli_surface() -> tuple[set[str], set[str]]:
    """(full subcommand paths, long option strings) of the real parser."""
    commands: set[str] = set()
    flags: set[str] = set()
    _walk_parser(build_parser(), "", commands, flags)
    flags.discard("--help")
    return commands, flags


def test_every_cli_subcommand_documented_in_readme():
    subcommands, _ = cli_surface()
    assert subcommands  # the parser really has subcommands
    assert "scenario run" in subcommands  # the walk really recurses
    missing = {cmd for cmd in subcommands if not re.search(rf"\brepro {cmd}\b", README)}
    assert not missing, f"README.md never shows these subcommands: {sorted(missing)}"


def test_every_cli_flag_documented_in_readme():
    _, flags = cli_surface()
    assert flags
    missing = {flag for flag in flags if flag not in README}
    assert not missing, f"README.md never mentions these flags: {sorted(missing)}"


def machine_constant_rows() -> dict[str, str]:
    """constant name -> default cell from the cost-model table."""
    rows = {}
    for match in re.finditer(r"^\| `(\w+)` \| ([^|]+) \|", COST_MODEL, re.MULTILINE):
        rows[match.group(1)] = match.group(2).strip()
    return rows


def test_cost_model_table_covers_every_config_field():
    documented = set(machine_constant_rows())
    actual = {f.name for f in dataclasses.fields(MachineConfig)}
    assert actual <= documented, (
        f"docs/cost_model.md table is missing MachineConfig fields: "
        f"{sorted(actual - documented)}"
    )


@pytest.mark.parametrize("field", dataclasses.fields(MachineConfig), ids=lambda f: f.name)
def test_cost_model_defaults_match_config(field):
    rows = machine_constant_rows()
    if field.name not in rows:
        pytest.skip("coverage asserted separately")
    cell = rows[field.name]
    default = field.default
    if default is None:
        assert "infinite" in cell or "None" in cell, (
            f"{field.name}: doc says {cell!r}, default is None (infinite)"
        )
    elif isinstance(default, str):
        assert default in cell, f"{field.name}: doc says {cell!r}, default is {default!r}"
    else:
        number = re.search(r"[\d.]+", cell)
        assert number, f"{field.name}: no numeric default in doc cell {cell!r}"
        assert float(number.group()) == float(default), (
            f"{field.name}: doc says {cell!r}, default is {default!r}"
        )


def test_every_registered_scenario_documented():
    """docs/scenarios.md is the handbook: every scenario has a section."""
    missing = {
        name
        for name in SCENARIO_NAMES
        if not re.search(rf"\b{re.escape(name)}\b", SCENARIOS_DOC)
    }
    assert not missing, f"docs/scenarios.md never mentions scenarios: {sorted(missing)}"


@pytest.mark.parametrize("name", SCENARIO_NAMES)
def test_every_scenario_knob_documented(name):
    scenario = get_scenario(name)
    missing = {
        knob.name
        for knob in scenario.knobs
        if not re.search(rf"\b{re.escape(knob.name)}\b", SCENARIOS_DOC)
    }
    assert not missing, (
        f"docs/scenarios.md never mentions {name!r} knob(s): {sorted(missing)}"
    )


#: module paths the prose docs rely on (drift guard for renames).
DOCUMENTED_MODULES = [
    "repro.analysis.fuzz",
    "repro.analysis.naming",
    "repro.analysis.static",
    "repro.apps.costs",
    "repro.core.bench",
    "repro.core.parallel",
    "repro.core.perf",
    "repro.mem.cache",
    "repro.obs.attrib",
    "repro.obs.profile",
    "repro.obs.telemetry",
    "repro.scenarios.inject",
    "repro.scenarios.registry",
    "repro.scenarios.report",
    "repro.sim.engine",
    "repro.sim.reference",
]


@pytest.mark.parametrize("module", DOCUMENTED_MODULES)
def test_documented_module_paths_import(module):
    importlib.import_module(module)
