"""Docs-consistency checks, wired into the tier-1 run.

Guards against documentation drift:

* every CLI subcommand and long flag that ``repro.__main__.build_parser``
  defines must be mentioned in README.md;
* the machine-constants table in docs/cost_model.md must list every
  :class:`MachineConfig` field with its actual default;
* module paths referenced in the docs must import.
"""

from __future__ import annotations

import dataclasses
import importlib
import re
from pathlib import Path

import pytest

from repro.__main__ import build_parser
from repro.config import MachineConfig

ROOT = Path(__file__).resolve().parent.parent
README = (ROOT / "README.md").read_text()
COST_MODEL = (ROOT / "docs" / "cost_model.md").read_text()


def cli_surface() -> tuple[set[str], set[str]]:
    """(subcommand names, long option strings) of the real parser."""
    parser = build_parser()
    subcommands: set[str] = set()
    flags = {
        opt
        for action in parser._actions
        for opt in action.option_strings
        if opt.startswith("--")
    }
    for action in parser._actions:
        if isinstance(action, type(parser._subparsers._group_actions[0])) and hasattr(
            action, "choices"
        ):
            for name, sub in action.choices.items():
                subcommands.add(name)
                for sub_action in sub._actions:
                    flags.update(o for o in sub_action.option_strings if o.startswith("--"))
    flags.discard("--help")
    return subcommands, flags


def test_every_cli_subcommand_documented_in_readme():
    subcommands, _ = cli_surface()
    assert subcommands  # the parser really has subcommands
    missing = {cmd for cmd in subcommands if not re.search(rf"\brepro {cmd}\b", README)}
    assert not missing, f"README.md never shows these subcommands: {sorted(missing)}"


def test_every_cli_flag_documented_in_readme():
    _, flags = cli_surface()
    assert flags
    missing = {flag for flag in flags if flag not in README}
    assert not missing, f"README.md never mentions these flags: {sorted(missing)}"


def machine_constant_rows() -> dict[str, str]:
    """constant name -> default cell from the cost-model table."""
    rows = {}
    for match in re.finditer(r"^\| `(\w+)` \| ([^|]+) \|", COST_MODEL, re.MULTILINE):
        rows[match.group(1)] = match.group(2).strip()
    return rows


def test_cost_model_table_covers_every_config_field():
    documented = set(machine_constant_rows())
    actual = {f.name for f in dataclasses.fields(MachineConfig)}
    assert actual <= documented, (
        f"docs/cost_model.md table is missing MachineConfig fields: "
        f"{sorted(actual - documented)}"
    )


@pytest.mark.parametrize("field", dataclasses.fields(MachineConfig), ids=lambda f: f.name)
def test_cost_model_defaults_match_config(field):
    rows = machine_constant_rows()
    if field.name not in rows:
        pytest.skip("coverage asserted separately")
    cell = rows[field.name]
    default = field.default
    if default is None:
        assert "infinite" in cell or "None" in cell, (
            f"{field.name}: doc says {cell!r}, default is None (infinite)"
        )
    elif isinstance(default, str):
        assert default in cell, f"{field.name}: doc says {cell!r}, default is {default!r}"
    else:
        number = re.search(r"[\d.]+", cell)
        assert number, f"{field.name}: no numeric default in doc cell {cell!r}"
        assert float(number.group()) == float(default), (
            f"{field.name}: doc says {cell!r}, default is {default!r}"
        )


#: module paths the prose docs rely on (drift guard for renames).
DOCUMENTED_MODULES = [
    "repro.apps.costs",
    "repro.core.bench",
    "repro.core.parallel",
    "repro.mem.cache",
    "repro.sim.engine",
]


@pytest.mark.parametrize("module", DOCUMENTED_MODULES)
def test_documented_module_paths_import(module):
    importlib.import_module(module)
