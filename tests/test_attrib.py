"""Overhead attribution (`repro.obs.attrib`).

The load-bearing guarantee is **exactness**: for every standard app on
every system, the cycles the collector attributes per stall category
equal the ``SimResult`` totals bit-for-bit — attribution never invents
or loses a cycle.  On top of that: every dimension partitions the
attributed overhead, the report document is stable (golden fixture),
and the differential mode is consistent (self-diff is empty, swapping
the operands negates every delta).

Regenerate the golden fixture after an intentional engine/protocol
change with ``PYTHONPATH=src python -m tests.test_attrib``.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

from repro.__main__ import main
from repro.apps.presets import smoke_scale
from repro.config import MachineConfig
from repro.core.bench import run_attrib_bench
from repro.obs.attrib import (
    DIMENSIONS,
    EXACT_TOLERANCE,
    OVERHEAD_CATEGORIES,
    AttributionCollector,
    block_span_name,
    diff_reports,
    load_report,
    run_attribution,
)
from repro.obs.timeline import attribution_to_perfetto
from repro.runtime.context import Machine

FIXTURE = Path(__file__).parent / "fixtures" / "attrib_golden.json"

#: The exact-sum matrix the issue pins: each app on the two extreme
#: protocols plus the zero-overhead base machine.
SYSTEMS = ("RCinv", "RCupd", "z-mc")


def _run(app_name: str, system: str):
    """(report, result, collector) for one smoke-scale run."""
    factory = smoke_scale()[app_name][0]
    cfg = MachineConfig()
    app = factory()
    machine = Machine(cfg, system)
    app.setup(machine)
    collector = AttributionCollector.attach(machine)
    result = machine.run(app.worker)
    from repro.obs.attrib import build_report

    report = build_report(
        collector, result, app=app_name, system=system, scale="smoke",
        sync_names=machine.sync.sync_names(),
    )
    return report, result, collector


def _report(app_name: str, system: str) -> dict:
    factory = smoke_scale()[app_name][0]
    report, _ = run_attribution(
        factory, system, MachineConfig(), app=app_name, scale="smoke"
    )
    return report


# ---------------------------------------------------------------------------
# exact-sum invariant


@pytest.mark.parametrize("system", SYSTEMS)
@pytest.mark.parametrize("app_name", sorted(smoke_scale()))
def test_attribution_exact_bit_for_bit(app_name, system):
    """Per-proc per-category attributed cycles == ProcStats, with ==."""
    report, result, collector = _run(app_name, system)
    totals = collector.proc_totals()
    for cat in OVERHEAD_CATEGORIES:
        for p, proc in enumerate(result.procs):
            assert totals[cat][p] == getattr(proc, cat), (
                f"{app_name}/{system} proc {p} {cat}: "
                f"attributed {totals[cat][p]!r} != engine {getattr(proc, cat)!r}"
            )
    assert report["exact"] is True
    for cat in OVERHEAD_CATEGORIES:
        assert report["residual"][cat] == 0.0


@pytest.mark.parametrize("app_name", sorted(smoke_scale()))
def test_every_dimension_partitions_the_overhead(app_name):
    """Each dimension's rows sum to the attributed overhead (1e-6)."""
    report, _, _ = _run(app_name, "RCinv")
    attributed = sum(report["attributed"].values())
    for dim in DIMENSIONS:
        rows = report["dims"][dim]
        assert math.isclose(
            sum(r["overhead"] for r in rows), attributed,
            rel_tol=0.0, abs_tol=EXACT_TOLERANCE,
        ), f"dimension {dim!r} does not partition the overhead"
        for cat in OVERHEAD_CATEGORIES:
            assert math.isclose(
                sum(r[cat] for r in rows), report["attributed"][cat],
                rel_tol=0.0, abs_tol=EXACT_TOLERANCE,
            )


def test_attribution_does_not_change_simulated_results():
    factory = smoke_scale()["Maxflow"][0]
    cfg = MachineConfig()

    def run(attach: bool):
        app = factory()
        machine = Machine(cfg, "RCinv")
        app.setup(machine)
        if attach:
            AttributionCollector.attach(machine)
        return machine.run(app.worker)

    plain, attributed = run(False), run(True)
    assert plain.total_time == attributed.total_time
    assert plain.ops == attributed.ops
    for a, b in zip(plain.procs, attributed.procs):
        assert (a.busy, a.read_stall, a.write_stall, a.buffer_flush, a.sync_wait) == (
            b.busy, b.read_stall, b.write_stall, b.buffer_flush, b.sync_wait
        )


# ---------------------------------------------------------------------------
# report content


def test_report_names_regions_syncs_phases_and_homes():
    report, _, _ = _run("Maxflow", "RCinv")
    block_keys = {r["key"] for r in report["dims"]["block"]}
    assert any(k.startswith("excess") for k in block_keys)
    sync_keys = {r["key"] for r in report["dims"]["sync"]}
    assert any(k.startswith("lock:mf.") for k in sync_keys)
    assert "(data)" in sync_keys
    is_report, _, _ = _run("IS", "RCinv")
    assert "barrier:is.barrier#0" in {r["key"] for r in is_report["dims"]["sync"]}
    assert {r["key"] for r in report["dims"]["phase"]} >= {"discharge"}
    assert any(r["key"].startswith("node ") for r in report["dims"]["home"])
    # home rows carry directory-population context
    node_rows = [r for r in report["dims"]["home"] if r["key"].startswith("node ")]
    assert all("dir_blocks" in r for r in node_rows)
    # the route-weighted link load exists on a mesh machine
    assert report["links"] and "->" in report["links"][0]["link"]


def test_z_machine_report_is_pure_read_stall():
    report, _, _ = _run("IS", "z-mc")
    assert report["exact"] is True
    assert report["attributed"]["write_stall"] == 0.0
    assert report["attributed"]["buffer_flush"] == 0.0


def test_block_span_name_falls_back_without_shm():
    assert block_span_name(None, 32, 7) == ("block:7", "block:7")


class _StubMem:
    """Minimal memory system for collector unit tests."""

    line_size = 32

    def __init__(self):
        from repro.sim.stats import AccessResult

        self._hit_result = AccessResult(0.0, hit=True)

    def read(self, proc, addr, now):
        from repro.sim.stats import AccessResult

        return AccessResult(now + 10.0, read_stall=5.0)

    def write(self, proc, addr, now):
        return self._hit_result

    def sync_note(self, proc, now, sync):
        pass

    def phase_note(self, proc, now, label):
        pass

    def home_of(self, block):
        return block % 4


def test_startup_phase_and_per_proc_phase_switching():
    """Accesses before a proc's first marker land in '(startup)'; a
    phase marker moves only that proc's attribution target."""
    c = AttributionCollector(_StubMem(), nprocs=4)
    c.read(0, 0, 0.0)            # proc 0, still in startup
    c.phase_note(0, 1.0, "work")
    c.read(0, 64, 2.0)           # proc 0, now in "work"
    c.read(1, 0, 3.0)            # proc 1 never saw a marker
    # (phase_id, block): proc 0 and proc 1's startup reads share a cell
    assert set(c._data) == {(0, 0), (1, 2)}
    assert c._data[(0, 0)][3] == 2     # two startup accesses to block 0
    assert c.phase_name(0) == "(startup)"
    assert c.phase_name(1) == "work"
    totals = c.proc_totals()
    assert totals["read_stall"] == [10.0, 5.0, 0.0, 0.0]
    # the stall-free write flyweight took the count-only fast path
    c.write(2, 0, 4.0)
    assert totals == c.proc_totals()


# ---------------------------------------------------------------------------
# golden report


def _golden_case() -> dict:
    report, _, _ = _run("Maxflow", "RCinv")
    report["links"] = report["links"][:5]
    return report


def test_golden_attribution_report():
    """The full Maxflow/RCinv report is bit-stable (floats survive JSON)."""
    assert FIXTURE.exists(), (
        f"golden fixture missing; regenerate with "
        f"PYTHONPATH=src python -m tests.test_attrib"
    )
    expected = json.loads(FIXTURE.read_text())
    actual = json.loads(json.dumps(_golden_case()))
    assert actual == expected, (
        "attribution report drifted from tests/fixtures/attrib_golden.json; "
        "if the change is intentional, regenerate with "
        "PYTHONPATH=src python -m tests.test_attrib"
    )


# ---------------------------------------------------------------------------
# differential mode


def test_diff_self_comparison_is_zero():
    a = _report("IS", "RCinv")
    diff = diff_reports(a, a)
    assert diff["gap"] == 0.0
    assert all(v == 0.0 for v in diff["delta"].values())
    for dim in DIMENSIONS:
        assert diff["dims"][dim] == []
    assert diff["hotspots"] == []


def test_diff_antisymmetry():
    a = _report("IS", "RCinv")
    b = _report("IS", "RCupd")
    fwd = diff_reports(a, b)
    rev = diff_reports(b, a)
    assert fwd["gap"] == -rev["gap"]
    for key in fwd["delta"]:
        assert fwd["delta"][key] == -rev["delta"][key]
    for dim in DIMENSIONS:
        f = {r["key"]: r["delta"] for r in fwd["dims"][dim]}
        r = {row["key"]: row["delta"] for row in rev["dims"][dim]}
        assert set(f) == set(r)
        for key in f:
            assert f[key] == -r[key]


def test_diff_aligns_across_line_sizes_by_array_name():
    """RCinv (32B lines) vs z-mc (4B lines): rows align on array names,
    never on block numbers."""
    a = _report("IS", "RCinv")
    b = _report("IS", "z-mc")
    diff = diff_reports(a, b)
    keys = {r["key"] for r in diff["dims"]["block"]}
    assert not any(k.startswith("block:") for k in keys)
    # the z-machine's only category is read stall, so the flush delta is
    # exactly -RCinv's flush total
    assert diff["delta"]["buffer_flush"] == -a["totals"]["buffer_flush"]


def test_diff_rejects_non_attribution_documents():
    a = _report("IS", "RCinv")
    with pytest.raises(ValueError):
        diff_reports(a, {"kind": "manifest"})


def test_diff_localises_the_rcinv_rcupd_gap():
    """The paper-grounded explanation: the Maxflow RCinv-vs-RCupd gap is
    dominated by invalidation read-stall on the work-counter/excess
    structures inside the discharge phase."""
    a = _report("Maxflow", "RCinv")
    b = _report("Maxflow", "RCupd")
    diff = diff_reports(a, b)
    assert diff["gap"] < 0  # RCupd pays less total overhead here
    top = diff["hotspots"][0]
    assert top["phase"] == "discharge"
    assert top["key"] == "mf.active_count"
    assert top["delta_read_stall"] < 0
    # while RCupd pays *more* flush on sync ops (update write-buffering)
    sync_rows = {r["key"]: r for r in diff["dims"]["sync"]}
    assert sync_rows["lock:mf.count_lock#0"]["delta"] > 0


# ---------------------------------------------------------------------------
# heatmap + CLI + bench


def test_attribution_heatmap_structure():
    report, _, _ = _run("IS", "RCinv")
    doc = attribution_to_perfetto(report, top=4)
    counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
    assert counters and all("value" in e["args"] for e in counters)
    names = {e["name"] for e in counters}
    assert any(n.startswith("stall: ") for n in names)
    assert "total read stall" in names
    assert doc["otherData"]["kind"] == "attribution-heatmap"
    ts = [e["ts"] for e in doc["traceEvents"]]
    assert ts == sorted(ts)


def test_cli_attribute_roundtrip(tmp_path, capsys):
    out = tmp_path / "report.json"
    heat = tmp_path / "heat.json"
    rc = main([
        "attribute", "intsort", "RCinv", "--scale", "smoke",
        "--by", "block", "--top", "3",
        "--out", str(out), "--perfetto", str(heat),
    ])
    assert rc == 0
    assert "overhead attribution: IS on RCinv" in capsys.readouterr().out
    report = load_report(out)
    assert report["exact"] is True
    assert json.loads(heat.read_text())["otherData"]["kind"] == "attribution-heatmap"


def test_cli_attribute_vs_system(capsys):
    rc = main([
        "attribute", "intsort", "RCinv", "--scale", "smoke",
        "--by", "phase", "--vs", "RCupd",
    ])
    assert rc == 0
    assert "overhead diff: A = IS on RCinv  vs  B = IS on RCupd" in capsys.readouterr().out


def test_cli_attribute_vs_scenario(capsys):
    rc = main([
        "attribute", "intsort", "RCinv", "--scale", "smoke",
        "--by", "phase", "--vs", "slow_links",
    ])
    assert rc == 0
    assert "[slow_links]" in capsys.readouterr().out


def test_cli_attribute_rejects_unknown_vs():
    with pytest.raises(SystemExit):
        main(["attribute", "intsort", "RCinv", "--scale", "smoke", "--vs", "bogus"])


def test_cli_diff_roundtrip(tmp_path, capsys):
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    assert main(["attribute", "intsort", "RCinv", "--scale", "smoke", "--out", str(a)]) == 0
    assert main(["attribute", "intsort", "RCupd", "--scale", "smoke", "--out", str(b)]) == 0
    out = tmp_path / "diff.json"
    rc = main(["diff", str(a), str(b), "--by", "sync", "--out", str(out)])
    assert rc == 0
    assert "overhead diff" in capsys.readouterr().out
    doc = json.loads(out.read_text())
    assert doc["kind"] == "attribution-diff"
    # self-diff through the CLI reports identity
    rc = main(["diff", str(a), str(a)])
    assert rc == 0
    assert "reports are identical" in capsys.readouterr().out


def test_cli_diff_rejects_non_report(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text('{"kind": "manifest"}\n')
    with pytest.raises(SystemExit):
        main(["diff", str(bad), str(bad)])


def test_attrib_bench_smoke():
    doc = run_attrib_bench(
        scale="smoke", nprocs=8, reps=1, systems=("RCinv",), out=None
    )
    assert doc["bench"] == "attribution-overhead"
    assert doc["results_identical"] is True
    assert doc["attribution_exact"] is True
    assert doc["overhead_ratio"] > 0


# ---------------------------------------------------------------------------
# fixture regeneration


def build_fixture() -> dict:
    return json.loads(json.dumps(_golden_case()))


def main_regen() -> None:  # pragma: no cover - manual tool
    FIXTURE.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE.write_text(json.dumps(build_fixture(), indent=1, sort_keys=True) + "\n")
    print(f"wrote {FIXTURE}")


if __name__ == "__main__":  # pragma: no cover
    main_regen()
