"""Telemetry tests: record schema, ordering/determinism, run_jobs wiring.

The pinned property: two runs of the same job set produce identical
*stable views* (records minus host-timing fields) in the JSONL sink,
regardless of worker count or arrival order — the sink is sorted by
``(job, seq)`` at close.
"""

from __future__ import annotations

import pytest

from repro import MachineConfig
from repro.apps import preset
from repro.core.parallel import JobSpec, ResultCache, run_jobs
from repro.obs import telemetry


def _specs(nprocs: int = 16) -> list[JobSpec]:
    cfg = MachineConfig(nprocs=nprocs)
    factory = preset("smoke")["IS"][0]
    return [
        JobSpec(factory=factory, system=system, config=cfg)
        for system in ("z-mc", "RCinv", "RCupd", "RCadapt")
    ]


def _run_with_telemetry(tmp_path, name: str, jobs: int, cache=None):
    out = tmp_path / f"{name}.jsonl"
    with telemetry.session(out=out) as sess:
        run_jobs(_specs(), jobs=jobs, cache=cache)
        assert sess.total == 4
    return telemetry.load_records(out)


def test_record_schema():
    start = telemetry.job_started(3, "IS", "RCinv")
    assert start["schema"] == telemetry.SCHEMA
    assert (start["job"], start["seq"], start["event"]) == (3, 0, "start")
    finish = telemetry.job_finished(3, "IS", "RCinv", events=100, elapsed_s=0.5, cached=False)
    assert (finish["seq"], finish["event"]) == (1, "finish")
    assert finish["events_per_sec"] == pytest.approx(200.0)
    cached = telemetry.job_finished(3, "IS", "RCinv", events=100, elapsed_s=0.0, cached=True)
    assert cached["cached"] is True
    assert cached["events_per_sec"] is None


def test_stable_view_strips_volatile_fields():
    rec = telemetry.job_finished(0, "IS", "z-mc", events=10, elapsed_s=0.1, cached=False)
    rec["eta_s"] = 1.0
    (view,) = telemetry.stable_view([rec])
    for field in telemetry.VOLATILE_FIELDS:
        assert field not in view
    assert view["events"] == 10


def test_in_process_run_emits_ordered_records(tmp_path):
    records = _run_with_telemetry(tmp_path, "inproc", jobs=1)
    assert len(records) == 8  # start + finish per job
    keys = [(r["job"], r["seq"]) for r in records]
    assert keys == sorted(keys)
    finishes = [r for r in records if r["event"] == "finish"]
    assert all(r["events"] > 0 for r in finishes)


def test_pool_run_deterministic_stable_view(tmp_path):
    """--jobs 4: arrival order varies, the sorted stable view does not."""
    first = _run_with_telemetry(tmp_path, "a", jobs=4)
    second = _run_with_telemetry(tmp_path, "b", jobs=4)
    assert telemetry.stable_view(first) == telemetry.stable_view(second)
    assert len(first) == 8
    # ...and matches the in-process run's stable view too.
    inproc = _run_with_telemetry(tmp_path, "c", jobs=1)
    assert telemetry.stable_view(first) == telemetry.stable_view(inproc)


def test_cache_hits_flagged(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    _run_with_telemetry(tmp_path, "cold", jobs=1, cache=cache)
    warm = _run_with_telemetry(tmp_path, "warm", jobs=1, cache=cache)
    finishes = [r for r in warm if r["event"] == "finish"]
    assert len(finishes) == 4
    assert all(r["cached"] for r in finishes)


def test_eta_enrichment_and_progress_line():
    sess = telemetry.TelemetrySession(total=2)
    sess.emit(telemetry.job_started(0, "IS", "z-mc"))
    rec = telemetry.job_finished(0, "IS", "z-mc", events=10, elapsed_s=0.1, cached=False)
    sess.emit(rec)
    assert rec["eta_s"] is not None
    line = sess._progress_line(rec)
    assert line.startswith("[1/2] IS/z-mc:")
    cached = telemetry.job_finished(1, "IS", "RCinv", events=10, elapsed_s=0.0, cached=True)
    sess.emit(cached)
    assert "cache hit" in sess._progress_line(cached)


def test_session_is_process_wide():
    assert telemetry.get_session() is None
    with telemetry.session() as sess:
        assert telemetry.get_session() is sess
        with telemetry.session() as inner:
            assert telemetry.get_session() is inner
        assert telemetry.get_session() is sess
    assert telemetry.get_session() is None
