"""SCinv baseline and the memory-system registry."""

import pytest

from repro.config import MachineConfig
from repro.mem.systems import (
    PAPER_SYSTEMS,
    SYSTEM_REGISTRY,
    default_network,
    make_system,
)
from repro.mem.systems.rcinv import RCInv
from repro.mem.systems.sc import SCInv
from repro.mem.systems.zmachine import ZMachine


def make_sc(nprocs=4, **kw):
    cfg = MachineConfig(nprocs=nprocs, **kw)
    return SCInv(cfg, default_network(cfg)), cfg


class TestSCInv:
    def test_write_miss_stalls_synchronously(self):
        m, _ = make_sc()
        res = m.write(0, 64, 0.0)
        assert res.write_stall > 0

    def test_write_stall_includes_invalidation_acks(self):
        """SC writes wait for everything; RC writes retire at the grant."""
        sc, cfg = make_sc()
        for p in (1, 2, 3):
            sc.read(p, 64, 0.0)
        sc_res = sc.write(0, 64, 1000.0)

        rc = RCInv(cfg, default_network(cfg))
        for p in (1, 2, 3):
            rc.read(p, 64, 0.0)
        rc_res = rc.write(0, 64, 1000.0)
        assert sc_res.time > rc_res.time

    def test_owned_hit_is_cheap(self):
        m, cfg = make_sc()
        m.write(0, 64, 0.0)
        res = m.write(0, 64, 9000.0)
        assert res.hit
        assert res.write_stall == 0.0

    def test_release_is_free(self):
        m, _ = make_sc()
        m.write(0, 64, 0.0)
        res = m.release(0, 5000.0)
        assert res.buffer_flush == 0.0
        assert res.time == 5000.0

    def test_read_miss_stalls(self):
        m, _ = make_sc()
        res = m.read(0, 64, 0.0)
        assert res.read_stall > 0


class TestRegistry:
    def test_paper_systems_order(self):
        assert PAPER_SYSTEMS == ("z-mc", "RCinv", "RCupd", "RCadapt", "RCcomp")

    def test_all_registered_systems_constructible(self):
        cfg = MachineConfig(nprocs=4)
        for name in SYSTEM_REGISTRY:
            sys = make_system(name, cfg)
            assert sys.name == name

    def test_unknown_system_rejected(self):
        with pytest.raises(ValueError, match="unknown memory system"):
            make_system("MOESI", MachineConfig(nprocs=4))

    def test_zmachine_gets_ideal_network(self):
        z = make_system("z-mc", MachineConfig(nprocs=4))
        assert isinstance(z, ZMachine)

    def test_default_network_matches_mesh_dims(self):
        cfg = MachineConfig(nprocs=8)
        net = default_network(cfg)
        assert net.topology.nnodes == 8
