"""ASCII figure rendering internals."""

import pytest

from repro.analysis.figures import _BAR_WIDTH, _bar, format_figure
from repro.config import MachineConfig
from repro.core.study import StudyResult, SystemResult


def sysres(system, total, rs=0.0, ws=0.0, bf=0.0):
    return SystemResult(
        system=system,
        total_time=total,
        busy=total - rs - ws - bf,
        read_stall=rs,
        write_stall=ws,
        buffer_flush=bf,
        sync_wait=0.0,
        overhead_pct=100.0 * (rs + ws + bf) / total if total else 0.0,
        reads=0,
        writes=0,
        read_misses=0,
        network_messages=0,
        network_bytes=0,
    )


class TestBar:
    def test_full_scale_bar_width(self):
        s = sysres("X", total=100.0)
        assert len(_bar(s, scale=100.0)) == _BAR_WIDTH

    def test_half_scale_bar_width(self):
        s = sysres("X", total=50.0)
        assert len(_bar(s, scale=100.0)) == _BAR_WIDTH // 2

    def test_components_in_order(self):
        s = sysres("X", total=100.0, rs=25.0, ws=25.0, bf=25.0)
        bar = _bar(s, scale=100.0)
        # busy then R then W then F, each a quarter of the width
        q = _BAR_WIDTH // 4
        assert bar == "." * q + "R" * q + "W" * q + "F" * q

    def test_zero_scale_degenerates_gracefully(self):
        s = sysres("X", total=0.0)
        assert _bar(s, scale=0.0) == ""

    def test_component_chars_proportional(self):
        s = sysres("X", total=100.0, rs=50.0)
        bar = _bar(s, scale=100.0)
        assert bar.count("R") == _BAR_WIDTH // 2
        assert "W" not in bar and "F" not in bar


class TestFormatFigure:
    def make_study(self):
        systems = [
            sysres("z-mc", 100.0),
            sysres("RCinv", 300.0, rs=100.0),
        ]
        return StudyResult(app_name="T", config=MachineConfig(nprocs=4), systems=systems)

    def test_header_and_rows(self):
        text = format_figure(self.make_study())
        lines = text.splitlines()
        assert lines[0].startswith("T execution-time breakdown")
        assert any(line.startswith("z-mc") for line in lines)
        assert any(line.startswith("RCinv") for line in lines)

    def test_percentages_shown(self):
        text = format_figure(self.make_study())
        assert "33.33%" in text  # 100/300
        assert "0.00%" in text

    def test_bars_scaled_to_slowest(self):
        text = format_figure(self.make_study())
        bar_lines = [l for l in text.splitlines() if "|" in l]
        z_bar = next(l for l in bar_lines if l.startswith("z-mc"))
        inv_bar = next(l for l in bar_lines if l.startswith("RCinv"))
        z_len = z_bar.split("|")[1]
        inv_len = inv_bar.split("|")[1]
        assert len(inv_len) == pytest.approx(3 * len(z_len), abs=2)
