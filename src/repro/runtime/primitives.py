"""User-facing synchronisation handles and helpers.

``Lock`` and ``Barrier`` wrap ids managed by the
:class:`~repro.runtime.sync.SyncManager`; their methods are generators
driven with ``yield from`` inside application worker code.
"""

from __future__ import annotations

from collections.abc import Generator

from ..sim.events import Acquire, BarrierWait, Compute, Fence, Op, Release
from .sync import SyncManager


class Lock:
    """A queue lock living at ``lock_id % nprocs``."""

    __slots__ = ("manager", "lock_id", "name")

    def __init__(self, manager: SyncManager, name: str = ""):
        self.manager = manager
        self.lock_id = manager.new_lock(name)
        self.name = name

    def acquire(self) -> Generator[Op, None, None]:
        yield Acquire(self.lock_id)

    def release(self) -> Generator[Op, None, None]:
        yield Release(self.lock_id)


class Barrier:
    """A sense-reversing barrier over ``participants`` processors."""

    __slots__ = ("manager", "barrier_id", "name")

    def __init__(self, manager: SyncManager, participants: int | None = None, name: str = ""):
        self.manager = manager
        self.barrier_id = manager.new_barrier(participants, name)
        self.name = name

    def wait(self) -> Generator[Op, None, None]:
        yield BarrierWait(self.barrier_id)


def compute(cycles: float) -> Generator[Op, None, None]:
    """Charge ``cycles`` of computation."""
    yield Compute(cycles)


def fence() -> Generator[Op, None, None]:
    """Stand-alone release fence (drain write buffers)."""
    yield Fence()


def critical(lock: Lock):
    """Not a context manager — generators cannot ``with``-wrap yields
    across frames; provided as documentation of the intended pattern::

        yield from lock.acquire()
        ...
        yield from lock.release()
    """
    raise TypeError(
        "use `yield from lock.acquire()` / `yield from lock.release()` "
        "explicitly inside simulated worker code"
    )
