"""Parallel-programming runtime over the simulated shared memory."""

from .channel import ChannelReader, DataChannel
from .context import AppContext, Machine
from .multithread import ContextError, interleave
from .primitives import Barrier, Lock, compute, fence
from .sharedmem import SharedArray, SharedMemory, SharedScalar
from .sync import SyncManager
from .workqueue import EMPTY, CentralQueue, TaskPool

__all__ = [
    "AppContext",
    "Barrier",
    "CentralQueue",
    "ChannelReader",
    "ContextError",
    "DataChannel",
    "EMPTY",
    "Lock",
    "Machine",
    "SharedArray",
    "SharedMemory",
    "SharedScalar",
    "SyncManager",
    "TaskPool",
    "compute",
    "fence",
    "interleave",
]
