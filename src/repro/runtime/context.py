"""Per-thread application context and machine assembly.

:class:`Machine` wires a configuration, a memory system, a network, a
synchronisation manager and the engine together; :class:`AppContext` is
what each SPMD worker receives.
"""

from __future__ import annotations

from collections.abc import Callable, Generator

from ..config import MachineConfig
from ..mem.systems import make_system
from ..mem.systems.zmachine import ZMachine
from ..network.base import Network
from ..sim.engine import Engine
from ..sim.events import Compute, Op, Phase
from ..sim.stats import SimResult
from .sharedmem import SharedMemory
from .sync import SyncManager


class AppContext:
    """Handed to every worker: identity plus runtime handles."""

    __slots__ = ("pid", "nprocs", "config", "shm", "sync")

    def __init__(self, pid: int, config: MachineConfig, shm: SharedMemory, sync: SyncManager):
        self.pid = pid
        self.nprocs = config.nprocs
        self.config = config
        self.shm = shm
        self.sync = sync

    def compute(self, cycles: float) -> Generator[Op, None, None]:
        """Charge ``cycles`` of local computation."""
        yield Compute(cycles)

    def phase(self, label: str) -> Generator[Op, None, None]:
        """Mark a named application phase (zero simulated cost).

        Purely observability: tracers and metrics collectors attribute
        subsequent events to the phase; timing is unaffected.
        """
        yield Phase(label)


class Machine:
    """One simulated machine instance: config + memory system + runtime.

    Typical use::

        machine = Machine(config, "RCinv")
        app = SomeApp(machine, workload)      # allocates shared state
        result = machine.run(app.worker)      # SPMD execution
    """

    def __init__(
        self,
        config: MachineConfig,
        system: str = "RCinv",
        network: Network | None = None,
        max_ops: int | None = None,
    ):
        self.config = config
        self.memsys = make_system(system, config, network)
        # Sync traffic shares the data network so protocol traffic delays
        # synchronisation (and vice versa); the z-machine's ideal network
        # keeps synchronisation contention-free there.
        if isinstance(self.memsys, ZMachine):
            self.network: Network = self.memsys.network
        else:
            self.network = self.memsys.network
        self.sync = SyncManager(config, self.network)
        self.shm = SharedMemory(config)
        self.engine = Engine(config, self.memsys, self.sync, max_ops=max_ops)
        self._ran = False

    @property
    def system_name(self) -> str:
        return self.memsys.name

    @property
    def is_zmachine(self) -> bool:
        return isinstance(self.memsys, ZMachine)

    def run(self, worker: Callable[[AppContext], Generator[Op, None, None]]) -> SimResult:
        """Run ``worker(ctx)`` on every processor to completion."""
        if self._ran:
            raise RuntimeError("a Machine instance can only run once")
        self._ran = True
        for pid in range(self.config.nprocs):
            ctx = AppContext(pid, self.config, self.shm, self.sync)
            self.engine.spawn(pid, worker(ctx))
        result = self.engine.run()
        stats = self.network.stats
        result.network_messages = stats.messages
        result.network_bytes = stats.bytes
        result.network_busy_cycles = stats.busy_cycles
        return result
