"""Synchronisation manager: queue-based locks and barriers.

Synchronisation objects live at a home node and are operated by
request/grant messages over the same interconnect as data traffic (so
coherence traffic slows synchronisation down, as the paper observes).
Process-coordination wait time is accounted separately from the
memory-system overheads: it is inherent in the application.

The RC-model coupling (draining write buffers at releases) is handled by
the engine/memory system *before* the sync operation reaches us.
"""

from __future__ import annotations

from collections import deque

from ..analysis.naming import sync_label
from ..config import MachineConfig
from ..network.base import Network

#: Cycles for the home node to process a sync request.
SYNC_HANDLING_CYCLES = 4.0


class _LockState:
    __slots__ = ("home", "holder", "queue", "grants", "name")

    def __init__(self, home: int, name: str = ""):
        self.home = home
        self.name = name
        self.holder: int | None = None
        self.queue: deque[tuple[int, float]] = deque()
        #: Completed grant count (the lock's "episode" for tracing).
        self.grants = 0


class _BarrierState:
    __slots__ = ("home", "participants", "waiting", "episodes", "name")

    def __init__(self, home: int, participants: int, name: str = ""):
        self.home = home
        self.name = name
        self.participants = participants
        self.waiting: list[tuple[int, float]] = []
        self.episodes = 0


class _FlagState:
    """Event flag with epochs (paper Section 6 data-flow decoupling)."""

    __slots__ = ("home", "epoch", "ready_time", "waiters", "name")

    def __init__(self, home: int, name: str = ""):
        self.home = home
        self.name = name
        self.epoch = 0
        #: time by which the data published with the latest epochs is
        #: fetchable (max over sets of their data-ready times)
        self.ready_time = 0.0
        #: blocked waiters: (proc, target_epoch, request_arrival)
        self.waiters: list[tuple[int, int, float]] = []


class SyncManager:
    """Creates and operates locks and barriers for one simulation."""

    def __init__(self, config: MachineConfig, network: Network):
        self.config = config
        self.network = network
        self._locks: list[_LockState] = []
        self._barriers: list[_BarrierState] = []
        self._flags: list[_FlagState] = []
        self._engine = None
        self.lock_acquires = 0
        self.lock_contended = 0
        self.barrier_episodes = 0
        self.flag_sets = 0

    def bind(self, engine) -> None:
        self._engine = engine

    # ------------------------------------------------------------------
    # object creation
    # ------------------------------------------------------------------
    def new_lock(self, name: str = "") -> int:
        lock_id = len(self._locks)
        self._locks.append(_LockState(home=lock_id % self.config.nprocs, name=name))
        return lock_id

    def new_barrier(self, participants: int | None = None, name: str = "") -> int:
        n = participants if participants is not None else self.config.nprocs
        if n < 1:
            raise ValueError("barrier needs at least one participant")
        barrier_id = len(self._barriers)
        self._barriers.append(
            _BarrierState(home=barrier_id % self.config.nprocs, participants=n, name=name)
        )
        return barrier_id

    def new_flag(self, name: str = "") -> int:
        flag_id = len(self._flags)
        self._flags.append(_FlagState(home=flag_id % self.config.nprocs, name=name))
        return flag_id

    @property
    def num_locks(self) -> int:
        return len(self._locks)

    def sync_name(self, kind: str, sync_id: int) -> str:
        """Declaration name of a sync object ("" if anonymous).

        ``kind`` is ``lock``/``barrier``/``flag`` (trace kinds like
        ``flag_set`` are normalised).
        """
        if kind.startswith("flag"):
            return self._flags[sync_id].name
        if kind == "lock":
            return self._locks[sync_id].name
        if kind == "barrier":
            return self._barriers[sync_id].name
        raise ValueError(f"unknown sync kind {kind!r}")

    def sync_names(self) -> dict[tuple[str, int], str]:
        """(kind, id) -> name for every named sync object (reporting)."""
        out: dict[tuple[str, int], str] = {}
        for i, lock in enumerate(self._locks):
            if lock.name:
                out[("lock", i)] = lock.name
        for i, bar in enumerate(self._barriers):
            if bar.name:
                out[("barrier", i)] = bar.name
        for i, flag in enumerate(self._flags):
            if flag.name:
                out[("flag", i)] = flag.name
        return out

    # ------------------------------------------------------------------
    # flag protocol (data-flow decoupled synchronisation, paper §6)
    # ------------------------------------------------------------------
    def flag_set(self, proc: int, flag_id: int, now: float, data_ready: float) -> float:
        """Advance the flag's epoch; wake satisfied waiters.

        ``data_ready`` is when the published data is fetchable; waiters
        are granted no earlier than that (the generalised counter
        mechanism of the z-machine).  Fire-and-forget for the setter.
        """
        flag = self._flags[flag_id]
        net = self.network
        self.flag_sets += 1
        arrive = net.transfer(proc, flag.home, self.config.sync_bytes, now)
        arrive += SYNC_HANDLING_CYCLES
        flag.epoch += 1
        if data_ready > flag.ready_time:
            flag.ready_time = data_ready
        still_waiting = []
        for waiter, target, req_arrive in flag.waiters:
            if target <= flag.epoch:
                send = max(arrive, req_arrive, flag.ready_time)
                grant = net.transfer(flag.home, waiter, self.config.sync_bytes, send)
                self._engine.wake(waiter, grant)
            else:
                still_waiting.append((waiter, target, req_arrive))
        flag.waiters = still_waiting
        return now + self.config.cache_hit_cycles

    def flag_wait(self, proc: int, flag_id: int, epoch: int, now: float) -> float | None:
        """Wait until the flag has been set ``epoch`` times.

        Returns the departure time if already satisfied, else None
        (caller blocks until :meth:`flag_set` wakes it).
        """
        flag = self._flags[flag_id]
        net = self.network
        arrive = net.transfer(proc, flag.home, self.config.sync_bytes, now)
        arrive += SYNC_HANDLING_CYCLES
        if flag.epoch >= epoch:
            send = max(arrive, flag.ready_time)
            return net.transfer(flag.home, proc, self.config.sync_bytes, send)
        flag.waiters.append((proc, epoch, arrive))
        return None

    def flag_epoch(self, flag_id: int) -> int:
        return self._flags[flag_id].epoch

    # ------------------------------------------------------------------
    # lock protocol
    # ------------------------------------------------------------------
    def acquire(self, proc: int, lock_id: int, now: float) -> float | None:
        """Request the lock.  Returns grant time, or None if blocked."""
        lock = self._locks[lock_id]
        net = self.network
        self.lock_acquires += 1
        arrive = net.transfer(proc, lock.home, self.config.sync_bytes, now)
        arrive += SYNC_HANDLING_CYCLES
        if lock.holder is None and not lock.queue:
            lock.holder = proc
            lock.grants += 1
            return net.transfer(lock.home, proc, self.config.sync_bytes, arrive)
        self.lock_contended += 1
        lock.queue.append((proc, arrive))
        return None

    def release(self, proc: int, lock_id: int, now: float) -> float:
        """Release the lock; wakes the next waiter if any.

        Returns when the releasing processor may continue (the release
        message is fire-and-forget).
        """
        lock = self._locks[lock_id]
        if lock.holder != proc:
            label = sync_label("lock", lock.name, lock_id)
            raise RuntimeError(
                f"processor {proc} released {label} held by {lock.holder}"
            )
        net = self.network
        arrive = net.transfer(proc, lock.home, self.config.sync_bytes, now)
        arrive += SYNC_HANDLING_CYCLES
        if lock.queue:
            waiter, req_arrive = lock.queue.popleft()
            grant_send = max(arrive, req_arrive)
            grant = net.transfer(lock.home, waiter, self.config.sync_bytes, grant_send)
            lock.holder = waiter
            lock.grants += 1
            self._engine.wake(waiter, grant)
        else:
            lock.holder = None
        return now + self.config.cache_hit_cycles

    def holder(self, lock_id: int) -> int | None:
        return self._locks[lock_id].holder

    def lock_episode(self, lock_id: int) -> int:
        """Completed grant count of ``lock_id`` (trace attribution)."""
        return self._locks[lock_id].grants

    def barrier_episode(self, barrier_id: int) -> int:
        """Completed episode count of ``barrier_id`` (trace attribution)."""
        return self._barriers[barrier_id].episodes

    # ------------------------------------------------------------------
    # barrier protocol
    # ------------------------------------------------------------------
    def barrier_wait(self, proc: int, barrier_id: int, now: float) -> float | None:
        """Arrive at the barrier.  Returns departure time for the last
        arriver (who releases everyone), None for the others (blocked)."""
        barrier = self._barriers[barrier_id]
        net = self.network
        arrive = net.transfer(proc, barrier.home, self.config.sync_bytes, now)
        barrier.waiting.append((proc, arrive))
        if len(barrier.waiting) < barrier.participants:
            return None
        # Everyone has arrived: the home releases all participants.
        go = max(t for _, t in barrier.waiting) + SYNC_HANDLING_CYCLES
        waiters = [p for p, _ in barrier.waiting]
        barrier.waiting.clear()
        barrier.episodes += 1
        self.barrier_episodes += 1
        departures = net.multicast(barrier.home, waiters, self.config.sync_bytes, go)
        my_departure = departures[proc]
        for p in waiters:
            if p != proc:
                self._engine.wake(p, departures[p])
        return my_departure
