"""Work queues built on the shared-memory runtime.

The paper's Cholesky gets its dynamic communication pattern from a
*central* work queue; Maxflow uses per-processor *local* queues that
interact with a *global* queue for load balancing.  Both are implemented
here on top of shared arrays and locks, so queue manipulation generates
real coherence traffic in the simulation.

Queue payloads are integer task ids; applications keep the task
descriptors themselves in private (read-only) metadata.
"""

from __future__ import annotations

from collections.abc import Generator

from ..sim.events import Compute, Op
from .primitives import Lock
from .sharedmem import SharedMemory
from .sync import SyncManager

#: Returned by ``get`` when the queue is momentarily empty.
EMPTY = None


class CentralQueue:
    """A lock-protected bounded FIFO in shared memory.

    ``head``/``tail`` are shared words; ``slots`` is a shared circular
    buffer.  All operations run inside the queue lock, so contention for
    the queue serialises exactly as on the real machine.
    """

    def __init__(self, shm: SharedMemory, sync: SyncManager, capacity: int, name: str = "queue"):
        if capacity < 1:
            raise ValueError("queue capacity must be >= 1")
        self.capacity = capacity
        self.name = name
        self.lock = Lock(sync, name=f"{name}.lock")
        self.slots = shm.array(capacity, name=f"{name}.slots", align_line=True)
        self.head = shm.scalar(name=f"{name}.head", fill=0)
        self.tail = shm.scalar(name=f"{name}.tail", fill=0)

    def put(self, task: int) -> Generator[Op, None, None]:
        """Append a task id (caller must ensure the queue is not full)."""
        yield from self.lock.acquire()
        tail = yield from self.tail.get()
        head = yield from self.head.get()
        if tail - head >= self.capacity:
            yield from self.lock.release()
            raise OverflowError(f"work queue {self.name!r} overflow (cap {self.capacity})")
        yield from self.slots.write(int(tail) % self.capacity, task)
        yield from self.tail.set(tail + 1)
        yield from self.lock.release()

    def get(self) -> Generator[Op, None, int | None]:
        """Pop a task id, or ``EMPTY`` if no work is available."""
        yield from self.lock.acquire()
        head = yield from self.head.get()
        tail = yield from self.tail.get()
        if head == tail:
            yield from self.lock.release()
            return EMPTY
        task = yield from self.slots.read(int(head) % self.capacity)
        yield from self.head.set(head + 1)
        yield from self.lock.release()
        return int(task)

    def put_nolock(self, task: int) -> Generator[Op, None, None]:
        """Append while the caller already holds :attr:`lock`."""
        tail = yield from self.tail.get()
        yield from self.slots.write(int(tail) % self.capacity, task)
        yield from self.tail.set(tail + 1)


class TaskPool:
    """Central queue + termination detection via an outstanding-task count.

    The canonical worker loop::

        while True:
            task = yield from pool.get_task()
            if task is None:
                break            # global termination
            ...process...
            for t in new_tasks:
                yield from pool.add_task(t)
            yield from pool.task_done()

    ``outstanding`` counts queued + in-flight tasks; when it reaches zero
    no task can ever appear again, so idle workers may exit.
    """

    #: Busy-wait backoff between empty polls, in cycles.
    POLL_BACKOFF = 50.0

    def __init__(self, shm: SharedMemory, sync: SyncManager, capacity: int, name: str = "pool"):
        self.queue = CentralQueue(shm, sync, capacity, name=name)
        # Written only under counter_lock; the termination poll in
        # get_task reads it without the lock (intentional — a stale
        # nonzero just means one more poll round), hence relaxed reads.
        self.outstanding = shm.scalar(name=f"{name}.outstanding", fill=0, relaxed="read")
        self.counter_lock = Lock(sync, name=f"{name}.count_lock")
        # Reusable poll op: the engine consumes .cycles before the
        # generator resumes and never mutates the op.
        self._poll_op = Compute(self.POLL_BACKOFF)

    def seed(self, tasks: list[int]) -> None:
        """Pre-load tasks before the simulation starts (setup time)."""
        head = int(self.queue.head.value())
        tail = int(self.queue.tail.value())
        if tail - head + len(tasks) > self.queue.capacity:
            raise OverflowError("seeding beyond queue capacity")
        for k, t in enumerate(tasks):
            self.queue.slots.poke((tail + k) % self.queue.capacity, t)
        self.queue.tail.poke(0, tail + len(tasks))
        self.outstanding.poke(0, self.outstanding.value() + len(tasks))

    def add_task(self, task: int) -> Generator[Op, None, None]:
        yield from self.counter_lock.acquire()
        yield from self.outstanding.incr(1)
        yield from self.counter_lock.release()
        yield from self.queue.put(task)

    def task_done(self) -> Generator[Op, None, None]:
        yield from self.counter_lock.acquire()
        yield from self.outstanding.incr(-1)
        yield from self.counter_lock.release()

    def get_task(self) -> Generator[Op, None, int | None]:
        """Blocking pop: polls until a task arrives or all work is done."""
        while True:
            task = yield from self.queue.get()
            if task is not None:
                return task
            remaining = yield from self.outstanding.get()
            if remaining <= 0:
                return None
            yield self._poll_op
