"""Multithreaded-processor latency tolerance (paper Section 6/7).

The paper lists multithreading, alongside prefetching, as an
architectural enhancement for tolerating the read latency that the
z-machine shows to be avoidable.  :func:`interleave` implements a
switch-on-miss multithreaded processor: several hardware contexts share
one processor (one engine thread, one cache, one store buffer); when the
running context issues a read whose data is not yet available, the
processor pays a context-switch cost and runs another ready context,
hiding the miss latency under useful work.  Only the unhidden remainder
is charged as read stall.

Contexts yield the ordinary operation vocabulary (``Read``/``Write``/
``Compute``); reads are transparently converted to non-blocking reads.
Synchronisation operations are *not* supported inside contexts (they
block the whole processor) — join the contexts first and synchronise at
processor level, which is how the workloads this technique targets
(miss-bound data-parallel loops) are structured.
"""

from __future__ import annotations

from collections.abc import Generator

from ..sim.events import (
    Acquire,
    BarrierWait,
    Compute,
    Fence,
    Op,
    Read,
    ReadNB,
    Release,
    Stall,
    Write,
)

#: Default context-switch cost in cycles.
SWITCH_COST = 4.0


class ContextError(RuntimeError):
    """A context yielded an operation the multithreaded wrapper cannot run."""


def interleave(
    contexts: list[Generator[Op, None, None]],
    switch_cost: float = SWITCH_COST,
    min_switch_latency: float | None = None,
) -> Generator[Op, None, None]:
    """Run several contexts on one processor with switch-on-miss.

    ``contexts`` are ordinary worker generators restricted to
    ``Read``/``Write``/``Compute`` operations.  ``switch_cost`` is the
    context-switch penalty; a switch is only worthwhile when the miss
    latency exceeds ``min_switch_latency`` (defaults to the switch cost
    itself).

    Yields engine operations; drive it with ``yield from`` inside a
    normal worker, or pass it directly to :meth:`Machine.run` via a
    wrapper.
    """
    if not contexts:
        return
    if switch_cost < 0:
        raise ValueError("switch_cost must be >= 0")
    threshold = min_switch_latency if min_switch_latency is not None else switch_cost
    n = len(contexts)
    #: absolute time at which each context may run again (data arrival)
    ready_at = [0.0] * n
    alive = [True] * n
    pending_value: list[object] = [None] * n
    now = 0.0
    current = -1

    def runnable() -> list[int]:
        return [i for i in range(n) if alive[i]]

    while any(alive):
        candidates = runnable()
        # Pick the ready context (prefer the current one: no switch cost);
        # if none is ready, the earliest-ready one and stall for the gap.
        ready = [i for i in candidates if ready_at[i] <= now]
        if current in ready:
            pick = current
        elif ready:
            pick = ready[0]
        else:
            pick = min(candidates, key=lambda i: ready_at[i])
            gap = ready_at[pick] - now
            if gap > 0:
                now = yield Stall(gap, "read")
        if pick != current and current != -1 and switch_cost > 0:
            now = yield Compute(switch_cost)
        current = pick
        ctx = contexts[pick]

        # Run the picked context until it blocks on a miss or finishes.
        send_value = pending_value[pick]
        pending_value[pick] = None
        while True:
            try:
                op = ctx.send(send_value)
            except StopIteration:
                alive[pick] = False
                break
            send_value = None
            cls = op.__class__
            if cls is Read:
                fb = yield ReadNB(op.addr)
                now, res = fb
                data_ready = res.time
                if data_ready > now + threshold and len(runnable()) > 1:
                    # Long-latency miss with other work available: park
                    # this context until its data arrives and switch.
                    ready_at[pick] = data_ready
                    pending_value[pick] = fb
                    break
                if data_ready > now:
                    now = yield Stall(data_ready - now, "read")
                send_value = (now, res)
            elif cls is Compute or cls is Write:
                now = yield op
                send_value = now
            elif cls in (Acquire, Release, BarrierWait, Fence, ReadNB, Stall):
                raise ContextError(
                    f"multithreaded contexts may not yield {op!r}; "
                    "synchronise at processor level after joining contexts"
                )
            else:
                raise ContextError(f"unknown operation {op!r} from context")
