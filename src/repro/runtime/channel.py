"""Data-carrying synchronisation (paper Section 6).

"As the performance on the z-machine indicates, there is an advantage in
decoupling the two, i.e., use synchronization only for control flow and
use a different mechanism for data flow.  The motivation for doing this
is to eliminate the buffer flush time.  One approach would be
associating data with synchronization in order to carry out smart
self-invalidations when needed at the consumer instead of stalling at
the producer."

:class:`DataChannel` implements exactly that: a single-producer,
multi-consumer broadcast channel.  ``produce`` publishes the payload's
memory blocks fire-and-forget — the producer never stalls to flush its
write buffers — and ``consume`` self-invalidates the consumer's stale
copies and reads fresh data; an epoch flag carries only the control
flow.  A ring of ``depth`` payload slots plus an acknowledgement flag
provides flow control, so the channel is data-race free end to end.
"""

from __future__ import annotations

from collections.abc import Generator, Sequence

from ..sim.events import FlagSet, FlagWait, Op, SelfInvalidate
from .context import Machine


class DataChannel:
    """Single-producer broadcast channel with decoupled data flow.

    ``consumers`` is the number of readers (every reader sees every
    payload); ``depth`` is how many epochs the producer may run ahead of
    the slowest reader.
    """

    def __init__(
        self,
        machine: Machine,
        nwords: int,
        consumers: int,
        depth: int = 2,
        name: str = "chan",
    ):
        if nwords < 1:
            raise ValueError("channel needs at least one word")
        if consumers < 1:
            raise ValueError("channel needs at least one consumer")
        if depth < 1:
            raise ValueError("channel depth must be >= 1")
        self.machine = machine
        self.nwords = nwords
        self.consumers = consumers
        self.depth = depth
        self.name = name
        self.slots = [
            machine.shm.array(nwords, f"{name}.slot{k}", align_line=True, pad_to_line=True)
            for k in range(depth)
        ]
        self.flag_id = machine.sync.new_flag(f"{name}.epoch")
        #: One acknowledgement flag per consumer.  A single shared
        #: counter is not enough for flow control: "total acks >= epoch
        #: * consumers" can be satisfied by fast consumers acking later
        #: epochs while a slow consumer has not acked the epoch being
        #: overwritten, letting the producer tear a payload mid-read.
        self.ack_flag_ids = [
            machine.sync.new_flag(f"{name}.ack{k}") for k in range(consumers)
        ]
        self._next_reader = 0
        memsys = machine.memsys
        self.slot_blocks: list[tuple[int, ...]] = []
        for slot in self.slots:
            first = memsys.block_of(slot.addr(0))
            last = memsys.block_of(slot.addr(nwords - 1))
            self.slot_blocks.append(tuple(range(first, last + 1)))
        self._produced = 0

    # -- producer side --------------------------------------------------
    def produce(self, values: Sequence) -> Generator[Op, None, None]:
        """Publish a new payload (fire-and-forget data flow).

        Blocks only for flow control: slot reuse waits until every
        consumer has acknowledged the payload that previously occupied
        the slot.
        """
        if len(values) != self.nwords:
            raise ValueError(
                f"channel {self.name!r} expects {self.nwords} words, got {len(values)}"
            )
        overwritten_epoch = self._produced - self.depth + 1
        if overwritten_epoch >= 1:
            # Every consumer individually must have consumed the epoch
            # whose slot we are about to overwrite.
            for ack_flag_id in self.ack_flag_ids:
                yield FlagWait(ack_flag_id, overwritten_epoch)
        slot_idx = self._produced % self.depth
        yield from self.slots[slot_idx].write_range(0, values)
        self._produced += 1
        yield FlagSet(self.flag_id, self.slot_blocks[slot_idx])

    @property
    def epochs_produced(self) -> int:
        return self._produced

    # -- consumer side ---------------------------------------------------
    def consume(self, epoch: int, consumer: int = 0) -> Generator[Op, None, list]:
        """Wait for the ``epoch``-th payload (1-based) and return it.

        Control flow waits on the flag; data flow is a local smart
        self-invalidation followed by fresh reads — the producer never
        stalled to guarantee our view.  ``consumer`` is this reader's
        index (``reader()`` assigns them); its acknowledgement tells the
        producer the slot may be reused.
        """
        if epoch < 1:
            raise ValueError("epochs are 1-based")
        if not 0 <= consumer < self.consumers:
            raise ValueError(
                f"consumer index {consumer} out of range for {self.consumers} consumers"
            )
        yield FlagWait(self.flag_id, epoch)
        slot_idx = (epoch - 1) % self.depth
        yield SelfInvalidate(self.slot_blocks[slot_idx])
        values = yield from self.slots[slot_idx].read_range(0, self.nwords)
        yield FlagSet(self.ack_flag_ids[consumer], ())
        return values

    def reader(self) -> ChannelReader:
        """Create the next consumer's cursor (at most ``consumers``)."""
        if self._next_reader >= self.consumers:
            raise RuntimeError(
                f"channel {self.name!r} already has {self.consumers} readers"
            )
        reader = ChannelReader(self, self._next_reader)
        self._next_reader += 1
        return reader


class ChannelReader:
    """Per-consumer epoch cursor over a :class:`DataChannel`."""

    __slots__ = ("channel", "consumer", "epoch")

    def __init__(self, channel: DataChannel, consumer: int = 0):
        self.channel = channel
        self.consumer = consumer
        self.epoch = 0

    def next(self) -> Generator[Op, None, list]:
        """Consume the next unseen payload."""
        self.epoch += 1
        return self.channel.consume(self.epoch, self.consumer)
