"""Shared address space: allocator and simulated shared arrays.

Shared data lives in :class:`SharedArray` objects.  Every element access
through :meth:`SharedArray.read` / :meth:`SharedArray.write` traps into
the simulated memory system (they are generators to be driven with
``yield from``); ``peek``/``poke`` bypass the simulation for
setup/verification code that runs outside simulated time.

Addresses are byte addresses in a single flat space; consecutive array
elements occupy consecutive words, so arrays laid out carelessly exhibit
false sharing with 32-byte lines, exactly as on the real machine.  Use
``align_line=True`` (or :meth:`SharedMemory.alloc_padded`) to give an
array its own cache lines.
"""

from __future__ import annotations

from collections.abc import Generator, Iterable, Sequence

from ..config import MachineConfig
from ..sim.events import Op, Read, Write


class SharedMemory:
    """Bump allocator for the simulated shared address space."""

    def __init__(self, config: MachineConfig):
        self.config = config
        self._next_addr = 0
        self.arrays: list[SharedArray] = []

    def alloc_words(self, nwords: int, align_line: bool = False) -> int:
        """Reserve ``nwords`` words; returns the base byte address."""
        if nwords < 0:
            raise ValueError("cannot allocate a negative number of words")
        if align_line:
            ls = self.config.line_size
            self._next_addr = (self._next_addr + ls - 1) // ls * ls
        base = self._next_addr
        self._next_addr += nwords * self.config.word_size
        return base

    def array(
        self,
        n: int,
        name: str = "",
        fill: float = 0.0,
        align_line: bool = False,
        pad_to_line: bool = False,
        relaxed: str = "",
    ) -> SharedArray:
        """Allocate a shared array of ``n`` words."""
        arr = SharedArray(
            self, n, name=name, fill=fill, align_line=align_line, relaxed=relaxed
        )
        if pad_to_line:
            ls_words = self.config.words_per_line
            slack = (-n) % ls_words
            if slack:
                self.alloc_words(slack)
        self.arrays.append(arr)
        return arr

    def scalar(
        self,
        name: str = "",
        fill: float = 0.0,
        align_line: bool = True,
        relaxed: str = "",
    ) -> SharedScalar:
        """Allocate a single shared word on its own cache line."""
        s = SharedScalar(self, name=name, fill=fill, align_line=align_line, relaxed=relaxed)
        self.arrays.append(s)
        return s

    @property
    def bytes_allocated(self) -> int:
        return self._next_addr


class SharedArray:
    """A simulated shared array of machine words.

    Values are Python objects (ints/floats); the memory system only
    models timing, so the Python heap carries the data (see DESIGN.md).
    """

    __slots__ = ("shm", "base", "n", "name", "relaxed", "_data", "_word",
                 "_rd_op", "_wr_op")

    #: Accepted values for the ``relaxed`` access label.
    _RELAXED_LABELS = ("", "read", "all")

    def __init__(
        self,
        shm: SharedMemory,
        n: int,
        name: str = "",
        fill: float = 0.0,
        align_line: bool = False,
        relaxed: str = "",
    ):
        if relaxed not in self._RELAXED_LABELS:
            raise ValueError(
                f"relaxed must be one of {self._RELAXED_LABELS}, got {relaxed!r}"
            )
        self.shm = shm
        self.base = shm.alloc_words(n, align_line=align_line)
        self.n = n
        self.name = name
        #: Labeled-access annotation for the race detector: ``"read"``
        #: declares the array's *reads* intentionally unsynchronised
        #: (optimistic polling re-validated under a lock — write/write
        #: ordering is still checked); ``"all"`` exempts every access.
        #: Purely an analysis label: simulation timing is unaffected.
        self.relaxed = relaxed
        self._data = [fill] * n
        self._word = shm.config.word_size
        # Reusable op instances for the simulated-access generators below.
        # Safe because the engine consumes each yielded op (reads .addr,
        # calls the memory system) before resuming the generator, and a
        # generator mutates the op only between resumptions; per-access
        # allocation was a measurable share of the event hot path.
        self._rd_op = Read(0)
        self._wr_op = Write(0)

    def __len__(self) -> int:
        return self.n

    def addr(self, i: int) -> int:
        return self.base + i * self._word

    def _check(self, i: int) -> None:
        if not 0 <= i < self.n:
            raise IndexError(
                f"index {i} out of range for shared array {self.name!r} of size {self.n}"
            )

    def hot_access(self) -> tuple:
        """Hot-loop access bundle ``(read_op, write_op, base, word, data)``.

        For per-element loops where the sub-generator created by
        :meth:`read`/:meth:`write` is measurable overhead: set
        ``read_op.addr = base + i * word``, ``yield read_op``, then index
        ``data`` directly (``data`` is the same backing list the
        generator methods use, so writes interleaved by other processors
        stay visible).  For writes, mutate ``data`` only *after* yielding
        the op, mirroring :meth:`write`.  Bounds are the caller's
        responsibility.  The ops are this array's shared reusable
        instances — the engine consumes a yielded op before the
        generator resumes, so reuse across yields is safe.
        """
        return self._rd_op, self._wr_op, self.base, self._word, self._data

    # -- simulated accesses (generators; drive with ``yield from``) ----
    def read(self, i: int) -> Generator[Op, None, float]:
        if not 0 <= i < self.n:
            self._check(i)
        op = self._rd_op
        op.addr = self.base + i * self._word
        yield op
        return self._data[i]

    def write(self, i: int, value) -> Generator[Op, None, None]:
        if not 0 <= i < self.n:
            self._check(i)
        op = self._wr_op
        op.addr = self.base + i * self._word
        yield op
        self._data[i] = value

    def add(self, i: int, delta) -> Generator[Op, None, float]:
        """Read-modify-write convenience (not atomic; guard with a lock)."""
        if not 0 <= i < self.n:
            self._check(i)
        addr = self.base + i * self._word
        op = self._rd_op
        op.addr = addr
        yield op
        value = self._data[i] + delta
        wop = self._wr_op
        wop.addr = addr
        yield wop
        self._data[i] = value
        return value

    def read_range(self, start: int, stop: int) -> Generator[Op, None, list]:
        """Read elements ``start:stop``; one simulated access per word."""
        if not (0 <= start <= stop <= self.n):
            raise IndexError(f"range {start}:{stop} out of bounds for size {self.n}")
        data = self._data
        word = self._word
        base = self.base
        op = self._rd_op
        out = []
        append = out.append
        for i in range(start, stop):
            op.addr = base + i * word
            yield op
            append(data[i])
        return out

    def write_range(self, start: int, values: Sequence) -> Generator[Op, None, None]:
        if not (0 <= start and start + len(values) <= self.n):
            raise IndexError(
                f"range {start}:{start + len(values)} out of bounds for size {self.n}"
            )
        data = self._data
        word = self._word
        base = self.base
        op = self._wr_op
        for k, v in enumerate(values, start):
            op.addr = base + k * word
            yield op
            data[k] = v

    # -- unsimulated accesses (setup / verification only) ---------------
    def peek(self, i: int):
        self._check(i)
        return self._data[i]

    def poke(self, i: int, value) -> None:
        self._check(i)
        self._data[i] = value

    def poke_many(self, values: Iterable) -> None:
        values = list(values)
        if len(values) != self.n:
            raise ValueError(
                f"poke_many got {len(values)} values for array of size {self.n}"
            )
        self._data = values

    def snapshot(self) -> list:
        return list(self._data)


class SharedScalar(SharedArray):
    """A single shared word (convenience wrapper)."""

    def __init__(
        self,
        shm: SharedMemory,
        name: str = "",
        fill: float = 0.0,
        align_line: bool = True,
        relaxed: str = "",
    ):
        super().__init__(shm, 1, name=name, fill=fill, align_line=align_line, relaxed=relaxed)

    def get(self) -> Generator[Op, None, float]:
        return self.read(0)

    def set(self, value) -> Generator[Op, None, None]:
        return self.write(0, value)

    def incr(self, delta=1) -> Generator[Op, None, float]:
        return self.add(0, delta)

    def value(self):
        return self.peek(0)
