"""``repro perf`` — the bench-history ledger and regression reports.

The ``BENCH_*.json`` files are isolated snapshots: each PR re-measures
and overwrites, so the repo has no perf *trajectory*.  This module adds
one:

* :func:`record` appends any bench trajectory docs into an append-only
  JSONL ledger (``benchmarks/history.jsonl``), each entry keyed by
  commit, host and bench kind with the bench's headline metric
  extracted (see :data:`BENCH_METRICS`);
* :func:`build_report` compares the latest ledger entry of every series
  against the committed baseline docs and flags direction-aware
  regressions beyond a tolerance, giving the CI perf-smoke job and
  future PRs a real trend instead of a single number.

Series are keyed by ``(bench kind, scale, nprocs)`` — numbers measured
at different scales or machine sizes are never compared (the same rule
:func:`repro.core.bench.check_engine_regression` applies).  Absolute
values remain host-dependent; the ledger records the host so a human
(or a stricter future check) can slice like-for-like.
"""
# lint: ok-module[wall-clock] — measurement harness: timestamps date ledger
# entries on the host; simulated timing comes only from cycle counts.

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from pathlib import Path
from typing import Any

#: Default ledger location, next to the paper-scale benchmarks.
HISTORY_FILE = "benchmarks/history.jsonl"

#: Bench kind -> (headline metric as a dotted path into the doc,
#: direction in which *larger* values are better/worse).  ``None``
#: metric = record-only benches (no scalar worth trending).
BENCH_METRICS: dict[str, tuple[str | None, str | None]] = {
    "parallel-study-engine": ("speedup", "higher"),
    "engine-throughput": ("events_per_sec", "higher"),
    "observability-overhead": ("modes.both.ratio", "lower"),
    "profiler-overhead": ("overhead_ratio", "lower"),
    "attribution-overhead": ("overhead_ratio", "lower"),
    "correctness-check": ("wall_s", "lower"),
    "scenario-degradation": (None, None),
}

#: Glob the committed baseline snapshots live under.
BENCH_GLOB = "BENCH_*.json"


def metric_value(doc: dict, path: str) -> float | None:
    """Resolve a dotted path (``modes.both.ratio``) inside a bench doc."""
    node: Any = doc
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return float(node) if isinstance(node, (int, float)) else None


def detect_commit() -> str | None:
    """Short git commit of the working tree, or None outside a repo."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    commit = out.stdout.strip()
    return commit if out.returncode == 0 and commit else None


def make_entry(
    doc: dict,
    commit: str | None = None,
    host: str | None = None,
    recorded_at: float | None = None,
) -> dict | None:
    """One ledger entry for a bench trajectory doc (None if not one)."""
    kind = doc.get("bench")
    if not isinstance(kind, str):
        return None
    path, direction = BENCH_METRICS.get(kind, (None, None))
    value = metric_value(doc, path) if path else None
    return {
        "schema": 1,
        "recorded_at": time.strftime(
            "%Y-%m-%dT%H:%M:%SZ",
            time.gmtime(recorded_at if recorded_at is not None else time.time()),
        ),
        "commit": commit,
        "host": host if host is not None else platform.node(),
        "cpu_count": doc.get("cpu_count", os.cpu_count()),
        "bench": kind,
        "scale": doc.get("scale"),
        "nprocs": doc.get("nprocs"),
        "metric": path,
        "direction": direction,
        "value": value,
    }


def series_key(entry: dict) -> tuple:
    """Ledger entries are only comparable within this key."""
    return (entry.get("bench"), entry.get("scale"), entry.get("nprocs"))


def load_history(history: str | os.PathLike = HISTORY_FILE) -> list[dict]:
    """All ledger entries, in file (= chronological append) order."""
    path = Path(history)
    if not path.is_file():
        return []
    entries = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if line:
            entries.append(json.loads(line))
    return entries


def record(
    paths: list[str | os.PathLike],
    history: str | os.PathLike = HISTORY_FILE,
    commit: str | None = None,
    host: str | None = None,
    recorded_at: float | None = None,
) -> list[dict]:
    """Append the bench docs at ``paths`` to the ledger.

    Returns the entries appended.  Files that are not bench trajectory
    docs are skipped, as are exact duplicates (same series, commit and
    value as an existing entry) so re-recording an unchanged checkout
    is idempotent.
    """
    if commit is None:
        commit = detect_commit()
    existing = load_history(history)
    seen = {
        (series_key(e), e.get("commit"), e.get("value")) for e in existing
    }
    appended = []
    for path in paths:
        try:
            doc = json.loads(Path(path).read_text())
        except (OSError, ValueError):
            continue
        if not isinstance(doc, dict):
            continue
        entry = make_entry(doc, commit=commit, host=host, recorded_at=recorded_at)
        if entry is None:
            continue
        key = (series_key(entry), entry.get("commit"), entry.get("value"))
        if key in seen:
            continue
        seen.add(key)
        appended.append(entry)
    if appended:
        out = Path(history)
        out.parent.mkdir(parents=True, exist_ok=True)
        with open(out, "a") as fh:
            for entry in appended:
                fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return appended


def collect_baselines(root: str | os.PathLike = ".") -> dict[tuple, dict]:
    """Committed ``BENCH_*.json`` docs keyed like ledger series."""
    baselines: dict[tuple, dict] = {}
    for path in sorted(Path(root).glob(BENCH_GLOB)):
        try:
            doc = json.loads(path.read_text())
        except (OSError, ValueError):
            continue
        entry = make_entry(doc)
        if entry is not None:
            baselines[series_key(entry)] = doc
    return baselines


def _regressed(latest: float, baseline: float, direction: str, tolerance: float) -> bool:
    if baseline <= 0:
        return False
    if direction == "higher":
        return latest < baseline * (1.0 - tolerance)
    return latest > baseline * (1.0 + tolerance)


def build_report(
    entries: list[dict],
    baselines: dict[tuple, dict],
    tolerance: float = 0.2,
) -> dict:
    """Deltas and trends: latest ledger entry per series vs baseline.

    ``delta_pct`` is signed movement of the metric relative to the
    committed baseline; ``regressed`` applies ``tolerance`` in the
    series' bad direction.  Record-only series (no metric) and series
    without a matching baseline are listed but never flagged.
    """
    by_series: dict[tuple, list[dict]] = {}
    for entry in entries:
        by_series.setdefault(series_key(entry), []).append(entry)
    series_reports = []
    regressions = 0
    for key in sorted(by_series, key=lambda k: tuple(str(p) for p in k)):
        series = by_series[key]
        latest = series[-1]
        metric = latest.get("metric")
        direction = latest.get("direction")
        trend = [e.get("value") for e in series if e.get("value") is not None]
        report: dict[str, Any] = {
            "bench": key[0],
            "scale": key[1],
            "nprocs": key[2],
            "metric": metric,
            "direction": direction,
            "entries": len(series),
            "trend": trend[-8:],
            "latest": latest.get("value"),
            "latest_commit": latest.get("commit"),
            "baseline": None,
            "delta_pct": None,
            "regressed": False,
        }
        base_doc = baselines.get(key)
        if base_doc is not None and metric:
            base_value = metric_value(base_doc, metric)
            report["baseline"] = base_value
            if base_value and report["latest"] is not None:
                delta = (report["latest"] - base_value) / base_value
                report["delta_pct"] = round(100.0 * delta, 2)
                report["regressed"] = _regressed(
                    report["latest"], base_value, direction or "higher", tolerance
                )
        if report["regressed"]:
            regressions += 1
        series_reports.append(report)
    return {
        "schema": 1,
        "report": "perf-trajectory",
        "tolerance": tolerance,
        "series": series_reports,
        "regressions": regressions,
    }


def format_report(report: dict) -> str:
    """Human-readable perf trajectory table."""
    lines = [
        f"perf trajectory: {len(report['series'])} series, "
        f"tolerance {report['tolerance']:.0%}, "
        f"{report['regressions']} regression(s)",
        f"{'bench':>24s} {'scale':>8s} {'metric':>18s} {'baseline':>10s} "
        f"{'latest':>10s} {'delta':>8s}  status",
    ]

    def num(v: float | None) -> str:
        if v is None:
            return "-"
        return f"{v:,.1f}" if abs(v) >= 10 else f"{v:.3f}"

    for s in report["series"]:
        delta = f"{s['delta_pct']:+.1f}%" if s["delta_pct"] is not None else "-"
        if s["metric"] is None:
            status = "record-only"
        elif s["baseline"] is None:
            status = "no baseline"
        elif s["regressed"]:
            status = "REGRESSED"
        else:
            status = "ok"
        lines.append(
            f"{str(s['bench']):>24s} {str(s['scale']):>8s} "
            f"{str(s['metric'] or '-'):>18s} {num(s['baseline']):>10s} "
            f"{num(s['latest']):>10s} {delta:>8s}  {status} "
            f"({s['entries']} entr{'y' if s['entries'] == 1 else 'ies'})"
        )
    return "\n".join(lines)


__all__ = [
    "BENCH_GLOB",
    "BENCH_METRICS",
    "HISTORY_FILE",
    "build_report",
    "collect_baselines",
    "detect_commit",
    "format_report",
    "load_history",
    "make_entry",
    "metric_value",
    "record",
    "series_key",
]
