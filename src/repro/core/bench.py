"""``repro bench`` — the performance baseline for the parallel layer.

Runs a fixed, representative workload set (every preset application ×
every paper memory system) three times through
:func:`repro.core.parallel.run_jobs`:

1. **serial** — ``jobs=1``, no cache: the pre-parallel-layer baseline;
2. **parallel** — ``jobs=N`` against a cold cache: pure fan-out;
3. **cached** — the same jobs again against the now-warm cache.

and writes a ``BENCH_parallel.json`` trajectory file with wall-clock
per phase, speedup vs serial, and the cache hit rate, so future changes
have a recorded perf baseline to compare against.  The serial and
parallel phases must produce bit-identical results (simulations are
deterministic); the bench asserts this and records it.
"""
# lint: ok-module[wall-clock] — measurement harness: wall-clock here times the
# host, never the simulation; simulated timing comes only from cycle counts.

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from tempfile import TemporaryDirectory

from ..apps.presets import preset
from ..config import MachineConfig
from ..mem.systems import PAPER_SYSTEMS
from ..obs.manifest import build_manifest
from ..obs.metrics import MetricsCollector
from ..runtime.context import Machine
from ..sim.trace import TracingMemory
from .parallel import JobSpec, ResultCache, resolve_jobs, run_jobs

#: Name of the trajectory file the bench emits by default.
BENCH_FILE = "BENCH_parallel.json"

#: Name of the observability-overhead trajectory file.
TRACE_BENCH_FILE = "BENCH_trace.json"

#: Name of the raw engine-throughput trajectory file.
ENGINE_BENCH_FILE = "BENCH_engine.json"

#: Name of the self-profiler overhead trajectory file.
PROFILE_BENCH_FILE = "BENCH_profile.json"

#: Name of the overhead-attribution overhead trajectory file.
ATTRIB_BENCH_FILE = "BENCH_attrib.json"


def bench_specs(
    scale: str = "default",
    config: MachineConfig | None = None,
    systems: tuple[str, ...] = PAPER_SYSTEMS,
) -> list[JobSpec]:
    """The fixed workload set: every preset app on every system."""
    cfg = config if config is not None else MachineConfig()
    return [
        JobSpec(factory=factory, system=system, config=cfg)
        for factory, _ in preset(scale).values()
        for system in systems
    ]


def run_bench(
    scale: str = "default",
    jobs: int | None = None,
    out: str | os.PathLike | None = BENCH_FILE,
    cache_dir: str | os.PathLike | None = None,
) -> dict:
    """Run the three-phase bench; write and return the trajectory dict.

    ``jobs=None`` uses one worker per CPU.  ``cache_dir=None`` uses a
    throwaway temporary directory so the bench always starts cold.
    ``out=None`` skips writing the JSON file.
    """
    nworkers = resolve_jobs(jobs)
    specs = bench_specs(scale)

    t0 = time.perf_counter()
    serial = run_jobs(specs, jobs=1, cache=None)
    serial_s = time.perf_counter() - t0

    with TemporaryDirectory() as tmp:
        cache = ResultCache(cache_dir if cache_dir is not None else tmp)
        t0 = time.perf_counter()
        parallel = run_jobs(specs, jobs=nworkers, cache=cache)
        parallel_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        cached = run_jobs(specs, jobs=nworkers, cache=cache)
        cached_s = time.perf_counter() - t0

    identical = all(
        a.result == b.result == c.result for a, b, c in zip(serial, parallel, cached)
    )
    assert identical, "parallel/cached results diverged from serial baseline"
    cache_hits = sum(1 for job in cached if job.cached)

    def speedup(phase_s: float) -> float:
        return serial_s / phase_s if phase_s > 0 else float("inf")

    doc = {
        "bench": "parallel-study-engine",
        "scale": scale,
        "jobs": nworkers,
        "cpu_count": os.cpu_count(),
        "n_runs": len(specs),
        "simulated_cycles": sum(job.result.total_time for job in serial),
        "phases": {
            "serial": {"wall_s": round(serial_s, 4), "speedup": 1.0},
            "parallel": {"wall_s": round(parallel_s, 4), "speedup": round(speedup(parallel_s), 3)},
            "cached": {"wall_s": round(cached_s, 4), "speedup": round(speedup(cached_s), 3)},
        },
        "speedup": round(max(speedup(parallel_s), speedup(cached_s)), 3),
        "cache_hit_rate": round(cache_hits / len(specs), 4) if specs else 0.0,
        "results_identical": identical,
    }
    if out is not None:
        Path(out).write_text(json.dumps(doc, indent=2) + "\n")
    return doc


def run_engine_bench(
    scale: str = "default",
    nprocs: int = 16,
    reps: int = 3,
    systems: tuple[str, ...] = PAPER_SYSTEMS,
    out: str | os.PathLike | None = ENGINE_BENCH_FILE,
    extra: dict | None = None,
) -> dict:
    """Measure raw engine throughput: simulated events per wall second.

    Runs the whole preset suite (every application x every paper memory
    system) *in-process* — no worker pool, no result cache — because the
    quantity of interest is the scheduler/memory-system hot path itself.
    The suite executes ``reps`` times and the best rep is kept (the
    stable estimator on a noisy host); rep 1 additionally warms
    allocator and bytecode caches.  Verification is skipped: it is
    host-side numpy work that would dilute the engine measurement (the
    suite's correctness is pinned by the test battery).

    Absolute events/sec is machine- and load-dependent.  Trajectory
    docs are only comparable like-for-like: same host class, same
    ``scale``/``nprocs``, ideally interleaved measurement (see the
    ``seed_comparison`` block the committed baseline carries).
    """
    cfg = MachineConfig(nprocs=nprocs)
    apps = preset(scale)
    walls: list[float] = []
    events = 0
    for _ in range(max(1, reps)):
        t0 = time.perf_counter()
        total = 0
        for factory, _ in apps.values():
            for system in systems:
                app = factory()
                machine = Machine(cfg, system)
                app.setup(machine)
                total += machine.run(app.worker).ops
        walls.append(time.perf_counter() - t0)
        events = total
    best = min(walls)
    doc = {
        "bench": "engine-throughput",
        "scale": scale,
        "nprocs": nprocs,
        "systems": list(systems),
        "reps": len(walls),
        "events": events,
        "wall_s": round(best, 4),
        "wall_s_all_reps": [round(w, 4) for w in walls],
        "events_per_sec": round(events / best, 1) if best > 0 else None,
        "cpu_count": os.cpu_count(),
    }
    if extra:
        doc.update(extra)
    if out is not None:
        Path(out).write_text(json.dumps(doc, indent=2) + "\n")
    return doc


def check_engine_regression(
    doc: dict, baseline: dict, tolerance: float = 0.2
) -> tuple[bool, str]:
    """Compare a fresh engine-bench doc against a committed baseline.

    Returns ``(ok, message)``; ``ok`` is False when the fresh
    events/sec fell more than ``tolerance`` below the baseline's.
    Docs measured at a different scale or machine size are not
    comparable — that case passes with an explanatory message rather
    than failing on apples-to-oranges numbers.
    """
    for key in ("scale", "nprocs"):
        if doc.get(key) != baseline.get(key):
            return True, (
                f"baseline not comparable ({key}: {baseline.get(key)!r} vs "
                f"{doc.get(key)!r}); regression check skipped"
            )
    base = baseline.get("events_per_sec") or 0.0
    cur = doc.get("events_per_sec") or 0.0
    if base <= 0:
        return True, "baseline carries no events/sec; regression check skipped"
    ratio = cur / base
    msg = (
        f"engine throughput {cur:,.0f} ev/s vs baseline {base:,.0f} ev/s "
        f"({ratio:.2f}x, tolerance -{tolerance:.0%})"
    )
    if ratio < 1.0 - tolerance:
        return False, "REGRESSION: " + msg
    return True, msg


def format_engine_bench(doc: dict) -> str:
    """Human-readable summary of an engine-throughput trajectory."""
    lines = [
        f"engine throughput: {doc['events']:,} simulated events "
        f"({doc['scale']} scale, P={doc['nprocs']}, "
        f"{len(doc['systems'])} systems), best of {doc['reps']}",
        f"  wall {doc['wall_s']:.3f}s -> {doc['events_per_sec']:,.0f} events/sec",
    ]
    seed = doc.get("seed_comparison")
    if seed:
        lines.append(
            f"  vs seed engine ({seed.get('commit', '?')}): "
            f"{seed.get('speedup_best', '?')}x best, "
            f"{seed.get('speedup_median', '?')}x median "
            f"({seed.get('methodology', '')})"
        )
    return "\n".join(lines)


def _observed_run(factory, system: str, cfg: MachineConfig, mode: str, interval: float):
    """One in-process run with the given observability mode attached."""
    app = factory()
    machine = Machine(cfg, system)
    app.setup(machine)
    if mode in ("trace", "both"):
        TracingMemory.attach(machine)
    if mode in ("metrics", "both"):
        MetricsCollector.attach(machine, interval=interval)
    t0 = time.perf_counter()
    result = machine.run(app.worker)
    return time.perf_counter() - t0, result


#: Observability modes measured by :func:`run_trace_bench`.
TRACE_MODES = ("plain", "trace", "metrics", "both")


def run_trace_bench(
    scale: str = "smoke",
    system: str = "RCinv",
    repeats: int = 3,
    interval: float = 1000.0,
    out: str | os.PathLike | None = TRACE_BENCH_FILE,
) -> dict:
    """Measure tracing/metrics overhead against untraced runs.

    Runs the preset IS workload on ``system`` under each observability
    mode (none / tracer / metrics / both) ``repeats`` times, keeps the
    best wall-clock per mode (the stable estimator on a noisy host), and
    writes a ``BENCH_trace.json`` trajectory with the overhead ratios
    and an embedded run manifest.  Simulated results must be identical
    across modes — observability is timing-transparent by design.
    """
    cfg = MachineConfig()
    factory, _ = preset(scale)["IS"]
    walls: dict[str, float] = {}
    totals: dict[str, float] = {}
    ops = 0
    for mode in TRACE_MODES:
        best = float("inf")
        for _ in range(max(1, repeats)):
            wall, result = _observed_run(factory, system, cfg, mode, interval)
            best = min(best, wall)
        walls[mode] = best
        totals[mode] = result.total_time
        ops = result.ops
    assert len(set(totals.values())) == 1, (
        f"observability changed simulated time: {totals}"
    )
    base = walls["plain"]

    def ratio(mode: str) -> float:
        return walls[mode] / base if base > 0 else float("inf")

    doc = {
        "bench": "observability-overhead",
        "scale": scale,
        "system": system,
        "repeats": repeats,
        "interval": interval,
        "events": ops,
        "simulated_cycles": totals["plain"],
        "modes": {
            mode: {"wall_s": round(walls[mode], 4), "ratio": round(ratio(mode), 3)}
            for mode in TRACE_MODES
        },
        "manifest": build_manifest(
            "trace-bench",
            config=cfg,
            app="IS",
            systems=[system],
            wall_seconds=sum(walls.values()),
        ),
    }
    if out is not None:
        Path(out).write_text(json.dumps(doc, indent=2) + "\n")
    return doc


def format_trace_bench(doc: dict) -> str:
    """Human-readable summary of an observability-overhead trajectory."""
    lines = [
        f"observability overhead: IS ({doc['scale']} scale) on {doc['system']}, "
        f"best of {doc['repeats']}",
        f"{'mode':>10s} {'wall (s)':>10s} {'ratio':>7s}",
    ]
    for name, mode in doc["modes"].items():
        lines.append(f"{name:>10s} {mode['wall_s']:>10.4f} {mode['ratio']:>6.2f}x")
    return "\n".join(lines)


def run_profile_bench(
    scale: str = "default",
    nprocs: int = 16,
    reps: int = 5,
    systems: tuple[str, ...] = PAPER_SYSTEMS,
    out: str | os.PathLike | None = PROFILE_BENCH_FILE,
) -> dict:
    """Measure self-profiler overhead and record the attribution.

    Runs the engine-bench workload (every preset app x every paper
    system, in-process) with and without :class:`HostProfiler`
    attached, **alternating the two modes per matrix cell** so host
    noise hits both equally, then takes the *median* of the per-rep
    ratios (a best-rep-per-mode ratio lets one mode cherry-pick its
    luckiest rep; the median of paired ratios is stable).  Asserts that
    the profiled runs produce identical simulated results (the profiler
    is timing-transparent by design; bit-identity is pinned harder by
    tests/test_profile.py), and embeds the aggregated per-component
    attribution — the measured answer to "where does host time go?".
    """
    from ..obs.profile import COMPONENTS, HostProfiler

    cfg = MachineConfig(nprocs=nprocs)
    apps = preset(scale)
    walls = {"plain": float("inf"), "profiled": float("inf")}
    attribution = dict.fromkeys(COMPONENTS, 0)
    wall_ns = 0
    events = 0
    identical = True
    ratios = []
    for rep in range(max(1, reps)):
        rep_walls = {"plain": 0.0, "profiled": 0.0}
        outcomes: dict[str, list] = {"plain": [], "profiled": []}
        total_ops = 0
        for factory, _ in apps.values():
            for system in systems:
                for mode in ("plain", "profiled"):
                    app = factory()
                    machine = Machine(cfg, system)
                    app.setup(machine)
                    prof = HostProfiler.attach(machine) if mode == "profiled" else None
                    t0 = time.perf_counter()
                    result = machine.run(app.worker)
                    rep_walls[mode] += time.perf_counter() - t0
                    if mode == "plain":
                        total_ops += result.ops
                    outcomes[mode].append((result.total_time, result.ops))
                    if prof is not None and rep == 0:
                        for name in COMPONENTS:
                            attribution[name] += prof.ns[name]
                        wall_ns += prof.wall_ns
        events = total_ops
        identical = identical and outcomes["plain"] == outcomes["profiled"]
        if rep_walls["plain"] > 0:
            ratios.append(rep_walls["profiled"] / rep_walls["plain"])
        for mode in walls:
            walls[mode] = min(walls[mode], rep_walls[mode])
    assert identical, "profiler changed simulated results"
    ratio = sorted(ratios)[len(ratios) // 2] if ratios else float("inf")
    doc = {
        "bench": "profiler-overhead",
        "scale": scale,
        "nprocs": nprocs,
        "systems": list(systems),
        "reps": max(1, reps),
        "events": events,
        "plain_wall_s": round(walls["plain"], 4),
        "profiled_wall_s": round(walls["profiled"], 4),
        "overhead_ratio": round(ratio, 3),
        "rep_ratios": [round(r, 3) for r in ratios],
        "results_identical": identical,
        "attribution": {
            name: {
                "ns": attribution[name],
                "pct": round(100.0 * attribution[name] / wall_ns, 2) if wall_ns else 0.0,
            }
            for name in COMPONENTS
        },
        "cpu_count": os.cpu_count(),
    }
    if out is not None:
        Path(out).write_text(json.dumps(doc, indent=2) + "\n")
    return doc


def format_profile_bench(doc: dict) -> str:
    """Human-readable summary of a profiler-overhead trajectory."""
    lines = [
        f"profiler overhead: {doc['events']:,} events ({doc['scale']} scale, "
        f"P={doc['nprocs']}, {len(doc['systems'])} systems), median of {doc['reps']}",
        f"  plain {doc['plain_wall_s']:.3f}s, profiled {doc['profiled_wall_s']:.3f}s "
        f"-> {doc['overhead_ratio']:.2f}x",
        f"{'component':>10s} {'share':>7s}",
    ]
    for name, comp in doc["attribution"].items():
        lines.append(f"{name:>10s} {comp['pct']:>6.1f}%")
    return "\n".join(lines)


def run_attrib_bench(
    scale: str = "default",
    nprocs: int = 16,
    reps: int = 5,
    systems: tuple[str, ...] = PAPER_SYSTEMS,
    out: str | os.PathLike | None = ATTRIB_BENCH_FILE,
) -> dict:
    """Measure :class:`AttributionCollector` overhead (interleaved A/B).

    Same protocol as :func:`run_profile_bench`: every preset app x every
    paper system, alternating plain and attributed runs per matrix cell
    so host noise hits both modes equally, median of the per-rep ratios.
    Asserts the attributed runs produce identical simulated results
    *and* that attribution was exact (per-category attributed cycles
    equal the ``SimResult`` totals) on every cell of the first rep —
    the bench doubles as an end-to-end invariant check at full scale.
    """
    from ..obs.attrib import OVERHEAD_CATEGORIES, AttributionCollector

    cfg = MachineConfig(nprocs=nprocs)
    apps = preset(scale)
    walls = {"plain": float("inf"), "attributed": float("inf")}
    events = 0
    identical = True
    exact = True
    ratios: list[float] = []
    cells = 0
    for rep in range(max(1, reps)):
        rep_walls = {"plain": 0.0, "attributed": 0.0}
        outcomes: dict[str, list] = {"plain": [], "attributed": []}
        total_ops = 0
        for factory, _ in apps.values():
            for system in systems:
                for mode in ("plain", "attributed"):
                    app = factory()
                    machine = Machine(cfg, system)
                    app.setup(machine)
                    collector = (
                        AttributionCollector.attach(machine) if mode == "attributed" else None
                    )
                    t0 = time.perf_counter()
                    result = machine.run(app.worker)
                    rep_walls[mode] += time.perf_counter() - t0
                    if mode == "plain":
                        total_ops += result.ops
                    outcomes[mode].append((result.total_time, result.ops))
                    if collector is not None and rep == 0:
                        cells += 1
                        totals = collector.proc_totals()
                        for cat in OVERHEAD_CATEGORIES:
                            for p, proc in enumerate(result.procs):
                                if totals[cat][p] != getattr(proc, cat):
                                    exact = False
        events = total_ops
        identical = identical and outcomes["plain"] == outcomes["attributed"]
        if rep_walls["plain"] > 0:
            ratios.append(rep_walls["attributed"] / rep_walls["plain"])
        for mode in walls:
            walls[mode] = min(walls[mode], rep_walls[mode])
    assert identical, "attribution collector changed simulated results"
    assert exact, "attribution was not exact on some matrix cell"
    ratio = sorted(ratios)[len(ratios) // 2] if ratios else float("inf")
    doc = {
        "bench": "attribution-overhead",
        "scale": scale,
        "nprocs": nprocs,
        "systems": list(systems),
        "reps": max(1, reps),
        "events": events,
        "cells": cells,
        "plain_wall_s": round(walls["plain"], 4),
        "attributed_wall_s": round(walls["attributed"], 4),
        "overhead_ratio": round(ratio, 3),
        "rep_ratios": [round(r, 3) for r in ratios],
        "results_identical": identical,
        "attribution_exact": exact,
        "cpu_count": os.cpu_count(),
    }
    if out is not None:
        Path(out).write_text(json.dumps(doc, indent=2) + "\n")
    return doc


def format_attrib_bench(doc: dict) -> str:
    """Human-readable summary of an attribution-overhead trajectory."""
    return "\n".join(
        [
            f"attribution overhead: {doc['events']:,} events ({doc['scale']} scale, "
            f"P={doc['nprocs']}, {len(doc['systems'])} systems), median of {doc['reps']}",
            f"  plain {doc['plain_wall_s']:.3f}s, attributed {doc['attributed_wall_s']:.3f}s "
            f"-> {doc['overhead_ratio']:.2f}x",
            f"  results identical: {doc['results_identical']}, "
            f"attribution exact on all {doc['cells']} cells: {doc['attribution_exact']}",
        ]
    )


def format_bench(doc: dict) -> str:
    """Human-readable summary of a bench trajectory."""
    lines = [
        f"bench: {doc['n_runs']} runs ({doc['scale']} scale) with "
        f"{doc['jobs']} worker(s) on a {doc['cpu_count']}-CPU host",
        f"{'phase':>10s} {'wall (s)':>10s} {'speedup':>9s}",
    ]
    for name, phase in doc["phases"].items():
        lines.append(f"{name:>10s} {phase['wall_s']:>10.3f} {phase['speedup']:>8.2f}x")
    lines.append(
        f"cache hit rate {100 * doc['cache_hit_rate']:.0f}%, "
        f"results identical: {doc['results_identical']}"
    )
    return "\n".join(lines)


__all__ = [
    "ATTRIB_BENCH_FILE",
    "BENCH_FILE",
    "ENGINE_BENCH_FILE",
    "PROFILE_BENCH_FILE",
    "TRACE_BENCH_FILE",
    "bench_specs",
    "check_engine_regression",
    "format_attrib_bench",
    "format_bench",
    "format_engine_bench",
    "format_profile_bench",
    "format_trace_bench",
    "run_attrib_bench",
    "run_bench",
    "run_engine_bench",
    "run_profile_bench",
    "run_trace_bench",
]
