"""Figure 1: inherent communication cost versus overhead.

Reconstructs the paper's didactic three-processor scenario: processor 1
writes a value; processor 2 reads it almost immediately (within the link
latency L — it must pay the *inherent* communication cost), while
processor 0 reads it much later (the data had plenty of time to
propagate, so any stall it sees on a real memory system is pure
*overhead*).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import MachineConfig
from ..runtime.context import Machine
from ..sim.events import Compute


@dataclass
class ReadObservation:
    """One consumer's read in the scenario."""

    proc: int
    issue_gap: float  # cycles between the write and the read issue
    stall: float

    def classify(self, link_latency: float) -> str:
        if self.stall <= 0:
            return "hidden"
        if self.issue_gap < link_latency:
            return "inherent"
        return "overhead"


@dataclass
class TimelineResult:
    system: str
    link_latency: float
    early_read: ReadObservation  # P2, reads within L of the write
    late_read: ReadObservation  # P0, reads long after the write

    @property
    def early_kind(self) -> str:
        return self.early_read.classify(self.link_latency)

    @property
    def late_kind(self) -> str:
        return self.late_read.classify(self.link_latency)


def figure1_scenario(
    system: str = "z-mc",
    config: MachineConfig | None = None,
    early_gap: float = 2.0,
    late_gap: float = 500.0,
) -> TimelineResult:
    """Run the Figure 1 scenario on one memory system.

    ``early_gap``/``late_gap`` control how soon after the write each
    consumer issues its read.  Requires at least 3 processors.
    """
    cfg = config if config is not None else MachineConfig()
    if cfg.nprocs < 3:
        raise ValueError("the Figure 1 scenario needs at least 3 processors")
    machine = Machine(cfg, system)
    x = machine.shm.array(1, "x", align_line=True)
    write_time = 100.0

    def worker(ctx):
        if ctx.pid == 1:
            yield Compute(write_time)
            yield from x.write(0, 42.0)
        elif ctx.pid == 2:
            yield Compute(write_time + early_gap)
            v = yield from x.read(0)
            assert v in (0.0, 42.0)
        elif ctx.pid == 0:
            yield Compute(write_time + late_gap)
            v = yield from x.read(0)
            assert v == 42.0
        # everyone else idles
        return

    result = machine.run(worker)
    early_stall = result.procs[2].read_stall
    late_stall = result.procs[0].read_stall
    link_latency = getattr(machine.memsys, "latency", None)
    if link_latency is None:
        # real systems: use the z-machine's L as the inherent yardstick
        from ..network.ideal import IdealNetwork

        link_latency = IdealNetwork(cfg.cycles_per_byte).latency(cfg.z_line_size)
    return TimelineResult(
        system=machine.system_name,
        link_latency=link_latency,
        early_read=ReadObservation(proc=2, issue_gap=early_gap, stall=early_stall),
        late_read=ReadObservation(proc=0, issue_gap=late_gap, stall=late_stall),
    )
