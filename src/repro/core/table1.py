"""Table 1: inherent communication and observed costs on the z-machine.

For each application the paper reports the number of shared writes, the
fraction of execution time the propagation of those writes represents
(the data's time on the network, almost all of it hidden under
computation), and the observed cost — the read-stall cycles actually
seen, which are ≈0 because the inherent communication is overlapped.
"""
# lint: ok-module[wall-clock] — measurement harness: wall-clock here times the
# host, never the simulation; simulated timing comes only from cycle counts.

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass

from ..apps.base import Application
from ..config import MachineConfig
from ..obs.manifest import build_manifest
from .parallel import JobResult, JobSpec, ResultCache, execute_job, run_jobs


@dataclass
class Table1Row:
    app: str
    shared_writes: int
    #: % of total execution time the write issues represent (paper col 2)
    write_pct: float
    #: read-stall cycles actually observed (the unhidden part; paper col 3)
    observed_cost: float
    #: cycles the written data spends on the (ideal) network — almost all
    #: of it hidden under computation
    network_cycles: float
    #: network time as % of total execution time
    network_pct: float
    total_time: float


def _row_from_job(cfg: MachineConfig, job: JobResult) -> Table1Row:
    """Assemble a row from a z-machine run's picklable payload."""
    assert job.zstats is not None, "table 1 rows require a z-machine run"
    result = job.result
    total = result.total_time
    shared_writes = int(job.zstats["shared_writes"])
    network_cycles = job.zstats["network_cycles"]
    observed = sum(p.read_stall for p in result.procs)
    return Table1Row(
        app=job.app,
        shared_writes=shared_writes,
        write_pct=(
            100.0 * shared_writes * cfg.cache_hit_cycles / total if total else 0.0
        ),
        observed_cost=observed,
        network_cycles=network_cycles,
        network_pct=100.0 * network_cycles / total if total else 0.0,
        total_time=total,
    )


def table1_row(
    app_factory: Callable[[], Application],
    config: MachineConfig | None = None,
    verify: bool = True,
) -> Table1Row:
    """Run one application on the z-machine and compute its Table 1 row."""
    cfg = config if config is not None else MachineConfig()
    job = execute_job(JobSpec(factory=app_factory, system="z-mc", config=cfg, verify=verify))
    return _row_from_job(cfg, job)


def table1(
    app_factories: dict[str, Callable[[], Application]],
    config: MachineConfig | None = None,
    verify: bool = True,
    jobs: int | None = 1,
    cache: ResultCache | None = None,
) -> list[Table1Row]:
    """Compute Table 1 for a set of applications.

    The per-application z-machine runs are independent, so ``jobs > 1``
    fans them out over worker processes and ``cache`` reuses previous
    identical runs (see :mod:`repro.core.parallel`).
    """
    rows, _ = table1_with_manifest(app_factories, config, verify=verify, jobs=jobs, cache=cache)
    return rows


def table1_with_manifest(
    app_factories: dict[str, Callable[[], Application]],
    config: MachineConfig | None = None,
    verify: bool = True,
    jobs: int | None = 1,
    cache: ResultCache | None = None,
) -> tuple[list[Table1Row], dict]:
    """:func:`table1` plus a run manifest (see :mod:`repro.obs.manifest`)."""
    cfg = config if config is not None else MachineConfig()
    specs = [
        JobSpec(factory=factory, system="z-mc", config=cfg, verify=verify)
        for factory in app_factories.values()
    ]
    t0 = time.perf_counter()
    jobs_done = run_jobs(specs, jobs=jobs, cache=cache)
    manifest = build_manifest(
        "table1",
        config=cfg,
        app=",".join(app_factories),
        systems=["z-mc"],
        wall_seconds=time.perf_counter() - t0,
        jobs=jobs_done,
        cache_size=cache.size() if cache is not None else None,
    )
    return [_row_from_job(cfg, job) for job in jobs_done], manifest
