"""Table 1: inherent communication and observed costs on the z-machine.

For each application the paper reports the number of shared writes, the
fraction of execution time the propagation of those writes represents
(the data's time on the network, almost all of it hidden under
computation), and the observed cost — the read-stall cycles actually
seen, which are ≈0 because the inherent communication is overlapped.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from ..apps.base import Application, run_machine
from ..config import MachineConfig
from ..mem.systems.zmachine import ZMachine


@dataclass
class Table1Row:
    app: str
    shared_writes: int
    #: % of total execution time the write issues represent (paper col 2)
    write_pct: float
    #: read-stall cycles actually observed (the unhidden part; paper col 3)
    observed_cost: float
    #: cycles the written data spends on the (ideal) network — almost all
    #: of it hidden under computation
    network_cycles: float
    #: network time as % of total execution time
    network_pct: float
    total_time: float


def table1_row(
    app_factory: Callable[[], Application],
    config: MachineConfig | None = None,
    verify: bool = True,
) -> Table1Row:
    """Run one application on the z-machine and compute its Table 1 row."""
    cfg = config if config is not None else MachineConfig()
    app = app_factory()
    machine, result = run_machine(app, "z-mc", cfg, verify=verify)
    memsys = machine.memsys
    assert isinstance(memsys, ZMachine)
    total = result.total_time
    observed = sum(p.read_stall for p in result.procs)
    return Table1Row(
        app=app.name,
        shared_writes=memsys.shared_writes,
        write_pct=(
            100.0 * memsys.shared_writes * cfg.cache_hit_cycles / total if total else 0.0
        ),
        observed_cost=observed,
        network_cycles=memsys.network_cycles,
        network_pct=100.0 * memsys.network_cycles / total if total else 0.0,
        total_time=total,
    )


def table1(
    app_factories: dict[str, Callable[[], Application]],
    config: MachineConfig | None = None,
    verify: bool = True,
) -> list[Table1Row]:
    """Compute Table 1 for a set of applications."""
    return [table1_row(f, config, verify) for f in app_factories.values()]
