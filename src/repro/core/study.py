"""The z-machine benchmarking methodology (the paper's contribution).

A *study* runs one application on the z-machine and on a set of real
memory systems, verifies every run against the application's reference,
and decomposes each system's execution time into the paper's overhead
categories relative to the z-machine ideal.
"""
# lint: ok-module[wall-clock] — measurement harness: wall-clock here times the
# host, never the simulation; simulated timing comes only from cycle counts.

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass, field

from ..apps.base import Application
from ..config import MachineConfig
from ..mem.systems import PAPER_SYSTEMS
from ..obs.manifest import build_manifest
from ..runtime.context import Machine
from ..sim.stats import SimResult
from .parallel import JobResult, JobSpec, ResultCache, run_jobs


@dataclass
class SystemResult:
    """Breakdown of one (application, memory system) run."""

    system: str
    total_time: float
    busy: float
    read_stall: float
    write_stall: float
    buffer_flush: float
    sync_wait: float
    overhead_pct: float
    reads: int
    writes: int
    read_misses: int
    network_messages: int
    network_bytes: int
    traffic: dict[str, float] = field(default_factory=dict)

    @property
    def overhead(self) -> float:
        return self.read_stall + self.write_stall + self.buffer_flush

    @classmethod
    def from_sim(
        cls, system: str, result: SimResult, traffic: dict[str, float] | None = None
    ) -> SystemResult:
        """Build from the picklable run payload (no machine needed)."""
        return cls(
            system=system,
            total_time=result.total_time,
            busy=result.mean_busy,
            read_stall=result.mean_read_stall,
            write_stall=result.mean_write_stall,
            buffer_flush=result.mean_buffer_flush,
            sync_wait=result.mean_sync_wait,
            overhead_pct=result.overhead_pct,
            reads=result.total_reads,
            writes=result.total_writes,
            read_misses=result.total_read_misses,
            network_messages=result.network_messages,
            network_bytes=result.network_bytes,
            traffic=dict(traffic or {}),
        )

    @classmethod
    def from_run(cls, machine: Machine, result: SimResult) -> SystemResult:
        return cls.from_sim(machine.system_name, result, machine.memsys.traffic_summary())

    @classmethod
    def from_job(cls, job: JobResult) -> SystemResult:
        return cls.from_sim(job.system, job.result, job.traffic)


@dataclass
class StudyResult:
    """Results of one application across several memory systems."""

    app_name: str
    config: MachineConfig
    systems: list[SystemResult]
    #: Run manifest (what/where/how fast) — see :mod:`repro.obs.manifest`.
    manifest: dict = field(default_factory=dict)

    def by_system(self, name: str) -> SystemResult:
        for s in self.systems:
            if s.system == name:
                return s
        raise KeyError(f"no result for system {name!r} in study of {self.app_name}")

    @property
    def zmachine(self) -> SystemResult:
        return self.by_system("z-mc")

    def overhead_of(self, name: str) -> float:
        """Memory-system overhead (cycles beyond the z-machine's zero)."""
        return self.by_system(name).overhead


def run_study(
    app_factory: Callable[[], Application],
    config: MachineConfig | None = None,
    systems: tuple[str, ...] = PAPER_SYSTEMS,
    verify: bool = True,
    max_ops: int | None = None,
    jobs: int | None = 1,
    cache: ResultCache | None = None,
) -> StudyResult:
    """Run ``app_factory()`` on every memory system in ``systems``.

    A fresh application instance is built per system (shared state is
    per-run).  Every run is verified against the application's
    reference implementation unless ``verify=False``.

    The per-system runs are independent; ``jobs > 1`` executes them
    concurrently in worker processes (``None``/``0`` = one per CPU) and
    ``cache`` reuses on-disk results from previous identical runs — see
    :mod:`repro.core.parallel`.  Results are identical regardless of
    ``jobs``; only wall-clock time changes.
    """
    cfg = config if config is not None else MachineConfig()
    specs = [
        JobSpec(factory=app_factory, system=system, config=cfg, verify=verify, max_ops=max_ops)
        for system in systems
    ]
    t0 = time.perf_counter()
    jobs_done = run_jobs(specs, jobs=jobs, cache=cache)
    wall = time.perf_counter() - t0
    results = [SystemResult.from_job(job) for job in jobs_done]
    app_name = jobs_done[0].app if jobs_done else "?"
    manifest = build_manifest(
        "study",
        config=cfg,
        app=app_name or "?",
        systems=list(systems),
        wall_seconds=wall,
        jobs=jobs_done,
        cache_size=cache.size() if cache is not None else None,
    )
    return StudyResult(
        app_name=app_name or "?", config=cfg, systems=results, manifest=manifest
    )
