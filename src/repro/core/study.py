"""The z-machine benchmarking methodology (the paper's contribution).

A *study* runs one application on the z-machine and on a set of real
memory systems, verifies every run against the application's reference,
and decomposes each system's execution time into the paper's overhead
categories relative to the z-machine ideal.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from ..apps.base import Application, run_machine
from ..config import MachineConfig
from ..mem.systems import PAPER_SYSTEMS
from ..runtime.context import Machine
from ..sim.stats import SimResult


@dataclass
class SystemResult:
    """Breakdown of one (application, memory system) run."""

    system: str
    total_time: float
    busy: float
    read_stall: float
    write_stall: float
    buffer_flush: float
    sync_wait: float
    overhead_pct: float
    reads: int
    writes: int
    read_misses: int
    network_messages: int
    network_bytes: int
    traffic: dict[str, float] = field(default_factory=dict)

    @property
    def overhead(self) -> float:
        return self.read_stall + self.write_stall + self.buffer_flush

    @classmethod
    def from_run(cls, machine: Machine, result: SimResult) -> "SystemResult":
        return cls(
            system=machine.system_name,
            total_time=result.total_time,
            busy=result.mean_busy,
            read_stall=result.mean_read_stall,
            write_stall=result.mean_write_stall,
            buffer_flush=result.mean_buffer_flush,
            sync_wait=result.mean_sync_wait,
            overhead_pct=result.overhead_pct,
            reads=result.total_reads,
            writes=result.total_writes,
            read_misses=result.total_read_misses,
            network_messages=result.network_messages,
            network_bytes=result.network_bytes,
            traffic=machine.memsys.traffic_summary(),
        )


@dataclass
class StudyResult:
    """Results of one application across several memory systems."""

    app_name: str
    config: MachineConfig
    systems: list[SystemResult]

    def by_system(self, name: str) -> SystemResult:
        for s in self.systems:
            if s.system == name:
                return s
        raise KeyError(f"no result for system {name!r} in study of {self.app_name}")

    @property
    def zmachine(self) -> SystemResult:
        return self.by_system("z-mc")

    def overhead_of(self, name: str) -> float:
        """Memory-system overhead (cycles beyond the z-machine's zero)."""
        return self.by_system(name).overhead


def run_study(
    app_factory: Callable[[], Application],
    config: MachineConfig | None = None,
    systems: tuple[str, ...] = PAPER_SYSTEMS,
    verify: bool = True,
    max_ops: int | None = None,
) -> StudyResult:
    """Run ``app_factory()`` on every memory system in ``systems``.

    A fresh application instance is built per system (shared state is
    per-run).  Every run is verified against the application's
    reference implementation unless ``verify=False``.
    """
    cfg = config if config is not None else MachineConfig()
    results: list[SystemResult] = []
    app_name = None
    for system in systems:
        app = app_factory()
        app_name = app.name
        machine, result = run_machine(app, system, cfg, verify=verify, max_ops=max_ops)
        results.append(SystemResult.from_run(machine, result))
    return StudyResult(app_name=app_name or "?", config=cfg, systems=results)
