"""Process-pool fan-out and result caching for studies and sweeps.

The paper's methodology is embarrassingly parallel: a study runs the
same application on five independent memory systems, a sweep runs one
system at many parameter values, and no run shares state with any
other.  This module exploits that structure:

* :class:`JobSpec` — a picklable description of one simulation run
  (application factory + memory system + :class:`MachineConfig`);
* :func:`execute_job` — runs one spec and returns a :class:`JobResult`
  whose payload (a :class:`SimResult` plus the traffic summary and
  z-machine counters) is itself picklable, so nothing heavyweight — in
  particular no :class:`~repro.runtime.context.Machine` — crosses the
  pool boundary;
* :func:`run_jobs` — fans specs out over a ``ProcessPoolExecutor`` with
  deterministic result ordering, graceful fallback to in-process
  execution when ``jobs == 1`` or a spec cannot be pickled, and an
  optional on-disk :class:`ResultCache`;
* :class:`ResultCache` — keyed by a stable hash of (job spec, code
  fingerprint), so repeated studies and sweeps are near-free while any
  change to the simulator's source invalidates every entry.

See docs/performance.md for the architecture and cache-invalidation
rules, and ``repro.core.bench`` for the measured speedups.
"""
# lint: ok-module[wall-clock] — measurement harness: wall-clock here times the
# host, never the simulation; simulated timing comes only from cycle counts.

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import time
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path

from ..apps.base import Application, run_machine
from ..apps.factory import AppFactory
from ..config import MachineConfig
from ..mem.systems.zmachine import ZMachine
from ..obs import telemetry
from ..obs.log import configure as _configure_logger, get_logger
from ..sim.stats import SimResult

#: Environment variable overriding the default on-disk cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Bump to invalidate every cache entry independently of source changes.
#: 2: SimResult gained the ``ops`` field (manifests report events/sec).
CACHE_SCHEMA = 2


# ---------------------------------------------------------------------------
# job specification and execution


@dataclass(frozen=True)
class JobSpec:
    """One simulation run: application factory + system + configuration.

    ``factory`` should be an :class:`~repro.apps.factory.AppFactory`
    (or any picklable zero-argument callable) for the spec to run in a
    worker process and to be cacheable; an unpicklable factory (e.g. a
    lambda) still executes, just in-process and uncached.
    """

    factory: Callable[[], Application]
    system: str
    config: MachineConfig
    verify: bool = True
    max_ops: int | None = None

    def fingerprint(self) -> str:
        """Stable identity of this spec, for cache keying.

        Raises ``ValueError`` for factories with no stable identity.
        """
        if isinstance(self.factory, AppFactory):
            fact = repr(self.factory)
        else:
            try:
                fact = pickle.dumps(self.factory, protocol=4).hex()
            except Exception:
                raise ValueError(
                    f"factory {self.factory!r} is not picklable; "
                    "use repro.apps.AppFactory for cacheable jobs"
                ) from None
        return (
            f"schema={CACHE_SCHEMA};factory={fact};system={self.system};"
            f"config={self.config!r};verify={self.verify};max_ops={self.max_ops}"
        )


@dataclass
class JobResult:
    """Picklable payload of one run — everything a study/sweep needs.

    Shipping this instead of a ``Machine`` keeps the pool (and the
    cache) cheap: a :class:`SimResult` is a few KB of counters.
    """

    system: str
    result: SimResult
    #: Canonical application name (``Application.name``).
    app: str = ""
    #: ``memsys.traffic_summary()`` of the run's machine.
    traffic: dict[str, float] = field(default_factory=dict)
    #: z-machine-only counters (``shared_writes``, ``network_cycles``),
    #: ``None`` for the real memory systems.
    zstats: dict[str, float] | None = None
    #: Wall-clock seconds the simulation took (when freshly executed).
    elapsed: float = 0.0
    #: Whether this result was served from the on-disk cache.
    cached: bool = False


def execute_job(spec: JobSpec) -> JobResult:
    """Run one :class:`JobSpec` in the current process."""
    t0 = time.perf_counter()
    app = spec.factory()
    machine, result = run_machine(
        app, spec.system, spec.config, verify=spec.verify, max_ops=spec.max_ops
    )
    zstats = None
    if isinstance(machine.memsys, ZMachine):
        zstats = {
            "shared_writes": machine.memsys.shared_writes,
            "network_cycles": machine.memsys.network_cycles,
        }
    return JobResult(
        system=machine.system_name,
        result=result,
        app=app.name,
        traffic=machine.memsys.traffic_summary(),
        zstats=zstats,
        elapsed=time.perf_counter() - t0,
    )


# ---------------------------------------------------------------------------
# on-disk result cache


def code_fingerprint() -> str:
    """Hash of every ``repro`` source file — the cache's code version.

    Any edit to the simulator invalidates all cached results, which is
    the conservative rule: results are only reused when the code that
    would recompute them is byte-identical.
    """
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is None:
        root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(path.relative_to(root).as_posix().encode())
            digest.update(path.read_bytes())
        _CODE_FINGERPRINT = digest.hexdigest()
    return _CODE_FINGERPRINT


_CODE_FINGERPRINT: str | None = None


def cache_key(spec: JobSpec) -> str:
    """sha256 over (spec fingerprint, code fingerprint)."""
    text = f"{spec.fingerprint()}|code={code_fingerprint()}"
    return hashlib.sha256(text.encode()).hexdigest()


class ResultCache:
    """Directory of pickled :class:`JobResult`\\ s keyed by :func:`cache_key`.

    Entries carry the code fingerprint inside their key, so stale
    results are never *returned* — they are simply unreachable garbage
    that :meth:`clear` removes.
    """

    #: File inside the cache directory accumulating lifetime counters.
    STATS_FILE = "stats.json"

    def __init__(self, directory: str | os.PathLike):
        self.directory = Path(directory).expanduser()
        self.hits = 0
        self.misses = 0

    @classmethod
    def default(cls) -> ResultCache:
        """Cache at ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
        return cls(os.environ.get(CACHE_DIR_ENV, "~/.cache/repro"))

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    def get(self, spec: JobSpec) -> JobResult | None:
        """Return the cached result for ``spec``, or ``None`` on a miss."""
        try:
            key = cache_key(spec)
        except ValueError:
            self.misses += 1
            return None
        try:
            with open(self._path(key), "rb") as fh:
                job = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            self.misses += 1
            return None
        self.hits += 1
        job.cached = True
        return job

    def put(self, spec: JobSpec, job: JobResult) -> None:
        """Store ``job`` under ``spec``'s key (atomic; best-effort)."""
        try:
            key = cache_key(spec)
        except ValueError:
            return
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(job, fh, protocol=4)
            os.replace(tmp, self._path(key))
        except OSError:
            pass

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.pkl"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def size(self) -> tuple[int, int]:
        """(number of entries, total bytes) on disk."""
        entries = 0
        total_bytes = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.pkl"):
                try:
                    total_bytes += path.stat().st_size
                    entries += 1
                except OSError:
                    pass
        return entries, total_bytes

    def _stats_path(self) -> Path:
        return self.directory / self.STATS_FILE

    def lifetime_stats(self) -> dict:
        """Accumulated hit/miss counters across every recorded session."""
        try:
            with open(self._stats_path()) as fh:
                doc = json.load(fh)
            return {"hits": int(doc.get("hits", 0)), "misses": int(doc.get("misses", 0))}
        except (OSError, ValueError):
            return {"hits": 0, "misses": 0}

    def persist_stats(self, hits: int, misses: int) -> None:
        """Fold a batch's hit/miss delta into the on-disk totals.

        Called by :func:`run_jobs` with the counters this batch added
        (session counters themselves stay untouched — manifests read
        them after the run).  Best-effort: a read-only cache directory
        must never fail a run.
        """
        if hits == 0 and misses == 0:
            return
        totals = self.lifetime_stats()
        totals["hits"] += hits
        totals["misses"] += misses
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
            with os.fdopen(fd, "w") as fh:
                json.dump(totals, fh)
            os.replace(tmp, self._stats_path())
        except OSError:
            pass


# ---------------------------------------------------------------------------
# fan-out


def resolve_jobs(jobs: int | None) -> int:
    """Normalise a worker count: ``None``/``0`` means one per CPU."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def _poolable(specs: Sequence[JobSpec]) -> bool:
    """Whether every spec survives a round-trip to a worker process."""
    try:
        pickle.dumps(list(specs), protocol=4)
        return True
    except Exception:
        return False


#: Worker-process telemetry queue, installed by :func:`_pool_init`.
_WORKER_QUEUE = None


def _pool_init(logger_state: dict, queue) -> None:
    """Pool-worker initializer: mirror the parent's logger configuration
    (so ``--verbose/--quiet/--json`` hold in children too) and install
    the telemetry queue heartbeats are sent over."""
    global _WORKER_QUEUE
    _configure_logger(**logger_state)
    _WORKER_QUEUE = queue


def _spec_label(spec) -> tuple[str, str]:
    """(app, system) display names for a spec's heartbeat records."""
    factory = getattr(spec, "factory", None)
    app = (
        getattr(factory, "app", None)  # AppFactory("IS", ...)
        or getattr(factory, "name", None)
        or getattr(factory, "__name__", factory.__class__.__name__ if factory else "?")
    )
    return str(app), str(getattr(spec, "system", "?"))


def _emit_start(sink, index: int, spec) -> None:
    if sink is not None:
        app, system = _spec_label(spec)
        sink.put(telemetry.job_started(index, app, system))


def _emit_finish(sink, index: int, spec, job) -> None:
    if sink is not None:
        app, system = _spec_label(spec)
        result = getattr(job, "result", None)
        sink.put(
            telemetry.job_finished(
                index,
                app,
                system,
                events=getattr(result, "ops", 0) or 0,
                elapsed_s=getattr(job, "elapsed", 0.0),
                cached=bool(getattr(job, "cached", False)),
            )
        )


class _SessionSink:
    """Adapter giving the in-process path the queue ``put`` interface."""

    def __init__(self, session):
        self._session = session

    def put(self, record) -> None:
        self._session.emit(record)


def _pool_run(item):
    """Worker-side wrapper: heartbeats around one executor call."""
    executor, index, spec = item
    _emit_start(_WORKER_QUEUE, index, spec)
    job = executor(spec)
    _emit_finish(_WORKER_QUEUE, index, spec, job)
    return job


def run_jobs(
    specs: Sequence[JobSpec],
    jobs: int | None = 1,
    cache: ResultCache | None = None,
    executor: Callable = execute_job,
) -> list[JobResult]:
    """Execute ``specs`` and return their results *in spec order*.

    ``jobs > 1`` fans the cache misses out over a process pool of that
    many workers (``None``/``0`` = one per CPU).  Execution falls back
    to the in-process path when ``jobs == 1``, when a spec cannot be
    pickled, or when the pool itself fails — results are identical
    either way (simulations are deterministic), only wall-clock differs.

    ``executor`` maps one spec to one result and defaults to
    :func:`execute_job`; any module-level callable over specs that have
    a ``fingerprint()`` and results that have a ``cached`` attribute
    works (``repro.analysis.checkers.runner`` reuses this machinery for
    correctness checks).
    """
    specs = list(specs)
    tele = telemetry.get_session()
    hits0 = cache.hits if cache is not None else 0
    misses0 = cache.misses if cache is not None else 0
    if tele is not None:
        tele.attach_total(len(specs))
    local_sink = _SessionSink(tele) if tele is not None else None
    results: list[JobResult | None] = [None] * len(specs)
    pending: list[tuple[int, JobSpec]] = []
    for i, spec in enumerate(specs):
        hit = cache.get(spec) if cache is not None else None
        if hit is not None:
            results[i] = hit
            _emit_finish(local_sink, i, spec, hit)
        else:
            pending.append((i, spec))

    nworkers = resolve_jobs(jobs)
    if pending:
        fresh: list[JobResult] | None = None
        if nworkers > 1 and len(pending) > 1 and _poolable([s for _, s in pending]):
            try:
                queue = tele.remote_queue() if tele is not None else None
                with ProcessPoolExecutor(
                    max_workers=min(nworkers, len(pending)),
                    initializer=_pool_init,
                    initargs=(get_logger().state(), queue),
                ) as pool:
                    fresh = list(
                        pool.map(_pool_run, [(executor, i, s) for i, s in pending])
                    )
                if tele is not None:
                    tele.drain_pending()
            except (BrokenProcessPool, OSError, pickle.PicklingError):
                fresh = None
        if fresh is None:
            fresh = []
            for i, spec in pending:
                _emit_start(local_sink, i, spec)
                job = executor(spec)
                _emit_finish(local_sink, i, spec, job)
                fresh.append(job)
        for (i, spec), job in zip(pending, fresh):
            results[i] = job
            if cache is not None:
                cache.put(spec, job)
    if cache is not None:
        cache.persist_stats(cache.hits - hits0, cache.misses - misses0)
    return [r for r in results if r is not None]


def parallel_map(
    fn: Callable,
    items: Iterable,
    jobs: int | None = 1,
) -> list:
    """Order-preserving ``map(fn, items)`` over a process pool.

    ``fn`` must be a module-level callable for ``jobs > 1``; falls back
    to a plain in-process map when the pool is unavailable or anything
    fails to pickle.
    """
    items = list(items)
    nworkers = resolve_jobs(jobs)
    if nworkers > 1 and len(items) > 1:
        try:
            pickle.dumps((fn, items), protocol=4)
            with ProcessPoolExecutor(max_workers=min(nworkers, len(items))) as pool:
                return list(pool.map(fn, items))
        except (BrokenProcessPool, OSError, pickle.PicklingError):
            pass
    return [fn(item) for item in items]


__all__ = [
    "CACHE_DIR_ENV",
    "JobResult",
    "JobSpec",
    "ResultCache",
    "cache_key",
    "code_fingerprint",
    "execute_job",
    "parallel_map",
    "resolve_jobs",
    "run_jobs",
]
