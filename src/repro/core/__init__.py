"""Core: the z-machine benchmarking methodology."""

from .study import StudyResult, SystemResult, run_study
from .sweep import SweepPoint, SweepResult, sweep
from .table1 import Table1Row, table1, table1_row
from .timeline import ReadObservation, TimelineResult, figure1_scenario

__all__ = [
    "ReadObservation",
    "StudyResult",
    "SweepPoint",
    "SweepResult",
    "SystemResult",
    "Table1Row",
    "TimelineResult",
    "figure1_scenario",
    "run_study",
    "sweep",
    "table1",
    "table1_row",
]
