"""Core: the z-machine benchmarking methodology."""

from .bench import format_bench, run_bench
from .parallel import JobResult, JobSpec, ResultCache, execute_job, run_jobs
from .study import StudyResult, SystemResult, run_study
from .sweep import SweepPoint, SweepResult, sweep
from .table1 import Table1Row, table1, table1_row
from .timeline import ReadObservation, TimelineResult, figure1_scenario

__all__ = [
    "JobResult",
    "JobSpec",
    "ReadObservation",
    "ResultCache",
    "StudyResult",
    "SweepPoint",
    "SweepResult",
    "SystemResult",
    "Table1Row",
    "TimelineResult",
    "execute_job",
    "figure1_scenario",
    "format_bench",
    "run_bench",
    "run_jobs",
    "run_study",
    "sweep",
    "table1",
    "table1_row",
]
