"""Parameter sweeps: the machinery behind the ablation benches.

``sweep`` varies one machine parameter across a list of values, runs a
fresh application instance per point, and returns an ordered series of
results — the workhorse of the paper's Section 6 "architectural
implications" experiments.
"""
# lint: ok-module[wall-clock] — measurement harness: wall-clock here times the
# host, never the simulation; simulated timing comes only from cycle counts.

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass, field

from ..apps.base import Application, run_machine
from ..config import MachineConfig
from ..obs.manifest import build_manifest
from ..runtime.context import Machine
from ..sim.stats import SimResult
from .parallel import JobSpec, ResultCache, run_jobs


@dataclass
class SweepPoint:
    """One point of a parameter sweep.

    ``machine`` is optional inspection-only state: it is populated on
    the in-process path (``jobs=1``, cache miss) but deliberately left
    ``None`` for results that crossed a process boundary or came from
    the cache, so sweep points stay cheap to ship and serialize.  All
    metrics live in ``result``.
    """

    value: object
    result: SimResult
    machine: Machine | None = field(default=None, repr=False, compare=False)

    @property
    def total_time(self) -> float:
        return self.result.total_time

    @property
    def overhead_pct(self) -> float:
        return self.result.overhead_pct


@dataclass
class SweepResult:
    """Ordered series over one parameter."""

    parameter: str
    system: str
    points: list[SweepPoint]
    #: Run manifest (what/where/how fast) — see :mod:`repro.obs.manifest`.
    manifest: dict = field(default_factory=dict)

    def series(self, metric: str) -> list[tuple[object, float]]:
        """(value, metric) pairs; metric is a SimResult attribute name
        (e.g. ``mean_read_stall``, ``total_time``, ``overhead_pct``)."""
        return [(p.value, getattr(p.result, metric)) for p in self.points]

    def values(self) -> list[object]:
        return [p.value for p in self.points]

    def is_monotone(self, metric: str, increasing: bool = True, slack: float = 1.02) -> bool:
        """Whether the metric is (approximately) monotone in sweep order."""
        ys = [y for _, y in self.series(metric)]
        if increasing:
            return all(a <= b * slack for a, b in zip(ys, ys[1:]))
        return all(a * slack >= b for a, b in zip(ys, ys[1:]))

    def format(self, metrics: tuple[str, ...] = ("total_time", "overhead_pct")) -> str:
        header = f"{self.parameter:>20s} " + " ".join(f"{m:>16s}" for m in metrics)
        lines = [f"sweep of {self.parameter} on {self.system}", header]
        for p in self.points:
            row = f"{str(p.value):>20s} "
            row += " ".join(f"{getattr(p.result, m):16.1f}" for m in metrics)
            lines.append(row)
        return "\n".join(lines)


def sweep(
    app_factory: Callable[[], Application],
    parameter: str,
    values: list,
    system: str = "RCinv",
    base_config: MachineConfig | None = None,
    verify: bool = True,
    jobs: int | None = 1,
    cache: ResultCache | None = None,
) -> SweepResult:
    """Run ``app_factory()`` on ``system`` for each config value.

    ``parameter`` names a :class:`MachineConfig` field; every point uses
    ``base_config.replace(parameter=value)``.

    Points are independent runs: ``jobs > 1`` executes them in worker
    processes and ``cache`` reuses previous identical runs (see
    :mod:`repro.core.parallel`).  On the plain in-process path
    (``jobs=1``, no cache) each point also carries its ``machine`` for
    inspection; pooled or cached points ship only the picklable
    :class:`SimResult` payload.
    """
    cfg = base_config if base_config is not None else MachineConfig()
    if not hasattr(cfg, parameter):
        raise ValueError(f"MachineConfig has no parameter {parameter!r}")
    points = []
    t0 = time.perf_counter()
    jobs_done = None
    if jobs == 1 and cache is None:
        for value in values:
            machine, result = run_machine(
                app_factory(), system, cfg.replace(**{parameter: value}), verify=verify
            )
            points.append(SweepPoint(value=value, result=result, machine=machine))
    else:
        specs = [
            JobSpec(
                factory=app_factory,
                system=system,
                config=cfg.replace(**{parameter: value}),
                verify=verify,
            )
            for value in values
        ]
        jobs_done = run_jobs(specs, jobs=jobs, cache=cache)
        for value, job in zip(values, jobs_done):
            points.append(SweepPoint(value=value, result=job.result))
    manifest = build_manifest(
        "sweep",
        config=cfg,
        systems=[system],
        wall_seconds=time.perf_counter() - t0,
        jobs=jobs_done,
        extra={"parameter": parameter, "values": [repr(v) for v in values]},
    )
    return SweepResult(parameter=parameter, system=system, points=points, manifest=manifest)
