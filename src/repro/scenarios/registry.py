"""Named degradation scenarios over apps x machines.

A :class:`Scenario` names a machine-irregularity pattern (limping
nodes, a memory hotspot, slow mesh links, bursty phase-shifted load,
...) and knows how to build the :class:`~repro.scenarios.inject.Degradation`
that realises it for a concrete :class:`~repro.config.MachineConfig`.
Scenarios are selected by name from :data:`SCENARIO_REGISTRY` and tuned
with per-scenario knobs (``repro scenario run --set knob=value``).

Everything here is deterministic: degraded nodes and links are chosen
by fixed strides over the node/link space, never randomly, so a
scenario + config + knob set always produces the identical machine (and
therefore cacheable, bit-reproducible runs).

See ``docs/scenarios.md`` for the handbook: every scenario, its knobs,
the injection model, and worked examples.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from ..config import MachineConfig
from ..network.topology import make_topology
from .inject import Degradation


@dataclass(frozen=True)
class Knob:
    """One tunable parameter of a scenario."""

    name: str
    default: float | int
    help: str


@dataclass(frozen=True)
class Scenario:
    """A named degradation pattern with tunable knobs.

    ``build`` maps ``(config, knobs)`` — with every knob resolved to its
    default or override — to the :class:`Degradation` realising the
    scenario on that machine (``None`` for the clean baseline).
    """

    name: str
    summary: str
    description: str
    knobs: tuple[Knob, ...] = ()
    build: Callable[[MachineConfig, dict[str, float | int]], Degradation | None] = field(
        default=lambda config, knobs: None
    )

    def knob_defaults(self) -> dict[str, float | int]:
        return {k.name: k.default for k in self.knobs}

    def resolve_knobs(self, overrides: dict[str, float | int]) -> dict[str, float | int]:
        """Merge ``overrides`` into the defaults, rejecting unknown names.

        Override values are coerced to the default's type (a knob whose
        default is an ``int`` gets ``int(value)``), so CLI strings
        parsed as floats land as the right type.
        """
        values = self.knob_defaults()
        for name, value in overrides.items():
            if name not in values:
                valid = ", ".join(sorted(values)) or "(none)"
                raise ValueError(
                    f"scenario {self.name!r} has no knob {name!r}; valid knobs: {valid}"
                )
            values[name] = int(value) if isinstance(values[name], int) else float(value)
        return values

    def degradation(
        self, config: MachineConfig, overrides: dict[str, float | int] | None = None
    ) -> Degradation | None:
        """The injection spec realising this scenario on ``config``."""
        return self.build(config, self.resolve_knobs(overrides or {}))

    def apply(
        self, config: MachineConfig, overrides: dict[str, float | int] | None = None
    ) -> MachineConfig:
        """``config`` with this scenario's degradation installed."""
        return config.replace(degradation=self.degradation(config, overrides))


# ---------------------------------------------------------------------------
# deterministic node/link selection helpers


def _stride_nodes(nprocs: int, count: int) -> list[int]:
    """``count`` node ids spread evenly over ``0..nprocs-1``."""
    count = max(1, min(count, nprocs))
    return [i * nprocs // count for i in range(count)]


def undirected_links(config: MachineConfig) -> list[tuple[int, int]]:
    """Sorted undirected physical links of ``config``'s topology."""
    dims = config.mesh_dims if config.topology in ("mesh", "torus") else None
    topology = make_topology(config.topology, config.nprocs, dims)
    return sorted({(min(u, v), max(u, v)) for u, v in topology.links()})


def _stride_links(config: MachineConfig, count: int) -> list[tuple[int, int]]:
    """``count`` links spread evenly over the sorted link list."""
    links = undirected_links(config)
    if not links:
        return []
    count = max(1, min(count, len(links)))
    return [links[i * len(links) // count] for i in range(count)]


# ---------------------------------------------------------------------------
# scenario builders


def _build_baseline(config: MachineConfig, knobs: dict) -> None:
    return None


def _build_hotspot(config: MachineConfig, knobs: dict) -> Degradation:
    factor = float(knobs["mem_factor"])
    nodes = _stride_nodes(config.nprocs, int(knobs["hot_nodes"]))
    return Degradation(node_mem=tuple((n, factor) for n in nodes))


def _build_limping(config: MachineConfig, knobs: dict) -> Degradation:
    cpu_f = float(knobs["cpu_factor"])
    mem_f = float(knobs["mem_factor"])
    nodes = _stride_nodes(config.nprocs, int(knobs["limping"]))
    return Degradation(
        node_cpu=tuple((n, cpu_f) for n in nodes),
        node_mem=tuple((n, mem_f) for n in nodes),
    )


def _build_slow_links(config: MachineConfig, knobs: dict) -> Degradation:
    lat_f = float(knobs["latency_factor"])
    bw_f = float(knobs["bandwidth_factor"])
    links = _stride_links(config, int(knobs["n_links"]))
    return Degradation(links=tuple((u, v, lat_f, bw_f) for u, v in links))


def _build_bursty(config: MachineConfig, knobs: dict) -> Degradation:
    period = float(knobs["period"])
    phase = period * float(knobs["phase_spread"]) / config.nprocs
    return Degradation(
        burst_period=period,
        burst_duty=float(knobs["duty"]),
        burst_factor=float(knobs["factor"]),
        burst_phase=phase,
    )


def _build_heterogeneous(config: MachineConfig, knobs: dict) -> Degradation:
    max_f = float(knobs["max_factor"])
    n = config.nprocs
    if n == 1:
        return Degradation(node_cpu=((0, max_f),))
    return Degradation(
        node_cpu=tuple(
            (i, 1.0 + (max_f - 1.0) * i / (n - 1)) for i in range(n)
        )
    )


#: The named scenarios, in presentation order.
SCENARIO_REGISTRY: dict[str, Scenario] = {
    s.name: s
    for s in (
        Scenario(
            name="baseline",
            summary="the clean homogeneous machine (no degradation)",
            description=(
                "The paper's machine exactly as configured: every node, link "
                "and phase identical.  All other scenarios are measured "
                "against this; it runs with degradation=None, i.e. the "
                "bit-identical fast paths."
            ),
        ),
        Scenario(
            name="hotspot",
            summary="a few contended memory modules serve every access slowly",
            description=(
                "hot_nodes memory modules (spread evenly over the node ids) "
                "take mem_factor x the configured mem_access_cycles per "
                "directory/memory access.  Models a hot home node: all "
                "blocks homed there stall every requester, so read/write "
                "stall grows for every system while the z-machine ideal is "
                "untouched."
            ),
            knobs=(
                Knob("hot_nodes", 1, "number of hot memory modules"),
                Knob("mem_factor", 4.0, "memory access slowdown at hot nodes"),
            ),
            build=_build_hotspot,
        ),
        Scenario(
            name="limping_nodes",
            summary="a few nodes limp: slow CPU and slow memory module",
            description=(
                "limping nodes (spread evenly) run Compute cycles "
                "cpu_factor x slower and serve home memory accesses "
                "mem_factor x slower — the classic limplock pattern.  "
                "Slow compute shifts barrier arrival times (sync_wait grows "
                "on the healthy nodes), slow memory stalls every requester "
                "whose blocks live on a limping home."
            ),
            knobs=(
                Knob("limping", 2, "number of limping nodes"),
                Knob("cpu_factor", 3.0, "compute slowdown on limping nodes"),
                Knob("mem_factor", 3.0, "memory access slowdown on limping nodes"),
            ),
            build=_build_limping,
        ),
        Scenario(
            name="slow_links",
            summary="a subset of mesh links with degraded latency/bandwidth",
            description=(
                "n_links undirected links (spread evenly over the sorted "
                "link list) get latency_factor x the per-hop router delay "
                "and bandwidth_factor x the serialisation occupancy.  "
                "Messages routed across a slow link arrive late and queue "
                "behind each other, so read stall and contention grow on "
                "the real systems; the z-machine (ideal network) is "
                "untouched."
            ),
            knobs=(
                Knob("n_links", 4, "number of degraded links"),
                Knob("latency_factor", 4.0, "router-delay multiplier on slow links"),
                Knob("bandwidth_factor", 4.0, "link occupancy multiplier on slow links"),
            ),
            build=_build_slow_links,
        ),
        Scenario(
            name="bursty",
            summary="phase-shifted rectangular compute bursts on every node",
            description=(
                "Every node's Compute cycles are multiplied by factor "
                "during the first duty fraction of each period-cycle "
                "window; node n's window is shifted by period * "
                "phase_spread / nprocs * n, so the bursts sweep across the "
                "machine instead of hitting synchronously.  Models bursty, "
                "de-synchronised background load; barrier-heavy codes pay "
                "for the slowest node of each phase."
            ),
            knobs=(
                Knob("period", 2000.0, "burst window length in cycles"),
                Knob("duty", 0.25, "fraction of each window spent bursting"),
                Knob("factor", 3.0, "compute slowdown during a burst"),
                Knob("phase_spread", 1.0, "per-node phase shift as a fraction of period/nprocs"),
            ),
            build=_build_bursty,
        ),
        Scenario(
            name="heterogeneous",
            summary="a linear CPU-speed gradient across the nodes",
            description=(
                "Node i computes 1.0 + (max_factor - 1.0) * i / (nprocs-1) "
                "x slower: node 0 is full speed, node nprocs-1 is "
                "max_factor x slower, everything in between on a line.  "
                "The Many-core Machine Model's point: overhead accounting "
                "parameterised by machine irregularity, not assumed "
                "uniform.  Statically balanced apps inherit the gradient "
                "as sync_wait at every barrier."
            ),
            knobs=(
                Knob("max_factor", 2.0, "slowdown of the slowest node"),
            ),
            build=_build_heterogeneous,
        ),
    )
}

#: Scenario names in registry (presentation) order.
SCENARIO_NAMES = tuple(SCENARIO_REGISTRY)


def get_scenario(name: str) -> Scenario:
    """Look up a scenario by name."""
    try:
        return SCENARIO_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; choose from {', '.join(SCENARIO_NAMES)}"
        ) from None


def apply_scenario(
    name: str, config: MachineConfig, overrides: dict[str, float | int] | None = None
) -> MachineConfig:
    """``config`` with the named scenario's degradation installed."""
    return get_scenario(name).apply(config, overrides)


def parse_overrides(pairs: list[str]) -> dict[str, float]:
    """Parse CLI ``knob=value`` strings into an override dict."""
    overrides: dict[str, float] = {}
    for pair in pairs:
        name, sep, value = pair.partition("=")
        if not sep or not name:
            raise ValueError(f"expected knob=value, got {pair!r}")
        try:
            overrides[name] = float(value)
        except ValueError:
            raise ValueError(f"knob {name!r}: {value!r} is not a number") from None
    return overrides


def neutral_degradation(config: MachineConfig) -> Degradation:
    """An all-1.0 spec touching *every* injection path.

    Every node gets CPU and memory factors of exactly 1.0, every
    physical link latency/bandwidth factors of 1.0, and a burst schedule
    with burst_factor 1.0.  This forces every degraded code path to run
    while remaining bit-identical to the undegraded machine — the
    property ``tests/test_scenarios.py`` pins against the goldens.
    """
    nodes = tuple((n, 1.0) for n in range(config.nprocs))
    links = tuple((u, v, 1.0, 1.0) for u, v in undirected_links(config))
    return Degradation(
        node_cpu=nodes,
        node_mem=nodes,
        links=links,
        burst_period=1000.0,
        burst_duty=0.5,
        burst_factor=1.0,
        burst_phase=10.0,
    )
