"""Fault/degradation injection spec.

:class:`Degradation` is a frozen, picklable description of how a
machine deviates from the homogeneous ideal the paper assumes: per-node
CPU and memory-module slowdown factors, per-link latency/bandwidth
degradation, and a phase-shifted workload burst schedule.  It travels
inside :class:`repro.config.MachineConfig` (the ``degradation`` field),
so every existing layer that ships a config — job specs, the process
pool, the result cache, manifests — carries the injection spec for
free.

Three injection points consume it (see docs/scenarios.md for the full
model):

* the engine scales ``Compute`` cycles by the node's CPU factor and the
  burst schedule (``repro.sim.engine``);
* the directory memory systems scale the home node's
  ``mem_access_cycles`` by the node's memory factor
  (``repro.mem.systems.base``);
* the routed network scales per-hop router delay and link occupancy on
  the degraded links (``repro.network.routed``).

Every factor is a multiplier with **1.0 as the exact identity**: an
all-1.0 :class:`Degradation` exercises the injection code paths but is
bit-identical to an undegraded run (``x * 1.0 == x`` for every IEEE-754
double), which ``tests/test_scenarios.py`` pins against the engine
golden fixture.  ``degradation=None`` (the default) skips the injection
branches entirely.
"""

from __future__ import annotations

from dataclasses import dataclass


def _check_factors(name: str, entries: tuple[tuple[int, float], ...]) -> None:
    seen: set[int] = set()
    for node, factor in entries:
        if node < 0:
            raise ValueError(f"{name}: node ids must be >= 0, got {node}")
        if not factor > 0.0:
            raise ValueError(f"{name}: factors must be positive, got {factor} for node {node}")
        if node in seen:
            raise ValueError(f"{name}: duplicate entry for node {node}")
        seen.add(node)


@dataclass(frozen=True)
class Degradation:
    """Machine irregularity spec: all knobs are multipliers, 1.0 = ideal.

    Attributes
    ----------
    node_cpu:
        ``(node, factor)`` pairs; the engine multiplies every
        ``Compute`` op issued by ``node`` by ``factor`` (a limping CPU
        at 4.0 computes 4x slower).
    node_mem:
        ``(node, factor)`` pairs; directory/memory accesses served *at*
        home node ``node`` take ``factor``x the configured
        ``mem_access_cycles`` (a limping or contended memory module).
    links:
        ``(u, v, latency_factor, bandwidth_factor)`` tuples naming an
        undirected physical link of the topology; both directions are
        degraded.  ``latency_factor`` scales the per-hop router delay,
        ``bandwidth_factor`` scales the link's serialisation occupancy
        (slower wire = the message holds the link longer).
    burst_period / burst_duty / burst_factor / burst_phase:
        A rectangular-wave compute slowdown: within each
        ``burst_period`` cycles, the first ``burst_duty`` fraction is a
        burst during which ``Compute`` cycles are additionally
        multiplied by ``burst_factor``.  Node ``n``'s wave is shifted by
        ``n * burst_phase`` cycles, which is how phase-shifted
        (de-synchronised) load is modelled.  ``burst_period = 0``
        disables the schedule.
    """

    node_cpu: tuple[tuple[int, float], ...] = ()
    node_mem: tuple[tuple[int, float], ...] = ()
    links: tuple[tuple[int, int, float, float], ...] = ()
    burst_period: float = 0.0
    burst_duty: float = 0.0
    burst_factor: float = 1.0
    burst_phase: float = 0.0

    def __post_init__(self) -> None:
        _check_factors("node_cpu", self.node_cpu)
        _check_factors("node_mem", self.node_mem)
        for u, v, lat_f, bw_f in self.links:
            if u < 0 or v < 0 or u == v:
                raise ValueError(f"links: ({u}, {v}) is not a valid link")
            if not lat_f > 0.0 or not bw_f > 0.0:
                raise ValueError(f"links: factors must be positive on link ({u}, {v})")
        if self.burst_period < 0.0:
            raise ValueError("burst_period must be >= 0")
        if not 0.0 <= self.burst_duty <= 1.0:
            raise ValueError("burst_duty must be in [0, 1]")
        if not self.burst_factor > 0.0:
            raise ValueError("burst_factor must be positive")
        if self.burst_phase < 0.0:
            raise ValueError("burst_phase must be >= 0")

    # ------------------------------------------------------------------
    @property
    def affects_cpu(self) -> bool:
        """Whether the engine's Compute path must consult this spec."""
        return bool(self.node_cpu) or self.burst_period > 0.0

    @property
    def is_neutral(self) -> bool:
        """Whether every knob is an exact identity (bit-identical runs)."""
        return (
            all(f == 1.0 for _, f in self.node_cpu)
            and all(f == 1.0 for _, f in self.node_mem)
            and all(lf == 1.0 and bf == 1.0 for _, _, lf, bf in self.links)
            and (self.burst_period == 0.0 or self.burst_factor == 1.0)
        )

    def validate_for(self, nprocs: int) -> None:
        """Raise if any node id falls outside ``0..nprocs-1``."""
        for name, entries in (("node_cpu", self.node_cpu), ("node_mem", self.node_mem)):
            for node, _ in entries:
                if node >= nprocs:
                    raise ValueError(
                        f"degradation {name}: node {node} outside 0..{nprocs - 1}"
                    )
        for u, v, _, _ in self.links:
            if u >= nprocs or v >= nprocs:
                raise ValueError(
                    f"degradation links: ({u}, {v}) outside 0..{nprocs - 1}"
                )

    # ------------------------------------------------------------------
    def cpu_factor(self, node: int) -> float:
        for n, f in self.node_cpu:
            if n == node:
                return f
        return 1.0

    def mem_factor(self, node: int) -> float:
        for n, f in self.node_mem:
            if n == node:
                return f
        return 1.0

    def cpu_factors(self, nprocs: int) -> list[float]:
        """Dense per-node CPU factor table (engine hot-loop lookup)."""
        table = [1.0] * nprocs
        for n, f in self.node_cpu:
            table[n] = f
        return table

    def mem_factors(self, nprocs: int) -> list[float]:
        """Dense per-node memory factor table (home-node lookup)."""
        table = [1.0] * nprocs
        for n, f in self.node_mem:
            table[n] = f
        return table
