"""The scenario matrix runner and the overhead-degradation report.

``run_scenario_matrix`` runs scenario x application x memory-system
over the process-pool layer (one flat :func:`~repro.core.parallel.run_jobs`
call, so ``--jobs`` parallelism and the :class:`ResultCache` span the
whole matrix).  ``build_report`` turns the runs into the degradation
report: per scenario and application, each real system's stall
decomposition against the z-machine ideal, plus how much the scenario
moved every system relative to the clean ``baseline`` scenario.

``repro scenario run`` writes the committed ``BENCH_scenarios.json``
baseline from this report; ``docs/scenarios.md`` documents how to read
it.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from ..apps.presets import preset
from ..config import MachineConfig
from ..core.parallel import JobResult, JobSpec, ResultCache, run_jobs
from ..core.study import SystemResult
from ..mem.systems import PAPER_SYSTEMS
from ..obs.manifest import build_manifest
from .registry import SCENARIO_NAMES, get_scenario

#: The committed degradation baseline at the repo root.
SCENARIO_BENCH_FILE = "BENCH_scenarios.json"

#: Report format version.
REPORT_SCHEMA = 1


def run_scenario_matrix(
    scenarios: list[str] | None = None,
    config: MachineConfig | None = None,
    scale: str = "small",
    apps: list[str] | None = None,
    systems: tuple[str, ...] = PAPER_SYSTEMS,
    overrides: dict[str, float | int] | None = None,
    verify: bool = True,
    jobs: int | None = 1,
    cache: ResultCache | None = None,
) -> dict:
    """Run the scenario matrix and return the degradation report.

    ``scenarios`` defaults to every registered scenario; knob
    ``overrides`` apply to every selected scenario that has the knob's
    name (mixing scenarios with ``--set`` on knobs only some of them
    define is an error, to avoid silent typos).  The ``baseline``
    scenario is always included — the report's deltas need it.
    """
    names = list(scenarios) if scenarios else list(SCENARIO_NAMES)
    if "baseline" not in names:
        names.insert(0, "baseline")
    base_cfg = config if config is not None else MachineConfig()
    apps_preset = preset(scale)
    if apps:
        unknown = sorted(set(apps) - set(apps_preset))
        if unknown:
            raise ValueError(
                f"unknown app(s) {', '.join(unknown)}; choose from "
                f"{', '.join(sorted(apps_preset))}"
            )
        apps_preset = {k: v for k, v in apps_preset.items() if k in apps}

    specs: list[JobSpec] = []
    index: list[tuple[str, str, str]] = []  # (scenario, app, system)
    knob_values: dict[str, dict] = {}
    for name in names:
        scenario = get_scenario(name)
        scoped = {
            k: v for k, v in (overrides or {}).items()
            if any(knob.name == k for knob in scenario.knobs)
        } if name != "baseline" else {}
        if overrides and name != "baseline":
            unknown = set(overrides) - set(scoped)
            if len(names) == 2 and unknown:  # baseline + one explicit scenario
                raise ValueError(
                    f"scenario {name!r} has no knob(s) {', '.join(sorted(unknown))}"
                )
        knob_values[name] = scenario.resolve_knobs(scoped)
        scn_cfg = scenario.apply(base_cfg, scoped)
        for app_name, (factory, _reuse) in apps_preset.items():
            for system in systems:
                specs.append(
                    JobSpec(factory=factory, system=system, config=scn_cfg, verify=verify)
                )
                index.append((name, app_name, system))

    t0 = time.perf_counter()
    results = run_jobs(specs, jobs=jobs, cache=cache)
    wall = time.perf_counter() - t0
    manifest = build_manifest(
        "scenario-matrix",
        config=base_cfg,
        systems=list(systems),
        wall_seconds=wall,
        jobs=results,
        cache_hits=cache.hits if cache is not None else None,
        cache_misses=cache.misses if cache is not None else None,
        extra={"scenarios": names, "scale": scale},
    )
    return build_report(
        index, results, knob_values,
        scale=scale, nprocs=base_cfg.nprocs, systems=list(systems),
        manifest=manifest,
    )


def build_report(
    index: list[tuple[str, str, str]],
    results: list[JobResult],
    knob_values: dict[str, dict],
    *,
    scale: str,
    nprocs: int,
    systems: list[str],
    manifest: dict | None = None,
) -> dict:
    """Assemble the degradation report from matrix runs.

    Per scenario/app/system: the absolute stall decomposition, the
    slowdown against the z-machine ideal *of the same scenario* (the
    paper's overhead metric, under degradation), and — for non-baseline
    scenarios — the slowdown and overhead-percentage delta against the
    same app/system under ``baseline``.
    """
    runs: dict[tuple[str, str, str], SystemResult] = {}
    for (scenario, app, system), job in zip(index, results):
        runs[(scenario, app, system)] = SystemResult.from_job(job)

    scenarios_doc: dict[str, dict] = {}
    names = list(dict.fromkeys(name for name, _, _ in index))
    apps = list(dict.fromkeys(app for _, app, _ in index))
    for name in names:
        apps_doc: dict[str, dict] = {}
        for app in apps:
            z = runs.get((name, app, "z-mc"))
            systems_doc: dict[str, dict] = {}
            for system in systems:
                res = runs.get((name, app, system))
                if res is None:
                    continue
                entry = {
                    "total_time": res.total_time,
                    "busy": res.busy,
                    "read_stall": res.read_stall,
                    "write_stall": res.write_stall,
                    "buffer_flush": res.buffer_flush,
                    "sync_wait": res.sync_wait,
                    "overhead_pct": round(res.overhead_pct, 3),
                }
                if z is not None and z.total_time and system != "z-mc":
                    entry["slowdown_vs_z"] = round(res.total_time / z.total_time, 4)
                base = runs.get(("baseline", app, system))
                if name != "baseline" and base is not None and base.total_time:
                    entry["vs_baseline"] = {
                        "slowdown": round(res.total_time / base.total_time, 4),
                        "overhead_pct_delta": round(
                            res.overhead_pct - base.overhead_pct, 3
                        ),
                    }
                systems_doc[system] = entry
            apps_doc[app] = {"systems": systems_doc}
        scenarios_doc[name] = {"knobs": knob_values.get(name, {}), "apps": apps_doc}

    report = {
        "schema": REPORT_SCHEMA,
        "bench": "scenario-degradation",
        "scale": scale,
        "nprocs": nprocs,
        "systems": systems,
        "scenarios": scenarios_doc,
    }
    if manifest is not None:
        report["manifest"] = manifest
    return report


def format_report(report: dict) -> str:
    """Human-readable table of the degradation report."""
    lines: list[str] = []
    lines.append(
        f"scenario degradation report (scale={report['scale']}, "
        f"P={report['nprocs']})"
    )
    for name, scn in report["scenarios"].items():
        knobs = scn.get("knobs") or {}
        knob_txt = ", ".join(f"{k}={v}" for k, v in knobs.items())
        lines.append("")
        lines.append(f"== {name}" + (f"  [{knob_txt}]" if knob_txt else ""))
        header = (
            f"  {'app':<10} {'system':<8} {'total':>12} {'ovh%':>7} "
            f"{'vs z-mc':>8} {'vs base':>8}"
        )
        lines.append(header)
        for app, app_doc in scn["apps"].items():
            for system, entry in app_doc["systems"].items():
                vs_z = entry.get("slowdown_vs_z")
                vs_b = (entry.get("vs_baseline") or {}).get("slowdown")
                lines.append(
                    f"  {app:<10} {system:<8} {entry['total_time']:>12.1f} "
                    f"{entry['overhead_pct']:>7.2f} "
                    f"{vs_z if vs_z is not None else '-':>8} "
                    f"{vs_b if vs_b is not None else '-':>8}"
                )
    return "\n".join(lines)


def write_report(report: dict, out: str | os.PathLike = SCENARIO_BENCH_FILE) -> Path:
    """Write the report as JSON; returns the path written."""
    path = Path(out)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


__all__ = [
    "REPORT_SCHEMA",
    "SCENARIO_BENCH_FILE",
    "build_report",
    "format_report",
    "run_scenario_matrix",
    "write_report",
]
