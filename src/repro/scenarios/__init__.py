"""Named degradation scenarios and fault injection.

The scenario layer asks the question the paper could not: how does each
memory system's overhead decomposition *degrade* when the machine stops
being the clean, homogeneous ideal — limping nodes, contended memory
modules, slow mesh links, bursty phase-shifted load, heterogeneous CPU
speeds?

* :mod:`repro.scenarios.inject` — the :class:`Degradation` spec that
  travels inside :class:`~repro.config.MachineConfig`;
* :mod:`repro.scenarios.registry` — the named scenarios and their
  knobs;
* :mod:`repro.scenarios.report` — the matrix runner and the
  overhead-degradation report (``BENCH_scenarios.json``).

See ``docs/scenarios.md`` for the handbook.
"""

from .inject import Degradation
from .registry import (
    SCENARIO_NAMES,
    SCENARIO_REGISTRY,
    Knob,
    Scenario,
    apply_scenario,
    get_scenario,
    neutral_degradation,
    parse_overrides,
)
from .report import (
    SCENARIO_BENCH_FILE,
    build_report,
    format_report,
    run_scenario_matrix,
    write_report,
)

__all__ = [
    "Degradation",
    "Knob",
    "SCENARIO_BENCH_FILE",
    "SCENARIO_NAMES",
    "SCENARIO_REGISTRY",
    "Scenario",
    "apply_scenario",
    "build_report",
    "format_report",
    "get_scenario",
    "neutral_degradation",
    "parse_overrides",
    "run_scenario_matrix",
    "write_report",
]
