"""Command-line interface: ``python -m repro <command>``.

Commands
--------
study    run one application (or all) across memory systems and print
         the Figure 2-5 style breakdown (optionally CSV/JSON)
table1   run the four applications on the z-machine and print Table 1
fig1     print the Figure 1 inherent-cost-vs-overhead scenario
claims   evaluate the paper's qualitative claims on fresh runs
systems  list available memory systems and applications
"""

from __future__ import annotations

import argparse
import sys

from . import MachineConfig, figure1_scenario, run_study, table1
from .analysis import format_claims, format_figure, format_table1, standard_claims
from .analysis.report import studies_to_csv, studies_to_json, table1_to_csv
from .apps import BarnesHut, Cholesky, IntegerSort, Maxflow
from .mem.systems import PAPER_SYSTEMS, SYSTEM_REGISTRY

#: factory + reuse expectation per application, at moderate default scale
APP_FACTORIES = {
    "Cholesky": (lambda: Cholesky(grid=(10, 10)), False),
    "IS": (lambda: IntegerSort(n_keys=2048, nbuckets=128), False),
    "Maxflow": (lambda: Maxflow(n=48, extra_edges=96, seed=0), True),
    "Nbody": (lambda: BarnesHut(n_bodies=128, steps=10, boost_interval=5), True),
}


def _config(args: argparse.Namespace) -> MachineConfig:
    return MachineConfig(nprocs=args.nprocs)


def _selected_apps(name: str) -> dict:
    if name == "all":
        return APP_FACTORIES
    if name not in APP_FACTORIES:
        raise SystemExit(
            f"unknown application {name!r}; choose from "
            f"{', '.join(APP_FACTORIES)} or 'all'"
        )
    return {name: APP_FACTORIES[name]}


def cmd_study(args: argparse.Namespace) -> int:
    cfg = _config(args)
    systems = tuple(args.systems) if args.systems else PAPER_SYSTEMS
    for s in systems:
        if s not in SYSTEM_REGISTRY:
            raise SystemExit(f"unknown memory system {s!r}")
    studies = []
    for name, (factory, _) in _selected_apps(args.app).items():
        studies.append(run_study(factory, cfg, systems=systems))
    if args.format == "csv":
        print(studies_to_csv(studies), end="")
    elif args.format == "json":
        print(studies_to_json(studies))
    else:
        for study in studies:
            print(format_figure(study))
            print()
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    cfg = _config(args)
    factories = {k: f for k, (f, _) in _selected_apps(args.app).items()}
    rows = table1(factories, cfg)
    if args.format == "csv":
        print(table1_to_csv(rows), end="")
    else:
        print(format_table1(rows))
    return 0


def cmd_fig1(args: argparse.Namespace) -> int:
    cfg = _config(args)
    print(f"{'system':8s} {'early stall':>12s} {'class':>10s} {'late stall':>12s} {'class':>10s}")
    for system in ("z-mc", "RCinv", "RCupd", "RCadapt", "RCcomp", "SCinv"):
        t = figure1_scenario(system, cfg)
        print(
            f"{t.system:8s} {t.early_read.stall:12.1f} {t.early_kind:>10s} "
            f"{t.late_read.stall:12.1f} {t.late_kind:>10s}"
        )
    return 0


def cmd_claims(args: argparse.Namespace) -> int:
    cfg = _config(args)
    all_hold = True
    for name, (factory, reuse) in _selected_apps(args.app).items():
        study = run_study(factory, cfg)
        checks = standard_claims(study, expect_reuse=reuse)
        print(f"== {name}")
        print(format_claims(checks))
        all_hold &= all(c.holds for c in checks)
    return 0 if all_hold else 1


def cmd_systems(args: argparse.Namespace) -> int:
    print("memory systems:", ", ".join(sorted(SYSTEM_REGISTRY)))
    print("applications:  ", ", ".join(APP_FACTORIES))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="z-machine overhead benchmarking of shared-memory systems "
        "(ICPP 1995 reproduction)",
    )
    parser.add_argument("--nprocs", type=int, default=16, help="processor count (default 16)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_study = sub.add_parser("study", help="run an overhead study")
    p_study.add_argument("--app", default="all", help="application name or 'all'")
    p_study.add_argument("--systems", nargs="*", help="memory systems (default: paper's five)")
    p_study.add_argument("--format", choices=("text", "csv", "json"), default="text")
    p_study.set_defaults(func=cmd_study)

    p_t1 = sub.add_parser("table1", help="regenerate Table 1 (z-machine)")
    p_t1.add_argument("--app", default="all")
    p_t1.add_argument("--format", choices=("text", "csv"), default="text")
    p_t1.set_defaults(func=cmd_table1)

    p_f1 = sub.add_parser("fig1", help="Figure 1 scenario across systems")
    p_f1.set_defaults(func=cmd_fig1)

    p_claims = sub.add_parser("claims", help="evaluate the paper's qualitative claims")
    p_claims.add_argument("--app", default="all")
    p_claims.set_defaults(func=cmd_claims)

    p_sys = sub.add_parser("systems", help="list systems and applications")
    p_sys.set_defaults(func=cmd_systems)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
