"""Command-line interface: ``python -m repro <command>``.

Commands
--------
study    run one application (or all) across memory systems and print
         the Figure 2-5 style breakdown (optionally CSV/JSON)
table1   run the four applications on the z-machine and print Table 1
fig1     print the Figure 1 inherent-cost-vs-overhead scenario
claims   evaluate the paper's qualitative claims on fresh runs
trace    run one application with the tracer attached and export a
         Perfetto/Chrome trace (and optionally interval metrics)
profile  run one application under the host self-profiler and print the
         per-component wall-time attribution (wheel / app / mem /
         network / tracer / sync / observer / dispatch), optionally as
         a Perfetto flame view
attribute run one application under exact overhead attribution and
         print ranked stall-cycle tables by shared region / sync object /
         phase / home node (``--vs`` adds an inline overhead-delta diff
         against another system or scenario)
diff     decompose the overhead delta between two saved attribution
         reports (from ``repro attribute --out``)
bench    time serial vs parallel vs cached execution of the full study
         set and write a BENCH_parallel.json perf baseline (with
         ``--trace``: measure observability overhead → BENCH_trace.json;
         with ``--profile``: measure self-profiler overhead →
         BENCH_profile.json)
perf     bench-history ledger: ``perf record`` appends BENCH_*.json
         snapshots into benchmarks/history.jsonl keyed by commit and
         host; ``perf report`` prints deltas and trends against the
         committed baselines and flags regressions
check    run the correctness analyses (happens-before race detection +
         protocol invariant checking) over an apps × systems matrix;
         exits nonzero on any finding
fuzz     differential fuzzing: seeded random draws (app × system ×
         nprocs × scenario × decorator stack) cross-checked against the
         plain-heapq reference engine, decorator neutrality, and
         dynamic-vs-static checker agreement; mismatches are
         delta-debug shrunk into repro files and every draw is recorded
         in a resumable corpus ledger
scenario named degradation scenarios (limping nodes, slow links, bursty
         load, ...): list / describe them, or run the scenario matrix
         and emit the overhead-degradation report (BENCH_scenarios.json)
systems  list available memory systems and applications
cache    show or clear the on-disk result cache

``study``, ``table1``, ``fig1`` and ``claims`` accept ``--jobs N`` to
fan independent runs out over N worker processes (0 = one per CPU),
``--no-cache`` to bypass the on-disk result cache and
``--telemetry-out PATH`` to persist per-job heartbeat records as
replayable JSONL; see docs/performance.md.  Multi-job runs render live
per-job progress (with ETA) on the diagnostic channel unless
``--quiet``.  ``study``, ``table1``, ``claims`` and ``trace`` accept
``--manifest PATH`` to record a structured run manifest; the global
``--verbose``/``--quiet``/``--json`` flags control diagnostics and
propagate into pool workers (see docs/observability.md).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from . import MachineConfig, figure1_scenario, run_study
from .analysis import format_claims, format_figure, format_table1, standard_claims
from .analysis.checkers import (
    CHECK_BENCH_FILE,
    check_matrix,
    format_outcomes,
    run_checks,
    write_check_bench,
)
from .analysis.report import studies_to_csv, studies_to_json, table1_to_csv
from .apps import SCALES, default_scale, preset
from .apps.factory import AppFactory
from .core import perf
from .core.bench import (
    ATTRIB_BENCH_FILE,
    BENCH_FILE,
    ENGINE_BENCH_FILE,
    PROFILE_BENCH_FILE,
    TRACE_BENCH_FILE,
    check_engine_regression,
    format_attrib_bench,
    format_bench,
    format_engine_bench,
    format_profile_bench,
    format_trace_bench,
    run_attrib_bench,
    run_bench,
    run_engine_bench,
    run_profile_bench,
    run_trace_bench,
)
from .core.parallel import ResultCache, parallel_map
from .core.table1 import table1_with_manifest
from .mem.systems import PAPER_SYSTEMS, SYSTEM_REGISTRY
from .obs import MetricsCollector, configure, get_logger, to_perfetto, write_trace
from .obs import telemetry
from .obs.attrib import (
    diff_reports,
    format_attribution,
    format_diff,
    load_report,
    run_attribution,
)
from .obs.manifest import build_manifest, write_manifest
from .obs.profile import HostProfiler
from .obs.timeline import attribution_to_perfetto
from .runtime.context import Machine
from .scenarios import (
    SCENARIO_BENCH_FILE,
    SCENARIO_NAMES,
    apply_scenario,
    format_report,
    get_scenario,
    parse_overrides,
    run_scenario_matrix,
    write_report,
)
from .sim.trace import TracingMemory

#: factory + reuse expectation per application, at moderate default scale.
APP_FACTORIES = default_scale()

#: Friendly aliases accepted by ``repro trace`` in addition to registry names.
TRACE_APP_ALIASES = {
    "intsort": "IS",
    "is": "IS",
    "cholesky": "Cholesky",
    "maxflow": "Maxflow",
    "nbody": "Nbody",
    "barneshut": "Nbody",
    "racy": "RacyDemo",
    "racydemo": "RacyDemo",
}


def _config(args: argparse.Namespace) -> MachineConfig:
    return MachineConfig(nprocs=args.nprocs)


def _cache(args: argparse.Namespace) -> ResultCache | None:
    return None if args.no_cache else ResultCache.default()


def _selected_apps(name: str, scale: str = "default") -> dict:
    apps = APP_FACTORIES if scale == "default" else preset(scale)
    if name == "all":
        return apps
    if name not in apps:
        raise SystemExit(
            f"unknown application {name!r}; choose from "
            f"{', '.join(apps)} or 'all'"
        )
    return {name: apps[name]}


def _emit_manifest(path: str | None, manifests: list[dict], kind: str) -> None:
    """Write one manifest (or a wrapper around several) when requested."""
    if not path:
        return
    if len(manifests) == 1:
        doc = manifests[0]
    else:
        doc = dict(manifests[0])  # share the header (schema/host/fingerprint)
        doc["kind"] = kind
        doc["manifests"] = manifests
    write_manifest(path, doc)
    get_logger().info(f"manifest written to {path}")


def cmd_study(args: argparse.Namespace) -> int:
    log = get_logger()
    cfg = _config(args)
    systems = tuple(args.systems) if args.systems else PAPER_SYSTEMS
    for s in systems:
        if s not in SYSTEM_REGISTRY:
            raise SystemExit(f"unknown memory system {s!r}")
    cache = _cache(args)
    studies = []
    for name, (factory, _) in _selected_apps(args.app, args.scale).items():
        log.debug(f"running study: {name}", systems=",".join(systems))
        studies.append(run_study(factory, cfg, systems=systems, jobs=args.jobs, cache=cache))
    if args.format == "csv":
        log.out(studies_to_csv(studies).rstrip("\n"))
    elif args.format == "json":
        log.out(studies_to_json(studies))
    else:
        for study in studies:
            log.out(format_figure(study))
            log.out()
    _emit_manifest(args.manifest, [s.manifest for s in studies], "study-set")
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    log = get_logger()
    cfg = _config(args)
    factories = {k: f for k, (f, _) in _selected_apps(args.app).items()}
    rows, manifest = table1_with_manifest(factories, cfg, jobs=args.jobs, cache=_cache(args))
    if args.format == "csv":
        log.out(table1_to_csv(rows).rstrip("\n"))
    else:
        log.out(format_table1(rows))
    _emit_manifest(args.manifest, [manifest], "table1")
    return 0


#: Systems shown by ``fig1``, in display order.
FIG1_SYSTEMS = ("z-mc", "RCinv", "RCupd", "RCadapt", "RCcomp", "SCinv")


def _fig1_one(arg: tuple[str, MachineConfig]):
    system, cfg = arg
    return figure1_scenario(system, cfg)


def cmd_fig1(args: argparse.Namespace) -> int:
    log = get_logger()
    cfg = _config(args)
    log.out(f"{'system':8s} {'early stall':>12s} {'class':>10s} {'late stall':>12s} {'class':>10s}")
    timelines = parallel_map(_fig1_one, [(s, cfg) for s in FIG1_SYSTEMS], jobs=args.jobs)
    for t in timelines:
        log.out(
            f"{t.system:8s} {t.early_read.stall:12.1f} {t.early_kind:>10s} "
            f"{t.late_read.stall:12.1f} {t.late_kind:>10s}"
        )
    return 0


def cmd_claims(args: argparse.Namespace) -> int:
    log = get_logger()
    cfg = _config(args)
    cache = _cache(args)
    all_hold = True
    manifests = []
    for name, (factory, reuse) in _selected_apps(args.app).items():
        study = run_study(factory, cfg, jobs=args.jobs, cache=cache)
        manifests.append(study.manifest)
        checks = standard_claims(study, expect_reuse=reuse)
        log.out(f"== {name}")
        log.out(format_claims(checks))
        all_hold &= all(c.holds for c in checks)
    _emit_manifest(args.manifest, manifests, "claims")
    return 0 if all_hold else 1


def _resolve_trace_app(name: str) -> tuple[str, AppFactory]:
    """Resolve a ``repro trace`` app argument (registry name or alias)."""
    canonical = TRACE_APP_ALIASES.get(name.lower(), name)
    if canonical in APP_FACTORIES:
        return canonical, APP_FACTORIES[canonical][0]
    if canonical == "RacyDemo":
        return canonical, AppFactory("RacyDemo")
    choices = ", ".join([*APP_FACTORIES, "RacyDemo", *sorted(TRACE_APP_ALIASES)])
    raise SystemExit(f"unknown application {name!r}; choose from {choices}")


def cmd_trace(args: argparse.Namespace) -> int:
    log = get_logger()
    cfg = _config(args)
    if args.system not in SYSTEM_REGISTRY:
        raise SystemExit(
            f"unknown memory system {args.system!r}; choose from "
            f"{', '.join(sorted(SYSTEM_REGISTRY))}"
        )
    name, factory = _resolve_trace_app(args.app)
    app = factory()
    machine = Machine(cfg, args.system)
    app.setup(machine)
    tracer = TracingMemory.attach(machine, max_events=args.max_events)
    collector = (
        MetricsCollector.attach(machine, interval=args.interval) if args.metrics else None
    )
    log.debug(f"tracing {name} on {args.system}", max_events=args.max_events)
    t0 = time.perf_counter()
    result = machine.run(app.worker)
    wall = time.perf_counter() - t0
    log.info(
        f"{name} on {args.system}: {result.ops} ops, "
        f"{result.total_time:.0f} simulated cycles ({wall:.2f}s wall)"
    )
    if tracer.dropped:
        log.warn(f"{tracer.dropped} trace event(s) dropped; raise --max-events")
    hot = tracer.hottest_blocks(args.top)
    if hot and hot[0][1] > 0:
        log.out(f"hottest blocks by stall cycles (top {args.top}):")
        for block_name, stall in hot:
            log.out(f"  {block_name:<36s} {stall:>12.1f}")
    metrics = collector.to_dict() if collector is not None else None
    doc = to_perfetto(
        tracer, cfg.nprocs, total_time=result.total_time, app=name,
        system=args.system, sync_names=machine.sync.sync_names(),
        metrics=metrics,
    )
    write_trace(args.out, doc)
    log.out(f"trace written to {args.out} ({len(doc['traceEvents'])} events)")
    if metrics is not None:
        Path(args.metrics).write_text(json.dumps(metrics, indent=2) + "\n")
        log.out(f"metrics written to {args.metrics} ({len(metrics['buckets'])} buckets)")
    if args.manifest:
        manifest = build_manifest(
            "trace",
            config=cfg,
            app=name,
            systems=[args.system],
            wall_seconds=wall,
            extra={
                "events_simulated": result.ops,
                "events_per_sec": round(result.ops / wall, 1) if wall > 0 else None,
                "trace_events": len(doc["traceEvents"]),
                "trace_dropped": tracer.dropped,
            },
        )
        _emit_manifest(args.manifest, [manifest], "trace")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    log = get_logger()
    cfg = _config(args)
    if args.system not in SYSTEM_REGISTRY:
        raise SystemExit(
            f"unknown memory system {args.system!r}; choose from "
            f"{', '.join(sorted(SYSTEM_REGISTRY))}"
        )
    name, factory = _resolve_trace_app(args.app)
    factory = _scaled_factory(name, factory, args.scale)
    app = factory()
    machine = Machine(cfg, args.system)
    app.setup(machine)
    # Attach last so any tracer/metrics decorators are already in place
    # and their overhead lands in the ``tracer`` component.
    prof = HostProfiler.attach(machine)
    result = machine.run(app.worker)
    log.info(
        f"{name} on {args.system}: {result.ops} ops, "
        f"{result.total_time:.0f} simulated cycles"
    )
    log.out(prof.table())
    if args.out:
        doc = prof.to_dict()
        doc.update({"app": name, "system": args.system, "nprocs": cfg.nprocs})
        Path(args.out).write_text(json.dumps(doc, indent=2) + "\n")
        log.out(f"attribution written to {args.out}")
    if args.flame:
        write_trace(args.flame, prof.to_perfetto())
        log.out(f"flame view written to {args.flame}")
    return 0


def _scaled_factory(name: str, factory: AppFactory, scale: str) -> AppFactory:
    """Swap in the preset factory for ``scale`` when the app has one."""
    if scale != "default":
        scale_apps = preset(scale)
        if name in scale_apps:
            factory = scale_apps[name][0]
    return factory


def cmd_attribute(args: argparse.Namespace) -> int:
    log = get_logger()
    cfg = _config(args)
    if args.system not in SYSTEM_REGISTRY:
        raise SystemExit(
            f"unknown memory system {args.system!r}; choose from "
            f"{', '.join(sorted(SYSTEM_REGISTRY))}"
        )
    name, factory = _resolve_trace_app(args.app)
    factory = _scaled_factory(name, factory, args.scale)
    log.debug(f"attributing {name} on {args.system}", scale=args.scale)
    report, result = run_attribution(
        factory, args.system, cfg, app=name, scale=args.scale
    )
    log.info(
        f"{name} on {args.system}: {result.ops} ops, "
        f"{result.total_time:.0f} simulated cycles"
    )
    log.out(format_attribution(report, by=args.by, top=args.top))
    if not report["exact"]:
        log.warn(f"attribution residual nonzero: {json.dumps(report['residual'])}")
    if args.out:
        Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
        log.out(f"attribution report written to {args.out}")
    if args.perfetto:
        write_trace(args.perfetto, attribution_to_perfetto(report, top=args.top))
        log.out(f"attribution heatmap written to {args.perfetto}")
    if args.vs:
        if args.vs in SYSTEM_REGISTRY:
            # Same app, other memory system.
            other, _ = run_attribution(
                factory, args.vs, cfg, app=name, scale=args.scale
            )
        elif args.vs in SCENARIO_NAMES:
            # Same app and system, degraded machine.
            other, _ = run_attribution(
                factory, args.system, apply_scenario(args.vs, cfg),
                app=name, scale=args.scale, label=args.vs,
            )
        else:
            raise SystemExit(
                f"--vs expects a memory system ({', '.join(sorted(SYSTEM_REGISTRY))}) "
                f"or a scenario ({', '.join(SCENARIO_NAMES)}); got {args.vs!r}"
            )
        log.out("")
        log.out(format_diff(diff_reports(report, other), by=args.by, top=args.top))
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    log = get_logger()
    try:
        a = load_report(args.report_a)
        b = load_report(args.report_b)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        raise SystemExit(str(exc)) from None
    diff = diff_reports(a, b)
    log.out(format_diff(diff, by=args.by, top=args.top))
    if args.out:
        Path(args.out).write_text(json.dumps(diff, indent=2) + "\n")
        log.out(f"diff document written to {args.out}")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    log = get_logger()
    if args.engine:
        out = args.out if args.out != BENCH_FILE else ENGINE_BENCH_FILE
        if args.quick:
            # Quick mode is the CI perf-smoke: one rep, never overwrites
            # the committed baseline — it is compared against it.
            doc = run_engine_bench(
                scale=args.scale, nprocs=args.nprocs, reps=1, out=None
            )
            log.out(format_engine_bench(doc))
            baseline_path = Path(out)
            if not baseline_path.exists():
                log.out(f"no committed baseline at {out}; regression check skipped")
                return 0
            baseline = json.loads(baseline_path.read_text())
            ok, msg = check_engine_regression(doc, baseline)
            log.out(msg)
            return 0 if ok else 1
        doc = run_engine_bench(scale=args.scale, nprocs=args.nprocs, out=out)
        log.out(format_engine_bench(doc))
        log.out(f"trajectory written to {out}")
        return 0
    if args.trace:
        out = args.out if args.out != BENCH_FILE else TRACE_BENCH_FILE
        doc = run_trace_bench(scale=args.scale, out=out)
        log.out(format_trace_bench(doc))
        log.out(f"trajectory written to {out}")
        return 0
    if args.profile:
        out = args.out if args.out != BENCH_FILE else PROFILE_BENCH_FILE
        doc = run_profile_bench(scale=args.scale, nprocs=args.nprocs, out=out)
        log.out(format_profile_bench(doc))
        log.out(f"trajectory written to {out}")
        return 0
    if args.attrib:
        out = args.out if args.out != BENCH_FILE else ATTRIB_BENCH_FILE
        doc = run_attrib_bench(scale=args.scale, nprocs=args.nprocs, out=out)
        log.out(format_attrib_bench(doc))
        log.out(f"trajectory written to {out}")
        return 0
    doc = run_bench(scale=args.scale, jobs=args.jobs or None, out=args.out)
    log.out(format_bench(doc))
    log.out(f"trajectory written to {args.out}")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    log = get_logger()
    cfg = _config(args)
    systems = tuple(args.systems) if args.systems else tuple(sorted(SYSTEM_REGISTRY))
    for s in systems:
        if s not in SYSTEM_REGISTRY:
            raise SystemExit(f"unknown memory system {s!r}")
    scale_apps = {name: factory for name, (factory, _) in preset(args.scale).items()}
    if args.all or args.app == "all":
        factories = scale_apps
    elif args.app in scale_apps:
        factories = {args.app: scale_apps[args.app]}
    elif args.app == "RacyDemo":
        factories = {"RacyDemo": AppFactory("RacyDemo")}
    else:
        raise SystemExit(
            f"unknown application {args.app!r}; choose from "
            f"{', '.join(scale_apps)}, RacyDemo or 'all'"
        )
    specs = check_matrix(factories, systems, cfg, max_events=args.max_events)
    t0 = time.perf_counter()
    outcomes = run_checks(specs, jobs=args.jobs, cache=_cache(args))
    wall = time.perf_counter() - t0
    log.out(format_outcomes(outcomes))
    if args.bench_out:
        doc = write_check_bench(
            outcomes,
            wall,
            jobs=args.jobs,
            scale=args.scale,
            out=args.bench_out,
            nprocs=cfg.nprocs,
        )
        log.out(f"checker timing written to {args.bench_out} ({doc['wall_s']}s wall)")
    findings = sum(o.races.total + o.violation_total for o in outcomes)
    if findings:
        log.out(f"FAIL: {findings} finding(s) across {len(outcomes)} run(s)")
        return 1
    log.out(f"OK: {len(outcomes)} run(s), no races, no invariant violations")
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    from .analysis import fuzz

    log = get_logger()
    if args.replay:
        draw, ev = fuzz.replay_repro(args.replay)
        log.out(f"replay {args.replay}: {draw.describe()} -> {ev.status}")
        for failure in ev.failures:
            log.out(f"  [{failure['oracle']}] {failure['detail']}")
        if ev.ok:
            log.out("mismatch no longer reproduces")
            return 0
        return 1
    oracles = tuple(args.oracle) if args.oracle else fuzz.ORACLES
    report = fuzz.run_fuzz(
        budget=args.budget,
        seed=args.seed,
        max_draws=args.max_draws,
        jobs=args.jobs,
        oracles=oracles,
        ledger=args.ledger,
        repro_dir=args.repro_dir,
        resume=not args.no_resume,
        cache=_cache(args),
    )
    log.out(report.describe())
    if args.out:
        Path(args.out).write_text(
            json.dumps(report.to_doc(), indent=1, sort_keys=True) + "\n"
        )
        log.out(f"fuzz report written to {args.out}")
    return 0 if report.clean else 1


def cmd_lint(args: argparse.Namespace) -> int:
    from .analysis.static import load_baseline, repo_root, run_lint, write_baseline

    log = get_logger()
    root = Path(args.root).resolve() if args.root else repo_root()
    apps = args.apps or args.all or not args.core
    core = args.core or args.all or not args.apps
    report, app_reports = run_lint(apps=apps, core=core, root=root)

    baseline_path = Path(args.baseline)
    if not baseline_path.is_absolute():
        baseline_path = root / baseline_path
    if args.write_baseline:
        write_baseline(baseline_path, report)
        log.out(
            f"baseline written to {baseline_path} "
            f"({len({f.key() for f in report.findings})} accepted finding(s))"
        )
        return 0
    baseline = {} if args.no_baseline else load_baseline(baseline_path)
    new = report.new_against(set(baseline))
    stale = report.stale_baseline(set(baseline))

    doc = report.to_doc()
    doc["new"] = [f.key() for f in new]
    doc["stale_baseline"] = stale
    doc["apps"] = {
        a.path: {
            "classes": a.classes,
            "race_labels": sorted(a.race_labels),
            "summaries": {k: s.to_doc() for k, s in sorted(a.summaries.items())},
        }
        for a in app_reports
    }
    if args.report:
        Path(args.report).write_text(json.dumps(doc, indent=2) + "\n")
        log.out(f"findings report written to {args.report}")
    if args.format == "json":
        log.out(json.dumps(doc, indent=2))
    else:
        for f in new:
            log.out(f.describe())
        baselined = len(report.findings) - len(new)
        if baselined:
            log.out(f"{baselined} baselined finding(s) (see {baseline_path.name})")
        for f in report.unused_suppressions:
            log.out(f.describe())
        for key in stale:
            log.out(f"stale baseline entry (finding no longer produced): {key}")
        log.out(
            f"{report.files_scanned} file(s) scanned: {len(new)} new finding(s), "
            f"{len(report.suppressed)} suppressed, "
            f"{len(report.unused_suppressions)} unused suppression(s)"
        )
    failures = len(new)
    if args.strict:
        failures += len(report.unused_suppressions) + len(stale)
    return 1 if failures else 0


def cmd_scenario_list(args: argparse.Namespace) -> int:
    log = get_logger()
    width = max(len(n) for n in SCENARIO_NAMES)
    for name in SCENARIO_NAMES:
        log.out(f"{name:<{width}}  {get_scenario(name).summary}")
    return 0


def cmd_scenario_describe(args: argparse.Namespace) -> int:
    log = get_logger()
    try:
        scenario = get_scenario(args.name)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    log.out(f"{scenario.name}: {scenario.summary}")
    log.out("")
    log.out(scenario.description)
    if scenario.knobs:
        log.out("")
        log.out("knobs:")
        for knob in scenario.knobs:
            log.out(f"  {knob.name} = {knob.default}  ({knob.help})")
    cfg = _config(args)
    deg = scenario.degradation(cfg)
    log.out("")
    log.out(f"realised for P={cfg.nprocs}: {deg!r}")
    return 0


def cmd_scenario_run(args: argparse.Namespace) -> int:
    log = get_logger()
    cfg = _config(args)
    systems = tuple(args.systems) if args.systems else PAPER_SYSTEMS
    for s in systems:
        if s not in SYSTEM_REGISTRY:
            raise SystemExit(f"unknown memory system {s!r}")
    scenarios = list(args.scenario) if args.scenario else list(SCENARIO_NAMES)
    for name in scenarios:
        if name not in SCENARIO_NAMES:
            raise SystemExit(
                f"unknown scenario {name!r}; choose from {', '.join(SCENARIO_NAMES)}"
            )
    scale = "smoke" if args.smoke else args.scale
    try:
        overrides = parse_overrides(args.set or [])
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    apps = None if args.app == "all" else [args.app]
    try:
        report = run_scenario_matrix(
            scenarios,
            config=cfg,
            scale=scale,
            apps=apps,
            systems=systems,
            overrides=overrides,
            jobs=args.jobs,
            cache=_cache(args),
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    if args.format == "json":
        log.out(json.dumps(report, indent=2))
    else:
        log.out(format_report(report))
    if args.out:
        path = write_report(report, args.out)
        log.out(f"degradation report written to {path}")
    _emit_manifest(args.manifest, [report["manifest"]], "scenario-matrix")
    return 0


def cmd_perf_record(args: argparse.Namespace) -> int:
    log = get_logger()
    paths = args.paths or sorted(str(p) for p in Path(".").glob(perf.BENCH_GLOB))
    if not paths:
        log.out(f"no bench snapshots matched {perf.BENCH_GLOB}; nothing to record")
        return 0
    appended = perf.record(paths, history=args.history, commit=args.commit)
    log.out(
        f"recorded {len(appended)} entr{'y' if len(appended) == 1 else 'ies'} "
        f"into {args.history} (from {len(paths)} snapshot(s))"
    )
    for entry in appended:
        log.debug(
            f"  {entry['bench']}/{entry['scale']}: {entry['metric']}={entry['value']}"
        )
    return 0


def cmd_perf_report(args: argparse.Namespace) -> int:
    log = get_logger()
    entries = perf.load_history(args.history)
    if not entries:
        log.out(f"no ledger at {args.history}; run 'repro perf record' first")
        return 1 if args.strict else 0
    baselines = perf.collect_baselines(args.baseline_dir)
    report = perf.build_report(entries, baselines, tolerance=args.tolerance)
    if args.format == "json":
        log.out(json.dumps(report, indent=2))
    else:
        log.out(perf.format_report(report))
    if report["regressions"] and args.strict:
        return 1
    return 0


def cmd_systems(args: argparse.Namespace) -> int:
    log = get_logger()
    log.out(f"memory systems: {', '.join(sorted(SYSTEM_REGISTRY))}")
    log.out(f"applications:   {', '.join(APP_FACTORIES)}")
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    log = get_logger()
    cache = ResultCache.default()
    if args.clear:
        log.out(f"removed {cache.clear()} cached result(s) from {cache.directory}")
        return 0
    entries, size = cache.size()
    stats = cache.lifetime_stats()
    total = stats["hits"] + stats["misses"]
    log.out(f"cache directory: {cache.directory}")
    log.out(f"entries: {entries} ({size / 1024:.1f} KiB)")
    if total:
        log.out(
            f"lifetime: {stats['hits']} hit(s), {stats['misses']} miss(es) "
            f"({100.0 * stats['hits'] / total:.0f}% hit rate)"
        )
    else:
        log.out("lifetime: no recorded lookups yet")
    return 0


def _jobs_count(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"jobs must be >= 0, got {value}")
    return value


def _add_parallel_flags(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--jobs",
        type=_jobs_count,
        default=1,
        help="worker processes for independent runs (0 = one per CPU, default 1)",
    )
    sub.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the on-disk result cache",
    )
    sub.add_argument(
        "--telemetry-out",
        default=None,
        metavar="PATH",
        help="write per-job heartbeat records (start/finish, events/sec, "
        "cache hits, ETA) as replayable JSONL to PATH",
    )


def _add_manifest_flag(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--manifest",
        default=None,
        metavar="PATH",
        help="write a structured run manifest (JSON) to PATH",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="z-machine overhead benchmarking of shared-memory systems "
        "(ICPP 1995 reproduction)",
    )
    parser.add_argument("--nprocs", type=int, default=16, help="processor count (default 16)")
    parser.add_argument(
        "--verbose", action="store_true", help="show debug diagnostics on stderr"
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress info diagnostics (warnings still shown)"
    )
    parser.add_argument(
        "--json", action="store_true", help="emit structured JSON log records on stdout"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_study = sub.add_parser("study", help="run an overhead study")
    p_study.add_argument("--app", default="all", help="application name or 'all'")
    p_study.add_argument(
        "--scale",
        choices=SCALES,
        default="default",
        help="workload preset; 'large' is ~10x default, sized for "
        "--nprocs 64/256 machines",
    )
    p_study.add_argument("--systems", nargs="*", help="memory systems (default: paper's five)")
    p_study.add_argument("--format", choices=("text", "csv", "json"), default="text")
    _add_parallel_flags(p_study)
    _add_manifest_flag(p_study)
    p_study.set_defaults(func=cmd_study)

    p_t1 = sub.add_parser("table1", help="regenerate Table 1 (z-machine)")
    p_t1.add_argument("--app", default="all")
    p_t1.add_argument("--format", choices=("text", "csv"), default="text")
    _add_parallel_flags(p_t1)
    _add_manifest_flag(p_t1)
    p_t1.set_defaults(func=cmd_table1)

    p_f1 = sub.add_parser("fig1", help="Figure 1 scenario across systems")
    _add_parallel_flags(p_f1)
    p_f1.set_defaults(func=cmd_fig1)

    p_claims = sub.add_parser("claims", help="evaluate the paper's qualitative claims")
    p_claims.add_argument("--app", default="all")
    _add_parallel_flags(p_claims)
    _add_manifest_flag(p_claims)
    p_claims.set_defaults(func=cmd_claims)

    p_trace = sub.add_parser(
        "trace", help="export a Perfetto timeline (and interval metrics) for one run"
    )
    p_trace.add_argument("app", help="application name or alias (e.g. intsort, cholesky)")
    p_trace.add_argument("system", help="memory system (e.g. RCinv, z-mc)")
    p_trace.add_argument(
        "--out", default="trace.json", help="Perfetto trace output path (default trace.json)"
    )
    p_trace.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help="also collect interval metrics and write them to PATH",
    )
    p_trace.add_argument(
        "--interval",
        type=float,
        default=1000.0,
        help="metrics bucket width in simulated cycles (default 1000)",
    )
    p_trace.add_argument(
        "--max-events",
        type=int,
        default=None,
        help=f"trace ring size (default {TracingMemory.DEFAULT_MAX_EVENTS})",
    )
    p_trace.add_argument(
        "--top",
        type=int,
        default=5,
        help="hottest blocks (by stall cycles) to print (default 5)",
    )
    _add_manifest_flag(p_trace)
    p_trace.set_defaults(func=cmd_trace)

    p_prof = sub.add_parser(
        "profile",
        help="self-profile one run: host wall-time attribution per simulator component",
    )
    p_prof.add_argument("app", help="application name or alias (e.g. intsort, cholesky)")
    p_prof.add_argument("system", help="memory system (e.g. RCinv, z-mc)")
    p_prof.add_argument(
        "--scale", choices=SCALES, default="default", help="workload preset"
    )
    p_prof.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="also write the attribution document as JSON to PATH",
    )
    p_prof.add_argument(
        "--flame",
        default=None,
        metavar="PATH",
        help="also write a Perfetto flame view of the attribution to PATH",
    )
    p_prof.set_defaults(func=cmd_profile)

    p_attr = sub.add_parser(
        "attribute",
        help="exact overhead attribution: stall cycles by shared region, "
        "sync object, phase and home node",
    )
    p_attr.add_argument("app", help="application name or alias (e.g. intsort, maxflow)")
    p_attr.add_argument("system", help="memory system (e.g. RCinv, z-mc)")
    p_attr.add_argument(
        "--scale", choices=SCALES, default="default", help="workload preset"
    )
    p_attr.add_argument(
        "--by",
        choices=("block", "sync", "phase", "home", "all"),
        default="all",
        help="dimension(s) to print (default all four)",
    )
    p_attr.add_argument(
        "--top", type=int, default=10, help="rows per dimension table (default 10)"
    )
    p_attr.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the full attribution report as JSON to PATH "
        "(the input format of 'repro diff')",
    )
    p_attr.add_argument(
        "--perfetto",
        default=None,
        metavar="PATH",
        help="write a Perfetto counter-heatmap (per-region stall per phase) to PATH",
    )
    p_attr.add_argument(
        "--vs",
        default=None,
        metavar="SYSTEM|SCENARIO",
        help="also run the same app on another memory system (or this system "
        "under a degradation scenario) and print the overhead-delta diff",
    )
    p_attr.set_defaults(func=cmd_attribute)

    p_diff = sub.add_parser(
        "diff", help="decompose the overhead delta between two attribution reports"
    )
    p_diff.add_argument("report_a", help="baseline attribution report (JSON, from --out)")
    p_diff.add_argument("report_b", help="comparison attribution report (JSON)")
    p_diff.add_argument(
        "--by",
        choices=("block", "sync", "phase", "home", "all"),
        default="all",
        help="dimension(s) to print (default all four)",
    )
    p_diff.add_argument(
        "--top", type=int, default=10, help="rows per dimension table (default 10)"
    )
    p_diff.add_argument(
        "--out", default=None, metavar="PATH", help="write the diff document as JSON"
    )
    p_diff.set_defaults(func=cmd_diff)

    p_bench = sub.add_parser(
        "bench", help="serial vs parallel vs cached timing of the full study set"
    )
    p_bench.add_argument("--scale", choices=SCALES, default="default")
    p_bench.add_argument(
        "--jobs", type=_jobs_count, default=0, help="worker processes (0 = one per CPU, default)"
    )
    p_bench.add_argument("--out", default=BENCH_FILE, help=f"output path (default {BENCH_FILE})")
    p_bench.add_argument(
        "--trace",
        action="store_true",
        help=f"measure observability overhead instead (writes {TRACE_BENCH_FILE})",
    )
    p_bench.add_argument(
        "--engine",
        action="store_true",
        help="measure raw engine throughput (simulated events/sec) instead "
        f"(writes {ENGINE_BENCH_FILE})",
    )
    p_bench.add_argument(
        "--profile",
        action="store_true",
        help="measure self-profiler overhead instead: interleaved plain vs "
        f"profiled study matrix (writes {PROFILE_BENCH_FILE})",
    )
    p_bench.add_argument(
        "--attrib",
        action="store_true",
        help="measure overhead-attribution cost instead: interleaved plain vs "
        f"attributed study matrix (writes {ATTRIB_BENCH_FILE})",
    )
    p_bench.add_argument(
        "--quick",
        action="store_true",
        help="with --engine: one rep, compare against the committed "
        f"{ENGINE_BENCH_FILE} instead of overwriting it; exit 1 on >20%% "
        "events/sec regression (the CI perf-smoke mode)",
    )
    p_bench.set_defaults(func=cmd_bench)

    p_check = sub.add_parser(
        "check",
        help="happens-before race detection + protocol invariant checking",
    )
    p_check.add_argument("--app", default="all", help="application name, 'RacyDemo' or 'all'")
    p_check.add_argument(
        "--all", action="store_true", help="check every preset app on every memory system"
    )
    p_check.add_argument("--systems", nargs="*", help="memory systems (default: all six)")
    p_check.add_argument("--scale", choices=SCALES, default="smoke")
    p_check.add_argument(
        "--max-events",
        type=int,
        default=500_000,
        help="trace ring size per run (default 500000)",
    )
    p_check.add_argument(
        "--bench-out",
        default=None,
        help=f"write a checker timing trajectory (e.g. {CHECK_BENCH_FILE})",
    )
    _add_parallel_flags(p_check)
    p_check.set_defaults(func=cmd_check)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzzing with auto-minimised repros: random "
        "draws cross-checked three ways, resumable corpus ledger",
    )
    p_fuzz.add_argument(
        "--budget",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="wall-clock budget; no new batch starts after it is spent "
        "(default 60)",
    )
    p_fuzz.add_argument(
        "--seed", type=int, default=0, help="draw-stream seed (default 0)"
    )
    p_fuzz.add_argument(
        "--max-draws",
        type=int,
        default=None,
        metavar="N",
        help="stop after evaluating N fresh draws (default: budget-bound)",
    )
    p_fuzz.add_argument(
        "--oracle",
        action="append",
        choices=("reference", "decorators", "checkers"),
        metavar="NAME",
        help="oracle family to run (repeatable; default all three)",
    )
    p_fuzz.add_argument(
        "--ledger",
        default="benchmarks/fuzz_corpus.jsonl",
        metavar="PATH",
        help="corpus ledger recording every evaluated draw "
        "(default benchmarks/fuzz_corpus.jsonl)",
    )
    p_fuzz.add_argument(
        "--repro-dir",
        default="tests/fixtures/fuzz_repros",
        metavar="DIR",
        help="where shrunk repro files are written "
        "(default tests/fixtures/fuzz_repros)",
    )
    p_fuzz.add_argument(
        "--no-resume",
        action="store_true",
        help="evaluate draws even when their key is already in the ledger",
    )
    p_fuzz.add_argument(
        "--replay",
        default=None,
        metavar="PATH",
        help="re-evaluate one repro file; exits 1 while the mismatch "
        "still reproduces",
    )
    p_fuzz.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the session report as JSON to PATH",
    )
    _add_parallel_flags(p_fuzz)
    p_fuzz.set_defaults(func=cmd_fuzz)

    p_scn = sub.add_parser(
        "scenario",
        help="named degradation scenarios: fault injection over apps x systems",
    )
    scn_sub = p_scn.add_subparsers(dest="scenario_command", required=True)

    p_scn_list = scn_sub.add_parser("list", help="list the registered scenarios")
    p_scn_list.set_defaults(func=cmd_scenario_list)

    p_scn_desc = scn_sub.add_parser(
        "describe", help="show one scenario's model, knobs and realised injection"
    )
    p_scn_desc.add_argument("name", help="scenario name (see 'scenario list')")
    p_scn_desc.set_defaults(func=cmd_scenario_describe)

    p_scn_run = scn_sub.add_parser(
        "run", help="run the scenario matrix and print the degradation report"
    )
    group = p_scn_run.add_mutually_exclusive_group()
    group.add_argument(
        "--scenario",
        action="append",
        metavar="NAME",
        help="scenario to run (repeatable; baseline is always included)",
    )
    group.add_argument(
        "--all",
        action="store_true",
        help="run every registered scenario (the default when --scenario is absent)",
    )
    p_scn_run.add_argument("--app", default="all", help="application name or 'all'")
    p_scn_run.add_argument(
        "--scale",
        choices=SCALES,
        default="small",
        help="workload preset (default small: the committed baseline's scale)",
    )
    p_scn_run.add_argument(
        "--systems", nargs="*", help="memory systems (default: paper's five)"
    )
    p_scn_run.add_argument(
        "--set",
        action="append",
        metavar="KNOB=VALUE",
        help="override a scenario knob (repeatable; see 'scenario describe')",
    )
    p_scn_run.add_argument(
        "--smoke",
        action="store_true",
        help="force the smoke workload preset (the CI matrix mode)",
    )
    p_scn_run.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help=f"also write the report as JSON (e.g. {SCENARIO_BENCH_FILE})",
    )
    p_scn_run.add_argument("--format", choices=("text", "json"), default="text")
    _add_parallel_flags(p_scn_run)
    _add_manifest_flag(p_scn_run)
    p_scn_run.set_defaults(func=cmd_scenario_run)

    p_lint = sub.add_parser(
        "lint",
        help="static sync/lockset analysis of apps + determinism lint of the core",
    )
    p_lint.add_argument(
        "--apps", action="store_true", help="run only the app sync/lockset pass"
    )
    p_lint.add_argument(
        "--core", action="store_true", help="run only the core determinism pass"
    )
    p_lint.add_argument(
        "--all", action="store_true", help="run both passes (the default)"
    )
    p_lint.add_argument(
        "--baseline",
        default="lint_baseline.json",
        metavar="PATH",
        help="accepted-findings baseline (relative paths resolve against the repo root)",
    )
    p_lint.add_argument(
        "--no-baseline", action="store_true", help="ignore the baseline: report everything"
    )
    p_lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept all current findings into the baseline and exit 0",
    )
    p_lint.add_argument(
        "--report", metavar="PATH", help="also write the full findings report as JSON"
    )
    p_lint.add_argument("--format", choices=("text", "json"), default="text")
    p_lint.add_argument(
        "--strict",
        action="store_true",
        help="unused suppressions and stale baseline entries also fail",
    )
    p_lint.add_argument(
        "--root", metavar="DIR", help="lint a different source tree (testing)"
    )
    p_lint.set_defaults(func=cmd_lint)

    p_perf = sub.add_parser(
        "perf",
        help="bench-history ledger: record BENCH snapshots, report trends/regressions",
    )
    perf_sub = p_perf.add_subparsers(dest="perf_command", required=True)

    p_perf_rec = perf_sub.add_parser(
        "record", help=f"append bench snapshots to the ledger ({perf.HISTORY_FILE})"
    )
    p_perf_rec.add_argument(
        "paths",
        nargs="*",
        help=f"bench snapshot files (default: every {perf.BENCH_GLOB} in the cwd)",
    )
    p_perf_rec.add_argument(
        "--history",
        default=perf.HISTORY_FILE,
        metavar="PATH",
        help=f"ledger file (default {perf.HISTORY_FILE})",
    )
    p_perf_rec.add_argument(
        "--commit",
        default=None,
        metavar="SHA",
        help="commit to record entries under (default: detected via git)",
    )
    p_perf_rec.set_defaults(func=cmd_perf_record)

    p_perf_rep = perf_sub.add_parser(
        "report", help="print per-series deltas and trends vs the committed baselines"
    )
    p_perf_rep.add_argument(
        "--history",
        default=perf.HISTORY_FILE,
        metavar="PATH",
        help=f"ledger file (default {perf.HISTORY_FILE})",
    )
    p_perf_rep.add_argument(
        "--baseline-dir",
        default=".",
        metavar="DIR",
        help="directory holding the committed BENCH_*.json baselines (default .)",
    )
    p_perf_rep.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="relative movement in the bad direction that counts as a "
        "regression (default 0.2)",
    )
    p_perf_rep.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 on any flagged regression (or a missing ledger)",
    )
    p_perf_rep.add_argument("--format", choices=("text", "json"), default="text")
    p_perf_rep.set_defaults(func=cmd_perf_report)

    p_sys = sub.add_parser("systems", help="list systems and applications")
    p_sys.set_defaults(func=cmd_systems)

    p_cache = sub.add_parser("cache", help="show or clear the on-disk result cache")
    p_cache.add_argument("--clear", action="store_true", help="delete every cached result")
    p_cache.set_defaults(func=cmd_cache)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    configure(verbose=args.verbose, quiet=args.quiet, json_mode=args.json)
    # Commands with parallel flags stream per-job heartbeats through a
    # process-wide telemetry session: live progress lines on the
    # diagnostic channel plus the optional --telemetry-out JSONL sink.
    if hasattr(args, "telemetry_out"):
        with telemetry.session(out=args.telemetry_out, render=not args.quiet):
            return args.func(args)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
