"""Command-line interface: ``python -m repro <command>``.

Commands
--------
study    run one application (or all) across memory systems and print
         the Figure 2-5 style breakdown (optionally CSV/JSON)
table1   run the four applications on the z-machine and print Table 1
fig1     print the Figure 1 inherent-cost-vs-overhead scenario
claims   evaluate the paper's qualitative claims on fresh runs
bench    time serial vs parallel vs cached execution of the full study
         set and write a BENCH_parallel.json perf baseline
check    run the correctness analyses (happens-before race detection +
         protocol invariant checking) over an apps × systems matrix;
         exits nonzero on any finding
systems  list available memory systems and applications
cache    show or clear the on-disk result cache

``study``, ``table1``, ``fig1`` and ``claims`` accept ``--jobs N`` to
fan independent runs out over N worker processes (0 = one per CPU) and
``--no-cache`` to bypass the on-disk result cache; see
docs/performance.md.
"""

from __future__ import annotations

import argparse
import sys
import time

from . import MachineConfig, figure1_scenario, run_study, table1
from .analysis import format_claims, format_figure, format_table1, standard_claims
from .analysis.checkers import (
    CHECK_BENCH_FILE,
    check_matrix,
    format_outcomes,
    run_checks,
    write_check_bench,
)
from .analysis.report import studies_to_csv, studies_to_json, table1_to_csv
from .apps import SCALES, default_scale, preset
from .apps.factory import AppFactory
from .core.bench import BENCH_FILE, format_bench, run_bench
from .core.parallel import ResultCache, parallel_map
from .mem.systems import PAPER_SYSTEMS, SYSTEM_REGISTRY

#: factory + reuse expectation per application, at moderate default scale.
APP_FACTORIES = default_scale()


def _config(args: argparse.Namespace) -> MachineConfig:
    return MachineConfig(nprocs=args.nprocs)


def _cache(args: argparse.Namespace) -> ResultCache | None:
    return None if args.no_cache else ResultCache.default()


def _selected_apps(name: str) -> dict:
    if name == "all":
        return APP_FACTORIES
    if name not in APP_FACTORIES:
        raise SystemExit(
            f"unknown application {name!r}; choose from "
            f"{', '.join(APP_FACTORIES)} or 'all'"
        )
    return {name: APP_FACTORIES[name]}


def cmd_study(args: argparse.Namespace) -> int:
    cfg = _config(args)
    systems = tuple(args.systems) if args.systems else PAPER_SYSTEMS
    for s in systems:
        if s not in SYSTEM_REGISTRY:
            raise SystemExit(f"unknown memory system {s!r}")
    cache = _cache(args)
    studies = []
    for name, (factory, _) in _selected_apps(args.app).items():
        studies.append(run_study(factory, cfg, systems=systems, jobs=args.jobs, cache=cache))
    if args.format == "csv":
        print(studies_to_csv(studies), end="")
    elif args.format == "json":
        print(studies_to_json(studies))
    else:
        for study in studies:
            print(format_figure(study))
            print()
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    cfg = _config(args)
    factories = {k: f for k, (f, _) in _selected_apps(args.app).items()}
    rows = table1(factories, cfg, jobs=args.jobs, cache=_cache(args))
    if args.format == "csv":
        print(table1_to_csv(rows), end="")
    else:
        print(format_table1(rows))
    return 0


#: Systems shown by ``fig1``, in display order.
FIG1_SYSTEMS = ("z-mc", "RCinv", "RCupd", "RCadapt", "RCcomp", "SCinv")


def _fig1_one(arg: tuple[str, MachineConfig]):
    system, cfg = arg
    return figure1_scenario(system, cfg)


def cmd_fig1(args: argparse.Namespace) -> int:
    cfg = _config(args)
    print(f"{'system':8s} {'early stall':>12s} {'class':>10s} {'late stall':>12s} {'class':>10s}")
    timelines = parallel_map(_fig1_one, [(s, cfg) for s in FIG1_SYSTEMS], jobs=args.jobs)
    for t in timelines:
        print(
            f"{t.system:8s} {t.early_read.stall:12.1f} {t.early_kind:>10s} "
            f"{t.late_read.stall:12.1f} {t.late_kind:>10s}"
        )
    return 0


def cmd_claims(args: argparse.Namespace) -> int:
    cfg = _config(args)
    cache = _cache(args)
    all_hold = True
    for name, (factory, reuse) in _selected_apps(args.app).items():
        study = run_study(factory, cfg, jobs=args.jobs, cache=cache)
        checks = standard_claims(study, expect_reuse=reuse)
        print(f"== {name}")
        print(format_claims(checks))
        all_hold &= all(c.holds for c in checks)
    return 0 if all_hold else 1


def cmd_bench(args: argparse.Namespace) -> int:
    doc = run_bench(scale=args.scale, jobs=args.jobs or None, out=args.out)
    print(format_bench(doc))
    print(f"trajectory written to {args.out}")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    cfg = _config(args)
    systems = tuple(args.systems) if args.systems else tuple(sorted(SYSTEM_REGISTRY))
    for s in systems:
        if s not in SYSTEM_REGISTRY:
            raise SystemExit(f"unknown memory system {s!r}")
    scale_apps = {name: factory for name, (factory, _) in preset(args.scale).items()}
    if args.all or args.app == "all":
        factories = scale_apps
    elif args.app in scale_apps:
        factories = {args.app: scale_apps[args.app]}
    elif args.app == "RacyDemo":
        factories = {"RacyDemo": AppFactory("RacyDemo")}
    else:
        raise SystemExit(
            f"unknown application {args.app!r}; choose from "
            f"{', '.join(scale_apps)}, RacyDemo or 'all'"
        )
    specs = check_matrix(factories, systems, cfg, max_events=args.max_events)
    t0 = time.perf_counter()
    outcomes = run_checks(specs, jobs=args.jobs, cache=_cache(args))
    wall = time.perf_counter() - t0
    print(format_outcomes(outcomes))
    if args.bench_out:
        doc = write_check_bench(
            outcomes, wall, jobs=args.jobs, scale=args.scale, out=args.bench_out
        )
        print(f"checker timing written to {args.bench_out} ({doc['wall_s']}s wall)")
    findings = sum(o.races.total + o.violation_total for o in outcomes)
    if findings:
        print(f"FAIL: {findings} finding(s) across {len(outcomes)} run(s)")
        return 1
    print(f"OK: {len(outcomes)} run(s), no races, no invariant violations")
    return 0


def cmd_systems(args: argparse.Namespace) -> int:
    print("memory systems:", ", ".join(sorted(SYSTEM_REGISTRY)))
    print("applications:  ", ", ".join(APP_FACTORIES))
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache.default()
    if args.clear:
        print(f"removed {cache.clear()} cached result(s) from {cache.directory}")
        return 0
    entries = list(cache.directory.glob("*.pkl")) if cache.directory.is_dir() else []
    size = sum(p.stat().st_size for p in entries)
    print(f"cache directory: {cache.directory}")
    print(f"entries: {len(entries)} ({size / 1024:.1f} KiB)")
    return 0


def _jobs_count(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"jobs must be >= 0, got {value}")
    return value


def _add_parallel_flags(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--jobs",
        type=_jobs_count,
        default=1,
        help="worker processes for independent runs (0 = one per CPU, default 1)",
    )
    sub.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the on-disk result cache",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="z-machine overhead benchmarking of shared-memory systems "
        "(ICPP 1995 reproduction)",
    )
    parser.add_argument("--nprocs", type=int, default=16, help="processor count (default 16)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_study = sub.add_parser("study", help="run an overhead study")
    p_study.add_argument("--app", default="all", help="application name or 'all'")
    p_study.add_argument("--systems", nargs="*", help="memory systems (default: paper's five)")
    p_study.add_argument("--format", choices=("text", "csv", "json"), default="text")
    _add_parallel_flags(p_study)
    p_study.set_defaults(func=cmd_study)

    p_t1 = sub.add_parser("table1", help="regenerate Table 1 (z-machine)")
    p_t1.add_argument("--app", default="all")
    p_t1.add_argument("--format", choices=("text", "csv"), default="text")
    _add_parallel_flags(p_t1)
    p_t1.set_defaults(func=cmd_table1)

    p_f1 = sub.add_parser("fig1", help="Figure 1 scenario across systems")
    _add_parallel_flags(p_f1)
    p_f1.set_defaults(func=cmd_fig1)

    p_claims = sub.add_parser("claims", help="evaluate the paper's qualitative claims")
    p_claims.add_argument("--app", default="all")
    _add_parallel_flags(p_claims)
    p_claims.set_defaults(func=cmd_claims)

    p_bench = sub.add_parser(
        "bench", help="serial vs parallel vs cached timing of the full study set"
    )
    p_bench.add_argument("--scale", choices=SCALES, default="default")
    p_bench.add_argument(
        "--jobs", type=_jobs_count, default=0, help="worker processes (0 = one per CPU, default)"
    )
    p_bench.add_argument("--out", default=BENCH_FILE, help=f"output path (default {BENCH_FILE})")
    p_bench.set_defaults(func=cmd_bench)

    p_check = sub.add_parser(
        "check",
        help="happens-before race detection + protocol invariant checking",
    )
    p_check.add_argument("--app", default="all", help="application name, 'RacyDemo' or 'all'")
    p_check.add_argument(
        "--all", action="store_true", help="check every preset app on every memory system"
    )
    p_check.add_argument("--systems", nargs="*", help="memory systems (default: all six)")
    p_check.add_argument("--scale", choices=SCALES, default="smoke")
    p_check.add_argument(
        "--max-events",
        type=int,
        default=500_000,
        help="trace ring size per run (default 500000)",
    )
    p_check.add_argument(
        "--bench-out",
        default=None,
        help=f"write a checker timing trajectory (e.g. {CHECK_BENCH_FILE})",
    )
    _add_parallel_flags(p_check)
    p_check.set_defaults(func=cmd_check)

    p_sys = sub.add_parser("systems", help="list systems and applications")
    p_sys.set_defaults(func=cmd_systems)

    p_cache = sub.add_parser("cache", help="show or clear the on-disk result cache")
    p_cache.add_argument("--clear", action="store_true", help="delete every cached result")
    p_cache.set_defaults(func=cmd_cache)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
