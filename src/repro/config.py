"""Machine and study configuration.

All timing parameters are expressed in CPU cycles.  The defaults follow
Section 5 of the paper: a 16-node CC-NUMA machine, a 2-D mesh with a link
latency of 1.6 CPU cycles per byte, 32-byte cache blocks (4 bytes on the
z-machine), a 4-entry store buffer and a one-line merge buffer, and
infinite caches.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from .scenarios.inject import Degradation


def _mesh_dims(nprocs: int) -> tuple[int, int]:
    """Pick the most square (rows, cols) factorisation of ``nprocs``."""
    if nprocs <= 0:
        raise ValueError(f"nprocs must be positive, got {nprocs}")
    best = (1, nprocs)
    for rows in range(1, int(math.isqrt(nprocs)) + 1):
        if nprocs % rows == 0:
            best = (rows, nprocs // rows)
    return best


@dataclass(frozen=True)
class MachineConfig:
    """Parameters of the simulated CC-NUMA machine.

    Attributes mirror the hardware model of the paper (Section 4/5).
    Instances are immutable; derive variants with :meth:`replace`.
    """

    nprocs: int = 16
    #: Cache block size in bytes for the real memory systems.
    line_size: int = 32
    #: Cache block size used by the z-machine (one word, so only true
    #: sharing generates communication).
    z_line_size: int = 4
    #: Link serialisation cost: CPU cycles per byte.
    cycles_per_byte: float = 1.6
    #: Per-hop router/switch delay in cycles (cut-through head latency).
    router_delay: float = 2.0
    #: Bytes of header/control information per network message.
    header_bytes: int = 8
    #: Cycles for a directory/memory module access at the home node.
    mem_access_cycles: float = 10.0
    #: Cycles for a cache hit (charged as busy time, not stall).
    cache_hit_cycles: float = 1.0
    #: Store (write) buffer depth in entries.
    store_buffer_entries: int = 4
    #: Merge buffer capacity in cache lines (update-based systems).
    merge_buffer_lines: int = 1
    #: Data cache capacity in lines; ``None`` means infinite (paper default).
    cache_lines: int | None = None
    #: Self-invalidation threshold for the competitive-update protocol.
    competitive_threshold: int = 4
    #: Payload bytes of a synchronisation request/grant message.
    sync_bytes: int = 8
    #: Bytes per shared-memory word.
    word_size: int = 4
    #: Sequential-prefetch depth for the optional prefetching extension
    #: (0 disables prefetch; paper Section 6 suggests prefetching as a
    #: latency-tolerance option).
    prefetch_depth: int = 0
    #: Interconnect topology: "mesh" (paper default), "torus", "ring" or
    #: "hypercube" (the SPASM kernel offered a choice of topologies).
    topology: str = "mesh"
    #: Fault/degradation injection spec (``None`` = the homogeneous
    #: ideal machine).  See :mod:`repro.scenarios.inject`; factors of
    #: exactly 1.0 reproduce the undegraded machine bit-identically.
    degradation: Degradation | None = None

    def __post_init__(self) -> None:
        if self.nprocs < 1:
            raise ValueError(f"nprocs must be >= 1, got {self.nprocs}")
        if self.line_size % self.word_size:
            raise ValueError(
                f"line_size ({self.line_size}) must be a multiple of the "
                f"word size ({self.word_size})"
            )
        if self.z_line_size % self.word_size:
            raise ValueError(
                f"z_line_size ({self.z_line_size}) must be a multiple of "
                f"the word size ({self.word_size})"
            )
        if self.store_buffer_entries < 1:
            raise ValueError("store_buffer_entries must be >= 1")
        if self.merge_buffer_lines < 1:
            raise ValueError("merge_buffer_lines must be >= 1")
        if self.cache_lines is not None and self.cache_lines < 1:
            raise ValueError("cache_lines must be >= 1 or None")
        if self.competitive_threshold < 1:
            raise ValueError("competitive_threshold must be >= 1")
        if self.cycles_per_byte <= 0:
            raise ValueError("cycles_per_byte must be positive")
        if self.topology not in ("mesh", "torus", "ring", "hypercube"):
            raise ValueError(
                f"unknown topology {self.topology!r}; choose mesh, torus, "
                "ring or hypercube"
            )
        if self.topology == "hypercube" and self.nprocs & (self.nprocs - 1):
            raise ValueError("hypercube topology needs a power-of-two nprocs")
        if self.degradation is not None:
            self.degradation.validate_for(self.nprocs)

    @property
    def mesh_dims(self) -> tuple[int, int]:
        """(rows, cols) of the 2-D mesh."""
        return _mesh_dims(self.nprocs)

    @property
    def words_per_line(self) -> int:
        return self.line_size // self.word_size

    def replace(self, **changes: object) -> MachineConfig:
        """Return a copy with the given fields changed."""
        return dataclasses.replace(self, **changes)

    def home_node(self, block: int) -> int:
        """Home node of a memory block (low-order interleaving)."""
        return block % self.nprocs

    def block_of(self, addr: int, line_size: int | None = None) -> int:
        """Block number containing byte address ``addr``."""
        return addr // (line_size if line_size is not None else self.line_size)


DEFAULT_CONFIG = MachineConfig()
