"""Abstract interconnect interface and traffic statistics."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class NetStats:
    """Aggregate traffic counters for one simulation run."""

    messages: int = 0
    bytes: int = 0
    #: Sum over messages of (arrival - injection): total latency cycles.
    latency_cycles: float = 0.0
    #: Sum over messages of pure serialisation time: link-busy cycles.
    busy_cycles: float = 0.0
    #: Sum over messages of time spent queued behind other traffic.
    contention_cycles: float = 0.0

    def record(self, nbytes: int, latency: float, serialisation: float, queued: float) -> None:
        self.messages += 1
        self.bytes += nbytes
        self.latency_cycles += latency
        self.busy_cycles += serialisation
        self.contention_cycles += queued

    def snapshot(self) -> dict[str, float]:
        """Point-in-time copy of every counter (interval metrics deltas)."""
        return {
            "messages": self.messages,
            "bytes": self.bytes,
            "latency_cycles": self.latency_cycles,
            "busy_cycles": self.busy_cycles,
            "contention_cycles": self.contention_cycles,
        }


class Network:
    """A point-to-point interconnect with reservation-based timing.

    ``transfer`` injects one message and returns its arrival time at the
    destination.  Implementations may model contention by remembering
    per-link reservations; the z-machine uses a contention-free instance.
    """

    def __init__(self) -> None:
        self.stats = NetStats()

    def transfer(self, src: int, dst: int, nbytes: int, start: float) -> float:
        raise NotImplementedError

    def multicast(
        self, src: int, dsts: list[int], nbytes: int, start: float
    ) -> dict[int, float]:
        """Send the same payload to several destinations.

        Modelled as serialised unicasts out of the source node (the
        source's injection port can hold one message at a time), which is
        how update fan-out was costed in contemporaneous studies.
        Returns per-destination arrival times.
        """
        arrivals: dict[int, float] = {}
        inject = start
        for dst in dsts:
            arrivals[dst] = self.transfer(src, dst, nbytes, inject)
            inject += self.serialisation_time(nbytes)
        return arrivals

    def fanout(
        self, src: int, dsts: list[int], nbytes: int, start: float,
        on_arrival=None,
    ) -> tuple[dict[int, float], float]:
        """Serialised multicast plus a zero-byte ack from each destination.

        Equivalent to :meth:`multicast` followed by, per destination in
        order, ``on_arrival(dst, arrival)`` (when given) and then
        ``transfer(dst, src, 0, arrival)`` — the same link-reservation
        sequence as the unfused helpers, fused because the coherence
        fan-outs (invalidate + ack, update + ack) are the dominant
        transfer pattern.  ``on_arrival`` runs *before* the ack is routed
        because delivery side effects may inject traffic of their own
        (e.g. a competitive-update replacement hint).  Returns
        ``(arrivals, ack_done)`` where ``ack_done`` is the latest ack
        arrival at ``src`` (``start`` if ``dsts`` is empty).
        """
        arrivals = self.multicast(src, dsts, nbytes, start)
        ack_done = start
        for dst, arr in arrivals.items():
            if on_arrival is not None:
                on_arrival(dst, arr)
            ack = self.transfer(dst, src, 0, arr)
            if ack > ack_done:
                ack_done = ack
        return arrivals, ack_done

    def serialisation_time(self, nbytes: int) -> float:
        """Cycles to put ``nbytes`` (plus header) onto a link."""
        raise NotImplementedError

    def reset_stats(self) -> None:
        self.stats = NetStats()
