"""Routed interconnect with per-link contention.

Messages are timed with a cut-through (wormhole-like) model: the head of
the message pays a router delay per hop, the tail follows after the
serialisation time, and each directed link can carry one message at a
time.  A message arriving at a busy link queues until the link frees.

Reservations are made at injection time: the contention a message sees is
the link state at the moment its transaction is issued.  This is the
standard fast-simulation trade-off (see DESIGN.md).
"""

from __future__ import annotations

from .base import Network
from .topology import Topology


class RoutedNetwork(Network):
    """Topology-routed network with link reservation contention."""

    def __init__(
        self,
        topology: Topology,
        cycles_per_byte: float,
        header_bytes: int = 8,
        router_delay: float = 2.0,
    ):
        super().__init__()
        if cycles_per_byte <= 0:
            raise ValueError("cycles_per_byte must be positive")
        self.topology = topology
        self.cycles_per_byte = cycles_per_byte
        self.header_bytes = header_bytes
        self.router_delay = router_delay
        #: Directed link -> dense integer id; reservations live in the
        #: list below so the per-hop bookkeeping is a list index instead
        #: of a tuple-keyed dict probe.
        self._link_ids: dict[tuple[int, int], int] = {}
        self._link_free: list[float] = []
        #: ``src << 20 | dst`` -> precomputed route as link-id tuple.
        #: Topologies are static and deterministic, yet route() rebuilds
        #: the hop list per message — ~15% of a protocol-bound run's
        #: profile before caching.
        self._routes: dict[int, tuple[int, ...]] = {}
        #: Link degradation (see :meth:`degrade_link`).  ``_slow_pairs``
        #: maps a *directed* link to its (latency, bandwidth) factors;
        #: ``_lat_f`` / ``_bw_f`` are the per-link-id tables the degraded
        #: transfer path indexes.  ``_degraded`` stays False until
        #: ``degrade_link`` is called, so the undegraded hot paths cost
        #: one boolean check and nothing else.
        self._slow_pairs: dict[tuple[int, int], tuple[float, float]] = {}
        self._lat_f: list[float] = []
        self._bw_f: list[float] = []
        self._degraded = False

    def serialisation_time(self, nbytes: int) -> float:
        return (nbytes + self.header_bytes) * self.cycles_per_byte

    def _route(self, src: int, dst: int) -> tuple[int, ...]:
        link_ids = self._link_ids
        ids = []
        for link in self.topology.route(src, dst):
            lid = link_ids.get(link)
            if lid is None:
                lid = len(self._link_free)
                link_ids[link] = lid
                self._link_free.append(0.0)
                lat_f, bw_f = self._slow_pairs.get(link, (1.0, 1.0))
                self._lat_f.append(lat_f)
                self._bw_f.append(bw_f)
            ids.append(lid)
        route = tuple(ids)
        self._routes[src << 20 | dst] = route
        return route

    def degrade_link(
        self, u: int, v: int, latency_factor: float = 1.0,
        bandwidth_factor: float = 1.0,
    ) -> None:
        """Degrade the *undirected* physical link ``(u, v)``.

        ``latency_factor`` scales the per-hop router delay on the link,
        ``bandwidth_factor`` scales its serialisation occupancy (a slower
        wire holds the link longer, so downstream traffic queues more).
        Both directions are affected.  Factors of exactly 1.0 are
        bit-identical to the undegraded link (IEEE-754 multiplication by
        1.0 is an identity), which the neutrality tests rely on.
        """
        if not latency_factor > 0.0 or not bandwidth_factor > 0.0:
            raise ValueError("link degradation factors must be positive")
        links = self.topology.links()
        if (u, v) not in links and (v, u) not in links:
            raise ValueError(
                f"({u}, {v}) is not a physical link of this topology"
            )
        for pair in ((u, v), (v, u)):
            self._slow_pairs[pair] = (latency_factor, bandwidth_factor)
            lid = self._link_ids.get(pair)
            if lid is not None:
                self._lat_f[lid] = latency_factor
                self._bw_f[lid] = bandwidth_factor
        self._degraded = True

    def transfer(self, src: int, dst: int, nbytes: int, start: float) -> float:
        if self._degraded:
            return self._transfer_degraded(src, dst, nbytes, start)
        stats = self.stats
        if src == dst:
            # Local delivery: no network traversal.
            stats.messages += 1
            stats.bytes += nbytes
            return start
        ser = (nbytes + self.header_bytes) * self.cycles_per_byte
        router_delay = self.router_delay
        head = start
        queued = 0.0
        route = self._routes.get(src << 20 | dst)
        if route is None:
            route = self._route(src, dst)
        link_free = self._link_free
        for lid in route:
            free_at = link_free[lid]
            depart = free_at if free_at > head else head
            queued += depart - head
            link_free[lid] = depart + ser
            head = depart + router_delay
        arrival = head + ser
        stats.messages += 1
        stats.bytes += nbytes
        stats.latency_cycles += arrival - start
        stats.busy_cycles += ser
        stats.contention_cycles += queued
        return arrival

    def _transfer_degraded(self, src: int, dst: int, nbytes: int, start: float) -> float:
        # transfer() with per-link factors applied: each hop's router
        # delay is scaled by the link's latency factor and its occupancy
        # (serialisation reservation) by the bandwidth factor; the tail
        # trails the head by the *last* link's occupancy.  With all
        # factors 1.0 every multiply is an exact identity, so this path
        # is bit-identical to the fast one.
        stats = self.stats
        if src == dst:
            stats.messages += 1
            stats.bytes += nbytes
            return start
        ser = (nbytes + self.header_bytes) * self.cycles_per_byte
        router_delay = self.router_delay
        head = start
        queued = 0.0
        route = self._routes.get(src << 20 | dst)
        if route is None:
            route = self._route(src, dst)
        link_free = self._link_free
        lat_f = self._lat_f
        bw_f = self._bw_f
        occ = ser
        for lid in route:
            occ = ser * bw_f[lid]
            free_at = link_free[lid]
            depart = free_at if free_at > head else head
            queued += depart - head
            link_free[lid] = depart + occ
            head = depart + router_delay * lat_f[lid]
        arrival = head + occ
        stats.messages += 1
        stats.bytes += nbytes
        stats.latency_cycles += arrival - start
        stats.busy_cycles += ser
        stats.contention_cycles += queued
        return arrival

    def fanout(
        self, src: int, dsts: list[int], nbytes: int, start: float,
        on_arrival=None,
    ) -> tuple[dict[int, float], float]:
        # Hand-fused Network.fanout: one frame for the whole multicast +
        # ack exchange, with routes/links/stats hoisted to locals.  The
        # link reservations and the per-message stats updates happen in
        # exactly the order of the generic version (all data messages,
        # then per destination: on_arrival, then its ack), so timing and
        # float-summed counters are bit-identical.  on_arrival may inject
        # traffic itself; that is safe because the hoisted link/stats
        # containers are the same mutable objects transfer() uses.
        if self._degraded:
            # The generic helper routes everything through transfer(),
            # which applies the per-link factors; it is documented above
            # to be bit-identical to this fused loop.
            return Network.fanout(self, src, dsts, nbytes, start, on_arrival)
        stats = self.stats
        routes = self._routes
        link_free = self._link_free
        router_delay = self.router_delay
        cpb = self.cycles_per_byte
        hdr = self.header_bytes
        ser = (nbytes + hdr) * cpb
        ack_ser = hdr * cpb
        arrivals: dict[int, float] = {}
        inject = start
        for dst in dsts:
            if dst == src:
                stats.messages += 1
                stats.bytes += nbytes
                arrivals[dst] = inject
            else:
                head = inject
                queued = 0.0
                route = routes.get(src << 20 | dst)
                if route is None:
                    route = self._route(src, dst)
                for lid in route:
                    free_at = link_free[lid]
                    depart = free_at if free_at > head else head
                    queued += depart - head
                    link_free[lid] = depart + ser
                    head = depart + router_delay
                arrival = head + ser
                stats.messages += 1
                stats.bytes += nbytes
                stats.latency_cycles += arrival - inject
                stats.busy_cycles += ser
                stats.contention_cycles += queued
                arrivals[dst] = arrival
            inject += ser
        ack_done = start
        for dst, arr in arrivals.items():
            if on_arrival is not None:
                on_arrival(dst, arr)
            if dst == src:
                stats.messages += 1
                ack = arr
            else:
                head = arr
                queued = 0.0
                route = routes.get(dst << 20 | src)
                if route is None:
                    route = self._route(dst, src)
                for lid in route:
                    free_at = link_free[lid]
                    depart = free_at if free_at > head else head
                    queued += depart - head
                    link_free[lid] = depart + ack_ser
                    head = depart + router_delay
                ack = head + ack_ser
                stats.messages += 1
                stats.latency_cycles += ack - arr
                stats.busy_cycles += ack_ser
                stats.contention_cycles += queued
            if ack > ack_done:
                ack_done = ack
        return arrivals, ack_done

    def min_latency(self, src: int, dst: int, nbytes: int) -> float:
        """Zero-load latency between two nodes (useful for tests)."""
        if src == dst:
            return 0.0
        hops = self.topology.hops(src, dst)
        return hops * self.router_delay + self.serialisation_time(nbytes)

    def multicast(
        self, src: int, dsts: list[int], nbytes: int, start: float
    ) -> dict[int, float]:
        # Same serialised-unicast model as Network.multicast with the
        # serialisation time hoisted out of the fan-out loop.
        arrivals: dict[int, float] = {}
        inject = start
        ser = (nbytes + self.header_bytes) * self.cycles_per_byte
        transfer = self.transfer
        for dst in dsts:
            arrivals[dst] = transfer(src, dst, nbytes, inject)
            inject += ser
        return arrivals

    def reset(self) -> None:
        """Clear link reservations and statistics."""
        self._link_free = [0.0] * len(self._link_free)
        self.reset_stats()

    @property
    def link_utilisation(self) -> dict[tuple[int, int], float]:
        """Latest reservation horizon per link (diagnostic)."""
        free = self._link_free
        return {link: free[lid] for link, lid in self._link_ids.items()}
