"""Routed interconnect with per-link contention.

Messages are timed with a cut-through (wormhole-like) model: the head of
the message pays a router delay per hop, the tail follows after the
serialisation time, and each directed link can carry one message at a
time.  A message arriving at a busy link queues until the link frees.

Reservations are made at injection time: the contention a message sees is
the link state at the moment its transaction is issued.  This is the
standard fast-simulation trade-off (see DESIGN.md).
"""

from __future__ import annotations

from .base import Network
from .topology import Topology


class RoutedNetwork(Network):
    """Topology-routed network with link reservation contention."""

    def __init__(
        self,
        topology: Topology,
        cycles_per_byte: float,
        header_bytes: int = 8,
        router_delay: float = 2.0,
    ):
        super().__init__()
        if cycles_per_byte <= 0:
            raise ValueError("cycles_per_byte must be positive")
        self.topology = topology
        self.cycles_per_byte = cycles_per_byte
        self.header_bytes = header_bytes
        self.router_delay = router_delay
        self._link_free: dict[tuple[int, int], float] = {}

    def serialisation_time(self, nbytes: int) -> float:
        return (nbytes + self.header_bytes) * self.cycles_per_byte

    def transfer(self, src: int, dst: int, nbytes: int, start: float) -> float:
        if src == dst:
            # Local delivery: no network traversal.
            self.stats.record(nbytes, 0.0, 0.0, 0.0)
            return start
        ser = self.serialisation_time(nbytes)
        head = start
        queued = 0.0
        link_free = self._link_free
        for link in self.topology.route(src, dst):
            free_at = link_free.get(link, 0.0)
            depart = free_at if free_at > head else head
            queued += depart - head
            link_free[link] = depart + ser
            head = depart + self.router_delay
        arrival = head + ser
        self.stats.record(nbytes, arrival - start, ser, queued)
        return arrival

    def min_latency(self, src: int, dst: int, nbytes: int) -> float:
        """Zero-load latency between two nodes (useful for tests)."""
        if src == dst:
            return 0.0
        hops = self.topology.hops(src, dst)
        return hops * self.router_delay + self.serialisation_time(nbytes)

    def reset(self) -> None:
        """Clear link reservations and statistics."""
        self._link_free.clear()
        self.reset_stats()

    @property
    def link_utilisation(self) -> dict[tuple[int, int], float]:
        """Latest reservation horizon per link (diagnostic)."""
        return dict(self._link_free)
