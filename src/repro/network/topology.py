"""Network topologies and routing.

The paper's experiments use a 2-D mesh with dimension-order routing; the
SPASM kernel offered a choice of topologies, so we provide mesh, torus,
ring and hypercube route generators.  A route is a tuple of directed
links, each link a ``(node_from, node_to)`` pair.
"""

from __future__ import annotations

from collections.abc import Iterator

Link = tuple[int, int]


class Topology:
    """Base class: maps node ids to coordinates and computes routes."""

    def __init__(self, nnodes: int):
        if nnodes < 1:
            raise ValueError("topology needs at least one node")
        self.nnodes = nnodes

    def route(self, src: int, dst: int) -> tuple[Link, ...]:
        """Directed links traversed from ``src`` to ``dst``."""
        raise NotImplementedError

    def hops(self, src: int, dst: int) -> int:
        return len(self.route(src, dst))

    def links(self) -> tuple[Link, ...]:
        """All directed links in the topology, in sorted order.

        Sorted so callers can iterate without introducing set-order
        nondeterminism into per-link state (degradation draws, sharded
        routing tables).
        """
        out: set[Link] = set()
        for s in range(self.nnodes):
            for d in range(self.nnodes):
                if s != d:
                    out.update(self.route(s, d))
        return tuple(sorted(out))

    def _check(self, src: int, dst: int) -> None:
        if not (0 <= src < self.nnodes and 0 <= dst < self.nnodes):
            raise ValueError(
                f"nodes ({src}, {dst}) out of range for {self.nnodes}-node topology"
            )


class Mesh2D(Topology):
    """2-D mesh with X-then-Y dimension-order routing (paper default)."""

    def __init__(self, rows: int, cols: int):
        if rows < 1 or cols < 1:
            raise ValueError("mesh dimensions must be positive")
        super().__init__(rows * cols)
        self.rows = rows
        self.cols = cols

    def coords(self, node: int) -> tuple[int, int]:
        return divmod(node, self.cols)

    def node_at(self, row: int, col: int) -> int:
        return row * self.cols + col

    def _walk(self, src: int, dst: int) -> Iterator[int]:
        r0, c0 = self.coords(src)
        r1, c1 = self.coords(dst)
        r, c = r0, c0
        while c != c1:
            c += 1 if c1 > c else -1
            yield self.node_at(r, c)
        while r != r1:
            r += 1 if r1 > r else -1
            yield self.node_at(r, c)

    def route(self, src: int, dst: int) -> tuple[Link, ...]:
        self._check(src, dst)
        links: list[Link] = []
        cur = src
        for nxt in self._walk(src, dst):
            links.append((cur, nxt))
            cur = nxt
        return tuple(links)


class Torus2D(Mesh2D):
    """2-D torus: dimension-order routing along the shorter wrap direction."""

    def _axis_steps(self, frm: int, to: int, size: int) -> Iterator[int]:
        fwd = (to - frm) % size
        back = (frm - to) % size
        step = 1 if fwd <= back else -1
        cur = frm
        for _ in range(min(fwd, back)):
            cur = (cur + step) % size
            yield cur

    def _walk(self, src: int, dst: int) -> Iterator[int]:
        r0, c0 = self.coords(src)
        r1, c1 = self.coords(dst)
        r = r0
        for c in self._axis_steps(c0, c1, self.cols):
            yield self.node_at(r, c)
        c = c1
        for r in self._axis_steps(r0, r1, self.rows):
            yield self.node_at(r, c)


class Ring(Topology):
    """Bidirectional ring; route along the shorter direction."""

    def route(self, src: int, dst: int) -> tuple[Link, ...]:
        self._check(src, dst)
        n = self.nnodes
        fwd = (dst - src) % n
        back = (src - dst) % n
        step = 1 if fwd <= back else -1
        links: list[Link] = []
        cur = src
        for _ in range(min(fwd, back)):
            nxt = (cur + step) % n
            links.append((cur, nxt))
            cur = nxt
        return tuple(links)


class Hypercube(Topology):
    """Binary hypercube with e-cube (ascending-dimension) routing."""

    def __init__(self, nnodes: int):
        if nnodes & (nnodes - 1):
            raise ValueError(f"hypercube size must be a power of two, got {nnodes}")
        super().__init__(nnodes)

    def route(self, src: int, dst: int) -> tuple[Link, ...]:
        self._check(src, dst)
        links: list[Link] = []
        cur = src
        diff = src ^ dst
        bit = 1
        while diff:
            if diff & 1:
                nxt = cur ^ bit
                links.append((cur, nxt))
                cur = nxt
            diff >>= 1
            bit <<= 1
        return tuple(links)


def make_topology(kind: str, nnodes: int, dims: tuple[int, int] | None = None) -> Topology:
    """Factory used by the machine configuration.

    ``kind`` is one of ``mesh``, ``torus``, ``ring``, ``hypercube``.
    """
    kind = kind.lower()
    if kind in ("mesh", "torus"):
        if dims is None:
            raise ValueError(f"{kind} topology requires dims")
        rows, cols = dims
        if rows * cols != nnodes:
            raise ValueError(f"dims {dims} do not cover {nnodes} nodes")
        return Mesh2D(rows, cols) if kind == "mesh" else Torus2D(rows, cols)
    if kind == "ring":
        return Ring(nnodes)
    if kind == "hypercube":
        return Hypercube(nnodes)
    raise ValueError(f"unknown topology kind {kind!r}")
