"""Interconnection-network substrate: topologies, routing, contention."""

from .base import NetStats, Network
from .ideal import IdealNetwork
from .routed import RoutedNetwork
from .topology import Hypercube, Mesh2D, Ring, Topology, Torus2D, make_topology

__all__ = [
    "Hypercube",
    "IdealNetwork",
    "Mesh2D",
    "NetStats",
    "Network",
    "Ring",
    "RoutedNetwork",
    "Topology",
    "Torus2D",
    "make_topology",
]
