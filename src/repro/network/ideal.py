"""Contention-free interconnect used by the z-machine.

The z-machine abstracts the communication subsystem down to a single
latency ``L`` determined only by the link speed: a datum of ``n`` bytes is
available at every consumer ``n * cycles_per_byte`` cycles after it is
produced, regardless of distance or concurrent traffic.
"""

from __future__ import annotations

from .base import Network


class IdealNetwork(Network):
    """Fixed-latency, infinite-bandwidth network (no contention)."""

    def __init__(self, cycles_per_byte: float, header_bytes: int = 0, fixed_cycles: float = 0.0):
        super().__init__()
        if cycles_per_byte < 0:
            raise ValueError("cycles_per_byte must be >= 0")
        self.cycles_per_byte = cycles_per_byte
        self.header_bytes = header_bytes
        self.fixed_cycles = fixed_cycles

    def serialisation_time(self, nbytes: int) -> float:
        return (nbytes + self.header_bytes) * self.cycles_per_byte

    def latency(self, nbytes: int) -> float:
        """The z-machine's ``L`` for an ``nbytes`` datum."""
        return self.fixed_cycles + self.serialisation_time(nbytes)

    def transfer(self, src: int, dst: int, nbytes: int, start: float) -> float:
        lat = 0.0 if src == dst else self.latency(nbytes)
        self.stats.record(nbytes, lat, lat, 0.0)
        return start + lat

    def multicast(self, src: int, dsts: list[int], nbytes: int, start: float) -> dict[int, float]:
        # An ideal network does not serialise fan-out: every consumer sees
        # the datum after the same latency L (paper Section 2.2).
        return {dst: self.transfer(src, dst, nbytes, start) for dst in dsts}
