"""Memory-hierarchy substrate: caches, directory, buffers, systems."""

from .buffers import MergeBuffer, MergeEntry, StoreBuffer
from .cache import OWNED, SHARED, Cache, CacheLine
from .directory import NORMAL, SPECIAL, DirEntry, Directory
from .systems import (
    PAPER_SYSTEMS,
    SYSTEM_REGISTRY,
    BaseMemorySystem,
    RCAdapt,
    RCComp,
    RCInv,
    RCUpd,
    SCInv,
    ZMachine,
    default_network,
    make_system,
)

__all__ = [
    "BaseMemorySystem",
    "Cache",
    "CacheLine",
    "DirEntry",
    "Directory",
    "MergeBuffer",
    "MergeEntry",
    "NORMAL",
    "OWNED",
    "PAPER_SYSTEMS",
    "RCAdapt",
    "RCComp",
    "RCInv",
    "RCUpd",
    "SCInv",
    "SHARED",
    "SPECIAL",
    "StoreBuffer",
    "SYSTEM_REGISTRY",
    "ZMachine",
    "default_network",
    "make_system",
]
