"""Full-map directory.

Each memory block has a home node (low-order interleaving of the block
number) holding a full presence bitmask, an optional dirty owner, and the
protocol-specific fields: the z-machine's propagation deadline and the
adaptive protocol's sharing-pattern mode.
"""

from __future__ import annotations

#: Adaptive-protocol directory modes (paper Section 4, RCadapt).
NORMAL = 0
#: A selective-write has established a sharing pattern for this block.
SPECIAL = 1


class DirEntry:  # lint: hot
    """Directory state for one memory block."""

    __slots__ = ("sharers", "owner", "mode", "avail_time", "last_writer", "write_count")

    def __init__(self) -> None:
        #: Bitmask of processors holding a copy.
        self.sharers = 0
        #: Processor holding the block dirty (invalidate protocols).
        self.owner: int | None = None
        #: NORMAL or SPECIAL (adaptive protocol).
        self.mode = NORMAL
        #: z-machine: time by which all outstanding writes have propagated.
        self.avail_time = 0.0
        #: z-machine: the processor whose write is the freshest.
        self.last_writer: int | None = None
        #: Number of shared writes to this block (Table 1 accounting).
        self.write_count = 0

    # -- presence-bit helpers ------------------------------------------
    def add_sharer(self, proc: int) -> None:
        self.sharers |= 1 << proc

    def remove_sharer(self, proc: int) -> None:
        self.sharers &= ~(1 << proc)

    def is_sharer(self, proc: int) -> bool:
        return bool(self.sharers >> proc & 1)

    def sharer_list(self, exclude: int | None = None) -> list[int]:
        out = []
        bits = self.sharers
        proc = 0
        while bits:
            if bits & 1 and proc != exclude:
                out.append(proc)
            bits >>= 1
            proc += 1
        return out

    def num_sharers(self) -> int:
        return self.sharers.bit_count()

    def clear(self) -> None:
        self.sharers = 0
        self.owner = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DirEntry(sharers={self.sharers:b}, owner={self.owner}, "
            f"mode={self.mode})"
        )


class Directory:  # lint: hot
    """block -> DirEntry map, created on demand."""

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: dict[int, DirEntry] = {}

    def entry(self, block: int) -> DirEntry:
        e = self._entries.get(block)
        if e is None:
            e = DirEntry()
            self._entries[block] = e
        return e

    def peek(self, block: int) -> DirEntry | None:
        return self._entries.get(block)

    def __len__(self) -> int:
        return len(self._entries)

    def blocks(self) -> list[int]:
        return list(self._entries)

    def blocks_by_home(self, home_of, nnodes: int) -> list[int]:
        """Directory population per home node (attribution context).

        ``home_of`` is the memory system's block->node mapping; the
        result counts how many blocks each node is home for, so an
        attribution report can show whether a hot home node is hot
        because it homes many blocks or few contended ones.
        """
        counts = [0] * nnodes
        for block in self._entries:
            counts[home_of(block)] += 1
        return counts

    def total_writes(self) -> int:
        return sum(e.write_count for e in self._entries.values())
