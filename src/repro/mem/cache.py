"""Per-processor cache model.

The paper's experiments assume infinite caches so that the only
communication beyond the z-machine's is due to the coherence protocol;
finite (LRU) capacity is supported for the Section-7 "effect of finite
caches" extension.

Invalidations are *timestamped*: a remote write schedules the
invalidation message's arrival time on the victim line, and the victim
processor applies it lazily the next time it touches the line.  Because
the engine issues operations in global simulated-time order, lazy
application is equivalent to eager delivery.
"""

from __future__ import annotations

#: Cache line states (Berkeley-style protocol collapses to these two for
#: timing purposes; INVALID is represented by absence / expired line).
SHARED = 1
OWNED = 2

_STATE_NAMES = {SHARED: "SHARED", OWNED: "OWNED"}


class CacheLine:  # lint: hot
    """One cached block.

    ``inval_at`` — absolute time at which a pending invalidation arrives
    (``None`` if no invalidation is in flight).
    ``ready_at`` — time the data actually arrives (used by prefetching;
    a hit on an in-flight line stalls until then).
    ``updates_since_read`` — updates received since the last local read
    (competitive-update protocol bookkeeping).
    """

    __slots__ = ("state", "inval_at", "ready_at", "updates_since_read")

    def __init__(self, state: int, ready_at: float = 0.0):
        self.state = state
        self.inval_at: float | None = None
        self.ready_at = ready_at
        self.updates_since_read = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CacheLine({_STATE_NAMES.get(self.state, self.state)}, "
            f"inval_at={self.inval_at}, ready_at={self.ready_at})"
        )


class Cache:  # lint: hot
    """A single processor's cache: block -> CacheLine, optional LRU bound."""

    __slots__ = ("capacity", "_lines", "evictions")

    def __init__(self, capacity_lines: int | None = None):
        if capacity_lines is not None and capacity_lines < 1:
            raise ValueError("capacity_lines must be >= 1 or None")
        self.capacity = capacity_lines
        self._lines: dict[int, CacheLine] = {}
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._lines)

    def __contains__(self, block: int) -> bool:
        return block in self._lines

    def lookup(self, block: int, now: float) -> CacheLine | None:
        """Return the valid line for ``block`` at time ``now``, else None.

        Applies any pending invalidation whose arrival time has passed,
        and refreshes LRU recency on a hit.

        The hot read paths of the memory systems (``rcinv``/``rcupd``/
        ``rcadapt``) inline this exact sequence against ``_lines``
        directly — keep them in lockstep with any change here.
        """
        line = self._lines.get(block)
        if line is None:
            return None
        if line.inval_at is not None and now >= line.inval_at:
            del self._lines[block]
            return None
        if self.capacity is not None:
            # dict preserves insertion order; re-insert to mark recency.
            del self._lines[block]
            self._lines[block] = line
        return line

    def peek(self, block: int) -> CacheLine | None:
        """Return the raw line without LRU/invalidation side effects."""
        return self._lines.get(block)

    def insert(self, block: int, state: int, ready_at: float = 0.0) -> tuple[int, CacheLine] | None:
        """Install (or replace) a line; returns the evicted (block, line)
        if the capacity bound forced a replacement, else ``None``."""
        evicted = None
        if block in self._lines:
            del self._lines[block]
        elif self.capacity is not None and len(self._lines) >= self.capacity:
            victim_block = next(iter(self._lines))
            evicted = (victim_block, self._lines.pop(victim_block))
            self.evictions += 1
        self._lines[block] = CacheLine(state, ready_at)
        return evicted

    def invalidate_at(self, block: int, when: float) -> bool:
        """Schedule invalidation of ``block`` at absolute time ``when``.

        Returns True if a line was present.  If an earlier invalidation is
        already pending it wins.
        """
        line = self._lines.get(block)
        if line is None:
            return False
        if line.inval_at is None or when < line.inval_at:
            line.inval_at = when
        return True

    def drop(self, block: int) -> None:
        """Remove a line immediately (e.g. on self-invalidation)."""
        self._lines.pop(block, None)

    def blocks(self) -> list[int]:
        return list(self._lines)
