"""Store (write) buffer and merge buffer models.

Under release consistency a processor write that misses is recorded in
the store buffer and the processor continues; the entry retires when its
coherence transaction (ownership acquisition or update propagation)
completes.  The processor stalls only when the buffer is full
(*write stall*) or when it must drain the buffer at a release point
(*buffer flush*).

The update-based systems additionally place writes in a merge buffer
that coalesces writes to the same cache line before they enter the store
buffer, trading fewer messages for extra flush work at synchronisation
points (paper Section 4, RCupd).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable


class StoreBuffer:  # lint: hot
    """Fixed-depth write buffer with serial retirement.

    Entries retire one at a time (one outstanding coherence transaction),
    which matches the conservative single-ported directory interface of
    the base hardware.  ``service`` maps a transaction start time to its
    completion time.
    """

    __slots__ = (
        "capacity", "_pending", "_last_retire", "_pending_blocks",
        "total_entries", "full_stalls", "peak_depth",
    )

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("store buffer capacity must be >= 1")
        self.capacity = capacity
        self._pending: deque[float] = deque()
        self._last_retire = 0.0
        #: blocks with an un-retired entry (read forwarding / merging).
        self._pending_blocks: dict[int, int] = {}
        self.total_entries = 0
        self.full_stalls = 0
        #: Highest simultaneous occupancy ever observed (telemetry).
        self.peak_depth = 0

    def drain_completed(self, now: float) -> None:
        pending = self._pending
        while pending and pending[0] <= now:
            pending.popleft()

    def occupancy(self, now: float) -> int:
        self.drain_completed(now)
        return len(self._pending)

    def has_pending(self, block: int) -> bool:
        return self._pending_blocks.get(block, 0) > 0

    def push(
        self,
        now: float,
        service: Callable[[float], float],
        block: int | None = None,
    ) -> tuple[float, float]:
        """Enqueue one entry at time ``now``.

        Returns ``(proceed_time, write_stall)``: the processor may
        continue at ``proceed_time`` having stalled ``write_stall``
        cycles waiting for a free slot.
        """
        self.drain_completed(now)
        proceed = now
        stall = 0.0
        if len(self._pending) >= self.capacity:
            oldest = self._pending.popleft()
            stall = oldest - now
            proceed = oldest
            self.full_stalls += 1
        start = max(proceed, self._last_retire)
        retire = service(start)
        if retire < start:
            raise ValueError("service returned completion before start")
        self._pending.append(retire)
        self._last_retire = retire
        self.total_entries += 1
        if len(self._pending) > self.peak_depth:
            self.peak_depth = len(self._pending)
        if block is not None:
            self._pending_blocks[block] = self._pending_blocks.get(block, 0) + 1
            # Forget forwarding info once everything up to this entry has
            # retired; cheap approximation: prune lazily.
            self._prune_blocks(retire)
        return proceed, stall

    def _prune_blocks(self, horizon: float) -> None:
        # Forwarding state is only needed while entries are in flight; we
        # clear it wholesale whenever the buffer empties.
        if not self._pending:
            self._pending_blocks.clear()

    def flush(self, now: float) -> tuple[float, float]:
        """Drain the buffer (release semantics).

        Returns ``(complete_time, buffer_flush_stall)``.
        """
        self.drain_completed(now)
        if not self._pending:
            self._pending_blocks.clear()
            return now, 0.0
        done = self._pending[-1]
        self._pending.clear()
        self._pending_blocks.clear()
        return done, done - now

    @property
    def last_retire(self) -> float:
        return self._last_retire


class MergeEntry:  # lint: hot
    """An open merge-buffer line: which words of a block are dirty."""

    __slots__ = ("block", "words", "opened_at")

    def __init__(self, block: int, word: int, now: float):
        self.block = block
        self.words = {word}
        self.opened_at = now

    @property
    def nwords(self) -> int:
        return len(self.words)


class MergeBuffer:  # lint: hot
    """Coalesces writes to the same line before they hit the network.

    Holds up to ``capacity_lines`` open lines (paper default: one cache
    block).  A write to a resident line merges for free; a write to a new
    line when full evicts the oldest open line, which must then be pushed
    into the store buffer as an update transaction.
    """

    __slots__ = ("capacity", "_open", "merged_writes", "evictions", "peak_depth")

    def __init__(self, capacity_lines: int = 1):
        if capacity_lines < 1:
            raise ValueError("merge buffer capacity must be >= 1")
        self.capacity = capacity_lines
        self._open: dict[int, MergeEntry] = {}
        self.merged_writes = 0
        self.evictions = 0
        #: Highest simultaneous open-line count ever observed (telemetry).
        self.peak_depth = 0

    def __len__(self) -> int:
        return len(self._open)

    def write(self, block: int, word: int, now: float) -> MergeEntry | None:
        """Record a write; returns an evicted entry that must be flushed,
        or ``None`` if the write merged or a slot was free."""
        entry = self._open.get(block)
        if entry is not None:
            if word in entry.words:
                self.merged_writes += 1
            entry.words.add(word)
            return None
        evicted = None
        if len(self._open) >= self.capacity:
            oldest_block = next(iter(self._open))
            evicted = self._open.pop(oldest_block)
            self.evictions += 1
        self._open[block] = MergeEntry(block, word, now)
        if len(self._open) > self.peak_depth:
            self.peak_depth = len(self._open)
        return evicted

    def flush_all(self) -> list[MergeEntry]:
        """Empty the buffer, returning every open line (release point)."""
        entries = list(self._open.values())
        self._open.clear()
        return entries

    def extract(self, block: int) -> MergeEntry | None:
        """Remove and return the open line for ``block``, if any."""
        return self._open.pop(block, None)

    def has(self, block: int) -> bool:
        return block in self._open
