"""SCinv: sequentially consistent write-invalidate baseline.

Not one of the paper's four RC systems, but the conventional frame of
reference the paper argues against benchmarking with ("in most memory
systems studies, a sequentially consistent invalidation-based protocol
is used as the frame of reference").  Included so studies can show both
reference points.  Under SC a write stalls the processor until ownership
is granted, so all write latency appears as write stall and there is
nothing to flush at releases.
"""

from __future__ import annotations

from ...sim.stats import AccessResult, SyncPoint
from ..cache import OWNED, SHARED
from .base import BaseMemorySystem


class SCInv(BaseMemorySystem):
    name = "SCinv"

    def read(self, proc: int, addr: int, now: float) -> AccessResult:
        block = addr // self.line_size
        line = self.caches[proc].lookup(block, now)
        if line is not None:
            res = self._hit_result
            res.time = now + self._hit_cycles
            return res
        arrival = self._fetch_line(proc, block, now)
        self._insert_line(proc, block, SHARED, now)
        return AccessResult(
            time=arrival + self.config.cache_hit_cycles, read_stall=arrival - now
        )

    def write(self, proc: int, addr: int, now: float) -> AccessResult:
        cfg = self.config
        block = addr // self.line_size
        line = self.caches[proc].lookup(block, now)
        entry = self.directory.entry(block)
        entry.write_count += 1
        if (
            line is not None
            and line.state == OWNED
            and entry.owner == proc
            and entry.sharers == 1 << proc
        ):
            return self._hit(now)
        done = self._ownership_transaction(proc, block, now, pipelined=False)
        return AccessResult(
            time=done + cfg.cache_hit_cycles, write_stall=done - now
        )

    def release(self, proc: int, now: float, sync: SyncPoint | None = None) -> AccessResult:
        # Writes already completed in program order: nothing to drain.
        res = self._sync_result
        res.time = now
        return res
