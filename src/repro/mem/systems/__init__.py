"""Memory-system models: the z-machine and the four RC systems (+SC)."""

from __future__ import annotations

from ...config import MachineConfig
from ...network.base import Network
from ...network.ideal import IdealNetwork
from ...network.routed import RoutedNetwork
from .base import BaseMemorySystem
from .rcadapt import RCAdapt
from .rccomp import RCComp
from .rcinv import RCInv
from .rcupd import RCUpd
from .sc import SCInv
from ...network.topology import make_topology
from .zmachine import ZMachine

#: Registry of constructible memory systems by canonical name.
SYSTEM_REGISTRY = {
    "z-mc": ZMachine,
    "RCinv": RCInv,
    "RCupd": RCUpd,
    "RCadapt": RCAdapt,
    "RCcomp": RCComp,
    "SCinv": SCInv,
}

#: The five systems in the paper's figure order.
PAPER_SYSTEMS = ("z-mc", "RCinv", "RCupd", "RCadapt", "RCcomp")


def default_network(config: MachineConfig) -> RoutedNetwork:
    """The configured interconnect (paper default: 2-D mesh, 1.6 cyc/B)."""
    dims = config.mesh_dims if config.topology in ("mesh", "torus") else None
    topology = make_topology(config.topology, config.nprocs, dims)
    net = RoutedNetwork(
        topology,
        cycles_per_byte=config.cycles_per_byte,
        header_bytes=config.header_bytes,
        router_delay=config.router_delay,
    )
    if config.degradation is not None:
        for u, v, lat_f, bw_f in config.degradation.links:
            net.degrade_link(u, v, lat_f, bw_f)
    return net


def make_system(name: str, config: MachineConfig, network: Network | None = None):
    """Build a memory system by name with an appropriate network.

    The z-machine always rides a contention-free :class:`IdealNetwork`;
    the real systems default to the routed mesh.
    """
    try:
        cls = SYSTEM_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown memory system {name!r}; choose from {sorted(SYSTEM_REGISTRY)}"
        ) from None
    if cls is ZMachine:
        if network is not None and not isinstance(network, IdealNetwork):
            raise ValueError("the z-machine requires an IdealNetwork (contention-free)")
        return ZMachine(config, network)
    if network is None:
        network = default_network(config)
    return cls(config, network)


__all__ = [
    "BaseMemorySystem",
    "PAPER_SYSTEMS",
    "RCAdapt",
    "RCComp",
    "RCInv",
    "RCUpd",
    "SCInv",
    "SYSTEM_REGISTRY",
    "ZMachine",
    "default_network",
    "make_system",
]
