"""RCcomp: competitive-update protocol.

Identical to RCupd except that a cache self-invalidates a line that has
received ``competitive_threshold`` updates without an intervening local
read: useless updates stop flowing to that processor, cutting message
traffic — and hence write stall and buffer flush — at the cost of a read
miss if the processor does come back to the line.
"""

from __future__ import annotations

from ...config import MachineConfig
from ...network.base import Network
from .rcupd import RCUpd


class RCComp(RCUpd):
    name = "RCcomp"

    def __init__(self, config: MachineConfig, network: Network):
        super().__init__(config, network)
        self.threshold = config.competitive_threshold
        self.self_invalidations = 0

    def _deliver_update(self, victim: int, block: int, arrival: float) -> None:
        line = self.caches[victim].peek(block)
        if line is None:
            return
        line.updates_since_read += 1
        if line.updates_since_read >= self.threshold:
            # Competitive self-invalidation: drop the copy and tell the
            # home to stop sending updates (replacement-hint message).
            self.caches[victim].invalidate_at(block, arrival)
            self.directory.entry(block).remove_sharer(victim)
            self.network.transfer(victim, self.home_of(block), 0, arrival)
            self.self_invalidations += 1
