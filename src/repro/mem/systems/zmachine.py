"""The z-machine: the paper's zero-overhead base machine model.

The only communication cost is the one necessitated by the pure data
flow of the application.  The producer of a datum is an oracle that
ships the datum to its consumers immediately and continues computing;
the datum is available at every consumer after the raw link latency
``L`` (no contention, no protocol).  Reads stall only when issued less
than ``L`` after the corresponding write — that stall *is* the inherent
communication cost, and it is the only nonzero category on this model.

Implementation follows Section 3 of the paper: the oracle is simulated
by a per-block counter/deadline at the directory; a read returns only
once every outstanding write to the block has propagated.  The cache
line is one word (4 bytes) so only true sharing communicates, and
synchronisation carries no data-flow guarantees (no buffer flushing).
"""

from __future__ import annotations

from ...config import MachineConfig
from ...network.ideal import IdealNetwork
from ...sim.stats import AccessResult, SyncPoint
from ..directory import DirEntry, Directory


class ZMachine:
    """Zero-overhead machine model (paper Sections 2-3)."""

    name = "z-mc"

    def __init__(self, config: MachineConfig, network: IdealNetwork | None = None):
        self.config = config
        self.network = network if network is not None else IdealNetwork(config.cycles_per_byte)
        self.line_size = config.z_line_size
        self.directory = Directory()
        #: ``L``: propagation latency of one z-machine line.
        self.latency = self.network.latency(self.line_size)
        self._hit_cycles = config.cache_hit_cycles
        #: Flyweight for stall-free accesses (see BaseMemorySystem._hit):
        #: the oracle never stalls writes and most reads arrive after the
        #: datum propagated, so nearly every access reuses this object.
        self._ok_result = AccessResult(0.0, hit=True)
        #: Engine fast-path alias: the scheduler recognises stall-free
        #: results by identity via the ``_hit_result`` attribute.
        self._hit_result = self._ok_result
        #: Flyweight for zero-cost sync ops (``hit`` stays False so it is
        #: never confused with the access-path flyweight above).
        self._sync_result = AccessResult(0.0)
        self.shared_writes = 0
        self.shared_reads = 0
        #: Total cycles spent by data on the network (Table 1); almost all
        #: of it is hidden under computation.
        self.network_cycles = 0.0
        self.stalled_reads = 0

    # ------------------------------------------------------------------
    def block_of(self, addr: int) -> int:
        return addr // self.line_size

    def home_of(self, block: int) -> int:
        """Home node of a block (same interleaving as the real systems,
        so attribution reports stay comparable across models)."""
        return self.config.home_node(block)

    def read(self, proc: int, addr: int, now: float) -> AccessResult:
        self.shared_reads += 1
        # Inlined Directory.peek (hot path: every z-machine read).
        entry = self.directory._entries.get(addr // self.line_size)
        if entry is not None and entry.last_writer != proc and entry.avail_time > now:
            # The datum is still in flight: the read stalls until the
            # counter for this block drops to zero.  This is the inherent
            # communication cost of the application.
            avail = entry.avail_time
            self.stalled_reads += 1
            return AccessResult(
                time=avail + self._hit_cycles, read_stall=avail - now, hit=False
            )
        res = self._ok_result
        res.time = now + self._hit_cycles
        return res

    def write(self, proc: int, addr: int, now: float) -> AccessResult:
        self.shared_writes += 1
        # Inlined Directory.entry (hot path: every z-machine write).
        block = addr // self.line_size
        entries = self.directory._entries
        entry = entries.get(block)
        if entry is None:
            entry = entries[block] = DirEntry()
        entry.write_count += 1
        latency = self.latency
        avail = now + latency
        if avail > entry.avail_time:
            entry.avail_time = avail
        entry.last_writer = proc
        self.network_cycles += latency
        stats = self.network.stats
        stats.messages += 1
        stats.bytes += self.line_size
        stats.latency_cycles += latency
        stats.busy_cycles += latency
        # The producer never waits: it ships the datum and keeps computing.
        res = self._ok_result
        res.time = now + self._hit_cycles
        return res

    def acquire(self, proc: int, now: float, sync: SyncPoint | None = None) -> AccessResult:
        res = self._sync_result
        res.time = now
        return res

    def release(self, proc: int, now: float, sync: SyncPoint | None = None) -> AccessResult:
        # Synchronisation on the z-machine is pure process control: the
        # counter mechanism already guarantees consumers see produced
        # values, so there are no buffers to flush (paper Section 3).
        res = self._sync_result
        res.time = now
        return res

    def sync_note(self, proc: int, now: float, sync: SyncPoint) -> None:
        """Zero-cost notification of a flag set/wait (tracing hook)."""

    def phase_note(self, proc: int, now: float, label: str) -> None:
        """Zero-cost notification of an application phase marker."""

    def publish(self, proc: int, blocks: tuple[int, ...], now: float) -> tuple[float, float]:
        """Data-flow publication: on the z-machine the counter mechanism
        already guarantees propagation, so only report readiness."""
        ready = now
        for block in blocks:
            entry = self.directory.peek(block)
            if entry is not None and entry.avail_time > ready:
                ready = entry.avail_time
        return now, ready

    def self_invalidate(self, proc: int, blocks: tuple[int, ...], now: float) -> None:
        """No caches to invalidate on the z-machine."""

    def traffic_summary(self) -> dict[str, float]:
        return {
            "messages": self.network.stats.messages,
            "bytes": self.network.stats.bytes,
            "latency_cycles": self.network.stats.latency_cycles,
            "contention_cycles": 0.0,
            "shared_writes": self.shared_writes,
            "network_cycles": self.network_cycles,
            "stalled_reads": self.stalled_reads,
        }
