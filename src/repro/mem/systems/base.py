"""Common machinery for the directory-based memory systems.

A memory system answers, for every shared read/write/acquire/release,
*when* the operation completes and how the elapsed cycles are split into
the paper's overhead categories.  Coherence transactions are costed as
sequences of network messages plus directory/memory access cycles, with
their side effects (presence bits, timestamped invalidations, update
counters) applied at issue time.
"""

from __future__ import annotations

from ...config import MachineConfig
from ...network.base import Network
from ...sim.stats import AccessResult, SyncPoint
from ..cache import OWNED, SHARED, Cache
from ..directory import Directory


class BaseMemorySystem:
    """Shared state and transaction helpers for all protocol models."""

    #: Human-readable system name (e.g. ``RCinv``); set by subclasses.
    name = "base"

    def __init__(self, config: MachineConfig, network: Network):
        self.config = config
        self.network = network
        self.line_size = config.line_size
        self.directory = Directory()
        self.caches = [Cache(config.cache_lines) for _ in range(config.nprocs)]
        #: Precomputed per-access costs: frozen-dataclass field reads are
        #: attribute chases on the hot path, so the constant costs are
        #: copied onto the system once at construction.
        self._hit_cycles = config.cache_hit_cycles
        self._mem_access_cycles = config.mem_access_cycles
        #: Directory/memory access cost per *home node*.  Homogeneous by
        #: default; a :class:`repro.scenarios.inject.Degradation` with
        #: ``node_mem`` factors models limping/contended memory modules.
        #: A factor of exactly 1.0 leaves every cost bit-identical.
        deg = config.degradation
        if deg is not None and deg.node_mem:
            self._mem_cycles_at = [
                config.mem_access_cycles * f for f in deg.mem_factors(config.nprocs)
            ]
        else:
            self._mem_cycles_at = [config.mem_access_cycles] * config.nprocs
        #: Flyweight result reused for every stall-free hit — a hit is by
        #: far the most common outcome, and allocating a fresh
        #: AccessResult per hit dominated the access-path profile.
        #: Consumers (engine, tracers, checkers) read results before the
        #: next access on this system; the engine copies for ReadNB.
        self._hit_result = AccessResult(0.0, hit=True)
        #: Flyweight for zero-cost sync ops (acquire, SC release) under
        #: the same read-before-next-access contract.
        self._sync_result = AccessResult(0.0)
        #: Per-processor time by which all of its issued coherence
        #: fan-outs (invalidations/updates + acks) have completed.  Write
        #: buffer entries retire when the *home* acknowledges (pipelined,
        #: DASH-style); a release must additionally wait for this.
        self.fanout_done = [0.0] * config.nprocs
        # traffic / event counters
        self.read_transactions = 0
        self.write_transactions = 0
        self.invalidations_sent = 0
        self.updates_sent = 0
        self.writebacks = 0

    # ------------------------------------------------------------------
    # address mapping
    # ------------------------------------------------------------------
    def block_of(self, addr: int) -> int:
        return addr // self.line_size

    def word_of(self, addr: int) -> int:
        return (addr % self.line_size) // self.config.word_size

    def home_of(self, block: int) -> int:
        return self.config.home_node(block)

    # ------------------------------------------------------------------
    # engine interface (subclasses override read/write/release)
    # ------------------------------------------------------------------
    def read(self, proc: int, addr: int, now: float) -> AccessResult:
        raise NotImplementedError

    def write(self, proc: int, addr: int, now: float) -> AccessResult:
        raise NotImplementedError

    def acquire(self, proc: int, now: float, sync: SyncPoint | None = None) -> AccessResult:
        """Acquire semantics: nothing to do in these systems.

        ``sync`` identifies the synchronisation operation (lock id,
        barrier episode, ...); the protocol models ignore it, decorators
        such as :class:`repro.sim.trace.TracingMemory` record it.
        """
        res = self._sync_result
        res.time = now
        return res

    def release(self, proc: int, now: float, sync: SyncPoint | None = None) -> AccessResult:
        raise NotImplementedError

    def sync_note(self, proc: int, now: float, sync: SyncPoint) -> None:
        """Zero-cost notification of a flag set/wait (tracing hook)."""

    def phase_note(self, proc: int, now: float, label: str) -> None:
        """Zero-cost notification of an application phase marker."""

    # -- decoupled data-flow synchronisation (paper Section 6) ----------
    def publish(self, proc: int, blocks: tuple[int, ...], now: float) -> tuple[float, float]:
        """Issue any buffered writes to ``blocks`` without waiting.

        Returns ``(proceed_time, data_ready_time)``: when the producer
        may continue (fire-and-forget) and by when the published data is
        fetchable by consumers.  The base protocols apply write effects
        at issue time (ownership/home updates), so nothing extra is
        needed; the merge-buffered systems override this.
        """
        return now, now

    def self_invalidate(self, proc: int, blocks: tuple[int, ...], now: float) -> None:
        """Consumer-side smart self-invalidation: drop local copies of
        ``blocks`` so the next reads fetch fresh data.  Local operation,
        no network traffic; the directory's presence bit is cleared so
        update protocols stop streaming useless updates."""
        cache = self.caches[proc]
        for block in blocks:
            entry = self.directory.entry(block)
            if entry.owner == proc:
                continue  # never drop one's own dirty data
            if cache.peek(block) is not None:
                cache.drop(block)
            entry.remove_sharer(proc)

    # ------------------------------------------------------------------
    # transaction building blocks
    # ------------------------------------------------------------------
    def _hit(self, now: float) -> AccessResult:
        res = self._hit_result
        res.time = now + self._hit_cycles
        return res

    def _fetch_line(self, proc: int, block: int, now: float) -> float:
        """Read-miss transaction; returns data arrival time at ``proc``.

        proc -> home (request), home memory access; if a dirty owner
        exists the home forwards the request and the owner supplies the
        data (cache-to-cache), else the home replies from memory.
        Side effect: ``proc`` becomes a sharer.
        """
        net = self.network
        home = self.home_of(block)
        entry = self.directory.entry(block)
        t = net.transfer(proc, home, 0, now)
        t += self._mem_cycles_at[home]
        owner = entry.owner
        if owner is not None and owner != proc:
            t = net.transfer(home, owner, 0, t)
            t += self._hit_cycles
            arrival = net.transfer(owner, proc, self.line_size, t)
        else:
            arrival = net.transfer(home, proc, self.line_size, t)
        entry.add_sharer(proc)
        self.read_transactions += 1
        return arrival

    def _invalidate_sharers(
        self, block: int, requester: int, start: float, home: int
    ) -> float:
        """Send invalidations to every sharer except ``requester``.

        Returns the time at which the home has collected all acks.
        Victim caches get a timestamped invalidation at message arrival.
        """
        net = self.network
        entry = self.directory.entry(block)
        victims = entry.sharer_list(exclude=requester)
        ack_done = start
        if victims:
            caches = self.caches

            def on_arrival(victim: int, arr: float) -> None:
                caches[victim].invalidate_at(block, arr)
                entry.remove_sharer(victim)

            _, ack_done = net.fanout(home, victims, 0, start, on_arrival)
            self.invalidations_sent += len(victims)
        owner = entry.owner
        if owner is not None and owner != requester:
            # Dirty owner must also give up the block (writeback to home).
            arr = net.transfer(home, owner, 0, ack_done)
            self.caches[owner].invalidate_at(block, arr)
            wb = net.transfer(owner, home, self.line_size, arr)
            self.writebacks += 1
            if wb > ack_done:
                ack_done = wb
            entry.owner = None
            entry.remove_sharer(owner)
        return ack_done

    def _ownership_transaction(
        self, proc: int, block: int, start: float, pipelined: bool = True
    ) -> float:
        """Write-miss / upgrade: obtain exclusive ownership of ``block``.

        With ``pipelined=True`` (release consistency) the entry retires
        when the home grants ownership; invalidation acks complete in the
        background and are only awaited at release points (recorded in
        ``fanout_done``).  With ``pipelined=False`` (sequential
        consistency) the returned time includes all acks.

        Side effects: other copies invalidated, ``proc`` becomes dirty
        owner with a valid line.
        """
        net = self.network
        home = self.home_of(block)
        entry = self.directory.entry(block)
        t = net.transfer(proc, home, 0, start)
        t += self._mem_cycles_at[home]
        acks_done = self._invalidate_sharers(block, proc, t, home)
        # Grant (with data if the requester lacks the line); the home does
        # not wait for acks before granting in the pipelined mode.
        payload = 0 if self.caches[proc].peek(block) is not None else self.line_size
        grant = net.transfer(home, proc, payload, t)
        entry.owner = proc
        entry.sharers = 1 << proc
        cache = self.caches[proc]
        line = cache.peek(block)
        if line is None:
            cache.insert(block, OWNED)
        else:
            line.state = OWNED
            line.inval_at = None
        self.write_transactions += 1
        if pipelined:
            if acks_done > self.fanout_done[proc]:
                self.fanout_done[proc] = acks_done
            return grant
        return max(grant, acks_done)

    def _update_transaction(
        self, proc: int, block: int, nwords: int, start: float
    ) -> float:
        """Propagate ``nwords`` dirty words of ``block`` to all sharers.

        Writer -> home (data); the home acknowledges receipt (that ack
        retires the store-buffer entry) and multicasts the update to the
        current sharers; sharer acks complete in the background and are
        awaited at release points (``fanout_done``).
        """
        cfg = self.config
        net = self.network
        home = self.home_of(block)
        entry = self.directory.entry(block)
        payload = nwords * cfg.word_size
        t = net.transfer(proc, home, payload, start)
        t += self._mem_cycles_at[home]
        if t > entry.avail_time:
            entry.avail_time = t  # data fetchable from home from here on
        retire = net.transfer(home, proc, 0, t)
        targets = entry.sharer_list(exclude=proc)
        ack_done = t
        if targets:
            _, ack_done = net.fanout(
                home, targets, payload, t,
                lambda victim, arr: self._deliver_update(victim, block, arr),
            )
            self.updates_sent += len(targets)
        if ack_done > self.fanout_done[proc]:
            self.fanout_done[proc] = ack_done
        self.write_transactions += 1
        return retire

    def _deliver_update(self, victim: int, block: int, arrival: float) -> None:
        """Hook: an update for ``block`` arrives at ``victim``.

        The plain update protocol just refreshes the copy; the
        competitive protocol overrides this to count useless updates.
        """

    def _evict(self, proc: int, block: int, line, now: float) -> None:
        """Handle a capacity eviction from ``proc``'s cache."""
        entry = self.directory.entry(block)
        if line.state == OWNED and entry.owner == proc:
            # Writeback of the dirty line (fire-and-forget traffic).
            self.network.transfer(proc, self.home_of(block), self.line_size, now)
            self.writebacks += 1
            entry.owner = None
        else:
            # Replacement hint so the directory stops tracking us.
            self.network.transfer(proc, self.home_of(block), 0, now)
        entry.remove_sharer(proc)

    def _insert_line(
        self, proc: int, block: int, state: int, now: float, ready_at: float = 0.0
    ) -> None:
        evicted = self.caches[proc].insert(block, state, ready_at)
        if evicted is not None:
            victim_block, victim_line = evicted
            self._evict(proc, victim_block, victim_line, now)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def traffic_summary(self) -> dict[str, float]:
        s = self.network.stats
        return {
            "messages": s.messages,
            "bytes": s.bytes,
            "latency_cycles": s.latency_cycles,
            "contention_cycles": s.contention_cycles,
            "read_transactions": self.read_transactions,
            "write_transactions": self.write_transactions,
            "invalidations": self.invalidations_sent,
            "updates": self.updates_sent,
            "writebacks": self.writebacks,
        }


__all__ = ["BaseMemorySystem", "SHARED", "OWNED"]
