"""RCupd: release consistency + Firefly-style write-update protocol.

Writes coalesce in a one-line merge buffer; when a line is evicted from
the merge buffer (or flushed at a release point) an update transaction
carries the dirty words through the home to every current sharer.
Consumers therefore keep their copies (few read misses, only cold
misses) at the price of heavy update traffic: higher write stall and,
because of the merge buffer, a large buffer-flush component at
synchronisation points.
"""

from __future__ import annotations

from ...config import MachineConfig
from ...network.base import Network
from ...sim.stats import AccessResult, SyncPoint
from ..buffers import MergeBuffer, StoreBuffer
from ..cache import SHARED
from .base import BaseMemorySystem


class RCUpd(BaseMemorySystem):
    name = "RCupd"

    def __init__(self, config: MachineConfig, network: Network):
        super().__init__(config, network)
        self.store_buffers = [
            StoreBuffer(config.store_buffer_entries) for _ in range(config.nprocs)
        ]
        self.merge_buffers = [
            MergeBuffer(config.merge_buffer_lines) for _ in range(config.nprocs)
        ]

    # ------------------------------------------------------------------
    def read(self, proc: int, addr: int, now: float) -> AccessResult:
        block = addr // self.line_size
        cache = self.caches[proc]
        # Inlined Cache.lookup (see its docstring): lazy invalidation +
        # LRU refresh, without the per-read method call.
        lines = cache._lines
        line = lines.get(block)
        if line is not None:
            inval = line.inval_at
            if inval is not None and now >= inval:
                del lines[block]
            else:
                if cache.capacity is not None:
                    del lines[block]
                    lines[block] = line
                line.updates_since_read = 0
                res = self._hit_result
                res.time = now + self._hit_cycles
                return res
        if self.merge_buffers[proc].has(block) or self.store_buffers[proc].has_pending(block):
            res = self._hit_result
            res.time = now + self._hit_cycles
            return res
        arrival = self._fetch_line(proc, block, now)
        self._insert_line(proc, block, SHARED, now)
        return AccessResult(
            time=arrival + self.config.cache_hit_cycles, read_stall=arrival - now
        )

    # ------------------------------------------------------------------
    def write(self, proc: int, addr: int, now: float) -> AccessResult:
        cfg = self.config
        line_size = self.line_size
        block = addr // line_size
        word = (addr % line_size) // cfg.word_size
        entry = self.directory.entry(block)
        entry.write_count += 1
        # Write-validate: the writer keeps (or allocates) a local copy
        # without fetching; it is registered as a sharer so it receives
        # later updates from other writers.
        cache = self.caches[proc]
        if cache.lookup(block, now) is None:
            self._insert_line(proc, block, SHARED, now)
        entry.add_sharer(proc)
        evicted = self.merge_buffers[proc].write(block, word, now)
        if evicted is None:
            # Merged (or opened a fresh line): complete locally, no stall.
            res = self._hit_result
            res.time = now + self._hit_cycles
            return res
        proceed, stall = self.store_buffers[proc].push(
            now,
            lambda start: self._update_transaction(
                proc, evicted.block, evicted.nwords, start
            ),
            block=evicted.block,
        )
        return AccessResult(
            time=proceed + cfg.cache_hit_cycles, write_stall=stall, hit=stall == 0.0
        )

    # ------------------------------------------------------------------
    def publish(self, proc: int, blocks: tuple[int, ...], now: float) -> tuple[float, float]:
        """Fire-and-forget issue of the buffered writes to ``blocks``.

        Matching merge-buffer lines enter the store buffer immediately;
        the producer only waits if the store buffer is full.  Data is
        consumable once it has reached its home node (the directory's
        ``avail_time``), not when every sharer has acknowledged — that is
        the whole point of decoupling data flow from synchronisation.
        """
        proceed = now
        mb = self.merge_buffers[proc]
        for block in blocks:
            entry = mb.extract(block)
            if entry is not None:
                proceed, _ = self.store_buffers[proc].push(
                    proceed,
                    lambda start, e=entry: self._update_transaction(
                        proc, e.block, e.nwords, start
                    ),
                    block=entry.block,
                )
        ready = now
        for block in blocks:
            dir_entry = self.directory.peek(block)
            if dir_entry is not None and dir_entry.avail_time > ready:
                ready = dir_entry.avail_time
        return proceed, ready

    def release(self, proc: int, now: float, sync: SyncPoint | None = None) -> AccessResult:
        """Flush the merge buffer, drain the store buffer, and wait for
        every outstanding update fan-out to be acknowledged."""
        t = now
        for entry in self.merge_buffers[proc].flush_all():
            t, _ = self.store_buffers[proc].push(
                t,
                lambda start, e=entry: self._update_transaction(
                    proc, e.block, e.nwords, start
                ),
                block=entry.block,
            )
        done, _ = self.store_buffers[proc].flush(t)
        done = max(done, self.fanout_done[proc])
        self.fanout_done[proc] = 0.0
        return AccessResult(time=done, buffer_flush=done - now)
