"""RCinv: release consistency + Berkeley-style write-invalidate protocol.

A write that misses (or hits a non-exclusive line) is recorded in the
store buffer and the processor continues; the entry retires when
ownership is granted by the directory.  Write stall occurs only when the
buffer is full, buffer flush at release points, and read misses pay the
full remote-fetch latency (the dominant overhead for this system in the
paper).

Optionally performs sequential prefetch on read misses
(``config.prefetch_depth`` > 0), the latency-tolerance knob suggested in
the paper's Section 6.
"""

from __future__ import annotations

from ...config import MachineConfig
from ...network.base import Network
from ...sim.stats import AccessResult, SyncPoint
from ..buffers import StoreBuffer
from ..cache import OWNED, SHARED
from .base import BaseMemorySystem


class RCInv(BaseMemorySystem):
    name = "RCinv"

    def __init__(self, config: MachineConfig, network: Network):
        super().__init__(config, network)
        self.store_buffers = [
            StoreBuffer(config.store_buffer_entries) for _ in range(config.nprocs)
        ]
        self.prefetches_issued = 0

    # ------------------------------------------------------------------
    def read(self, proc: int, addr: int, now: float) -> AccessResult:
        cfg = self.config
        block = addr // self.line_size
        cache = self.caches[proc]
        # Inlined Cache.lookup (see its docstring): lazy invalidation +
        # LRU refresh, without the per-read method call.
        lines = cache._lines
        line = lines.get(block)
        if line is not None:
            inval = line.inval_at
            if inval is not None and now >= inval:
                del lines[block]
                line = None
            elif cache.capacity is not None:
                del lines[block]
                lines[block] = line
        if line is not None:
            if line.ready_at > 0.0:
                # First touch of a prefetched line: stall for whatever of
                # its latency is still unhidden, and keep the stream going.
                stall = max(0.0, line.ready_at - now)
                done = max(now, line.ready_at) + cfg.cache_hit_cycles
                line.ready_at = 0.0
                if cfg.prefetch_depth:
                    self._prefetch(proc, block, now)
                return AccessResult(time=done, read_stall=stall, hit=stall == 0.0)
            line.updates_since_read = 0
            res = self._hit_result
            res.time = now + self._hit_cycles
            return res
        if self.store_buffers[proc].has_pending(block):
            # Forward the value from the processor's own store buffer.
            res = self._hit_result
            res.time = now + self._hit_cycles
            return res
        arrival = self._fetch_line(proc, block, now)
        self._insert_line(proc, block, SHARED, now)
        if cfg.prefetch_depth:
            self._prefetch(proc, block, now)
        stall = arrival - now
        return AccessResult(time=arrival + cfg.cache_hit_cycles, read_stall=stall)

    def _prefetch(self, proc: int, block: int, now: float) -> None:
        """Fetch the next blocks of the same page non-blockingly."""
        cache = self.caches[proc]
        for i in range(1, self.config.prefetch_depth + 1):
            nxt = block + i
            if cache.peek(nxt) is not None:
                continue
            if self.store_buffers[proc].has_pending(nxt):
                continue
            arrival = self._fetch_line(proc, nxt, now)
            self._insert_line(proc, nxt, SHARED, now, ready_at=arrival)
            self.prefetches_issued += 1

    # ------------------------------------------------------------------
    def write(self, proc: int, addr: int, now: float) -> AccessResult:
        block = addr // self.line_size
        cache = self.caches[proc]
        line = cache.lookup(block, now)
        entry = self.directory.entry(block)
        entry.write_count += 1
        if (
            line is not None
            and line.state == OWNED
            and entry.owner == proc
            and entry.sharers == 1 << proc
        ):
            # Exclusive hit (dirty and no other sharer): complete locally.
            # If a reader has since fetched a copy the write must go back
            # through the directory to invalidate it.
            res = self._hit_result
            res.time = now + self._hit_cycles
            return res
        if self.store_buffers[proc].has_pending(block):
            # Ownership already being acquired for this block: coalesce.
            res = self._hit_result
            res.time = now + self._hit_cycles
            return res
        proceed, stall = self.store_buffers[proc].push(
            now,
            lambda start: self._ownership_transaction(proc, block, start),
            block=block,
        )
        return AccessResult(
            time=proceed + self._hit_cycles, write_stall=stall, hit=False
        )

    # ------------------------------------------------------------------
    def release(self, proc: int, now: float, sync: SyncPoint | None = None) -> AccessResult:
        done, _ = self.store_buffers[proc].flush(now)
        # RC: all invalidations must be acknowledged before the release
        # is performed, not just granted by the home.
        done = max(done, self.fanout_done[proc])
        self.fanout_done[proc] = 0.0
        return AccessResult(time=done, buffer_flush=done - now)
