"""RCadapt: adaptive selective-write protocol.

Every shared write is treated as a *selective-write* (the explicit
communication primitive of Ramachandran et al.): the directory keeps the
active set of sharers for the block's current phase and updates exactly
that set.  After a selective-write the block is in a SPECIAL state; a
read miss arriving at the directory for a SPECIAL block signals that the
application's sharing pattern has changed, so the directory
re-initialises — it invalidates the current sharers and starts a fresh
active set with the requester.  The protocol thereby approaches
update-protocol read stalls with invalidate-protocol write traffic when
producer/consumer relationships are stable.
"""

from __future__ import annotations

from ...config import MachineConfig
from ...network.base import Network
from ...sim.stats import AccessResult
from ..cache import SHARED
from ..directory import NORMAL, SPECIAL
from .rcupd import RCUpd


class RCAdapt(RCUpd):
    name = "RCadapt"

    def __init__(self, config: MachineConfig, network: Network):
        super().__init__(config, network)
        self.reinitialisations = 0

    # Writes behave exactly like RCupd's merge-buffered updates, except
    # that the block enters the SPECIAL state.
    def _update_transaction(self, proc: int, block: int, nwords: int, start: float) -> float:
        done = super()._update_transaction(proc, block, nwords, start)
        self.directory.entry(block).mode = SPECIAL
        return done

    # ------------------------------------------------------------------
    def read(self, proc: int, addr: int, now: float) -> AccessResult:
        block = addr // self.line_size
        cache = self.caches[proc]
        # Inlined Cache.lookup (see its docstring): lazy invalidation +
        # LRU refresh, without the per-read method call.
        lines = cache._lines
        line = lines.get(block)
        if line is not None:
            inval = line.inval_at
            if inval is not None and now >= inval:
                del lines[block]
            else:
                if cache.capacity is not None:
                    del lines[block]
                    lines[block] = line
                line.updates_since_read = 0
                res = self._hit_result
                res.time = now + self._hit_cycles
                return res
        if self.merge_buffers[proc].has(block) or self.store_buffers[proc].has_pending(block):
            res = self._hit_result
            res.time = now + self._hit_cycles
            return res
        arrival = self._adaptive_fetch(proc, block, now)
        self._insert_line(proc, block, SHARED, now)
        return AccessResult(
            time=arrival + self.config.cache_hit_cycles, read_stall=arrival - now
        )

    def _adaptive_fetch(self, proc: int, block: int, now: float) -> float:
        """Read-miss transaction with phase-change detection at the home."""
        net = self.network
        home = self.home_of(block)
        entry = self.directory.entry(block)
        t = net.transfer(proc, home, 0, now)
        t += self._mem_cycles_at[home]
        if entry.mode == SPECIAL:
            # Established sharing pattern + a new read => new phase:
            # invalidate the stale active set and re-initialise.
            t = self._invalidate_sharers(block, proc, t, home)
            entry.sharers = 0
            entry.mode = NORMAL
            self.reinitialisations += 1
        arrival = net.transfer(home, proc, self.line_size, t)
        entry.add_sharer(proc)
        self.read_transactions += 1
        return arrival
