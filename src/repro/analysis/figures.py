"""ASCII rendering of the paper's figures and tables.

Each of Figures 2-5 is a per-application bar chart: one bar per memory
system, the bar being total execution time with the three overhead
components stacked at the top and the overhead percentage printed above.
We render the same information as text: a stacked horizontal bar per
system plus the component table.
"""

from __future__ import annotations

from ..core.study import StudyResult, SystemResult
from ..core.table1 import Table1Row

_BAR_WIDTH = 56


def _bar(sys_res: SystemResult, scale: float) -> str:
    """One horizontal stacked bar: busy/sync '.', rs 'R', ws 'W', bf 'F'."""

    def w(x: float) -> int:
        return int(round(x / scale * _BAR_WIDTH)) if scale else 0

    rs = w(sys_res.read_stall)
    ws = w(sys_res.write_stall)
    bf = w(sys_res.buffer_flush)
    rest = max(0, w(sys_res.total_time) - rs - ws - bf)
    return "." * rest + "R" * rs + "W" * ws + "F" * bf


def format_figure(study: StudyResult, title: str = "") -> str:
    """Render a Figures 2-5 style chart for one application study."""
    name = title or f"{study.app_name} execution-time breakdown ({study.config.nprocs} procs)"
    scale = max(s.total_time for s in study.systems)
    lines = [name, "=" * len(name)]
    lines.append(
        f"{'system':8s} {'total':>12s} {'read stl':>10s} {'write stl':>10s} "
        f"{'buf flush':>10s} {'sync':>10s} {'ovh%':>7s}"
    )
    for s in study.systems:
        lines.append(
            f"{s.system:8s} {s.total_time:12.0f} {s.read_stall:10.0f} "
            f"{s.write_stall:10.0f} {s.buffer_flush:10.0f} {s.sync_wait:10.0f} "
            f"{s.overhead_pct:6.2f}%"
        )
    lines.append("")
    lines.append("bar: '.' busy/sync  'R' read stall  'W' write stall  'F' buffer flush")
    for s in study.systems:
        lines.append(f"{s.system:8s} |{_bar(s, scale)}| {s.overhead_pct:.2f}%")
    return "\n".join(lines)


def format_table1(rows: list[Table1Row]) -> str:
    """Render Table 1: inherent communication & observed z-machine costs."""
    lines = [
        "Table 1: inherent communication and observed costs on the z-machine",
        f"{'Application':12s} {'Writes':>10s} {'% of exec':>10s} "
        f"{'Observed (cyc)':>15s} {'Net cycles':>12s} {'Net %':>8s}",
    ]
    for r in rows:
        lines.append(
            f"{r.app:12s} {r.shared_writes:10d} {r.write_pct:9.3f}% "
            f"{r.observed_cost:15.1f} {r.network_cycles:12.1f} {r.network_pct:7.2f}%"
        )
    return "\n".join(lines)


def format_comparison(study: StudyResult) -> str:
    """One-line qualitative summary used in reports and benches."""
    z = study.zmachine
    parts = [f"{study.app_name}: z-mc ovh {z.overhead_pct:.2f}%"]
    for s in study.systems:
        if s.system == "z-mc":
            continue
        parts.append(f"{s.system} {s.overhead_pct:.1f}%")
    return " | ".join(parts)
