"""Machine-readable export of study results (CSV / JSON / dict)."""

from __future__ import annotations

import csv
import io
import json
from typing import Any

from ..core.study import StudyResult
from ..core.table1 import Table1Row

#: Column order for tabular exports.
STUDY_FIELDS = (
    "app",
    "system",
    "total_time",
    "busy",
    "read_stall",
    "write_stall",
    "buffer_flush",
    "sync_wait",
    "overhead_pct",
    "reads",
    "writes",
    "read_misses",
    "network_messages",
    "network_bytes",
)


def study_rows(study: StudyResult) -> list[dict[str, Any]]:
    """One dict per (app, system) with the STUDY_FIELDS columns."""
    rows = []
    for s in study.systems:
        rows.append(
            {
                "app": study.app_name,
                "system": s.system,
                "total_time": s.total_time,
                "busy": s.busy,
                "read_stall": s.read_stall,
                "write_stall": s.write_stall,
                "buffer_flush": s.buffer_flush,
                "sync_wait": s.sync_wait,
                "overhead_pct": s.overhead_pct,
                "reads": s.reads,
                "writes": s.writes,
                "read_misses": s.read_misses,
                "network_messages": s.network_messages,
                "network_bytes": s.network_bytes,
            }
        )
    return rows


def studies_to_csv(studies: list[StudyResult]) -> str:
    """Render one or more studies as CSV text."""
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=STUDY_FIELDS, lineterminator="\n")
    writer.writeheader()
    for study in studies:
        for row in study_rows(study):
            writer.writerow(row)
    return buf.getvalue()


def studies_to_json(studies: list[StudyResult], indent: int | None = 2) -> str:
    """Render studies (plus machine config) as a JSON document."""
    doc = []
    for study in studies:
        doc.append(
            {
                "app": study.app_name,
                "config": {
                    "nprocs": study.config.nprocs,
                    "line_size": study.config.line_size,
                    "cycles_per_byte": study.config.cycles_per_byte,
                    "store_buffer_entries": study.config.store_buffer_entries,
                    "merge_buffer_lines": study.config.merge_buffer_lines,
                    "cache_lines": study.config.cache_lines,
                    "competitive_threshold": study.config.competitive_threshold,
                },
                "systems": study_rows(study),
            }
        )
    return json.dumps(doc, indent=indent)


def table1_to_csv(rows: list[Table1Row]) -> str:
    """Render Table 1 rows as CSV text."""
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(
        ["app", "shared_writes", "write_pct", "observed_cost", "network_cycles",
         "network_pct", "total_time"]
    )
    for r in rows:
        writer.writerow(
            [r.app, r.shared_writes, f"{r.write_pct:.4f}", f"{r.observed_cost:.2f}",
             f"{r.network_cycles:.2f}", f"{r.network_pct:.4f}", f"{r.total_time:.2f}"]
        )
    return buf.getvalue()
