"""Differential fuzzing harness with auto-minimised repros (``repro fuzz``).

The reproduction's claims rest on every engine variant computing the
*same* simulated machine: the wheel engine must match the plain-heapq
reference loop bit-for-bit, observability decorators must not perturb
simulated results, and the dynamic correctness checkers must agree with
the static analyzer.  This module is the standing stress harness for
those contracts: it draws seeded random configurations (application x
memory system x nprocs x scale knobs x scenario/degradation spec x
decorator stack) and cross-checks each draw with three oracle families:

``reference``
    wheel engine vs :class:`repro.sim.reference.ReferenceEngine` —
    bit-identical :class:`SimResult`, traffic, network counters, and
    final shared-memory image.
``decorators``
    the drawn observability stack (tracer / metrics / profiler /
    attribution / checked invariants, attached in the drawn order) vs
    the bare run — unchanged simulated results.
``checkers``
    race detector + invariant auditor + static analyzer agreement —
    dynamic race labels must be a subset of the static report's,
    statically clean apps must stay dynamically clean, and the protocol
    invariant auditor must hold for every app.

On a mismatch a greedy delta-debugging shrinker minimises the failing
draw (fewer processors, then smaller app input, then simpler
degradation, then fewer decorators) and writes a commit-ready repro
file under ``tests/fixtures/fuzz_repros/`` together with the one-line
command that replays it.  A corpus ledger (JSONL, one record per
evaluated draw keyed by a stable hash of the configuration) records
draw-space coverage, so successive runs — locally or in CI — resume
where the last one stopped instead of re-evaluating known-good draws.

Draw evaluation fans out through the existing pool/cache machinery
(:func:`repro.core.parallel.run_jobs`), so ``--jobs N`` parallelises and
an optional :class:`~repro.core.parallel.ResultCache` makes repeated
sweeps near-free.

See docs/correctness.md ("Fuzzing") for the handbook.
"""
# Wall-clock below times the *host* budget only; simulated timing comes
# from cycle counts, and draws come from seeded generators.

from __future__ import annotations

import hashlib
import json
import time
from collections.abc import Callable, Iterator, Mapping
from dataclasses import dataclass, replace
from pathlib import Path
from random import Random

from ..apps.factory import AppFactory
from ..config import MachineConfig
from ..core.parallel import ResultCache, resolve_jobs, run_jobs
from ..obs.log import get_logger
from ..scenarios import SCENARIO_NAMES, apply_scenario, get_scenario
from ..sim.reference import capture_outcome, run_case

#: Oracle families, in evaluation order.
ORACLES = ("reference", "decorators", "checkers")

#: Observability decorators a draw may stack (attach order = draw order).
DECORATORS = ("checked", "tracer", "metrics", "attrib", "profiler")

#: Memory systems in the draw space (kept in lockstep with the golden set).
SYSTEMS = ("z-mc", "RCinv", "RCupd", "RCadapt", "RCcomp", "SCinv")

#: Processor counts in the draw space.
NPROC_CHOICES = (1, 2, 3, 4, 6, 8, 16)

#: app name -> module file for the static-analysis oracle.
APP_MODULES = {
    "Cholesky": "cholesky.py",
    "IS": "intsort.py",
    "Maxflow": "maxflow.py",
    "Nbody": "barneshut.py",
    "RacyDemo": "racy.py",
}

#: Default corpus ledger and repro directory (repo-relative).
DEFAULT_LEDGER = Path("benchmarks") / "fuzz_corpus.jsonl"
DEFAULT_REPRO_DIR = Path("tests") / "fixtures" / "fuzz_repros"

#: Bump when the draw encoding or oracle semantics change — invalidates
#: cached evaluations without touching the corpus key space.
FUZZ_SCHEMA = 1

#: Constructor defaults of the scale-bearing app kwargs (used when a
#: hand-written draw omits them) and the smoke-scale ceiling the
#: shrinker aims for.  ``grid`` is tracked by its side length.
_APP_SCALE_DEFAULTS = {
    "Cholesky": {"grid": 12},
    "IS": {"n_keys": 2048, "nbuckets": 128},
    "Maxflow": {"n": 64, "extra_edges": 128},
    "Nbody": {"n_bodies": 128, "steps": 10},
    "RacyDemo": {"rounds": 4},
}
_SMOKE_CEILING = {
    "Cholesky": {"grid": 4},
    "IS": {"n_keys": 128, "nbuckets": 16},
    "Maxflow": {"n": 12, "extra_edges": 24},
    "Nbody": {"n_bodies": 12, "steps": 2},
    "RacyDemo": {"rounds": 4},
}


# ---------------------------------------------------------------------------
# draws


@dataclass(frozen=True)
class FuzzDraw:
    """One point of the draw space — everything needed to rebuild the run.

    ``app_kwargs`` and ``knobs`` are sorted key/value tuples so the
    dataclass stays hashable and its JSON encoding canonical; ``seed``
    and ``index`` record provenance (which stream position produced it)
    but are excluded from :meth:`key`, so the same configuration drawn
    by two different streams deduplicates to one corpus entry.
    """

    app: str
    app_kwargs: tuple[tuple[str, object], ...]
    system: str
    nprocs: int
    scenario: str | None = None
    knobs: tuple[tuple[str, float | int], ...] = ()
    decorators: tuple[str, ...] = ()
    seed: int = 0
    index: int = 0

    @property
    def verify(self) -> bool:
        """RacyDemo's verify() documents its lost updates; skip it."""
        return self.app != "RacyDemo"

    def factory(self) -> AppFactory:
        return AppFactory(self.app, **dict(self.app_kwargs))

    def config(self) -> MachineConfig:
        cfg = MachineConfig(nprocs=self.nprocs)
        if self.scenario is not None:
            cfg = apply_scenario(self.scenario, cfg, dict(self.knobs))
        return cfg

    def key(self) -> str:
        """Stable identity of the *configuration* (not the provenance)."""
        doc = self.to_doc()
        doc.pop("seed", None)
        doc.pop("index", None)
        text = json.dumps(doc, sort_keys=True)
        return hashlib.sha256(text.encode()).hexdigest()[:16]

    def describe(self) -> str:
        parts = [f"{self.app}/{self.system} p{self.nprocs}"]
        if self.scenario is not None:
            parts.append(self.scenario)
        if self.decorators:
            parts.append("+".join(self.decorators))
        return " ".join(parts)

    def to_doc(self) -> dict:
        return {
            "app": self.app,
            "app_kwargs": {k: v for k, v in self.app_kwargs},
            "system": self.system,
            "nprocs": self.nprocs,
            "scenario": self.scenario,
            "knobs": {k: v for k, v in self.knobs},
            "decorators": list(self.decorators),
            "seed": self.seed,
            "index": self.index,
        }

    @classmethod
    def from_doc(cls, doc: Mapping) -> FuzzDraw:
        kwargs = {
            k: tuple(v) if isinstance(v, list) else v
            for k, v in dict(doc.get("app_kwargs", {})).items()
        }
        return cls(
            app=doc["app"],
            app_kwargs=tuple(sorted(kwargs.items())),
            system=doc["system"],
            nprocs=int(doc["nprocs"]),
            scenario=doc.get("scenario"),
            knobs=tuple(sorted(dict(doc.get("knobs", {})).items())),
            decorators=tuple(doc.get("decorators", ())),
            seed=int(doc.get("seed", 0)),
            index=int(doc.get("index", 0)),
        )


def _draw_app(rng: Random) -> tuple[str, dict]:
    """Random application + small randomized input kwargs."""
    if rng.random() < 0.12:
        return "RacyDemo", {"rounds": rng.randint(1, 3)}
    app = rng.choice(("Cholesky", "IS", "Maxflow", "Nbody"))
    if app == "Cholesky":
        g = rng.randint(3, 6)
        return app, {"grid": (g, g)}
    if app == "IS":
        return app, {
            "n_keys": rng.choice((64, 128, 256, 512)),
            "nbuckets": rng.choice((8, 16, 32, 64)),
            "seed": rng.randint(0, 3),
        }
    if app == "Maxflow":
        n = rng.randint(8, 24)
        return app, {
            "n": n,
            "extra_edges": rng.randint(max(2, n // 2), 2 * n),
            "seed": rng.randint(0, 3),
        }
    n = rng.randint(8, 24)
    return "Nbody", {
        "n_bodies": n,
        "steps": rng.randint(1, 3),
        "boost_interval": rng.choice((1, 2, 5)),
        "seed": rng.randint(0, 3),
    }


def _draw_knob(rng: Random, knob, nprocs: int) -> float | int:
    """One random knob value, valid for a ``nprocs``-node machine."""
    if isinstance(knob.default, int):
        # Count-like knobs (hot_nodes, limping, n_links): keep them
        # within the machine so selections stay meaningful.
        return rng.randint(1, max(1, min(4, nprocs)))
    if knob.name == "duty":
        # Includes 0.0 — the zero-width burst window edge case.
        return rng.choice((0.0, 0.25, 0.5, 1.0))
    if knob.name == "period":
        return rng.choice((250.0, 1000.0, 4000.0))
    if knob.name == "phase_spread":
        return rng.choice((0.0, 50.0, 250.0))
    # Degradation factors; includes the exactly-1.0 neutral edge case.
    return rng.choice((1.0, 1.5, 2.0, 4.0))


def _draw_scenario(rng: Random, nprocs: int) -> tuple[str | None, dict]:
    if rng.random() < 0.35:
        return None, {}
    name = rng.choice(SCENARIO_NAMES)
    scenario = get_scenario(name)
    return name, {k.name: _draw_knob(rng, k, nprocs) for k in scenario.knobs}


def make_draw(seed: int, index: int) -> FuzzDraw:
    """Draw ``index`` of stream ``seed`` — pure function of its arguments."""
    rng = Random(f"repro-fuzz/{FUZZ_SCHEMA}/{seed}/{index}")
    app, kwargs = _draw_app(rng)
    system = rng.choice(SYSTEMS)
    nprocs = rng.choice(NPROC_CHOICES)
    scenario, knobs = _draw_scenario(rng, nprocs)
    n_dec = rng.randint(0, len(DECORATORS))
    decorators = tuple(rng.sample(DECORATORS, n_dec))
    return FuzzDraw(
        app=app,
        app_kwargs=tuple(sorted(kwargs.items())),
        system=system,
        nprocs=nprocs,
        scenario=scenario,
        knobs=tuple(sorted(knobs.items())),
        decorators=decorators,
        seed=seed,
        index=index,
    )


def draw_stream(seed: int, start: int = 0) -> Iterator[FuzzDraw]:
    """The (infinite) deterministic draw stream for ``seed``."""
    index = start
    while True:
        yield make_draw(seed, index)
        index += 1


def is_smoke_scale(draw: FuzzDraw) -> bool:
    """True when every scale-bearing kwarg is at smoke scale or below."""
    kwargs = dict(draw.app_kwargs)
    defaults = _APP_SCALE_DEFAULTS[draw.app]
    for name, cap in _SMOKE_CEILING[draw.app].items():
        value = kwargs.get(name, defaults[name])
        if name == "grid" and isinstance(value, tuple):
            value = max(value)
        if value > cap:
            return False
    return True


# ---------------------------------------------------------------------------
# oracles


def first_divergence(a, b, path: str = "$") -> str | None:
    """Dotted path of the first difference between two JSON-able values."""
    if type(a) is not type(b):
        return path
    if isinstance(a, Mapping):
        for k in a:
            if k not in b:
                return f"{path}.{k}"
            sub = first_divergence(a[k], b[k], f"{path}.{k}")
            if sub is not None:
                return sub
        for k in b:
            if k not in a:
                return f"{path}.{k}"
        return None
    if isinstance(a, list):
        if len(a) != len(b):
            return f"{path}.len"
        for i, (x, y) in enumerate(zip(a, b)):
            sub = first_divergence(x, y, f"{path}[{i}]")
            if sub is not None:
                return sub
        return None
    return None if a == b else path


def _lookup(doc, path: str):
    node = doc
    for part in path.replace("]", "").split(".")[1:]:
        name, _, idx = part.partition("[")
        if name == "len":
            return len(node)
        if name:
            node = node[name]
        if idx:
            node = node[int(idx)]
    return node


def diff_outcomes(a: Mapping, b: Mapping, a_name: str, b_name: str) -> str | None:
    """None when bit-identical, else a one-line first-divergence report."""
    # One JSON round-trip normalises tuples vs lists; floats survive it
    # exactly, so equality on the round-tripped documents is bit-level.
    ca = json.loads(json.dumps(a))
    cb = json.loads(json.dumps(b))
    if ca == cb:
        return None
    path = first_divergence(ca, cb) or "$"
    try:
        va, vb = _lookup(ca, path), _lookup(cb, path)
        return f"{path}: {a_name}={va!r} vs {b_name}={vb!r}"
    except (KeyError, IndexError, TypeError):
        return f"first divergence at {path}"


def oracle_reference(draw: FuzzDraw) -> str | None:
    """Oracle 1: wheel engine vs plain-heapq reference, bit-for-bit."""
    wheel = run_case(
        draw.factory(), draw.system, draw.verify, config=draw.config(), engine="wheel"
    )
    ref = run_case(
        draw.factory(), draw.system, draw.verify, config=draw.config(), engine="reference"
    )
    return diff_outcomes(wheel, ref, "wheel", "reference")


def _attach_decorator(name: str, machine) -> None:
    if name == "checked":
        from .checkers.invariants import CheckedMemorySystem

        CheckedMemorySystem.attach(machine)
    elif name == "tracer":
        from ..sim.trace import TracingMemory

        TracingMemory.attach(machine, max_events=100_000)
    elif name == "metrics":
        from ..obs.metrics import MetricsCollector

        MetricsCollector.attach(machine, interval=500.0)
    elif name == "attrib":
        from ..obs.attrib import AttributionCollector

        AttributionCollector.attach(machine)
    elif name == "profiler":
        from ..obs.profile import HostProfiler

        HostProfiler.attach(machine)
    else:
        raise ValueError(f"unknown decorator {name!r}; expected one of {DECORATORS}")


def run_decorated(draw: FuzzDraw) -> dict:
    """One wheel-engine run with the draw's decorator stack attached."""
    from ..runtime.context import Machine

    app = draw.factory()()
    machine = Machine(draw.config(), draw.system)
    app.setup(machine)
    for name in draw.decorators:
        _attach_decorator(name, machine)
    result = machine.run(app.worker)
    if draw.verify:
        app.verify()
    return capture_outcome(machine, result)


def oracle_decorators(draw: FuzzDraw) -> str | None:
    """Oracle 2: the decorated run must equal the bare run."""
    if not draw.decorators:
        return None
    bare = run_case(
        draw.factory(), draw.system, draw.verify, config=draw.config(), engine="wheel"
    )
    stacked = run_decorated(draw)
    return diff_outcomes(bare, stacked, "bare", "+".join(draw.decorators))


_STATIC_CACHE: dict[str, object] = {}


def _static_report(app: str):
    report = _STATIC_CACHE.get(app)
    if report is None:
        from .static import analyze_app_module, repo_root

        rel = f"src/repro/apps/{APP_MODULES[app]}"
        report = analyze_app_module(repo_root() / rel, rel)
        _STATIC_CACHE[app] = report
    return report


def oracle_checkers(draw: FuzzDraw) -> str | None:
    """Oracle 3: dynamic findings ⊆ static findings; clean apps stay clean."""
    from .checkers.runner import CheckSpec, execute_check

    spec = CheckSpec(
        factory=draw.factory(),
        system=draw.system,
        config=draw.config(),
        max_events=300_000,
        verify=draw.verify,
    )
    outcome = execute_check(spec)
    static = _static_report(draw.app)
    dynamic = {race.array for race in outcome.races.races}
    extra = sorted(dynamic - static.race_labels)
    if extra:
        return f"dynamic race(s) on arrays never statically flagged: {extra}"
    if not static.race_labels and not outcome.races.clean:
        return f"{outcome.races.total} dynamic race(s) on a statically clean app"
    if outcome.violation_total:
        return f"{outcome.violation_total} protocol invariant violation(s)"
    return None


#: Oracle registry; tests may pass their own mapping to inject faults.
ORACLE_FUNCS: dict[str, Callable[[FuzzDraw], str | None]] = {
    "reference": oracle_reference,
    "decorators": oracle_decorators,
    "checkers": oracle_checkers,
}


# ---------------------------------------------------------------------------
# evaluation (run_jobs-compatible spec/result pair)


@dataclass(frozen=True)
class FuzzJob:
    """Pool/cache-compatible spec: one draw + the oracles to run."""

    draw: FuzzDraw
    oracles: tuple[str, ...] = ORACLES

    @property
    def factory(self) -> AppFactory:
        # Telemetry heartbeat label (repro.core.parallel._spec_label).
        return self.draw.factory()

    @property
    def system(self) -> str:
        return self.draw.system

    def fingerprint(self) -> str:
        return (
            f"task=fuzz;schema={FUZZ_SCHEMA};draw={self.draw.key()};"
            f"oracles={','.join(self.oracles)}"
        )


@dataclass
class FuzzEval:
    """Outcome of evaluating one draw against the selected oracles."""

    key: str
    #: "ok" | "mismatch" | "invalid" (the draw itself failed to build).
    status: str
    failures: tuple[dict, ...] = ()
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def evaluate_draw(
    draw: FuzzDraw,
    oracles: tuple[str, ...] = ORACLES,
    oracle_funcs: Mapping[str, Callable[[FuzzDraw], str | None]] | None = None,
) -> FuzzEval:
    """Run the selected oracles over one draw.

    An oracle returning a non-empty detail string — or crashing — is a
    mismatch; a draw whose config/factory cannot even be built is
    ``invalid`` (the shrinker uses this to step over candidates that
    leave the valid draw space).
    """
    funcs = ORACLE_FUNCS if oracle_funcs is None else oracle_funcs
    try:
        draw.config()
        draw.factory()
    except Exception as exc:
        detail = f"{exc.__class__.__name__}: {exc}"
        return FuzzEval(
            key=draw.key(),
            status="invalid",
            failures=({"oracle": "draw", "detail": detail},),
        )
    failures = []
    for name in oracles:
        try:
            detail = funcs[name](draw)
        except Exception as exc:  # a crash is a finding too
            detail = f"oracle crashed: {exc.__class__.__name__}: {exc}"
        if detail:
            failures.append({"oracle": name, "detail": detail})
    return FuzzEval(
        key=draw.key(),
        status="mismatch" if failures else "ok",
        failures=tuple(failures),
    )


def evaluate_job(job: FuzzJob) -> FuzzEval:
    """Module-level executor for :func:`repro.core.parallel.run_jobs`."""
    return evaluate_draw(job.draw, job.oracles)


# ---------------------------------------------------------------------------
# shrinker


def _with_kwargs(draw: FuzzDraw, kwargs: dict) -> FuzzDraw:
    return replace(draw, app_kwargs=tuple(sorted(kwargs.items())))


def _scale_candidates(draw: FuzzDraw) -> Iterator[FuzzDraw]:
    """Smaller-input variants of the draw, most aggressive first."""
    kwargs = dict(draw.app_kwargs)
    defaults = _APP_SCALE_DEFAULTS[draw.app]
    if draw.app == "Cholesky":
        grid = kwargs.get("grid", (defaults["grid"], defaults["grid"]))
        side = max(grid) if isinstance(grid, tuple) else int(grid)
        for cand in (3, 4):
            if cand < side:
                yield _with_kwargs(draw, {**kwargs, "grid": (cand, cand)})
    elif draw.app == "IS":
        n = kwargs.get("n_keys", defaults["n_keys"])
        for cand in (64, 128):
            if cand < n:
                yield _with_kwargs(draw, {**kwargs, "n_keys": cand})
        b = kwargs.get("nbuckets", defaults["nbuckets"])
        for cand in (8, 16):
            if cand < b:
                yield _with_kwargs(draw, {**kwargs, "nbuckets": cand})
    elif draw.app == "Maxflow":
        n = kwargs.get("n", defaults["n"])
        edges = kwargs.get("extra_edges", defaults["extra_edges"])
        for cand in (8, 12):
            if cand < n:
                yield _with_kwargs(
                    draw, {**kwargs, "n": cand, "extra_edges": min(edges, 2 * cand)}
                )
        if edges > 2 * n:
            yield _with_kwargs(draw, {**kwargs, "extra_edges": 2 * n})
    elif draw.app == "Nbody":
        n = kwargs.get("n_bodies", defaults["n_bodies"])
        for cand in (8, 12):
            if cand < n:
                yield _with_kwargs(draw, {**kwargs, "n_bodies": cand})
        if kwargs.get("steps", defaults["steps"]) > 1:
            yield _with_kwargs(draw, {**kwargs, "steps": 1})
    elif draw.app == "RacyDemo":
        if kwargs.get("rounds", defaults["rounds"]) > 1:
            yield _with_kwargs(draw, {**kwargs, "rounds": 1})


def _shrink_candidates(draw: FuzzDraw) -> Iterator[FuzzDraw]:
    """One round of smaller variants: nprocs, then input scale, then
    degradation knobs, then decorators — the ISSUE's shrink order."""
    for p in (1, 2, 4):
        if p < draw.nprocs:
            yield replace(draw, nprocs=p)
    yield from _scale_candidates(draw)
    if draw.scenario is not None:
        yield replace(draw, scenario=None, knobs=())
        defaults = get_scenario(draw.scenario).knob_defaults()
        for name, value in draw.knobs:
            if name in defaults and value != defaults[name]:
                neutral = dict(draw.knobs)
                neutral[name] = defaults[name]
                yield replace(draw, knobs=tuple(sorted(neutral.items())))
    if draw.decorators:
        yield replace(draw, decorators=())
        if len(draw.decorators) > 1:
            for i in range(len(draw.decorators)):
                kept = draw.decorators[:i] + draw.decorators[i + 1 :]
                yield replace(draw, decorators=kept)


def failure_predicate(
    oracles: tuple[str, ...],
    oracle_funcs: Mapping[str, Callable] | None = None,
) -> Callable[[FuzzDraw], bool]:
    """Predicate for :func:`shrink_draw`: does the mismatch still show?"""

    def still_failing(draw: FuzzDraw) -> bool:
        return evaluate_draw(draw, oracles, oracle_funcs).status == "mismatch"

    return still_failing


def shrink_draw(
    draw: FuzzDraw,
    still_failing: Callable[[FuzzDraw], bool],
    max_attempts: int = 200,
) -> tuple[FuzzDraw, int]:
    """Greedy delta debugging: repeatedly take the first smaller variant
    that still fails, until no candidate fails or the attempt budget is
    spent.  Returns ``(minimised draw, evaluations used)``."""
    current = draw
    attempts = 0
    progressed = True
    while progressed and attempts < max_attempts:
        progressed = False
        for candidate in _shrink_candidates(current):
            if attempts >= max_attempts:
                break
            attempts += 1
            if still_failing(candidate):
                current = candidate
                progressed = True
                break
    return current, attempts


# ---------------------------------------------------------------------------
# corpus ledger + repro files


def load_corpus(path: str | Path) -> dict[str, dict]:
    """key -> record mapping from a JSONL ledger (last record wins)."""
    entries: dict[str, dict] = {}
    ledger = Path(path)
    if not ledger.exists():
        return entries
    for line in ledger.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError:
            continue
        key = doc.get("key")
        if key:
            entries[key] = doc
    return entries


def append_corpus(path: str | Path, records: list[dict]) -> None:
    """Append records to the JSONL ledger (created on first use)."""
    if not records:
        return
    ledger = Path(path)
    ledger.parent.mkdir(parents=True, exist_ok=True)
    with ledger.open("a", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True) + "\n")


def corpus_record(draw: FuzzDraw, ev: FuzzEval, oracles: tuple[str, ...]) -> dict:
    record = {
        "key": ev.key,
        "seed": draw.seed,
        "index": draw.index,
        "app": draw.app,
        "system": draw.system,
        "nprocs": draw.nprocs,
        "scenario": draw.scenario,
        "decorators": list(draw.decorators),
        "oracles": list(oracles),
        "status": ev.status,
    }
    if ev.failures:
        record["failures"] = list(ev.failures)
    return record


def reproduce_command(path: str | Path) -> str:
    """The one-line command that replays a repro file."""
    path = Path(path)
    try:
        path = path.relative_to(Path.cwd())
    except ValueError:
        pass
    return f"python -m repro fuzz --replay {path.as_posix()}"


def write_repro(
    draw: FuzzDraw,
    ev: FuzzEval,
    directory: str | Path = DEFAULT_REPRO_DIR,
    shrunk_from: FuzzDraw | None = None,
) -> Path:
    """Write a commit-ready repro file; returns its path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    oracle = ev.failures[0]["oracle"] if ev.failures else "unknown"
    path = directory / f"fuzz_{oracle}_{draw.key()}.json"
    doc = {
        "command": reproduce_command(path),
        "draw": draw.to_doc(),
        "failures": list(ev.failures),
    }
    if shrunk_from is not None:
        doc["shrunk_from"] = shrunk_from.to_doc()
    path.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    return path


def replay_repro(
    path: str | Path,
    oracle_funcs: Mapping[str, Callable] | None = None,
) -> tuple[FuzzDraw, FuzzEval]:
    """Re-evaluate a repro file's draw against its recorded oracles."""
    doc = json.loads(Path(path).read_text())
    draw = FuzzDraw.from_doc(doc["draw"])
    funcs = ORACLE_FUNCS if oracle_funcs is None else oracle_funcs
    recorded = tuple(
        dict.fromkeys(
            f["oracle"] for f in doc.get("failures", ()) if f.get("oracle") in funcs
        )
    )
    oracles = recorded or tuple(funcs)
    return draw, evaluate_draw(draw, oracles, oracle_funcs)


# ---------------------------------------------------------------------------
# the harness


@dataclass
class FuzzReport:
    """Summary of one ``repro fuzz`` session."""

    seed: int
    budget: float
    elapsed: float
    drawn: int
    evaluated: int
    skipped: int
    mismatches: list[dict]
    repro_paths: list[str]
    ledger: str

    @property
    def clean(self) -> bool:
        return not self.mismatches

    def describe(self) -> str:
        lines = [
            f"fuzz seed={self.seed}: {self.evaluated} draw(s) evaluated in "
            f"{self.elapsed:.1f}s ({self.skipped} already in corpus), "
            f"{len(self.mismatches)} mismatch(es)",
            f"corpus ledger: {self.ledger}",
        ]
        for record in self.mismatches:
            failure = (record.get("failures") or [{}])[0]
            lines.append(
                f"  MISMATCH [{failure.get('oracle', '?')}] "
                f"{record['app']}/{record['system']} p{record['nprocs']}: "
                f"{failure.get('detail', '')}"
            )
        for path in self.repro_paths:
            lines.append(f"  repro: {reproduce_command(path)}")
        return "\n".join(lines)

    def to_doc(self) -> dict:
        return {
            "seed": self.seed,
            "budget": self.budget,
            "elapsed": round(self.elapsed, 3),
            "drawn": self.drawn,
            "evaluated": self.evaluated,
            "skipped": self.skipped,
            "mismatches": self.mismatches,
            "repro_paths": self.repro_paths,
            "ledger": self.ledger,
            "clean": self.clean,
        }


def run_fuzz(
    budget: float = 60.0,
    seed: int = 0,
    max_draws: int | None = None,
    jobs: int | None = 1,
    oracles: tuple[str, ...] = ORACLES,
    ledger: str | Path = DEFAULT_LEDGER,
    repro_dir: str | Path = DEFAULT_REPRO_DIR,
    resume: bool = True,
    cache: ResultCache | None = None,
    oracle_funcs: Mapping[str, Callable] | None = None,
    shrink_attempts: int = 200,
) -> FuzzReport:
    """Run the fuzzing session: draw, dedup, evaluate, shrink, record.

    ``budget`` bounds host wall-clock seconds (no new batch starts after
    it is spent); ``max_draws`` bounds evaluated draws.  With ``resume``
    (the default) draws whose key is already in the ledger are skipped,
    so successive sessions extend coverage instead of repeating it.
    ``oracle_funcs`` overrides the oracle registry (tests inject faulty
    oracles through it); overriding it forces in-process evaluation.
    """
    log = get_logger()
    start = time.perf_counter()
    known = set(load_corpus(ledger)) if resume else set()
    resumed = len(known)
    batch_size = max(1, resolve_jobs(jobs))
    stream = draw_stream(seed)
    new_records: list[dict] = []
    mismatches: list[dict] = []
    repro_paths: list[str] = []
    drawn = evaluated = skipped = 0
    limit = max_draws if max_draws is not None else float("inf")
    # Backstop when the corpus already covers (nearly) the whole stream:
    # stop after this many consecutive dedup skips.
    max_consecutive_skips = 10_000
    consecutive_skips = 0
    while (
        evaluated < limit
        and time.perf_counter() - start < budget
        and consecutive_skips < max_consecutive_skips
    ):
        batch: list[FuzzDraw] = []
        while (
            len(batch) < batch_size
            and evaluated + len(batch) < limit
            and consecutive_skips < max_consecutive_skips
        ):
            draw = next(stream)
            drawn += 1
            key = draw.key()
            if key in known:
                skipped += 1
                consecutive_skips += 1
                continue
            consecutive_skips = 0
            known.add(key)
            batch.append(draw)
        if not batch:
            break
        if oracle_funcs is None:
            specs = [FuzzJob(d, tuple(oracles)) for d in batch]
            evals = run_jobs(specs, jobs=jobs, cache=cache, executor=evaluate_job)
        else:
            evals = [evaluate_draw(d, oracles, oracle_funcs) for d in batch]
        batch_records = []
        for draw, ev in zip(batch, evals):
            evaluated += 1
            record = corpus_record(draw, ev, tuple(oracles))
            if ev.status != "ok":
                log.warn(
                    f"fuzz mismatch at seed={draw.seed} index={draw.index} "
                    f"({draw.describe()}); shrinking"
                )
                failed = tuple(
                    dict.fromkeys(
                        f["oracle"]
                        for f in ev.failures
                        if f["oracle"] in (oracle_funcs or ORACLE_FUNCS)
                    )
                ) or tuple(oracles)
                shrunk, attempts = shrink_draw(
                    draw, failure_predicate(failed, oracle_funcs), shrink_attempts
                )
                shrunk_ev = evaluate_draw(shrunk, failed, oracle_funcs)
                if not shrunk_ev.failures:
                    shrunk, shrunk_ev = draw, ev
                path = write_repro(shrunk, shrunk_ev, repro_dir, shrunk_from=draw)
                record["shrunk"] = shrunk.to_doc()
                record["shrink_evals"] = attempts
                record["repro"] = str(path)
                mismatches.append(record)
                repro_paths.append(str(path))
            batch_records.append(record)
        # Flush per batch so an interrupted session still extends the
        # ledger (and CI keeps the artifact on failure).
        append_corpus(ledger, batch_records)
        new_records.extend(batch_records)
    elapsed = time.perf_counter() - start
    log.info(
        f"fuzz: {evaluated} evaluated, {skipped} skipped (corpus had {resumed}), "
        f"{len(mismatches)} mismatch(es), {elapsed:.1f}s"
    )
    return FuzzReport(
        seed=seed,
        budget=budget,
        elapsed=elapsed,
        drawn=drawn,
        evaluated=evaluated,
        skipped=skipped,
        mismatches=mismatches,
        repro_paths=repro_paths,
        ledger=str(ledger),
    )


__all__ = [
    "APP_MODULES",
    "DECORATORS",
    "DEFAULT_LEDGER",
    "DEFAULT_REPRO_DIR",
    "NPROC_CHOICES",
    "ORACLES",
    "ORACLE_FUNCS",
    "SYSTEMS",
    "FuzzDraw",
    "FuzzEval",
    "FuzzJob",
    "FuzzReport",
    "append_corpus",
    "corpus_record",
    "diff_outcomes",
    "draw_stream",
    "evaluate_draw",
    "evaluate_job",
    "failure_predicate",
    "first_divergence",
    "is_smoke_scale",
    "load_corpus",
    "make_draw",
    "oracle_checkers",
    "oracle_decorators",
    "oracle_reference",
    "replay_repro",
    "reproduce_command",
    "run_decorated",
    "run_fuzz",
    "shrink_draw",
    "write_repro",
]
