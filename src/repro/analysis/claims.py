"""Automated checks of the paper's qualitative claims.

Every claim from Section 5 that survives the substitution of our
simulated substrate is expressed as a predicate over a set of studies;
benches and integration tests evaluate them so regressions in the
memory-system models are caught as claim violations, not just number
drift.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.study import StudyResult


@dataclass
class ClaimCheck:
    claim: str
    holds: bool
    detail: str


def check_zmachine_near_zero(study: StudyResult, tol_pct: float = 1.0) -> ClaimCheck:
    """Claim 1: inherent communication is (almost) fully overlapped —
    z-machine overhead is ~0% of execution time (PRAM-equivalent)."""
    z = study.zmachine
    return ClaimCheck(
        claim=f"{study.app_name}: z-machine overhead ~ 0%",
        holds=z.overhead_pct <= tol_pct,
        detail=f"z-machine overhead {z.overhead_pct:.3f}% (tolerance {tol_pct}%)",
    )


def check_rcinv_read_stall_dominant(study: StudyResult) -> ClaimCheck:
    """Claim 2: RCinv's dominant overhead component is read stall."""
    s = study.by_system("RCinv")
    dominant = s.read_stall >= s.write_stall and s.read_stall >= s.buffer_flush
    return ClaimCheck(
        claim=f"{study.app_name}: RCinv overhead dominated by read stall",
        holds=dominant,
        detail=(
            f"rs={s.read_stall:.0f} ws={s.write_stall:.0f} bf={s.buffer_flush:.0f}"
        ),
    )


def check_read_stall_gap(study: StudyResult, expect_reuse: bool, factor: float = 1.5) -> ClaimCheck:
    """Claim 3: RCinv-RCupd read-stall gap is large iff the application
    exhibits data reuse (true for Barnes-Hut and Maxflow, not for
    Cholesky and IS)."""
    rs_inv = study.by_system("RCinv").read_stall
    rs_upd = study.by_system("RCupd").read_stall
    ratio = rs_inv / rs_upd if rs_upd > 0 else float("inf")
    holds = ratio >= factor if expect_reuse else ratio < 10.0
    kind = "reuse (large gap)" if expect_reuse else "cold-miss bound (no large gap required)"
    return ClaimCheck(
        claim=f"{study.app_name}: read-stall gap consistent with {kind}",
        holds=holds,
        detail=f"RCinv/RCupd read-stall ratio {ratio:.2f}",
    )


def check_write_stall_order(study: StudyResult, materiality: float = 0.02) -> ClaimCheck:
    """Claim 4: RCinv write stall is the lowest of the four systems.

    The claim is about the update protocols' extra message traffic, so
    it is only meaningful where write stall is a material share of
    execution time; components below ``materiality`` of the total are
    treated as noise.
    """
    total = study.by_system("RCinv").total_time
    ws = {s.system: s.write_stall for s in study.systems if s.system != "z-mc"}
    inv = ws.get("RCinv", 0.0)
    threshold = materiality * total
    holds = all(inv <= v + threshold for v in ws.values())
    return ClaimCheck(
        claim=f"{study.app_name}: RCinv write stall lowest (material components)",
        holds=holds,
        detail=", ".join(f"{k}={v:.0f}" for k, v in ws.items()),
    )


def check_buffer_flush_order(study: StudyResult, materiality: float = 0.02) -> ClaimCheck:
    """Claim 5: merge-buffered systems (RCupd/RCcomp/RCadapt) flush more
    than RCinv (material components only, cf. claim 4)."""
    total = study.by_system("RCinv").total_time
    bf = {s.system: s.buffer_flush for s in study.systems if s.system != "z-mc"}
    inv = bf.get("RCinv", 0.0)
    threshold = materiality * total
    others = [v for k, v in bf.items() if k != "RCinv"]
    holds = all(v >= inv - threshold for v in others)
    return ClaimCheck(
        claim=f"{study.app_name}: buffer flush RCupd/RCcomp/RCadapt >= RCinv",
        holds=holds,
        detail=", ".join(f"{k}={v:.0f}" for k, v in bf.items()),
    )


def standard_claims(study: StudyResult, expect_reuse: bool) -> list[ClaimCheck]:
    """All per-application claims for one study."""
    return [
        check_zmachine_near_zero(study),
        check_rcinv_read_stall_dominant(study),
        check_read_stall_gap(study, expect_reuse),
        check_write_stall_order(study),
        check_buffer_flush_order(study),
    ]


def format_claims(checks: list[ClaimCheck]) -> str:
    lines = []
    for c in checks:
        mark = "PASS" if c.holds else "FAIL"
        lines.append(f"[{mark}] {c.claim} — {c.detail}")
    return "\n".join(lines)
