"""Figure/table rendering and claim checking."""

from .claims import (
    ClaimCheck,
    check_buffer_flush_order,
    check_rcinv_read_stall_dominant,
    check_read_stall_gap,
    check_write_stall_order,
    check_zmachine_near_zero,
    format_claims,
    standard_claims,
)
from .figures import format_comparison, format_figure, format_table1

__all__ = [
    "ClaimCheck",
    "check_buffer_flush_order",
    "check_rcinv_read_stall_dominant",
    "check_read_stall_gap",
    "check_write_stall_order",
    "check_zmachine_near_zero",
    "format_claims",
    "format_comparison",
    "format_figure",
    "format_table1",
    "standard_claims",
]
