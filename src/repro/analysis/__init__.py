"""Figure/table rendering, claim checking, and static analysis.

Exports are resolved lazily (PEP 562): the low-level naming helpers in
:mod:`repro.analysis.naming` are imported by the runtime itself, so
this package must be importable without pulling in the app/figure
stack (which would be a circular import).
"""

from __future__ import annotations

from typing import Any

from .naming import sync_label

_CLAIMS = (
    "ClaimCheck",
    "check_buffer_flush_order",
    "check_rcinv_read_stall_dominant",
    "check_read_stall_gap",
    "check_write_stall_order",
    "check_zmachine_near_zero",
    "format_claims",
    "standard_claims",
)
_FIGURES = ("format_comparison", "format_figure", "format_table1")

__all__ = ["sync_label", *_CLAIMS, *_FIGURES]


def __getattr__(name: str) -> Any:
    if name in _CLAIMS:
        from . import claims

        return getattr(claims, name)
    if name in _FIGURES:
        from . import figures

        return getattr(figures, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
