"""Pass 2: determinism / hot-path lint for the simulator core.

Repo-specific AST rules over ``src/repro/{sim,mem,network,core}`` (plus
``config.py``).  Determinism is the load-bearing property of the whole
reproduction — golden runs are bit-identical, and the ROADMAP's sharded
(PDES) engine will only keep that promise if simulation code never
depends on wall-clock, unseeded randomness, or unordered iteration.

Rules
-----
``wall-clock``
    Calls to ``time.time/perf_counter/monotonic/...`` or
    ``datetime.now/today/utcnow``.  Measurement harnesses legitimately
    time themselves: they carry a module-wide
    ``# lint: ok-module[wall-clock]`` pragma.
``unseeded-random``
    Any use of the global ``random`` module or ``numpy.random.*``
    convenience functions.  Seeded generator objects
    (``random.Random(seed)``, ``numpy.random.default_rng(seed)``) are
    fine — state then flows through an explicit, seedable object.
``set-iteration``
    Iterating (or materialising via ``list``/``tuple``) a value
    statically known to be a ``set``/``frozenset`` — iteration order is
    salted per process, so any simulation state that flows through it
    diverges across shards.  ``sorted(...)`` normalises and is allowed.
``nonfrozen-config``
    ``*Config`` dataclasses must be ``frozen=True``: configs are hashed
    into cache keys and shared across worker processes.
``hot-slots``
    A class whose ``class`` line carries ``# lint: hot`` must define
    ``__slots__`` (or be a ``dataclass(slots=True)``).
``fastpath-alloc``
    A loop whose header carries ``# lint: fastpath`` must not contain
    ``try``/``with``, comprehensions, lambdas, f-strings, or nested
    function definitions — each is an allocation or setup cost per
    iteration on the measured hot path.
"""

from __future__ import annotations

import ast
from pathlib import Path

from .model import Finding, LintReport

RULES = (
    "wall-clock",
    "unseeded-random",
    "set-iteration",
    "nonfrozen-config",
    "hot-slots",
    "fastpath-alloc",
)

#: Default scan roots, relative to the repo root.
CORE_ROOTS = (
    "src/repro/sim",
    "src/repro/mem",
    "src/repro/network",
    "src/repro/core",
    "src/repro/config.py",
)

_WALL_CLOCK_TIME = {
    "time", "perf_counter", "monotonic", "process_time",
    "time_ns", "perf_counter_ns", "monotonic_ns", "process_time_ns",
}
_WALL_CLOCK_DATETIME = {"now", "today", "utcnow"}
_HOT_MARK = "# lint: hot"
_FASTPATH_MARK = "# lint: fastpath"


def _is_attr_call(node: ast.Call, owner: str, names: set[str]) -> str | None:
    """Return the attr name if ``node`` is ``owner.<attr in names>(...)``."""
    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and func.attr in names
        and isinstance(func.value, ast.Name)
        and func.value.id == owner
    ):
        return func.attr
    return None


class _FileLinter(ast.NodeVisitor):
    def __init__(self, path: str, source: str):
        self.path = path
        self.lines = source.splitlines()
        self.findings: list[Finding] = []
        #: names locally assigned a set value, per enclosing function.
        self._set_names: list[set[str]] = [set()]
        #: attribute names annotated/assigned as sets on self.
        self._set_attrs: set[str] = set()

    def _add(self, rule: str, node: ast.AST, message: str, detail: str = "") -> None:
        self.findings.append(
            Finding(
                rule=rule,
                path=self.path,
                line=getattr(node, "lineno", 1),
                message=message,
                detail=detail or message,
            )
        )

    def _line(self, node: ast.AST) -> str:
        lineno = getattr(node, "lineno", 0)
        return self.lines[lineno - 1] if 0 < lineno <= len(self.lines) else ""

    # -- wall-clock / random --------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:  # noqa: N802
        attr = _is_attr_call(node, "time", _WALL_CLOCK_TIME)
        if attr is not None:
            self._add(
                "wall-clock",
                node,
                f"time.{attr}() in simulation code: wall-clock breaks "
                f"run-to-run determinism; derive timing from simulated cycles",
                detail=f"wall-clock:time.{attr}",
            )
        attr = _is_attr_call(node, "datetime", _WALL_CLOCK_DATETIME)
        if attr is not None:
            self._add(
                "wall-clock",
                node,
                f"datetime.{attr}() in simulation code: wall-clock breaks "
                f"run-to-run determinism",
                detail=f"wall-clock:datetime.{attr}",
            )
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            owner, name = func.value.id, func.attr
            if owner == "random" and not (name == "Random" and (node.args or node.keywords)):
                self._add(
                    "unseeded-random",
                    node,
                    f"random.{name}() uses the shared global RNG; pass a "
                    f"seeded random.Random(seed) object instead",
                    detail=f"unseeded-random:random.{name}",
                )
        # numpy.random.<fn>(...) convenience API
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Attribute)
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id in ("np", "numpy")
            and func.value.attr == "random"
            and func.attr not in ("default_rng", "Generator", "SeedSequence")
        ):
            self._add(
                "unseeded-random",
                node,
                f"numpy.random.{func.attr}() uses the global numpy RNG; use "
                f"numpy.random.default_rng(seed)",
                detail=f"unseeded-random:numpy.random.{func.attr}",
            )
        # list(<set>) / tuple(<set>) materialises salted order.
        if (
            isinstance(func, ast.Name)
            and func.id in ("list", "tuple")
            and len(node.args) == 1
            and self._is_set_expr(node.args[0])
        ):
            self._add(
                "set-iteration",
                node,
                f"{func.id}() of a set materialises salted iteration order; "
                f"wrap in sorted(...)",
                detail=f"set-iteration:{func.id}",
            )
        self.generic_visit(node)

    # -- set-tracking ----------------------------------------------------
    def _is_set_expr(self, expr: ast.expr) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
            return expr.func.id in ("set", "frozenset")
        if isinstance(expr, ast.Name):
            return expr.id in self._set_names[-1]
        if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
            if expr.value.id == "self" and expr.attr in self._set_attrs:
                return True
        if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set_expr(expr.left) or self._is_set_expr(expr.right)
        return False

    @staticmethod
    def _is_set_annotation(annotation: ast.expr) -> bool:
        if isinstance(annotation, ast.Name):
            return annotation.id in ("set", "frozenset")
        if isinstance(annotation, ast.Subscript) and isinstance(annotation.value, ast.Name):
            return annotation.value.id in ("set", "frozenset")
        return False

    def visit_Assign(self, node: ast.Assign) -> None:  # noqa: N802
        for target in node.targets:
            if isinstance(target, ast.Name) and self._is_set_expr(node.value):
                self._set_names[-1].add(target.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:  # noqa: N802
        if self._is_set_annotation(node.annotation):
            if isinstance(node.target, ast.Name):
                self._set_names[-1].add(node.target.id)
            elif (
                isinstance(node.target, ast.Attribute)
                and isinstance(node.target.value, ast.Name)
                and node.target.value.id == "self"
            ):
                self._set_attrs.add(node.target.attr)
        self.generic_visit(node)

    def _check_iter(self, iter_expr: ast.expr, node: ast.AST) -> None:
        if self._is_set_expr(iter_expr):
            self._add(
                "set-iteration",
                node,
                "iteration over a set: order is salted per process and "
                "diverges across shards; iterate sorted(...) instead",
                detail="set-iteration:for",
            )

    def visit_For(self, node: ast.For) -> None:  # noqa: N802
        self._check_iter(node.iter, node)
        self._check_fastpath(node)
        self.generic_visit(node)

    def visit_While(self, node: ast.While) -> None:  # noqa: N802
        self._check_fastpath(node)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:  # noqa: N802
        self._check_iter(node.iter, node.iter)
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:  # noqa: N802
        self._set_names.append(set())
        self.generic_visit(node)
        self._set_names.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # noqa: N815

    # -- class rules ------------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:  # noqa: N802
        self._check_config_frozen(node)
        if _HOT_MARK in self._line(node):
            self._check_hot_slots(node)
        self.generic_visit(node)

    def _dataclass_decorator(self, node: ast.ClassDef) -> ast.expr | None:
        for dec in node.decorator_list:
            name = dec
            if isinstance(dec, ast.Call):
                name = dec.func
            if isinstance(name, ast.Name) and name.id == "dataclass":
                return dec
            if isinstance(name, ast.Attribute) and name.attr == "dataclass":
                return dec
        return None

    def _decorator_flag(self, dec: ast.expr, flag: str) -> bool:
        if isinstance(dec, ast.Call):
            for kw in dec.keywords:
                if kw.arg == flag and isinstance(kw.value, ast.Constant):
                    return bool(kw.value.value)
        return False

    def _check_config_frozen(self, node: ast.ClassDef) -> None:
        if not node.name.endswith("Config"):
            return
        dec = self._dataclass_decorator(node)
        if dec is None:
            return
        if not self._decorator_flag(dec, "frozen"):
            self._add(
                "nonfrozen-config",
                node,
                f"dataclass {node.name} must be frozen=True: configs are "
                f"hashed into cache keys and shared across processes",
                detail=f"nonfrozen-config:{node.name}",
            )

    def _check_hot_slots(self, node: ast.ClassDef) -> None:
        dec = self._dataclass_decorator(node)
        if dec is not None and self._decorator_flag(dec, "slots"):
            return
        for stmt in node.body:
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                for t in targets:
                    if isinstance(t, ast.Name) and t.id == "__slots__":
                        return
        self._add(
            "hot-slots",
            node,
            f"class {node.name} is marked '# lint: hot' but defines no "
            f"__slots__: per-instance dicts cost memory and attribute-"
            f"lookup time on the measured hot path",
            detail=f"hot-slots:{node.name}",
        )

    # -- fast-path loops ---------------------------------------------------
    def _check_fastpath(self, node: ast.For | ast.While) -> None:
        if _FASTPATH_MARK not in self._line(node):
            return
        banned = {
            ast.Try: "try/except",
            ast.With: "with",
            ast.Lambda: "lambda",
            ast.ListComp: "list comprehension",
            ast.SetComp: "set comprehension",
            ast.DictComp: "dict comprehension",
            ast.GeneratorExp: "generator expression",
            ast.JoinedStr: "f-string",
            ast.FunctionDef: "nested def",
        }
        for child in ast.walk(node):
            if child is node:
                continue
            label = banned.get(type(child))
            if label is not None:
                self._add(
                    "fastpath-alloc",
                    child,
                    f"{label} inside a '# lint: fastpath' loop: allocates or "
                    f"sets up handlers on every iteration of the hot path",
                    detail=f"fastpath-alloc:{label}:{getattr(child, 'lineno', 0)}",
                )


def lint_file(path: Path, rel_path: str | None = None) -> list[Finding]:
    """Run Pass 2 rules over one file (pragmas NOT applied here)."""
    source = path.read_text()
    tree = ast.parse(source, filename=str(path))
    linter = _FileLinter(rel_path or str(path), source)
    linter.visit(tree)
    return linter.findings


def lint_core(root: Path, roots: tuple[str, ...] = CORE_ROOTS) -> LintReport:
    """Run Pass 2 over the simulator-core scan roots."""
    report = LintReport()
    for entry in roots:
        base = root / entry
        paths = sorted(base.rglob("*.py")) if base.is_dir() else [base]
        for path in paths:
            if not path.exists():
                continue
            rel = path.relative_to(root).as_posix()
            report.findings.extend(lint_file(path, rel))
            report.files_scanned += 1
    return report
