"""Findings, severities, pragma suppressions, and the lint baseline.

Shared by both static passes (:mod:`.locksets` and
:mod:`.determinism`).  The workflow mirrors large-scale linters:

* every finding carries a **stable key** that does not include the
  line number, so unrelated edits do not churn the baseline;
* accepted findings live in a committed ``lint_baseline.json``; the
  CLI exits nonzero only on findings whose key is *not* baselined;
* baseline entries that no longer match any finding are reported as
  stale, and inline ``# lint: ok[rule]`` pragmas (or module-wide
  ``# lint: ok-module[rule]``) that never fire are reported as unused.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

SEV_ERROR = "error"
SEV_WARNING = "warning"
SEV_INFO = "info"

#: Default baseline filename, resolved against the repo root.
BASELINE_FILE = "lint_baseline.json"
BASELINE_SCHEMA = 1

_PRAGMA_RE = re.compile(r"#\s*lint:\s*ok(?P<mod>-module)?\[(?P<rule>[\w-]+)\]")


@dataclass(frozen=True)
class Finding:
    """One static-analysis finding at a source location."""

    rule: str
    path: str  # repo-relative posix path
    line: int
    message: str
    severity: str = SEV_ERROR
    #: line-independent discriminator; defaults to the message.
    detail: str = ""

    def key(self) -> str:
        """Stable baseline key (no line number: survives reflows)."""
        return f"{self.path}::{self.rule}::{self.detail or self.message}"

    def describe(self) -> str:
        return f"{self.path}:{self.line}: {self.severity}[{self.rule}] {self.message}"


@dataclass
class Suppression:
    """An inline or module-wide pragma found in a source file."""

    path: str
    line: int  # line the pragma sits on (0 for module-wide scanning)
    rule: str
    module_wide: bool
    used: bool = False


def scan_pragmas(path: str, source: str) -> list[Suppression]:
    """Collect ``# lint: ok[rule]`` / ``# lint: ok-module[rule]`` pragmas."""
    out: list[Suppression] = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        for m in _PRAGMA_RE.finditer(text):
            out.append(
                Suppression(
                    path=path,
                    line=lineno,
                    rule=m.group("rule"),
                    module_wide=bool(m.group("mod")),
                )
            )
    return out


class SuppressionIndex:
    """Pragma lookup across all scanned files, with use tracking."""

    def __init__(self) -> None:
        self._all: list[Suppression] = []
        self._by_line: dict[tuple[str, int, str], Suppression] = {}
        self._by_module: dict[tuple[str, str], Suppression] = {}

    def add_file(self, path: str, source: str) -> None:
        for sup in scan_pragmas(path, source):
            self._all.append(sup)
            if sup.module_wide:
                self._by_module.setdefault((sup.path, sup.rule), sup)
            else:
                self._by_line[(sup.path, sup.line, sup.rule)] = sup

    def matches(self, finding: Finding) -> bool:
        """True (and mark the pragma used) if ``finding`` is suppressed."""
        sup = self._by_line.get((finding.path, finding.line, finding.rule))
        if sup is not None:
            sup.used = True
            return True
        mod = self._by_module.get((finding.path, finding.rule))
        if mod is not None:
            mod.used = True
            return True
        return False

    def unused(self) -> list[Suppression]:
        return [s for s in self._all if not s.used]


@dataclass
class LintReport:
    """Aggregated result of one or both passes."""

    findings: list[Finding] = field(default_factory=list)
    #: would-be findings silenced by a ``relaxed=`` label or pragma.
    suppressed: list[Finding] = field(default_factory=list)
    #: suppressions that silenced nothing (unused labels / pragmas).
    unused_suppressions: list[Finding] = field(default_factory=list)
    files_scanned: int = 0

    def extend(self, other: LintReport) -> None:
        self.findings.extend(other.findings)
        self.suppressed.extend(other.suppressed)
        self.unused_suppressions.extend(other.unused_suppressions)
        self.files_scanned += other.files_scanned

    def sort(self) -> None:
        for lst in (self.findings, self.suppressed, self.unused_suppressions):
            lst.sort(key=lambda f: (f.path, f.line, f.rule, f.detail or f.message))

    def new_against(self, baseline_keys: set[str]) -> list[Finding]:
        """Findings not covered by the baseline (the failing set)."""
        return [f for f in self.findings if f.key() not in baseline_keys]

    def stale_baseline(self, baseline_keys: set[str]) -> list[str]:
        """Baseline keys that matched no finding (fixed or renamed)."""
        live = {f.key() for f in self.findings}
        return sorted(baseline_keys - live)

    def to_doc(self) -> dict[str, Any]:
        def rows(findings: list[Finding]) -> list[dict[str, Any]]:
            return [
                {
                    "rule": f.rule,
                    "path": f.path,
                    "line": f.line,
                    "severity": f.severity,
                    "message": f.message,
                    "key": f.key(),
                }
                for f in findings
            ]

        return {
            "schema": BASELINE_SCHEMA,
            "files_scanned": self.files_scanned,
            "findings": rows(self.findings),
            "suppressed": rows(self.suppressed),
            "unused_suppressions": rows(self.unused_suppressions),
        }


def load_baseline(path: str | Path) -> dict[str, dict[str, Any]]:
    """key -> entry for every accepted finding in the baseline file."""
    path = Path(path)
    if not path.exists():
        return {}
    doc = json.loads(path.read_text())
    if doc.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"{path}: unsupported baseline schema {doc.get('schema')!r} "
            f"(expected {BASELINE_SCHEMA})"
        )
    return {entry["key"]: entry for entry in doc.get("findings", [])}


def write_baseline(
    path: str | Path, report: LintReport, notes: dict[str, str] | None = None
) -> Path:
    """Accept the report's current findings as the new baseline."""
    notes = notes or {}
    entries = []
    seen: set[str] = set()
    for f in sorted(report.findings, key=lambda f: f.key()):
        key = f.key()
        if key in seen:
            continue
        seen.add(key)
        entries.append(
            {
                "key": key,
                "rule": f.rule,
                "path": f.path,
                "message": f.message,
                "note": notes.get(key, ""),
            }
        )
    doc = {"schema": BASELINE_SCHEMA, "findings": entries}
    path = Path(path)
    path.write_text(json.dumps(doc, indent=2) + "\n")
    return path
