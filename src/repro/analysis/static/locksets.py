"""Pass 1: static Eraser-style lockset / sync analysis of app modules.

Apps in this repo are generator coroutines over a small, closed
vocabulary of shared-memory and sync operations (``SharedArray`` /
``SharedScalar`` accessors, ``Lock`` / ``Barrier`` primitives, and the
``hot_access`` zero-call pattern).  That makes a useful static race
analysis tractable: we symbolically walk the worker's AST — inlining
``yield from self._helper(...)`` calls — tracking per-path

* the **lockset** (Eraser): which declared locks are held.  Locks from
  a collection (``self.vlocks[v]``) collapse to one symbolic token
  ``vlocks[*]`` — coarse, but matches the per-element-lock idiom where
  the element index and the lock index coincide;
* the **barrier interval**: a counter bumped at every ``barrier.wait``.
  Accesses in different intervals of a straight-line walk are ordered.
  A loop whose body contains barriers is handled soundly only when the
  body *ends* with a barrier wait (the SPMD idiom); otherwise all its
  accesses are conservatively collapsed into the entry interval;
* **exclusive guards** (``if pid == 0:``) under which only one
  processor executes;
* **pid-ownership** of index expressions: an index derived from
  ``ctx.pid`` (directly or through helpers like ``self._slice(pid,
  ...)``) identifies an owner-computes partition.  A site conflicts
  with itself across processors only if its index is *not*
  pid-dependent; two different sites are non-conflicting only if their
  canonicalised owner forms are *identical* (``pid`` vs ``1 - pid``
  still conflicts — that is RacyDemo's seeded read/write race).

Two sites on the same array conflict when at least one writes, they
can fall in the same barrier interval, their locksets do not
intersect, and no ownership/exclusivity argument separates them.
``relaxed="read"`` declarations suppress read/write conflicts (the
paper's labeled competing accesses), ``relaxed="all"`` suppresses
everything; labels that suppress nothing are reported unused.

Flags and fences are counted in the per-function summaries but carry
no happens-before edges here — app code synchronises via locks and
barriers; channel flag protocols are runtime-internal and out of
scope for this pass.
"""

from __future__ import annotations

import ast
import copy
from dataclasses import dataclass, field
from pathlib import Path

from .model import SEV_WARNING, Finding, LintReport

#: SharedArray / SharedScalar generator methods -> access kinds.
_ARRAY_ACCESS: dict[str, tuple[str, ...]] = {
    "read": ("r",),
    "get": ("r",),
    "read_range": ("r",),
    "write": ("w",),
    "set": ("w",),
    "write_range": ("w",),
    "add": ("r", "w"),
    "incr": ("r", "w"),
}
#: host-side (unsimulated) accessors: setup/verify only, never racy.
_UNSIMULATED = {"peek", "poke", "poke_many", "snapshot", "value", "addr", "hot_access"}


@dataclass(frozen=True)
class SharedDecl:
    """A ``self.X = shm.array(...)/scalar(...)`` declaration."""

    attr: str
    label: str
    relaxed: str
    line: int
    kind: str  # "array" | "scalar"


@dataclass
class AccessSite:
    """One static shared-memory access with its dominating sync state."""

    array: str  # declaring attribute
    label: str  # shm name (matches dynamic race reports)
    rw: str  # "r" | "w"
    line: int
    func: str
    lockset: frozenset[str]
    interval: int
    exclusive: str | None
    owner: str | None  # canonical pid-derived index form, None = shared

    def brief(self) -> str:
        where = f"{self.func}:{self.line}"
        locks = "{" + ",".join(sorted(self.lockset)) + "}"
        own = f" index={self.owner}" if self.owner else ""
        excl = f" [{self.exclusive}]" if self.exclusive else ""
        kind = "write" if self.rw == "w" else "read"
        return f"{kind} at {where} locks={locks}{own}{excl}"


@dataclass
class FuncSummary:
    """Per-function operation counts (the pass's summary artifact)."""

    reads: int = 0
    writes: int = 0
    acquires: int = 0
    releases: int = 0
    barrier_waits: int = 0
    flag_ops: int = 0
    fence_ops: int = 0

    def to_doc(self) -> dict[str, int]:
        return {k: v for k, v in self.__dict__.items()}


@dataclass
class AppReport:
    """Analysis result for one app module."""

    path: str
    classes: list[str] = field(default_factory=list)
    decls: dict[str, SharedDecl] = field(default_factory=dict)
    sites: list[AccessSite] = field(default_factory=list)
    summaries: dict[str, FuncSummary] = field(default_factory=dict)
    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    unused: list[Finding] = field(default_factory=list)

    @property
    def race_labels(self) -> set[str]:
        """Shared-array labels with at least one reported race finding."""
        return {
            f.detail.split(":")[1]
            for f in self.findings
            if f.rule == "lockset-race" and f.detail.startswith("race:")
        }


class _State:
    """Path-sensitive facts: lockset, barrier interval, exclusivity."""

    __slots__ = ("lockset", "interval", "exclusive")

    def __init__(
        self,
        lockset: frozenset[str] = frozenset(),
        interval: int = 0,
        exclusive: str | None = None,
    ):
        self.lockset = lockset
        self.interval = interval
        self.exclusive = exclusive

    def fork(self) -> _State:
        return _State(self.lockset, self.interval, self.exclusive)

    def merge(self, other: _State) -> None:
        """Join two branches: locks held on *both*, earliest interval."""
        self.lockset = self.lockset & other.lockset
        self.interval = min(self.interval, other.interval)
        if self.exclusive != other.exclusive:
            self.exclusive = None


class _Frame:
    """Per-inlined-function local environment."""

    __slots__ = ("func", "ctx_names", "owners", "opnames", "lockaliases", "addr_index")

    def __init__(self, func: str):
        self.func = func
        #: parameter/local names bound to the AppContext object.
        self.ctx_names: set[str] = set()
        #: local name -> canonical pid-derived form ("pid", "in:range(lo, hi)", ...)
        self.owners: dict[str, str] = {}
        #: hot_access op variable -> (array attr, "r"/"w")
        self.opnames: dict[str, tuple[str, str]] = {}
        #: local lock alias -> lockset token
        self.lockaliases: dict[str, str] = {}
        #: hot_access op variable -> last `op.addr = ...` index expression
        self.addr_index: dict[str, ast.expr] = {}


_TERMINATORS = (ast.Return, ast.Break, ast.Continue, ast.Raise)
_MAX_INLINE_DEPTH = 8


class _ClassAnalyzer:
    """Analyses one Application-style class (``setup`` + ``worker``)."""

    def __init__(self, path: str, cls: ast.ClassDef):
        self.path = path
        self.cls = cls
        self.methods = {
            n.name: n for n in cls.body if isinstance(n, ast.FunctionDef)
        }
        self.shared: dict[str, SharedDecl] = {}
        self.locks: set[str] = set()
        self.lock_collections: set[str] = set()
        self.barriers: set[str] = set()
        self.opaque: set[str] = set()  # CentralQueue / TaskPool handles
        self.sites: list[AccessSite] = []
        self.summaries: dict[str, FuncSummary] = {}
        self._inline_stack: list[str] = []

    # -- declaration scan ----------------------------------------------
    def collect_decls(self) -> None:
        for name in ("__init__", "setup"):
            fn = self.methods.get(name)
            if fn is not None:
                for node in ast.walk(fn):
                    if isinstance(node, ast.Assign):
                        self._scan_decl(node)

    def _scan_decl(self, node: ast.Assign) -> None:
        if len(node.targets) != 1:
            return
        target = node.targets[0]
        if not (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            return
        attr = target.attr
        value = node.value
        # self.X = [Lock(...) for ...]
        if isinstance(value, ast.ListComp) and self._ctor_name(value.elt) == "Lock":
            self.lock_collections.add(attr)
            return
        if not isinstance(value, ast.Call):
            return
        ctor = self._ctor_name(value)
        if ctor == "Lock":
            self.locks.add(attr)
        elif ctor == "Barrier":
            self.barriers.add(attr)
        elif ctor in ("CentralQueue", "TaskPool"):
            self.opaque.add(attr)
        elif isinstance(value.func, ast.Attribute) and value.func.attr in ("array", "scalar"):
            kind = value.func.attr
            label_idx = 1 if kind == "array" else 0
            label = attr
            if len(value.args) > label_idx and isinstance(
                value.args[label_idx], ast.Constant
            ):
                label = str(value.args[label_idx].value)
            relaxed = ""
            for kw in value.keywords:
                if kw.arg == "name" and isinstance(kw.value, ast.Constant):
                    label = str(kw.value.value)
                elif kw.arg == "relaxed" and isinstance(kw.value, ast.Constant):
                    relaxed = str(kw.value.value)
            self.shared[attr] = SharedDecl(
                attr=attr, label=label, relaxed=relaxed, line=node.lineno, kind=kind
            )

    @staticmethod
    def _ctor_name(expr: ast.expr) -> str | None:
        if isinstance(expr, ast.Call):
            if isinstance(expr.func, ast.Name):
                return expr.func.id
            if isinstance(expr.func, ast.Attribute):
                return expr.func.attr
        return None

    # -- canonicalisation / pid taint ----------------------------------
    def _canon(self, expr: ast.expr, fr: _Frame) -> tuple[str, bool]:
        """(canonical text, pid-tainted?) of an index/guard expression.

        Names bound to pid-derived values are replaced by their
        canonical forms, so the same partition computed at two sites
        unparses identically.
        """
        tainted = [False]
        frame = fr

        class _Rewrite(ast.NodeTransformer):
            def visit_Attribute(self, node: ast.Attribute):  # noqa: N802
                if (
                    node.attr == "pid"
                    and isinstance(node.value, ast.Name)
                    and node.value.id in frame.ctx_names
                ):
                    tainted[0] = True
                    return ast.copy_location(ast.Name(id="pid", ctx=ast.Load()), node)
                return self.generic_visit(node)

            def visit_Name(self, node: ast.Name):  # noqa: N802
                form = frame.owners.get(node.id)
                if form is not None:
                    tainted[0] = True
                    return ast.copy_location(ast.Name(id=form, ctx=ast.Load()), node)
                return node

        tree = _Rewrite().visit(copy.deepcopy(expr))
        ast.fix_missing_locations(tree)
        try:
            text = ast.unparse(tree)
        except Exception:  # pragma: no cover - unparse is total on exprs
            text = ast.dump(tree)
        return text, tainted[0]

    def _owner_of(self, expr: ast.expr | None, fr: _Frame) -> str | None:
        if expr is None:
            return None
        text, tainted = self._canon(expr, fr)
        return text if tainted else None

    # -- interpretation ------------------------------------------------
    def run(self) -> None:
        self.collect_decls()
        worker = self.methods.get("worker")
        if worker is None or not self._has_yields(worker):
            return
        fr = _Frame("worker")
        args = worker.args.args
        if len(args) > 1:
            fr.ctx_names.add(args[1].arg)
        st = _State()
        self._walk_stmts(worker.body, st, fr)

    @staticmethod
    def _has_yields(fn: ast.FunctionDef) -> bool:
        return any(
            isinstance(n, (ast.Yield, ast.YieldFrom)) for n in ast.walk(fn)
        )

    def _summary(self, fr: _Frame) -> FuncSummary:
        return self.summaries.setdefault(fr.func, FuncSummary())

    def _walk_stmts(self, stmts: list[ast.stmt], st: _State, fr: _Frame) -> bool:
        """Interpret a statement list; returns False if it terminates."""
        for stmt in stmts:
            if isinstance(stmt, _TERMINATORS):
                if isinstance(stmt, ast.Return) and stmt.value is not None:
                    self._walk_expr(stmt.value, st, fr)
                return False
            self._walk_stmt(stmt, st, fr)
        return True

    def _walk_stmt(self, stmt: ast.stmt, st: _State, fr: _Frame) -> None:
        if isinstance(stmt, ast.Expr):
            self._walk_expr(stmt.value, st, fr)
        elif isinstance(stmt, ast.Assign):
            self._walk_assign(stmt, st, fr)
        elif isinstance(stmt, ast.AugAssign):
            self._walk_expr(stmt.value, st, fr)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._walk_expr(stmt.value, st, fr)
        elif isinstance(stmt, ast.If):
            self._walk_if(stmt, st, fr)
        elif isinstance(stmt, (ast.For, ast.While)):
            self._walk_loop(stmt, st, fr)
        elif isinstance(stmt, ast.With):
            self._walk_stmts(stmt.body, st, fr)
        elif isinstance(stmt, ast.Try):
            self._walk_stmts(stmt.body, st, fr)
            for handler in stmt.handlers:
                self._walk_stmts(handler.body, st.fork(), fr)
            self._walk_stmts(stmt.finalbody, st, fr)
        # FunctionDef/ClassDef/imports inside workers: out of scope.

    def _walk_if(self, stmt: ast.If, st: _State, fr: _Frame) -> None:
        body_st = st.fork()
        body_st.exclusive = self._exclusive_guard(stmt.test, fr) or st.exclusive
        body_falls = self._walk_stmts(stmt.body, body_st, fr)
        else_st = st.fork()
        else_falls = self._walk_stmts(stmt.orelse, else_st, fr)
        if body_falls and else_falls:
            body_st.merge(else_st)
            st.lockset, st.interval = body_st.lockset, body_st.interval
            st.exclusive = body_st.exclusive if body_st.exclusive == st.exclusive else st.exclusive
        elif body_falls:
            st.lockset, st.interval = body_st.lockset, body_st.interval
        elif else_falls:
            st.lockset, st.interval = else_st.lockset, else_st.interval
        # neither falls through: caller's next statements are unreachable
        # on this path; keep st unchanged (conservative).

    def _exclusive_guard(self, test: ast.expr, fr: _Frame) -> str | None:
        """Recognise ``if pid == <const>`` single-processor guards."""
        if not (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Eq)
            and isinstance(test.comparators[0], ast.Constant)
        ):
            return None
        left, tainted = self._canon(test.left, fr)
        if tainted and left == "pid":
            return f"pid == {test.comparators[0].value!r}"
        return None

    def _walk_loop(self, stmt: ast.For | ast.While, st: _State, fr: _Frame) -> None:
        if isinstance(stmt, ast.For):
            self._bind_loop_target(stmt.target, stmt.iter, fr)
        entry_interval = st.interval
        sites_start = len(self.sites)
        self._walk_stmts(stmt.body, st, fr)
        if st.interval != entry_interval and not self._ends_with_barrier(stmt.body):
            # Barriers inside the loop but not at its end: iteration
            # k+1's head may run concurrently with iteration k's tail.
            # Collapse the whole body into the entry interval.
            for site in self.sites[sites_start:]:
                site.interval = entry_interval
            st.interval = entry_interval
        self._walk_stmts(stmt.orelse, st, fr)

    def _ends_with_barrier(self, body: list[ast.stmt]) -> bool:
        last = body[-1] if body else None
        if not (isinstance(last, ast.Expr) and isinstance(last.value, ast.YieldFrom)):
            return False
        call = last.value.value
        return (
            isinstance(call, ast.Call)
            and isinstance(call.func, ast.Attribute)
            and call.func.attr == "wait"
        )

    def _bind_loop_target(self, target: ast.expr, iter_: ast.expr, fr: _Frame) -> None:
        form, tainted = self._canon(iter_, fr)
        names: list[str] = []
        if isinstance(target, ast.Name):
            names = [target.id]
        elif isinstance(target, ast.Tuple):
            names = [e.id for e in target.elts if isinstance(e, ast.Name)]
        for k, name in enumerate(names):
            if tainted:
                suffix = f"[{k}]" if len(names) > 1 else ""
                fr.owners[name] = f"in:{form}{suffix}"
            else:
                fr.owners.pop(name, None)

    # -- assignments ----------------------------------------------------
    def _walk_assign(self, stmt: ast.Assign, st: _State, fr: _Frame) -> None:
        value = stmt.value
        if isinstance(value, ast.YieldFrom):
            self._yield_from(value.value, st, fr)
            self._untaint_targets(stmt.targets, fr)
            return
        # `krd, _, kbase, kword, kdata = self.keys.hot_access()`
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "hot_access"
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Tuple)
        ):
            attr = self._shared_attr(value.func.value)
            if attr is not None:
                elts = stmt.targets[0].elts
                for k, rw in ((0, "r"), (1, "w")):
                    if k < len(elts) and isinstance(elts[k], ast.Name):
                        name = elts[k].id
                        if name != "_":
                            fr.opnames[name] = (attr, rw)
                return
        # `op.addr = base + i * word`
        if (
            len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Attribute)
            and stmt.targets[0].attr == "addr"
            and isinstance(stmt.targets[0].value, ast.Name)
            and stmt.targets[0].value.id in fr.opnames
        ):
            fr.addr_index[stmt.targets[0].value.id] = self._element_index(value)
            return
        # `lock = self.locks[j]`
        if (
            len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and isinstance(value, ast.Subscript)
        ):
            attr = self._self_attr(value.value)
            if attr in self.lock_collections:
                fr.lockaliases[stmt.targets[0].id] = f"{attr}[*]"
                return
        self._walk_expr(value, st, fr)
        self._bind_targets(stmt.targets, value, fr)

    def _untaint_targets(self, targets: list[ast.expr], fr: _Frame) -> None:
        """Values returned from simulated calls are data, not pids."""
        for target in targets:
            names = (
                [target] if isinstance(target, ast.Name) else
                list(target.elts) if isinstance(target, ast.Tuple) else []
            )
            for n in names:
                if isinstance(n, ast.Name):
                    fr.owners.pop(n.id, None)

    def _bind_targets(self, targets: list[ast.expr], value: ast.expr, fr: _Frame) -> None:
        if len(targets) != 1:
            return
        target = targets[0]
        # `pid = ctx.pid` and friends / general owner propagation.
        if isinstance(target, ast.Name):
            if (
                isinstance(value, ast.Name)
                and value.id in fr.ctx_names
            ):
                fr.ctx_names.add(target.id)
                return
            form, tainted = self._canon(value, fr)
            if tainted:
                fr.owners[target.id] = form
            else:
                fr.owners.pop(target.id, None)
            return
        if isinstance(target, ast.Tuple):
            elts = [e for e in target.elts if isinstance(e, ast.Name)]
            if isinstance(value, ast.Tuple) and len(value.elts) == len(target.elts):
                for t, v in zip(target.elts, value.elts):
                    if isinstance(t, ast.Name):
                        self._bind_targets([t], v, fr)
                return
            form, tainted = self._canon(value, fr)
            for k, e in enumerate(elts):
                if tainted:
                    fr.owners[e.id] = f"{form}[{k}]"
                else:
                    fr.owners.pop(e.id, None)

    # -- expressions (yields live here) --------------------------------
    def _walk_expr(self, expr: ast.expr, st: _State, fr: _Frame) -> None:
        if isinstance(expr, ast.YieldFrom):
            self._yield_from(expr.value, st, fr)
        elif isinstance(expr, ast.Yield):
            self._bare_yield(expr.value, st, fr)
        elif isinstance(expr, (ast.BoolOp, ast.BinOp, ast.UnaryOp, ast.Compare)):
            for child in ast.iter_child_nodes(expr):
                if isinstance(child, ast.expr):
                    self._walk_expr(child, st, fr)
        elif isinstance(expr, ast.Call):
            for arg in expr.args:
                self._walk_expr(arg, st, fr)
            for kw in expr.keywords:
                self._walk_expr(kw.value, st, fr)
        elif isinstance(expr, ast.IfExp):
            self._walk_expr(expr.test, st, fr)
            self._walk_expr(expr.body, st.fork(), fr)
            self._walk_expr(expr.orelse, st.fork(), fr)

    def _bare_yield(self, value: ast.expr | None, st: _State, fr: _Frame) -> None:
        """``yield krd`` — the hot_access zero-call pattern."""
        if isinstance(value, ast.Name) and value.id in fr.opnames:
            attr, rw = fr.opnames[value.id]
            self._record_access(
                attr, rw, value.lineno, fr.addr_index.get(value.id), st, fr
            )

    def _yield_from(self, call: ast.expr, st: _State, fr: _Frame) -> None:
        if not (isinstance(call, ast.Call) and isinstance(call.func, ast.Attribute)):
            return
        method = call.func.attr
        recv = call.func.value

        # lock / barrier operations
        token = self._lock_token(recv, fr)
        if token is not None and method in ("acquire", "release"):
            summary = self._summary(fr)
            if method == "acquire":
                st.lockset = st.lockset | {token}
                summary.acquires += 1
            else:
                st.lockset = st.lockset - {token}
                summary.releases += 1
            return
        if method == "wait" and self._self_attr(recv) in self.barriers:
            st.interval += 1
            self._summary(fr).barrier_waits += 1
            return
        if method in ("flag_set", "flag_wait", "produce", "consume"):
            self._summary(fr).flag_ops += 1
            return
        if method == "fence":
            self._summary(fr).fence_ops += 1
            return

        # shared-memory accesses
        attr = self._shared_attr(recv)
        if attr is not None and method in _ARRAY_ACCESS:
            index = self._access_index(call, method)
            for rw in _ARRAY_ACCESS[method]:
                self._record_access(attr, rw, call.lineno, index, st, fr)
            return
        if attr is not None and method in _UNSIMULATED:
            return

        # opaque runtime objects (work queues): internally synchronised.
        recv_attr = self._self_attr(recv)
        if recv_attr in self.opaque:
            return

        # `yield from self._helper(...)`: inline, context-sensitively.
        if (
            isinstance(recv, ast.Name)
            and recv.id == "self"
            and method in self.methods
            and method not in self._inline_stack
            and len(self._inline_stack) < _MAX_INLINE_DEPTH
        ):
            self._inline(self.methods[method], call, st, fr)

    def _inline(
        self, fn: ast.FunctionDef, call: ast.Call, st: _State, fr: _Frame
    ) -> None:
        callee = _Frame(fn.name)
        params = [a.arg for a in fn.args.args[1:]]  # drop self
        for param, arg in zip(params, call.args):
            if isinstance(arg, ast.Name) and arg.id in fr.ctx_names:
                callee.ctx_names.add(param)
                continue
            form = self._owner_of(arg, fr)
            if form is not None:
                callee.owners[param] = form
        self._inline_stack.append(fn.name)
        try:
            self._walk_stmts(fn.body, st, callee)
        finally:
            self._inline_stack.pop()

    # -- access helpers -------------------------------------------------
    def _access_index(self, call: ast.Call, method: str) -> ast.expr | None:
        if method in ("get", "set", "incr"):
            return ast.Constant(value=0)
        if call.args:
            return call.args[0]
        return None

    @staticmethod
    def _element_index(expr: ast.expr) -> ast.expr:
        """Extract ``i`` from the ``base + i * word`` address pattern."""
        if (
            isinstance(expr, ast.BinOp)
            and isinstance(expr.op, ast.Add)
            and isinstance(expr.right, ast.BinOp)
            and isinstance(expr.right.op, ast.Mult)
        ):
            return expr.right.left
        return expr

    def _record_access(
        self,
        attr: str,
        rw: str,
        line: int,
        index: ast.expr | None,
        st: _State,
        fr: _Frame,
    ) -> None:
        decl = self.shared.get(attr)
        if decl is None:
            return
        summary = self._summary(fr)
        if rw == "w":
            summary.writes += 1
        else:
            summary.reads += 1
        site = AccessSite(
            array=attr,
            label=decl.label,
            rw=rw,
            line=line,
            func=fr.func,
            lockset=st.lockset,
            interval=st.interval,
            exclusive=st.exclusive,
            owner=self._owner_of(index, fr),
        )
        for existing in self.sites:
            if (
                existing.array == site.array
                and existing.rw == site.rw
                and existing.line == site.line
                and existing.lockset == site.lockset
                and existing.interval == site.interval
                and existing.exclusive == site.exclusive
                and existing.owner == site.owner
            ):
                return
        self.sites.append(site)

    def _self_attr(self, expr: ast.expr) -> str | None:
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            return expr.attr
        return None

    def _shared_attr(self, expr: ast.expr) -> str | None:
        attr = self._self_attr(expr)
        return attr if attr in self.shared else None

    def _lock_token(self, recv: ast.expr, fr: _Frame) -> str | None:
        attr = self._self_attr(recv)
        if attr in self.locks:
            return attr
        if isinstance(recv, ast.Subscript):
            base = self._self_attr(recv.value)
            if base in self.lock_collections:
                return f"{base}[*]"
        if isinstance(recv, ast.Name):
            return fr.lockaliases.get(recv.id)
        return None

    # -- conflict detection ---------------------------------------------
    def conflicts(self) -> tuple[list[Finding], list[Finding], list[Finding]]:
        """(findings, relaxed-suppressed, unused-relaxed) for this class."""
        findings: list[Finding] = []
        suppressed: list[Finding] = []
        fired_relaxed: set[str] = set()
        by_array: dict[str, list[AccessSite]] = {}
        for site in self.sites:
            by_array.setdefault(site.array, []).append(site)
        seen: set[str] = set()
        for attr, sites in sorted(by_array.items()):
            decl = self.shared[attr]
            for i in range(len(sites)):
                for j in range(i, len(sites)):
                    s1, s2 = sites[i], sites[j]
                    if not self._pair_conflicts(s1, s2, same_site=(i == j)):
                        continue
                    finding = self._race_finding(decl, s1, s2)
                    if finding.detail in seen:
                        continue
                    seen.add(finding.detail)
                    is_ww = s1.rw == "w" and s2.rw == "w"
                    if decl.relaxed == "all" or (decl.relaxed == "read" and not is_ww):
                        fired_relaxed.add(attr)
                        suppressed.append(finding)
                    else:
                        findings.append(finding)
        unused = [
            Finding(
                rule="unused-suppression",
                path=self.path,
                line=decl.line,
                severity=SEV_WARNING,
                message=(
                    f"relaxed={decl.relaxed!r} on shared {decl.kind} "
                    f"'{decl.label}' never suppresses a finding; remove the "
                    f"label or it will hide future races"
                ),
                detail=f"unused-relaxed:{decl.label}",
            )
            for attr, decl in sorted(self.shared.items())
            if decl.relaxed and attr not in fired_relaxed
        ]
        return findings, suppressed, unused

    def _pair_conflicts(self, s1: AccessSite, s2: AccessSite, same_site: bool) -> bool:
        if "w" not in (s1.rw, s2.rw):
            return False
        if s1.interval != s2.interval:
            return False
        if s1.lockset & s2.lockset:
            return False
        if s1.exclusive is not None and s1.exclusive == s2.exclusive:
            return False  # both only run on the same single processor
        if same_site:
            # Two processors at one site: a pid-derived index (assumed
            # injective partition) or a pid==k guard separates them.
            return s1.owner is None and s1.exclusive is None
        # Distinct sites: only an *identical* owner form separates them
        # ("pid" vs "1 - pid" conflicts — that is the seeded race).
        if s1.owner is not None and s1.owner == s2.owner:
            return False
        return True

    def _race_finding(self, decl: SharedDecl, s1: AccessSite, s2: AccessSite) -> Finding:
        a, b = sorted((s1, s2), key=lambda s: (s.line, s.rw))
        part = lambda s: f"{s.rw}@{s.func}" + (f"[{s.owner}]" if s.owner else "")  # noqa: E731
        detail = f"race:{decl.label}:{part(a)} vs {part(b)}"
        kind = "write/write" if a.rw == "w" and b.rw == "w" else "read/write"
        return Finding(
            rule="lockset-race",
            path=self.path,
            line=a.line,
            message=(
                f"possible {kind} race on shared {decl.kind} '{decl.label}': "
                f"{a.brief()} vs {b.brief()} — same barrier interval, "
                f"no common lock"
            ),
            detail=detail,
        )


# ---------------------------------------------------------------------------
# module / directory entry points


def analyze_app_module(path: Path, rel_path: str | None = None) -> AppReport:
    """Run Pass 1 over one app module file."""
    source = path.read_text()
    tree = ast.parse(source, filename=str(path))
    rel = rel_path or str(path)
    report = AppReport(path=rel)
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        methods = {n.name for n in node.body if isinstance(n, ast.FunctionDef)}
        if not ({"setup", "worker"} <= methods):
            continue
        analyzer = _ClassAnalyzer(rel, node)
        analyzer.run()
        if not analyzer.shared and not analyzer.sites:
            continue
        report.classes.append(node.name)
        report.decls.update(analyzer.shared)
        report.sites.extend(analyzer.sites)
        for func, summary in analyzer.summaries.items():
            report.summaries[f"{node.name}.{func}"] = summary
        findings, suppressed, unused = analyzer.conflicts()
        report.findings.extend(findings)
        report.suppressed.extend(suppressed)
        report.unused.extend(unused)
    return report


def lint_apps(root: Path) -> tuple[LintReport, list[AppReport]]:
    """Run Pass 1 over every module in ``src/repro/apps``."""
    apps_dir = root / "src" / "repro" / "apps"
    report = LintReport()
    app_reports: list[AppReport] = []
    for path in sorted(apps_dir.glob("*.py")):
        rel = path.relative_to(root).as_posix()
        app = analyze_app_module(path, rel)
        report.files_scanned += 1
        if app.classes:
            app_reports.append(app)
        report.findings.extend(app.findings)
        report.suppressed.extend(app.suppressed)
        report.unused_suppressions.extend(app.unused)
    return report, app_reports
