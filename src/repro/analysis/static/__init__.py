"""Static analysis: sync/lockset checking of apps + determinism lint.

Two AST passes surfaced as ``repro lint``:

* :mod:`.locksets` — Eraser-style static race analysis of every app
  module (the *dynamic* counterpart is ``repro check``);
* :mod:`.determinism` — repo-specific determinism / hot-path rules for
  the simulator core.

Both share the findings / suppression / baseline model in
:mod:`.model`: accepted findings live in a committed
``lint_baseline.json`` and only *new* findings fail the build.
"""

from __future__ import annotations

from pathlib import Path

from .determinism import CORE_ROOTS, RULES, lint_core, lint_file
from .locksets import AccessSite, AppReport, analyze_app_module, lint_apps
from .model import (
    BASELINE_FILE,
    Finding,
    LintReport,
    SuppressionIndex,
    load_baseline,
    write_baseline,
)

__all__ = [
    "AccessSite",
    "AppReport",
    "BASELINE_FILE",
    "CORE_ROOTS",
    "Finding",
    "LintReport",
    "RULES",
    "SuppressionIndex",
    "analyze_app_module",
    "lint_apps",
    "lint_core",
    "lint_file",
    "load_baseline",
    "repo_root",
    "run_lint",
    "write_baseline",
]


def repo_root() -> Path:
    """Repository root inferred from the installed package location."""
    # src/repro/analysis/static/__init__.py -> repo root is 4 up from here.
    return Path(__file__).resolve().parents[4]


def run_lint(
    apps: bool = True, core: bool = True, root: Path | None = None
) -> tuple[LintReport, list[AppReport]]:
    """Run the selected passes; returns (merged report, app details).

    Inline ``# lint: ok[rule]`` and module-wide ``# lint:
    ok-module[rule]`` pragmas are applied here, across both passes, and
    pragmas that never fire become ``unused-suppression`` findings.
    """
    root = Path(root) if root is not None else repo_root()
    merged = LintReport()
    app_reports: list[AppReport] = []
    raw: list[Finding] = []
    pragmas = SuppressionIndex()

    if apps:
        report, app_reports = lint_apps(root)
        for path in sorted((root / "src" / "repro" / "apps").glob("*.py")):
            pragmas.add_file(path.relative_to(root).as_posix(), path.read_text())
        raw.extend(report.findings)
        merged.suppressed.extend(report.suppressed)
        merged.unused_suppressions.extend(report.unused_suppressions)
        merged.files_scanned += report.files_scanned
    if core:
        for entry in CORE_ROOTS:
            base = root / entry
            paths = sorted(base.rglob("*.py")) if base.is_dir() else [base]
            for path in paths:
                if path.exists():
                    pragmas.add_file(path.relative_to(root).as_posix(), path.read_text())
        report = lint_core(root)
        raw.extend(report.findings)
        merged.files_scanned += report.files_scanned

    for finding in raw:
        if pragmas.matches(finding):
            merged.suppressed.append(finding)
        else:
            merged.findings.append(finding)
    from .model import SEV_WARNING

    for sup in pragmas.unused():
        scope = "ok-module" if sup.module_wide else "ok"
        merged.unused_suppressions.append(
            Finding(
                rule="unused-suppression",
                path=sup.path,
                line=sup.line,
                severity=SEV_WARNING,
                message=(
                    f"pragma '# lint: {scope}[{sup.rule}]' never suppresses "
                    f"a finding; remove it"
                ),
                detail=f"unused-pragma:{scope}:{sup.rule}:{sup.line}",
            )
        )
    merged.sort()
    return merged, app_reports
