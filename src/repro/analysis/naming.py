"""Shared pretty-printer for synchronisation-object identity.

Both the dynamic checkers (race reports, timeline export) and the
static analyzer (:mod:`repro.analysis.static`) attribute findings to
sync objects.  They must agree on the spelling, so the label format
lives here:

``kind[:name][#id]`` — e.g. ``lock:racy.lock#0``, ``barrier:bh.step#0``,
or just ``lock:#3`` for an anonymous lock.

The static pass knows declaration names but not runtime ids, so it
emits ``lock:racy.lock``; the dynamic side emits ``lock:racy.lock#0``.
A dynamic label always extends the static label of the same object,
which is what the differential tests rely on.
"""

from __future__ import annotations

SYNC_KINDS = ("lock", "barrier", "flag")


def sync_label(kind: str, name: str = "", sync_id: int | None = None) -> str:
    """Canonical human-readable label for a sync object.

    ``kind`` is one of :data:`SYNC_KINDS` (trace kinds like
    ``flag_set`` are normalised to their object kind).  ``name`` is the
    user-supplied declaration name (may be empty); ``sync_id`` the
    runtime id (``None`` when unknown, e.g. in static reports).
    """
    if kind.startswith("flag_"):
        kind = "flag"
    label = kind
    if name:
        label += f":{name}"
    if sync_id is not None:
        label += f"#{sync_id}" if name else f":#{sync_id}"
    return label
