"""Protocol invariant checking for the directory-based memory systems.

:class:`CheckedMemorySystem` decorates any memory system (sibling of
:class:`~repro.sim.trace.TracingMemory`) and audits the directory/cache
state machine after every operation, logging violations instead of
raising so a sweep can surface every failure:

* **single-owned** — at most one cache holds a block OWNED with no
  invalidation in flight, and the directory's ``owner`` field points at
  exactly that cache;
* **presence** — the directory presence bits are a superset of the
  caches actually holding a valid copy (lines with a pending
  timestamped invalidation are excused: the protocol has already
  removed their presence bit and the lazy drop is in flight);
* **fanout-monotone** — ``fanout_done[p]`` never moves backwards except
  for its reset to zero at a release, and is never negative;
* **release-drained** — after a release completes, the processor's
  store buffer and merge buffer are empty and its fan-out is reset;
* **stall-decomposition** — every :class:`AccessResult` has
  non-negative stall components whose sum is bounded by the elapsed
  latency, and never completes before it was issued.

Checks are scoped to what the wrapped system exposes (the z-machine has
no caches or buffers, so only the ``AccessResult`` checks apply to it).
The wrapper is observationally transparent: results and timing are
returned unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ...sim.stats import AccessResult, SyncPoint

#: Float-comparison slack for cycle arithmetic.
EPS = 1e-6

try:
    from ...mem.cache import OWNED
except ImportError:  # pragma: no cover - cache model is a hard dependency
    OWNED = 2


@dataclass(frozen=True)
class Violation:
    """One invariant failure, with enough context to reproduce it."""

    rule: str
    time: float
    detail: str
    proc: int | None = None
    block: int | None = None

    def describe(self) -> str:
        where = []
        if self.proc is not None:
            where.append(f"P{self.proc}")
        if self.block is not None:
            where.append(f"block {self.block}")
        ctx = f" [{', '.join(where)}]" if where else ""
        return f"{self.rule}@t={self.time:.0f}{ctx}: {self.detail}"


class CheckedMemorySystem:
    """Decorates a memory system, auditing invariants after every call.

    ``full_check_interval`` controls how often (in operations) the full
    directory is scanned in addition to the per-operation check of the
    touched block; :meth:`final_check` runs one last full scan, treating
    all in-flight invalidations as delivered.
    """

    def __init__(self, inner, max_violations: int = 200, full_check_interval: int = 256):
        if max_violations < 1:
            raise ValueError("max_violations must be >= 1")
        self.inner = inner
        self.max_violations = max_violations
        self.full_check_interval = full_check_interval
        self.violations: list[Violation] = []
        self.dropped = 0
        self.checks_run = 0
        self._ops = 0
        self._seen: set[tuple[str, int | None, int | None]] = set()
        self._prev_fanout = list(getattr(inner, "fanout_done", ()))

    # -- construction ---------------------------------------------------
    @classmethod
    def attach(cls, machine, **kwargs) -> CheckedMemorySystem:
        """Interpose a checker between a Machine's engine and memory."""
        checked = cls(machine.engine.memsys, **kwargs)
        machine.engine.memsys = checked
        return checked

    # -- violation log --------------------------------------------------
    def _report(
        self,
        rule: str,
        time: float,
        detail: str,
        proc: int | None = None,
        block: int | None = None,
    ) -> None:
        key = (rule, proc, block)
        if key in self._seen:
            self.dropped += 1
            return
        self._seen.add(key)
        if len(self.violations) >= self.max_violations:
            self.dropped += 1
            return
        self.violations.append(Violation(rule, time, detail, proc=proc, block=block))

    @property
    def clean(self) -> bool:
        return not self.violations and not self.dropped

    def describe(self, limit: int = 20) -> str:
        if self.clean:
            return f"no invariant violations ({self.checks_run} checks)"
        total = len(self.violations) + self.dropped
        lines = [f"{total} invariant violation(s) over {self.checks_run} checks:"]
        lines += [f"  {v.describe()}" for v in self.violations[:limit]]
        if total > limit:
            lines.append(f"  ... {total - limit} more")
        return "\n".join(lines)

    # -- memory-system protocol -----------------------------------------
    def read(self, proc: int, addr: int, now: float) -> AccessResult:
        res = self.inner.read(proc, addr, now)
        self._after_op("read", proc, addr, now, res)
        return res

    def write(self, proc: int, addr: int, now: float) -> AccessResult:
        res = self.inner.write(proc, addr, now)
        self._after_op("write", proc, addr, now, res)
        return res

    def acquire(self, proc: int, now: float, sync: SyncPoint | None = None) -> AccessResult:
        res = self.inner.acquire(proc, now, sync=sync)
        self._after_op("acquire", proc, None, now, res)
        return res

    def release(self, proc: int, now: float, sync: SyncPoint | None = None) -> AccessResult:
        res = self.inner.release(proc, now, sync=sync)
        self._after_op("release", proc, None, now, res)
        self._check_release_drained(proc, res.time)
        return res

    def sync_note(self, proc: int, now: float, sync: SyncPoint) -> None:
        self.inner.sync_note(proc, now, sync)

    def __getattr__(self, name: str):
        # Delegate everything else (publish, caches, line_size, ...) inward.
        return getattr(self.inner, name)

    # -- checks ----------------------------------------------------------
    def _after_op(
        self, kind: str, proc: int, addr: int | None, now: float, res: AccessResult
    ) -> None:
        self._ops += 1
        self.checks_run += 1
        self._check_access_result(kind, proc, now, res)
        self._check_fanout(kind, proc, res.time)
        inner = self.inner
        if addr is not None and getattr(inner, "caches", None) is not None:
            self._check_block(inner.block_of(addr), res.time)
        if self.full_check_interval and self._ops % self.full_check_interval == 0:
            self.full_check(res.time)

    def _check_access_result(self, kind: str, proc: int, now: float, res: AccessResult) -> None:
        elapsed = res.time - now
        if elapsed < -EPS:
            self._report(
                "completion-before-issue",
                now,
                f"{kind} completed at {res.time} before issue {now}",
                proc=proc,
            )
            return
        stalls = {
            "read_stall": res.read_stall,
            "write_stall": res.write_stall,
            "buffer_flush": res.buffer_flush,
        }
        for name, value in stalls.items():
            if value < -EPS:
                self._report(
                    "negative-stall", now, f"{kind} returned {name}={value}", proc=proc
                )
        total = sum(stalls.values())
        if total > elapsed + EPS:
            self._report(
                "stall-exceeds-latency",
                now,
                f"{kind} stalls sum to {total:.3f} but elapsed is {elapsed:.3f}",
                proc=proc,
            )

    def _check_fanout(self, kind: str, proc: int, now: float) -> None:
        fanout = getattr(self.inner, "fanout_done", None)
        if fanout is None:
            return
        prev = self._prev_fanout
        if len(prev) != len(fanout):
            prev = self._prev_fanout = [0.0] * len(fanout)
        current = fanout[proc]
        if current < -EPS:
            self._report(
                "fanout-negative", now, f"fanout_done[{proc}] = {current}", proc=proc
            )
        if kind != "release" and current < prev[proc] - EPS:
            self._report(
                "fanout-monotonicity",
                now,
                f"fanout_done[{proc}] moved back from {prev[proc]} to {current} "
                f"outside a release",
                proc=proc,
            )
        prev[proc] = current

    def _check_release_drained(self, proc: int, now: float) -> None:
        inner = self.inner
        store = getattr(inner, "store_buffers", None)
        if store is not None and store[proc].occupancy(now) != 0:
            self._report(
                "release-store-buffer",
                now,
                f"store buffer holds {store[proc].occupancy(now)} entrie(s) after release",
                proc=proc,
            )
        merge = getattr(inner, "merge_buffers", None)
        if merge is not None and len(merge[proc]) != 0:
            self._report(
                "release-merge-buffer",
                now,
                f"merge buffer holds {len(merge[proc])} open line(s) after release",
                proc=proc,
            )
        fanout = getattr(inner, "fanout_done", None)
        if fanout is not None and fanout[proc] != 0.0:
            self._report(
                "release-fanout",
                now,
                f"fanout_done[{proc}] = {fanout[proc]} not reset by release",
                proc=proc,
            )

    def _check_block(self, block: int, now: float) -> None:
        """Coherence invariants for one block at time ``now``.

        A cached line is *current* if it has no pending invalidation due
        at or before ``now``; a line whose invalidation is still in
        flight is excused from both invariants (its presence bit is
        already gone and a new owner may already exist).
        """
        inner = self.inner
        entry = inner.directory.peek(block)
        caches = inner.caches
        owners = []
        for p, cache in enumerate(caches):
            line = cache.peek(block)
            if line is None or line.inval_at is not None:
                continue
            if entry is None or not entry.is_sharer(p):
                self._report(
                    "presence-bits",
                    now,
                    f"P{p} holds a current copy but the presence bit is clear",
                    proc=p,
                    block=block,
                )
            if line.state == OWNED:
                owners.append(p)
        if len(owners) > 1:
            self._report(
                "single-owned",
                now,
                f"processors {owners} all hold block OWNED with no invalidation in flight",
                block=block,
            )
        dir_owner = entry.owner if entry is not None else None
        if dir_owner is not None and dir_owner not in owners:
            line = caches[dir_owner].peek(block)
            state = "absent" if line is None else f"state={line.state}, inval_at={line.inval_at}"
            self._report(
                "directory-owner",
                now,
                f"directory says P{dir_owner} owns the block but its line is {state}",
                proc=dir_owner,
                block=block,
            )

    def full_check(self, now: float) -> None:
        """Scan every directory block (periodic + final audit)."""
        if getattr(self.inner, "caches", None) is None:
            return
        self.checks_run += 1
        for block in self.inner.directory.blocks():
            self._check_block(block, now)

    def final_check(self, now: float = math.inf) -> None:
        """End-of-run audit: all in-flight invalidations count as done."""
        self.full_check(now)
        fanout = getattr(self.inner, "fanout_done", None)
        if fanout is not None:
            for p, value in enumerate(fanout):
                if value < -EPS:
                    self._report(
                        "fanout-negative", now, f"fanout_done[{p}] = {value}", proc=p
                    )


__all__ = ["CheckedMemorySystem", "Violation", "EPS"]
