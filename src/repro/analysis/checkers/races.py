"""Vector-clock happens-before data-race detection over memory traces.

The engine issues operations in global simulated-time order, so a
:class:`~repro.sim.trace.TracingMemory` event list is a linearisation of
the execution.  This module rebuilds the happens-before relation from
the synchronisation events in that list (FastTrack-style) and reports
conflicting data accesses that are unordered by it:

* **lock** — a release hands its vector clock to the lock; the next
  acquirer of the same lock joins it;
* **barrier** — all arrivals of one episode join into a per-episode
  clock that every departer then joins (an all-to-all fence);
* **flag** — each set joins into the flag's cumulative clock and
  snapshots it per epoch; a wait for epoch *k* joins snapshot *k*.

Blocked synchronisation operations are recorded at *request* time, which
may precede the enabling release/set in the trace.  Joins are therefore
deferred: a sync edge registered at event *i* is applied at the
processor's *next* event, which the sync manager's network round-trip
guarantees is issued strictly after the enabling event was traced.

Intentionally unsynchronised accesses (optimistic polling re-validated
under a lock) are declared with ``SharedArray(relaxed="read")`` and are
excluded from race candidacy; see docs/correctness.md.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

from ...sim.trace import TraceEvent


@dataclass(frozen=True)
class RaceAccess:
    """One side of a reported race."""

    kind: str  # "read" | "write"
    proc: int
    time: float  # issue time in simulated cycles


@dataclass(frozen=True)
class Race:
    """Two conflicting shared accesses unordered by happens-before."""

    addr: int
    array: str
    element: int | None
    first: RaceAccess
    second: RaceAccess

    def describe(self) -> str:
        loc = f"{self.array}[{self.element}]" if self.element is not None else self.array
        return (
            f"{loc} (addr {self.addr}): {self.first.kind} by P{self.first.proc} "
            f"@t={self.first.time:.0f} unordered with {self.second.kind} by "
            f"P{self.second.proc} @t={self.second.time:.0f}"
        )


@dataclass
class RaceReport:
    """Deduplicated, bounded outcome of one detection pass."""

    races: list[Race] = field(default_factory=list)
    #: Total conflicting pairs found, including ones dropped by the
    #: dedup/bound (every (address, kind-pair) is reported once).
    total: int = 0
    accesses: int = 0
    sync_events: int = 0
    #: Data accesses skipped because their array is labeled ``relaxed``.
    relaxed_skipped: int = 0
    #: Events dropped by the tracer's ring bound — a nonzero value means
    #: the analysis only covers a prefix of the execution.
    trace_dropped: int = 0

    @property
    def clean(self) -> bool:
        return self.total == 0

    def describe(self, limit: int = 20) -> str:
        if self.clean:
            return f"no races ({self.accesses} accesses checked)"
        lines = [f"{self.total} race(s) over {self.accesses} accesses:"]
        lines += [f"  {race.describe()}" for race in self.races[:limit]]
        if len(self.races) > limit:
            lines.append(f"  ... {len(self.races) - limit} more distinct location(s)")
        return "\n".join(lines)


class _AddressMap:
    """addr -> (array name, element index, relaxed label) via bisection."""

    def __init__(self, arrays):
        spans = []
        for arr in arrays:
            end = arr.base + arr.n * arr._word
            spans.append((arr.base, end, arr.name or f"array@{arr.base}", arr._word, arr.relaxed))
        spans.sort()
        self._starts = [s[0] for s in spans]
        self._spans = spans

    def resolve(self, addr: int) -> tuple[str, int | None, str]:
        i = bisect_right(self._starts, addr) - 1
        if i >= 0:
            base, end, name, word, relaxed = self._spans[i]
            if addr < end:
                return name, (addr - base) // word, relaxed
        return f"addr@{addr}", None, ""


class _Shadow:
    """Per-address last-writer epoch plus per-processor read epochs."""

    __slots__ = ("write", "reads")

    def __init__(self):
        self.write: tuple[int, int, float] | None = None  # (proc, clock, time)
        self.reads: dict[int, tuple[int, float]] = {}  # proc -> (clock, time)


def detect_races(
    events: list[TraceEvent],
    nprocs: int,
    shm=None,
    max_races: int = 100,
    trace_dropped: int = 0,
) -> RaceReport:
    """Run the happens-before pass over ``events``.

    ``shm`` (a :class:`~repro.runtime.sharedmem.SharedMemory`) enables
    array/element attribution and the ``relaxed`` labeled-access
    exemption; without it every access is checked and reported by raw
    address.  ``max_races`` bounds the distinct (location, kind-pair)
    entries kept in the report; the total count is always exact.
    """
    addrmap = _AddressMap(shm.arrays) if shm is not None else None
    clocks = [[0] * nprocs for _ in range(nprocs)]
    for p in range(nprocs):
        clocks[p][p] = 1
    lock_clocks: dict[int, list[int]] = {}
    barrier_acc: dict[tuple[int, int], list[int]] = {}
    flag_cum: dict[int, list[int]] = {}
    flag_snap: dict[tuple[int, int], list[int]] = {}
    #: Deferred joins, applied at the processor's next event.
    pending: list[list[tuple[str, object]]] = [[] for _ in range(nprocs)]
    shadow: dict[int, _Shadow] = {}
    report = RaceReport(trace_dropped=trace_dropped)
    seen: set[tuple[int, str, str]] = set()

    def resolve_join(kind: str, key) -> list[int] | None:
        if kind == "lock":
            return lock_clocks.get(key)
        if kind == "barrier":
            return barrier_acc.get(key)
        # Flag: prefer the exact epoch snapshot; fall back to the
        # cumulative clock when the set was dropped from the trace.
        return flag_snap.get(key) or flag_cum.get(key[0])

    def join(vc: list[int], other: list[int]) -> None:
        for i, v in enumerate(other):
            if v > vc[i]:
                vc[i] = v

    def record(addr: int, first: RaceAccess, second: RaceAccess) -> None:
        report.total += 1
        key = (addr, first.kind, second.kind)
        if key in seen:
            return
        seen.add(key)
        if len(report.races) >= max_races:
            return
        name, element, _ = addrmap.resolve(addr) if addrmap else (f"addr@{addr}", None, "")
        report.races.append(Race(addr, name, element, first, second))

    for e in events:
        p = e.proc
        if p >= nprocs:
            continue
        my = clocks[p]
        if pending[p]:
            for kind, key in pending[p]:
                other = resolve_join(kind, key)
                if other is not None:
                    join(my, other)
            pending[p].clear()
        k = e.kind
        if k == "read" or k == "write":
            if e.addr is None:
                continue
            report.accesses += 1
            relaxed = ""
            if addrmap is not None:
                _, _, relaxed = addrmap.resolve(e.addr)
            if relaxed == "all" or (relaxed == "read" and k == "read"):
                report.relaxed_skipped += 1
                continue
            s = shadow.get(e.addr)
            if s is None:
                s = shadow[e.addr] = _Shadow()
            w = s.write
            me = RaceAccess(k, p, e.issue)
            if w is not None and w[0] != p and w[1] > my[w[0]]:
                record(e.addr, RaceAccess("write", w[0], w[2]), me)
            if k == "read":
                s.reads[p] = (my[p], e.issue)
            else:
                for q, (rclock, rtime) in s.reads.items():
                    if q != p and rclock > my[q]:
                        record(e.addr, RaceAccess("read", q, rtime), me)
                s.write = (p, my[p], e.issue)
                s.reads.clear()
        elif k == "acquire":
            report.sync_events += 1
            if e.sync_kind == "lock":
                pending[p].append(("lock", e.sync_id))
        elif k == "release":
            report.sync_events += 1
            if e.sync_kind == "barrier":
                key = (e.sync_id, e.episode)
                acc = barrier_acc.get(key)
                if acc is None:
                    acc = barrier_acc[key] = [0] * nprocs
                join(acc, my)
                my[p] += 1
                pending[p].append(("barrier", key))
            elif e.sync_kind == "lock":
                lock_clocks[e.sync_id] = list(my)
                my[p] += 1
            else:  # fence or untagged release: local epoch boundary only
                my[p] += 1
        elif k == "flag_set":
            report.sync_events += 1
            cum = flag_cum.get(e.sync_id)
            if cum is None:
                cum = flag_cum[e.sync_id] = [0] * nprocs
            join(cum, my)
            flag_snap[(e.sync_id, e.episode)] = list(cum)
            my[p] += 1
        elif k == "flag_wait":
            report.sync_events += 1
            pending[p].append(("flag", (e.sync_id, e.episode)))
    return report


__all__ = ["Race", "RaceAccess", "RaceReport", "detect_races"]
