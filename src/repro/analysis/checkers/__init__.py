"""Correctness-analysis subsystem: race detection + protocol invariants.

Two engines over one instrumented simulation (see docs/correctness.md):

* :mod:`~repro.analysis.checkers.races` — FastTrack-style vector-clock
  happens-before data-race detection over a
  :class:`~repro.sim.trace.TracingMemory` event list;
* :mod:`~repro.analysis.checkers.invariants` —
  :class:`CheckedMemorySystem`, a memory-system decorator auditing
  directory/cache/buffer invariants after every operation;
* :mod:`~repro.analysis.checkers.runner` — the apps × systems matrix
  behind ``repro check``, parallelised and cached through
  :mod:`repro.core.parallel`.
"""

from .invariants import CheckedMemorySystem, Violation
from .races import Race, RaceAccess, RaceReport, detect_races
from .runner import (
    CHECK_BENCH_FILE,
    CheckBench,
    CheckOutcome,
    CheckSpec,
    check_matrix,
    execute_check,
    format_outcomes,
    run_checks,
    write_check_bench,
)

__all__ = [
    "CHECK_BENCH_FILE",
    "CheckBench",
    "CheckOutcome",
    "CheckSpec",
    "CheckedMemorySystem",
    "Race",
    "RaceAccess",
    "RaceReport",
    "Violation",
    "check_matrix",
    "detect_races",
    "execute_check",
    "format_outcomes",
    "run_checks",
    "write_check_bench",
]
