"""Run the correctness checkers over an apps × systems matrix.

One :class:`CheckSpec` is one instrumented simulation: the application
runs with a :class:`~repro.analysis.checkers.invariants.CheckedMemorySystem`
wrapped around the memory system (protocol invariants audited after
every operation) and a :class:`~repro.sim.trace.TracingMemory` wrapped
around that (so the trace records events *after* they are checked), then
the happens-before race pass runs over the trace.

Specs and outcomes are picklable and carry a stable fingerprint, so the
matrix fans out through :func:`repro.core.parallel.run_jobs` and caches
through the ordinary :class:`~repro.core.parallel.ResultCache` — a CI
re-run with unchanged sources is near-free.
"""

from __future__ import annotations

import json
import os
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from ...apps.factory import AppFactory
from ...config import MachineConfig
from ...core.parallel import CACHE_SCHEMA, ResultCache, run_jobs
from ...runtime.context import Machine
from ...sim.trace import TracingMemory
from .invariants import CheckedMemorySystem, Violation
from .races import RaceReport, detect_races

#: Default trajectory file for ``repro check --bench-out``.
CHECK_BENCH_FILE = "BENCH_check.json"


@dataclass(frozen=True)
class CheckSpec:
    """One instrumented run: application factory + system + config."""

    factory: AppFactory
    system: str
    config: MachineConfig
    max_events: int = 500_000
    max_ops: int | None = None
    verify: bool = True

    def fingerprint(self) -> str:
        """Stable identity for cache keying (see ``JobSpec``)."""
        return (
            f"task=check;schema={CACHE_SCHEMA};factory={self.factory!r};"
            f"system={self.system};config={self.config!r};"
            f"max_events={self.max_events};max_ops={self.max_ops};"
            f"verify={self.verify}"
        )


@dataclass
class CheckOutcome:
    """Picklable result of one instrumented run."""

    app: str
    system: str
    races: RaceReport
    violations: list[Violation]
    #: Total invariant failures including deduplicated/bounded drops.
    violation_total: int
    events: int
    elapsed: float = 0.0
    cached: bool = False

    @property
    def clean(self) -> bool:
        return self.races.clean and self.violation_total == 0

    def describe(self) -> str:
        status = "ok" if self.clean else "FINDINGS"
        head = f"== {self.app} on {self.system}: {status}"
        if self.clean:
            return head
        parts = [head]
        if not self.races.clean:
            parts.append(self.races.describe())
        if self.violation_total:
            parts.append(f"{self.violation_total} invariant violation(s):")
            parts += [f"  {v.describe()}" for v in self.violations[:20]]
        return "\n".join(parts)


def execute_check(spec: CheckSpec) -> CheckOutcome:
    """Run one :class:`CheckSpec` in the current process."""
    t0 = time.perf_counter()
    app = spec.factory()
    machine = Machine(spec.config, spec.system, max_ops=spec.max_ops)
    app.setup(machine)
    checked = CheckedMemorySystem.attach(machine)
    tracer = TracingMemory.attach(machine, max_events=spec.max_events)
    machine.run(app.worker)
    if spec.verify:
        app.verify()
    checked.final_check()
    report = detect_races(
        tracer.events,
        spec.config.nprocs,
        shm=machine.shm,
        trace_dropped=tracer.dropped,
    )
    return CheckOutcome(
        app=app.name,
        system=spec.system,
        races=report,
        violations=checked.violations,
        violation_total=len(checked.violations) + checked.dropped,
        events=len(tracer.events) + tracer.dropped,
        elapsed=time.perf_counter() - t0,
    )


def check_matrix(
    factories: dict[str, Callable[[], object]],
    systems: Sequence[str],
    config: MachineConfig,
    max_events: int = 500_000,
) -> list[CheckSpec]:
    """Build the apps × systems spec matrix."""
    return [
        CheckSpec(factory=factory, system=system, config=config, max_events=max_events)
        for factory in factories.values()
        for system in systems
    ]


def run_checks(
    specs: Sequence[CheckSpec],
    jobs: int | None = 1,
    cache: ResultCache | None = None,
) -> list[CheckOutcome]:
    """Execute ``specs`` (pool fan-out + result cache) in spec order."""
    return run_jobs(specs, jobs=jobs, cache=cache, executor=execute_check)


def format_outcomes(outcomes: Sequence[CheckOutcome]) -> str:
    """Summary table plus detail for every outcome with findings."""
    lines = [
        f"{'application':<12s} {'system':<8s} {'events':>8s} {'races':>6s} "
        f"{'violations':>11s} {'status':>8s}"
    ]
    for o in outcomes:
        status = "ok" if o.clean else "FINDINGS"
        if o.cached:
            status += " (cached)"
        lines.append(
            f"{o.app:<12s} {o.system:<8s} {o.events:>8d} {o.races.total:>6d} "
            f"{o.violation_total:>11d} {status:>8s}"
        )
    dirty = [o for o in outcomes if not o.clean]
    for o in dirty:
        lines.append("")
        lines.append(o.describe())
    return "\n".join(lines)


@dataclass
class CheckBench:
    """Wall-clock record of one checker pass (``repro bench`` style)."""

    n_runs: int
    wall_s: float
    cached_runs: int
    jobs: int
    scale: str
    simulated_events: int = 0
    #: Machine size the pass ran at — 0 means "unrecorded" (legacy docs).
    #: Timing trajectories at different P are not comparable.
    nprocs: int = 0
    extra: dict = field(default_factory=dict)

    def to_doc(self) -> dict:
        return {
            "bench": "correctness-check",
            "scale": self.scale,
            "nprocs": self.nprocs,
            "jobs": self.jobs,
            "cpu_count": os.cpu_count(),
            "n_runs": self.n_runs,
            "wall_s": round(self.wall_s, 4),
            "cached_runs": self.cached_runs,
            "cache_hit_rate": round(self.cached_runs / self.n_runs, 4) if self.n_runs else 0.0,
            "events_checked": self.simulated_events,
            **self.extra,
        }


def write_check_bench(
    outcomes: Sequence[CheckOutcome],
    wall_s: float,
    jobs: int,
    scale: str,
    out: str | os.PathLike = CHECK_BENCH_FILE,
    nprocs: int = 0,
) -> dict:
    """Write the ``BENCH_check.json`` timing trajectory; returns the doc."""
    bench = CheckBench(
        n_runs=len(outcomes),
        wall_s=wall_s,
        cached_runs=sum(1 for o in outcomes if o.cached),
        jobs=jobs,
        scale=scale,
        nprocs=nprocs,
        simulated_events=sum(o.events for o in outcomes),
    )
    doc = bench.to_doc()
    Path(out).write_text(json.dumps(doc, indent=2) + "\n")
    return doc


__all__ = [
    "CHECK_BENCH_FILE",
    "CheckBench",
    "CheckOutcome",
    "CheckSpec",
    "check_matrix",
    "execute_check",
    "format_outcomes",
    "run_checks",
    "write_check_bench",
]
