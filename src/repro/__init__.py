"""repro — reproduction of *The Quest for a Zero Overhead Shared Memory
Parallel Machine* (Shah, Singla, Ramachandran; ICPP 1995).

The package provides:

* an execution-driven shared-memory simulator (``repro.sim``,
  ``repro.runtime``) in the spirit of SPASM;
* the **z-machine** ideal-memory model plus four release-consistent
  memory systems — RCinv, RCupd, RCcomp, RCadapt — and an SC baseline
  (``repro.mem``);
* the paper's four applications — sparse Cholesky, Barnes-Hut, NAS
  Integer Sort, push-relabel Maxflow — implemented for real and
  verified against independent references (``repro.apps``);
* the overhead-decomposition study harness that regenerates the paper's
  figures and Table 1 (``repro.core``, ``repro.analysis``).

Quickstart::

    from repro import MachineConfig, run_study
    from repro.apps import IntegerSort

    study = run_study(lambda: IntegerSort(n_keys=1024, nbuckets=64),
                      MachineConfig(nprocs=16))
    for s in study.systems:
        print(s.system, f"{s.overhead_pct:.1f}% overhead")
"""

from .config import DEFAULT_CONFIG, MachineConfig
from .core import (
    JobSpec,
    ResultCache,
    StudyResult,
    SystemResult,
    figure1_scenario,
    run_jobs,
    run_study,
    table1,
    table1_row,
)
from .runtime import Machine

__version__ = "1.1.0"

__all__ = [
    "DEFAULT_CONFIG",
    "JobSpec",
    "Machine",
    "MachineConfig",
    "ResultCache",
    "StudyResult",
    "SystemResult",
    "figure1_scenario",
    "run_jobs",
    "run_study",
    "table1",
    "table1_row",
    "__version__",
]
