"""Flow-network generation for the Maxflow application.

The paper uses a 200-vertex / 400-bidirectional-edge directed graph with
edge capacities.  We generate random graphs of that shape: a guaranteed
source-to-sink backbone plus random bidirectional edges with integer
capacities.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class FlowNetwork:
    """A directed flow network stored as arc lists.

    Arcs come in residual pairs: arc ``e`` and ``e ^ 1`` are mutual
    reverses (capacity of the reverse arc is 0 for a directed edge, or
    the back capacity for a bidirectional one).
    """

    n: int
    source: int
    sink: int
    #: arc endpoints, len = num_arcs (even; pairs share e//2)
    tail: np.ndarray
    head: np.ndarray
    cap: np.ndarray
    #: adjacency: out-arcs (arc ids) per vertex, including residual arcs
    adj: list[np.ndarray]

    @property
    def num_arcs(self) -> int:
        return len(self.tail)

    def reverse(self, e: int) -> int:
        return e ^ 1


def _build(n: int, source: int, sink: int, edges: list[tuple[int, int, int, int]]) -> FlowNetwork:
    tail: list[int] = []
    head: list[int] = []
    cap: list[int] = []
    adj: list[list[int]] = [[] for _ in range(n)]
    for u, v, c_uv, c_vu in edges:
        e = len(tail)
        tail += [u, v]
        head += [v, u]
        cap += [c_uv, c_vu]
        adj[u].append(e)
        adj[v].append(e + 1)
    return FlowNetwork(
        n=n,
        source=source,
        sink=sink,
        tail=np.array(tail, dtype=np.int64),
        head=np.array(head, dtype=np.int64),
        cap=np.array(cap, dtype=np.int64),
        adj=[np.array(a, dtype=np.int64) for a in adj],
    )


def random_flow_network(
    n: int = 200,
    extra_edges: int = 400,
    max_cap: int = 100,
    seed: int = 0,
) -> FlowNetwork:
    """Random connected flow network: a source->sink chain backbone plus
    ``extra_edges`` random bidirectional edges (the paper's 200v/400e
    shape at default parameters)."""
    if n < 2:
        raise ValueError("need at least source and sink")
    rng = np.random.default_rng(seed)
    source, sink = 0, n - 1
    seen: set[tuple[int, int]] = set()
    edges: list[tuple[int, int, int, int]] = []
    # Backbone guarantees feasibility of some flow.
    order = [0] + list(rng.permutation(np.arange(1, n - 1))) + [n - 1]
    for a, b in zip(order, order[1:]):
        u, v = int(a), int(b)
        seen.add((min(u, v), max(u, v)))
        edges.append((u, v, int(rng.integers(1, max_cap + 1)), int(rng.integers(1, max_cap + 1))))
    attempts = 0
    while len(edges) < len(order) - 1 + extra_edges and attempts < 100 * extra_edges:
        attempts += 1
        u = int(rng.integers(0, n))
        v = int(rng.integers(0, n))
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key in seen:
            continue
        seen.add(key)
        edges.append((u, v, int(rng.integers(1, max_cap + 1)), int(rng.integers(1, max_cap + 1))))
    return _build(n, source, sink, edges)


def reference_max_flow(net: FlowNetwork) -> int:
    """Max-flow value via networkx (verification reference)."""
    import networkx as nx

    g = nx.DiGraph()
    g.add_nodes_from(range(net.n))
    for e in range(net.num_arcs):
        c = int(net.cap[e])
        if c > 0:
            u, v = int(net.tail[e]), int(net.head[e])
            if g.has_edge(u, v):
                g[u][v]["capacity"] += c
            else:
                g.add_edge(u, v, capacity=c)
    value, _ = nx.maximum_flow(g, net.source, net.sink)
    return int(value)
