"""Key generation for the NAS Integer Sort kernel.

The NAS IS benchmark ranks keys drawn from an approximately Gaussian
distribution (each key is the average of four uniform draws scaled to
the key range); a uniform generator is provided as well.  Paper problem
size: 32K keys, 1K buckets.
"""

from __future__ import annotations

import numpy as np


def nas_keys(n: int = 32768, max_key: int = 1024, seed: int = 0) -> np.ndarray:
    """NAS-style keys: mean of 4 uniforms, scaled to [0, max_key)."""
    if n < 1 or max_key < 1:
        raise ValueError("n and max_key must be positive")
    rng = np.random.default_rng(seed)
    r = rng.random((n, 4)).mean(axis=1)
    keys = np.floor(r * max_key).astype(np.int64)
    return np.clip(keys, 0, max_key - 1)


def uniform_keys(n: int = 32768, max_key: int = 1024, seed: int = 0) -> np.ndarray:
    """Uniformly distributed keys in [0, max_key)."""
    if n < 1 or max_key < 1:
        raise ValueError("n and max_key must be positive")
    rng = np.random.default_rng(seed)
    return rng.integers(0, max_key, size=n, dtype=np.int64)


def reference_ranks(keys: np.ndarray) -> np.ndarray:
    """Stable ranks: position of each key in the sorted order.

    Equal keys are ranked by original index (the tie-break the parallel
    bucket sort produces when processors scan keys in index order).
    """
    order = np.argsort(keys, kind="stable")
    ranks = np.empty(len(keys), dtype=np.int64)
    ranks[order] = np.arange(len(keys))
    return ranks
