"""Sparse SPD matrices and symbolic Cholesky factorisation.

The paper factors a 1086x1086 sparse positive-definite matrix (30,824
non-zeros, 110,461 in the factor, 506 supernodes).  We generate matrices
with the same character — sparse SPD with data-dependent fill — from 2-D
grid Laplacians (the classic source of such systems) or random SPD
sparsity, and perform the symbolic factorisation (elimination tree +
factor column structures) that drives the parallel numeric phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class SparseSPD:
    """A sparse SPD matrix in column-compressed style (lower triangle).

    ``cols[j]`` holds the row indices ``i >= j`` of non-zeros in column
    ``j`` (diagonal first); ``vals[j]`` the matching values.
    """

    n: int
    cols: list[np.ndarray]
    vals: list[np.ndarray]

    @property
    def nnz_lower(self) -> int:
        return sum(len(c) for c in self.cols)

    def dense(self) -> np.ndarray:
        a = np.zeros((self.n, self.n))
        for j, (rows, vals) in enumerate(zip(self.cols, self.vals)):
            for i, v in zip(rows, vals):
                a[i, j] = v
                a[j, i] = v
        return a


@dataclass
class SymbolicFactor:
    """Structure of the Cholesky factor L.

    ``col_struct[j]`` — sorted row indices of column j of L (diagonal
    first); ``row_struct[j]`` — columns ``k < j`` with ``L[j,k] != 0``
    (the columns whose updates column j consumes); ``parent`` — the
    elimination tree; ``dep_count[j] = len(row_struct[j])``.
    """

    n: int
    col_struct: list[np.ndarray]
    row_struct: list[np.ndarray]
    parent: np.ndarray
    supernodes: list[tuple[int, int]] = field(default_factory=list)

    @property
    def nnz(self) -> int:
        return sum(len(c) for c in self.col_struct)

    def dep_counts(self) -> np.ndarray:
        return np.array([len(r) for r in self.row_struct], dtype=np.int64)


def nested_dissection_order(rows: int, cols: int) -> np.ndarray:
    """Nested-dissection elimination order of a ``rows x cols`` grid.

    Recursive bisection with one-cell-wide separators.  The returned
    permutation ``perm`` lists grid cells (row-major ids) in elimination
    order; it yields a bushy elimination tree, i.e. real task
    parallelism in the factorisation (a natural row-major order makes
    the tree a chain).
    """
    order: list[int] = []

    def dissect(r0: int, r1: int, c0: int, c1: int) -> None:
        h, w = r1 - r0, c1 - c0
        if h <= 0 or w <= 0:
            return
        if h * w <= 4:
            for r in range(r0, r1):
                for c in range(c0, c1):
                    order.append(r * cols + c)
            return
        if h >= w:
            mid = r0 + h // 2
            dissect(r0, mid, c0, c1)
            dissect(mid + 1, r1, c0, c1)
            for c in range(c0, c1):  # separator row last
                order.append(mid * cols + c)
        else:
            mid = c0 + w // 2
            dissect(r0, r1, c0, mid)
            dissect(r0, r1, mid + 1, c1)
            for r in range(r0, r1):  # separator column last
                order.append(r * cols + mid)

    dissect(0, rows, 0, cols)
    perm = np.array(order, dtype=np.int64)
    if len(perm) != rows * cols:
        raise AssertionError("nested dissection dropped cells")
    return perm


def grid_laplacian(rows: int, cols: int, shift: float = 0.1, ordering: str = "nd") -> SparseSPD:
    """5-point Laplacian of a ``rows x cols`` grid, shifted to be SPD.

    ``ordering`` is ``"nd"`` (nested dissection, parallel elimination
    tree — default) or ``"natural"`` (row-major, chain-like tree).
    """
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    n = rows * cols
    if ordering == "nd":
        perm = nested_dissection_order(rows, cols)
    elif ordering == "natural":
        perm = np.arange(n, dtype=np.int64)
    else:
        raise ValueError(f"unknown ordering {ordering!r}")
    inv = np.empty(n, dtype=np.int64)
    inv[perm] = np.arange(n)

    col_rows: list[list[int]] = [[] for _ in range(n)]
    col_vals: list[list[float]] = [[] for _ in range(n)]
    for r in range(rows):
        for c in range(cols):
            cell = r * cols + c
            j = int(inv[cell])
            degree = sum(
                1
                for rr, cc in ((r - 1, c), (r + 1, c), (r, c - 1), (r, c + 1))
                if 0 <= rr < rows and 0 <= cc < cols
            )
            col_rows[j].append(j)
            col_vals[j].append(degree + shift)
            for rr, cc in ((r + 1, c), (r, c + 1), (r - 1, c), (r, c - 1)):
                if 0 <= rr < rows and 0 <= cc < cols:
                    i = int(inv[rr * cols + cc])
                    if i > j:  # lower triangle only
                        col_rows[j].append(i)
                        col_vals[j].append(-1.0)
    spd = SparseSPD(
        n=n,
        cols=[np.array(r, dtype=np.int64) for r in col_rows],
        vals=[np.array(v) for v in col_vals],
    )
    # Keep row indices sorted within each column (diagonal first).
    for j in range(n):
        idx = np.argsort(spd.cols[j])
        spd.cols[j] = spd.cols[j][idx]
        spd.vals[j] = spd.vals[j][idx]
    return spd


def random_spd(n: int, density: float = 0.05, seed: int = 0) -> SparseSPD:
    """Random sparse SPD matrix (diagonally dominant)."""
    if not 0.0 <= density <= 1.0:
        raise ValueError("density must be in [0, 1]")
    rng = np.random.default_rng(seed)
    col_rows: list[list[int]] = [[j] for j in range(n)]
    col_vals: list[list[float]] = [[0.0] for _ in range(n)]
    row_sums = np.zeros(n)
    for j in range(n):
        for i in range(j + 1, n):
            if rng.random() < density:
                v = -rng.random()
                col_rows[j].append(i)
                col_vals[j].append(v)
                row_sums[i] += abs(v)
                row_sums[j] += abs(v)
    for j in range(n):
        col_vals[j][0] = row_sums[j] + 1.0 + rng.random()
    return SparseSPD(
        n=n,
        cols=[np.array(r, dtype=np.int64) for r in col_rows],
        vals=[np.array(v) for v in col_vals],
    )


def symbolic_cholesky(a: SparseSPD) -> SymbolicFactor:
    """Elimination tree and factor structure (Liu's algorithm).

    Column struct of L: ``struct(j) = A_struct(j) ∪ (∪_{children c}
    struct(c) \\ {c})``, restricted to rows ``>= j``.
    """
    n = a.n
    parent = np.full(n, -1, dtype=np.int64)
    children: list[list[int]] = [[] for _ in range(n)]
    col_struct: list[np.ndarray] = []
    for j in range(n):
        rows = set(int(i) for i in a.cols[j] if i >= j)
        rows.add(j)
        for c in children[j]:
            rows.update(int(i) for i in col_struct[c] if i > j)
        struct = np.array(sorted(rows), dtype=np.int64)
        col_struct.append(struct)
        if len(struct) > 1:
            p = int(struct[1])  # first off-diagonal row = etree parent
            parent[j] = p
            children[p].append(j)
    row_struct: list[list[int]] = [[] for _ in range(n)]
    for k in range(n):
        for i in col_struct[k][1:]:
            row_struct[int(i)].append(k)
    factor = SymbolicFactor(
        n=n,
        col_struct=col_struct,
        row_struct=[np.array(r, dtype=np.int64) for r in row_struct],
        parent=parent,
    )
    factor.supernodes = find_supernodes(factor)
    return factor


def find_supernodes(factor: SymbolicFactor) -> list[tuple[int, int]]:
    """Partition columns into supernodes (maximal chains of columns with
    nested structure), as the paper's Cholesky amalgamates columns with
    similar non-zero structure.  Returns ``[(first, last)]`` inclusive."""
    supernodes: list[tuple[int, int]] = []
    n = factor.n
    j = 0
    while j < n:
        last = j
        while (
            last + 1 < n
            and factor.parent[last] == last + 1
            and len(factor.col_struct[last]) == len(factor.col_struct[last + 1]) + 1
        ):
            last += 1
        supernodes.append((j, last))
        j = last + 1
    return supernodes


def reference_cholesky(a: SparseSPD) -> np.ndarray:
    """Dense numpy Cholesky for verification."""
    return np.linalg.cholesky(a.dense())
