"""Synthetic workload generators standing in for the paper's inputs."""

from .bodies import BodySet, direct_forces, two_clusters, uniform_disc
from .graphs import FlowNetwork, random_flow_network, reference_max_flow
from .keys import nas_keys, reference_ranks, uniform_keys
from .matrices import (
    SparseSPD,
    SymbolicFactor,
    find_supernodes,
    grid_laplacian,
    random_spd,
    reference_cholesky,
    symbolic_cholesky,
)

__all__ = [
    "BodySet",
    "FlowNetwork",
    "SparseSPD",
    "SymbolicFactor",
    "direct_forces",
    "find_supernodes",
    "grid_laplacian",
    "nas_keys",
    "random_flow_network",
    "random_spd",
    "reference_cholesky",
    "reference_max_flow",
    "reference_ranks",
    "symbolic_cholesky",
    "two_clusters",
    "uniform_disc",
    "uniform_keys",
]
