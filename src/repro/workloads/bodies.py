"""Initial conditions for the Barnes-Hut N-body application.

The paper simulates 128 bodies over 50 time steps (with an artificial
boost perturbing the sharing pattern every 10 steps).  We generate 2-D
body distributions: a uniform disc or a two-cluster configuration whose
interaction pattern changes as the clusters approach.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class BodySet:
    """Positions, velocities and masses of N bodies in 2-D."""

    pos: np.ndarray  # (n, 2)
    vel: np.ndarray  # (n, 2)
    mass: np.ndarray  # (n,)

    @property
    def n(self) -> int:
        return len(self.mass)

    def bounding_box(self) -> tuple[float, float, float]:
        """(xmin, ymin, size) of the square containing all bodies."""
        xmin, ymin = self.pos.min(axis=0)
        xmax, ymax = self.pos.max(axis=0)
        size = max(xmax - xmin, ymax - ymin, 1e-9)
        return float(xmin), float(ymin), float(size)


def uniform_disc(n: int = 128, radius: float = 1.0, seed: int = 0) -> BodySet:
    """Bodies scattered uniformly in a disc with small random velocities."""
    if n < 1:
        raise ValueError("need at least one body")
    rng = np.random.default_rng(seed)
    r = radius * np.sqrt(rng.random(n))
    theta = 2 * np.pi * rng.random(n)
    pos = np.column_stack([r * np.cos(theta), r * np.sin(theta)])
    vel = 0.05 * rng.standard_normal((n, 2))
    mass = 0.5 + rng.random(n)
    return BodySet(pos=pos, vel=vel, mass=mass)


def two_clusters(n: int = 128, separation: float = 4.0, seed: int = 0) -> BodySet:
    """Two equal clusters drifting toward each other (phase changes)."""
    rng = np.random.default_rng(seed)
    half = n // 2
    a = uniform_disc(half, radius=0.5, seed=seed)
    b = uniform_disc(n - half, radius=0.5, seed=seed + 1)
    a.pos[:, 0] -= separation / 2
    b.pos[:, 0] += separation / 2
    a.vel[:, 0] += 0.2
    b.vel[:, 0] -= 0.2
    return BodySet(
        pos=np.vstack([a.pos, b.pos]),
        vel=np.vstack([a.vel, b.vel]),
        mass=np.concatenate([a.mass, b.mass]),
    )


def direct_forces(bodies: BodySet, eps: float = 1e-3) -> np.ndarray:
    """O(N^2) gravitational accelerations (verification reference)."""
    pos, mass = bodies.pos, bodies.mass
    d = pos[None, :, :] - pos[:, None, :]
    r2 = (d**2).sum(axis=2) + eps**2
    np.fill_diagonal(r2, np.inf)
    inv_r3 = r2**-1.5
    return (d * (mass[None, :] * inv_r3)[:, :, None]).sum(axis=1)
