"""NAS Integer Sort (IS) kernel: parallel bucket-sort ranking.

Each processor histograms its static slice of the key array into
buckets, the per-processor histograms are combined into global bucket
counts, a prefix sum produces bucket start offsets, and every processor
ranks its own keys.  The communication pattern is statically defined —
an all-to-all exchange of histograms — which is why the paper sees
little reuse benefit from update protocols on IS (cold misses dominate).

Paper problem size: 32K keys, 1K buckets.
"""

from __future__ import annotations

from collections.abc import Generator

import numpy as np

from ..runtime.context import AppContext, Machine
from ..runtime.primitives import Barrier
from ..sim.events import Compute, Op
from ..workloads.keys import nas_keys
from .base import Application
from .costs import INT_OP, LOOP_OVERHEAD

# Constant-cost Compute ops shared by every yield of the same site; the
# engine consumes .cycles before the generator resumes and never mutates
# the op, so a single immutable instance per cost is safe.
_C_KEY = Compute(12 * INT_OP + LOOP_OVERHEAD)
_C_ACC = Compute(INT_OP + LOOP_OVERHEAD)
_C_PREFIX = Compute(2 * INT_OP + LOOP_OVERHEAD)


def bucket_stable_ranks(keys: np.ndarray, nbuckets: int, max_key: int) -> np.ndarray:
    """Reference ranks: stable sort by bucket then original index."""
    buckets = keys * nbuckets // max_key
    order = np.argsort(buckets, kind="stable")
    ranks = np.empty(len(keys), dtype=np.int64)
    ranks[order] = np.arange(len(keys))
    return ranks


class IntegerSort(Application):
    """Parallel bucket-sort ranking of integer keys."""

    name = "IS"

    def __init__(
        self,
        n_keys: int = 2048,
        nbuckets: int = 128,
        max_key: int | None = None,
        seed: int = 0,
    ):
        if n_keys < 1 or nbuckets < 1:
            raise ValueError("n_keys and nbuckets must be positive")
        self.n = n_keys
        self.nbuckets = nbuckets
        self.max_key = max_key if max_key is not None else nbuckets
        if self.max_key < nbuckets:
            raise ValueError("max_key must be >= nbuckets")
        self.keys_np = nas_keys(n_keys, self.max_key, seed=seed)
        self._machine: Machine | None = None

    # ------------------------------------------------------------------
    def setup(self, machine: Machine) -> None:
        self._machine = machine
        shm, sync = machine.shm, machine.sync
        p = machine.config.nprocs
        b = self.nbuckets
        self.keys = shm.array(self.n, "keys", align_line=True)
        self.keys.poke_many([int(k) for k in self.keys_np])
        #: per-processor histograms, proc-major layout
        self.hist = shm.array(p * b, "hist", fill=0, align_line=True)
        self.gcount = shm.array(b, "gcount", fill=0, align_line=True)
        self.gstart = shm.array(b, "gstart", fill=0, align_line=True)
        self.ranks = shm.array(self.n, "ranks", fill=-1, align_line=True)
        self.barrier = Barrier(sync, name="is.barrier")

    def _slice(self, pid: int, nprocs: int, total: int) -> tuple[int, int]:
        per = (total + nprocs - 1) // nprocs
        lo = min(pid * per, total)
        return lo, min(lo + per, total)

    def _bucket(self, key: int) -> int:
        return key * self.nbuckets // self.max_key

    # ------------------------------------------------------------------
    def worker(self, ctx: AppContext) -> Generator[Op, None, None]:
        p, b = ctx.nprocs, self.nbuckets
        pid = ctx.pid
        lo, hi = self._slice(pid, p, self.n)

        mk = self.max_key
        # Zero-call access paths for the per-key loops (see
        # SharedArray.hot_access).
        krd, _, kbase, kword, kdata = self.keys.hot_access()
        hrd, _, hbase, hword, hdata = self.hist.hot_access()

        # Phase 1: local histogram of this processor's key slice.
        yield from ctx.phase("histogram")
        local_hist = [0] * b
        my_keys: list[int] = []
        for i in range(lo, hi):
            krd.addr = kbase + i * kword
            yield krd
            ki = int(kdata[i])
            my_keys.append(ki)
            local_hist[ki * b // mk] += 1
            # bucket index arithmetic, bounds checks, loop control
            yield _C_KEY
        yield from self.hist.write_range(pid * b, local_hist)
        yield Compute(b * LOOP_OVERHEAD)
        yield from self.barrier.wait()

        # Phase 2: combine histograms for this processor's bucket range.
        yield from ctx.phase("combine")
        blo, bhi = self._slice(pid, p, b)
        for bucket in range(blo, bhi):
            total = 0
            for q in range(p):
                idx = q * b + bucket
                hrd.addr = hbase + idx * hword
                yield hrd
                total += int(hdata[idx])
                yield _C_ACC
            yield from self.gcount.write(bucket, total)
        yield from self.barrier.wait()

        # Phase 3: prefix sum over buckets (serial: algorithmic component).
        yield from ctx.phase("prefix")
        if pid == 0:
            running = 0
            for bucket in range(b):
                yield from self.gstart.write(bucket, running)
                running += int((yield from self.gcount.read(bucket)))
                yield _C_PREFIX
        yield from self.barrier.wait()

        # Phase 4: rank own keys.  Offset of this processor within each
        # bucket = global bucket start + counts of lower-numbered procs.
        yield from ctx.phase("rank")
        offsets: dict[int, int] = {}
        for bucket in sorted(set(k * b // mk for k in my_keys)):
            start = int((yield from self.gstart.read(bucket)))
            for q in range(pid):
                hidx = q * b + bucket
                hrd.addr = hbase + hidx * hword
                yield hrd
                start += int(hdata[hidx])
                yield _C_ACC
            offsets[bucket] = start
        _, rwr, rbase, rword, rdata = self.ranks.hot_access()
        for idx, k in enumerate(my_keys):
            bucket = k * b // mk
            rwr.addr = rbase + (lo + idx) * rword
            yield rwr
            rdata[lo + idx] = offsets[bucket]
            offsets[bucket] += 1
            yield _C_KEY
        yield from self.barrier.wait()

    # ------------------------------------------------------------------
    def verify(self) -> None:
        got = np.array(self.ranks.snapshot(), dtype=np.int64)
        want = bucket_stable_ranks(self.keys_np, self.nbuckets, self.max_key)
        if not np.array_equal(got, want):
            bad = int(np.count_nonzero(got != want))
            raise AssertionError(f"IS ranks wrong for {bad}/{self.n} keys")
