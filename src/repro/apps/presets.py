"""Input presets: the paper's problem sizes and scaled-down defaults.

The paper's inputs (Section 5):

* Cholesky — 1086x1086 sparse SPD matrix, 30,824 non-zeros, 110,461 in
  the factor, 506 supernodes;
* IS — 32K integers, 1K buckets;
* Maxflow — 200 vertices, 400 bidirectional edges;
* Barnes-Hut — 128 bodies, 50 time steps, sharing boost every 10 steps.

``paper_scale()`` builds application factories at those sizes (for the
matrix we generate a grid Laplacian with a comparable non-zero count —
a 33x33 grid gives 1089 columns, the closest square to the paper's
1086).  Expect long wall-clock times: this is execution-driven
simulation in Python.  ``default_scale()`` is the reduced configuration
used by the benchmark harness; ``smoke_scale()`` is for tests.
"""

from __future__ import annotations

from collections.abc import Callable

from .base import Application
from .factory import AppFactory

#: (factory, expect_reuse) per application name.  Factories are
#: :class:`AppFactory` instances, so every preset is picklable and can
#: run through the process-pool layer (``repro.core.parallel``).
Preset = dict[str, tuple[Callable[[], Application], bool]]

#: Named preset scales, for CLI/bench selection.
SCALES = ("smoke", "small", "default", "large", "paper")


def paper_scale() -> Preset:
    """The paper's input sizes (slow: minutes per system per app)."""
    return {
        "Cholesky": (AppFactory("Cholesky", grid=(33, 33)), False),
        "IS": (AppFactory("IS", n_keys=32768, nbuckets=1024), False),
        "Maxflow": (AppFactory("Maxflow", n=200, extra_edges=400, seed=0), True),
        "Nbody": (AppFactory("Nbody", n_bodies=128, steps=50, boost_interval=10), True),
    }


def default_scale() -> Preset:
    """The benchmark harness's reduced inputs (seconds per run)."""
    return {
        "Cholesky": (AppFactory("Cholesky", grid=(10, 10)), False),
        "IS": (AppFactory("IS", n_keys=2048, nbuckets=128), False),
        "Maxflow": (AppFactory("Maxflow", n=48, extra_edges=96, seed=0), True),
        "Nbody": (AppFactory("Nbody", n_bodies=128, steps=10, boost_interval=5), True),
    }


def large_scale() -> Preset:
    """~10x the default workloads, for the P=64/256 scaling regime.

    Sized so overhead decompositions stay discriminating as the machine
    grows: every application carries enough parallel slack (keys,
    columns, vertices, bodies) to keep 64-256 processors busy, at
    roughly an order of magnitude more simulated work than ``default``.
    """
    return {
        "Cholesky": (AppFactory("Cholesky", grid=(20, 20)), False),
        "IS": (AppFactory("IS", n_keys=20480, nbuckets=256), False),
        "Maxflow": (AppFactory("Maxflow", n=150, extra_edges=300, seed=0), True),
        "Nbody": (AppFactory("Nbody", n_bodies=512, steps=10, boost_interval=5), True),
    }


def small_scale() -> Preset:
    """Between smoke and default: the scenario matrix's scale.

    Large enough that degradation visibly moves the stall decomposition
    (the smoke inputs barely touch the network), small enough that the
    full scenario x app x system matrix finishes in seconds.
    """
    return {
        "Cholesky": (AppFactory("Cholesky", grid=(6, 6)), False),
        "IS": (AppFactory("IS", n_keys=512, nbuckets=64), False),
        "Maxflow": (AppFactory("Maxflow", n=24, extra_edges=48, seed=0), True),
        "Nbody": (AppFactory("Nbody", n_bodies=32, steps=3, boost_interval=1), True),
    }


def smoke_scale() -> Preset:
    """Tiny inputs for fast tests."""
    return {
        "Cholesky": (AppFactory("Cholesky", grid=(4, 4)), False),
        "IS": (AppFactory("IS", n_keys=128, nbuckets=16), False),
        "Maxflow": (AppFactory("Maxflow", n=12, extra_edges=18, seed=1), True),
        "Nbody": (AppFactory("Nbody", n_bodies=12, steps=2, boost_interval=1), True),
    }


def preset(scale: str) -> Preset:
    """Look up a preset by scale name (one of :data:`SCALES`)."""
    try:
        return {
            "smoke": smoke_scale,
            "small": small_scale,
            "default": default_scale,
            "large": large_scale,
            "paper": paper_scale,
        }[scale]()
    except KeyError:
        raise ValueError(f"unknown scale {scale!r}; choose from {', '.join(SCALES)}") from None
