"""RacyDemo: a deliberately mis-synchronised two-processor kernel.

The regression oracle for the race detector (``repro check --app
RacyDemo``): processors 0 and 1 both read-modify-write ``racy.data[0]``
with **no** synchronisation, and also keep a properly lock-protected
counter so the detector demonstrably separates the two.  It is *not*
part of the preset study set — its entire purpose is to be flagged.

The simulator's conservative scheduling serialises the unsynchronised
increments in simulated-time order, so the run itself is deterministic
and ``verify`` can still bound the result; on a real machine the same
labeling would be a bug, which is exactly what the paper's programming
model (properly-labeled release consistency) outlaws.
"""

from __future__ import annotations

from collections.abc import Generator

from ..runtime.context import AppContext, Machine
from ..runtime.primitives import Lock
from ..sim.events import Op
from .base import Application

#: Processors that hammer the shared word without synchronisation.
RACERS = 2


class RacyDemo(Application):
    name = "RacyDemo"

    def __init__(self, rounds: int = 4):
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        self.rounds = rounds

    def setup(self, machine: Machine) -> None:
        shm = machine.shm
        self.data = shm.array(RACERS, "racy.data", align_line=True)
        self.safe = shm.scalar("racy.safe")
        self.lock = Lock(machine.sync, "racy.lock")

    def worker(self, ctx: AppContext) -> Generator[Op, None, None]:
        if ctx.pid >= RACERS:
            return
        yield from ctx.phase("race-rounds")
        for _ in range(self.rounds):
            # The bug under test: an unsynchronised read-modify-write of
            # data[0] by both processors (racy), plus a write of one's
            # own data[pid] that the *other* processor then reads (also
            # racy, read/write this time).
            yield from self.data.add(0, 1)
            yield from self.data.write(ctx.pid, ctx.pid)
            yield from self.data.read(1 - ctx.pid)
            # The control: the same pattern under a lock is race-free.
            yield from self.lock.acquire()
            yield from self.safe.incr()
            yield from self.lock.release()
            yield from ctx.compute(10.0)

    def verify(self) -> None:
        total = self.safe.value()
        assert total == RACERS * self.rounds, (
            f"locked counter lost updates: {total} != {RACERS * self.rounds}"
        )
        # The racy counter is deterministic *in the simulator* (the
        # engine serialises accesses in simulated time) but would not be
        # on a real machine; only sanity-bound it.
        assert 1 <= self.data.peek(0) <= RACERS * self.rounds
