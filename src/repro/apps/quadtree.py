"""2-D Barnes-Hut quadtree (pure-Python substrate).

Used in two ways: the simulated application's tree-build phase runs this
code on values it read through the simulated shared memory, and the
sequential reference implementation runs the same code on plain arrays —
so the parallel run can be verified bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import sqrt

#: Maximum insertion depth; beyond it coincident bodies are merged.
MAX_DEPTH = 48


@dataclass
class QuadTree:
    """Flat quadtree: arrays indexed by node id, root is node 0.

    Leaves hold one body (``body[nid] >= 0``); internal nodes hold four
    child slots (-1 = empty) and the centre of mass of their subtree.
    """

    cx: list[float] = field(default_factory=list)
    cy: list[float] = field(default_factory=list)
    half: list[float] = field(default_factory=list)
    comx: list[float] = field(default_factory=list)
    comy: list[float] = field(default_factory=list)
    mass: list[float] = field(default_factory=list)
    child: list[int] = field(default_factory=list)  # 4 slots per node
    body: list[int] = field(default_factory=list)

    @property
    def nnodes(self) -> int:
        return len(self.cx)

    def _new_node(self, cx: float, cy: float, half: float) -> int:
        nid = len(self.cx)
        self.cx.append(cx)
        self.cy.append(cy)
        self.half.append(half)
        self.comx.append(0.0)
        self.comy.append(0.0)
        self.mass.append(0.0)
        self.child.extend([-1, -1, -1, -1])
        self.body.append(-1)
        return nid

    def _quadrant(self, nid: int, x: float, y: float) -> tuple[int, float, float]:
        """(quadrant index, child centre x, child centre y)."""
        q = 0
        h = self.half[nid] / 2.0
        cx, cy = self.cx[nid], self.cy[nid]
        if x >= cx:
            q |= 1
            ccx = cx + h
        else:
            ccx = cx - h
        if y >= cy:
            q |= 2
            ccy = cy + h
        else:
            ccy = cy - h
        return q, ccx, ccy

    def _insert(self, nid: int, b: int, xs, ys, ms, depth: int) -> None:
        # Iterative descent (the build phase dominates the Nbody host
        # profile).  Node-creation order matches the recursive original:
        # a displaced resident body is pushed down before ``b`` descends,
        # so node ids — and therefore traversal order — are unchanged.
        body = self.body
        child = self.child
        cxs = self.cx
        cys = self.cy
        halves = self.half
        x = xs[b]
        y = ys[b]
        while True:
            i4 = 4 * nid
            resident = body[nid]
            if (
                resident == -1
                and child[i4] == -1
                and child[i4 + 1] == -1
                and child[i4 + 2] == -1
                and child[i4 + 3] == -1
            ):
                body[nid] = b  # empty leaf
                return
            if resident >= 0:
                if depth >= MAX_DEPTH:
                    # Coincident bodies: aggregate into the resident body.
                    ms[resident] += ms[b]
                    return
                body[nid] = -1
                self._push_down(nid, resident, xs, ys, ms, depth)
            # Descend into b's quadrant (inlined _push_down tail call).
            h = halves[nid] / 2.0
            cx = cxs[nid]
            cy = cys[nid]
            if x >= cx:
                q = 1
                ccx = cx + h
            else:
                q = 0
                ccx = cx - h
            if y >= cy:
                q |= 2
                ccy = cy + h
            else:
                ccy = cy - h
            slot = i4 + q
            c = child[slot]
            if c == -1:
                c = self._new_node(ccx, ccy, h)
                child[slot] = c
            nid = c
            depth += 1

    def _push_down(self, nid: int, b: int, xs, ys, ms, depth: int) -> None:
        q, ccx, ccy = self._quadrant(nid, xs[b], ys[b])
        slot = 4 * nid + q
        if self.child[slot] == -1:
            self.child[slot] = self._new_node(ccx, ccy, self.half[nid] / 2.0)
        self._insert(self.child[slot], b, xs, ys, ms, depth + 1)

    def _summarise(self, nid: int) -> tuple[float, float, float]:
        b = self.body[nid]
        if b >= 0:
            m, mx, my = self._body_moments[b]
            self.mass[nid] = m
            self.comx[nid] = mx / m
            self.comy[nid] = my / m
            return m, mx, my
        m = mx = my = 0.0
        for q in range(4):
            c = self.child[4 * nid + q]
            if c != -1:
                cm, cmx, cmy = self._summarise(c)
                m += cm
                mx += cmx
                my += cmy
        self.mass[nid] = m
        self.comx[nid] = mx / m if m else 0.0
        self.comy[nid] = my / m if m else 0.0
        return m, mx, my


def build_tree(xs, ys, ms) -> QuadTree:
    """Build the quadtree for bodies at (xs, ys) with masses ms."""
    n = len(xs)
    if n == 0:
        raise ValueError("cannot build a tree with no bodies")
    xmin, xmax = min(xs), max(xs)
    ymin, ymax = min(ys), max(ys)
    half = max(xmax - xmin, ymax - ymin, 1e-9) / 2.0 * 1.0001
    tree = QuadTree()
    tree._new_node((xmin + xmax) / 2.0, (ymin + ymax) / 2.0, half)
    ms = list(ms)  # aggregation may modify masses locally
    for b in range(n):
        tree._insert(0, b, xs, ys, ms, 0)
    tree._body_moments = [
        (ms[b], ms[b] * xs[b], ms[b] * ys[b]) for b in range(n)
    ]
    tree._summarise(0)
    return tree


def accel_kernel(dx: float, dy: float, m: float, eps: float) -> tuple[float, float]:
    """Gravitational acceleration contribution of mass ``m`` at offset
    (dx, dy) with Plummer softening ``eps`` (shared by sim & reference)."""
    r2 = dx * dx + dy * dy + eps * eps
    inv = m / (r2 * sqrt(r2))
    return dx * inv, dy * inv


def opens(half: float, dx: float, dy: float, eps: float, theta: float) -> bool:
    """Multipole-acceptance test: must the node be opened?"""
    r2 = dx * dx + dy * dy + eps * eps
    size = 2.0 * half
    return size * size >= theta * theta * r2


def force_reference(
    tree: QuadTree, i: int, xs, ys, theta: float, eps: float
) -> tuple[float, float]:
    """Sequential force on body ``i`` (mirrors the simulated traversal)."""
    x, y = xs[i], ys[i]
    ax = ay = 0.0
    stack = [0]
    while stack:
        nid = stack.pop()
        b = tree.body[nid]
        if b >= 0:
            if b != i:
                fx, fy = accel_kernel(tree.comx[nid] - x, tree.comy[nid] - y, tree.mass[nid], eps)
                ax += fx
                ay += fy
            continue
        dx = tree.comx[nid] - x
        dy = tree.comy[nid] - y
        if not opens(tree.half[nid], dx, dy, eps, theta):
            fx, fy = accel_kernel(dx, dy, tree.mass[nid], eps)
            ax += fx
            ay += fy
        else:
            for q in range(3, -1, -1):
                c = tree.child[4 * nid + q]
                if c != -1:
                    stack.append(c)
    return ax, ay
