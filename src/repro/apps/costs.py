"""Computation cost model.

SPASM counted the actual instructions of compiled application code; our
applications charge explicit cycle costs per arithmetic operation
instead (see DESIGN.md, substitutions).  The constants below set the
computation-to-communication ratio; they approximate a scalar early-90s
RISC core (single-issue, multi-cycle FP).
"""

from __future__ import annotations

#: Integer ALU op (add/compare/index arithmetic).
INT_OP = 1.0
#: Floating-point add/multiply.
FLOP = 4.0
#: Fused cost of one floating multiply-add.
FMA = 6.0
#: Floating divide.
FDIV = 20.0
#: Square root.
FSQRT = 30.0
#: Branch + loop bookkeeping per iteration.
LOOP_OVERHEAD = 2.0
#: Function-call style overhead for a task dispatch.
DISPATCH = 10.0
