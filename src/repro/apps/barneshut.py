"""Barnes-Hut N-body simulation (2-D).

Bodies are statically assigned to processors; every time step runs the
paper's three phases:

1. **gather/build** — every processor reads all body positions and
   masses through shared memory and builds its (replicated) quadtree
   privately.  The body arrays carry the application's producer-consumer
   pattern: each position is produced by its owner and consumed by all
   processors, so update-based protocols deliver new positions into
   caches while the invalidate protocol pays a miss per line per step.
2. **force** — forces on owned bodies are computed from the private
   tree (pure computation).
3. **update** — owners integrate and write back their bodies' positions
   and velocities.

Every ``boost_interval`` steps the body-to-processor assignment rotates,
emulating the paper's "artificial boost to affect the sharing pattern
every 10 time steps" (the set of producers for each line changes).
"""

from __future__ import annotations

from collections.abc import Generator
from math import sqrt

import numpy as np

from ..runtime.context import AppContext, Machine
from ..runtime.primitives import Barrier
from ..sim.events import Compute, Op
from ..workloads.bodies import BodySet, uniform_disc
from .base import Application
from .costs import FDIV, FLOP, FMA, FSQRT, INT_OP, LOOP_OVERHEAD
from .quadtree import QuadTree, build_tree, force_reference, opens

#: cycles per quadtree node allocated/summarised during the build phase
_BUILD_NODE_COST = 12 * INT_OP + 4 * FLOP
#: cycles per insertion descent level
_INSERT_LEVEL_COST = 6 * INT_OP

#: Per-node costs for the fused traversal below.  The expressions match
#: :func:`traversal_cost` exactly (same operands, same evaluation order)
#: so the accumulated cycle totals stay bit-identical.
_VISIT_COST = LOOP_OVERHEAD + INT_OP
_KERNEL_COST = 4 * FMA + FSQRT + FDIV
_OPEN_TEST_COST = 3 * FLOP

#: Reusable integrate-step op (the engine consumes .cycles before the
#: generator resumes and never mutates the op).
_C_UPDATE = Compute(4 * FMA + LOOP_OVERHEAD)

#: Host-side memo of force traversals, keyed *by value* on everything
#: the result depends on.  A study sweep runs the same application under
#: five memory systems; the Python-level dynamics are identical across
#: those runs, so each (positions, masses, body) force is recomputed up
#: to 5x without this.  Like the per-instance tree memo, this changes
#: no simulated timing — every processor still yields the same
#: ``Compute(cost)`` — and a divergent (racy) run produces a different
#: key and falls back to a fresh computation.
_FORCE_MEMO: dict[tuple, dict[int, tuple[float, float, float]]] = {}
_FORCE_MEMO_MAX = 16


def _force_memo_for(xs, ys, ms, theta: float, eps: float) -> dict:
    """Per-timestep force-result store for the given dynamics state."""
    key = (theta, eps, tuple(xs), tuple(ys), tuple(ms))
    memo = _FORCE_MEMO.get(key)
    if memo is None:
        if len(_FORCE_MEMO) >= _FORCE_MEMO_MAX:
            # FIFO eviction: steps are visited in order, old states never
            # recur, so the oldest entry is always the dead one.
            del _FORCE_MEMO[next(iter(_FORCE_MEMO))]
        memo = _FORCE_MEMO[key] = {}
    return memo


def traversal_cost(tree: QuadTree, i: int, xs, ys, theta: float, eps: float) -> float:
    """Cycles for the force traversal of body ``i`` (mirrors
    :func:`force_reference`'s control flow)."""
    x, y = xs[i], ys[i]
    cycles = 0.0
    stack = [0]
    while stack:
        nid = stack.pop()
        b = tree.body[nid]
        cycles += LOOP_OVERHEAD + INT_OP
        if b >= 0:
            if b != i:
                cycles += 4 * FMA + FSQRT + FDIV
            continue
        dx = tree.comx[nid] - x
        dy = tree.comy[nid] - y
        cycles += 3 * FLOP
        if not opens(tree.half[nid], dx, dy, eps, theta):
            cycles += 4 * FMA + FSQRT + FDIV
        else:
            for q in range(3, -1, -1):
                c = tree.child[4 * nid + q]
                cycles += INT_OP
                if c != -1:
                    stack.append(c)
    return cycles


def force_and_cost(
    tree: QuadTree, i: int, xs, ys, theta: float, eps: float
) -> tuple[float, float, float]:
    """Force on body ``i`` plus the traversal's cycle cost, in one pass.

    Replicates :func:`force_reference` and :func:`traversal_cost`
    operation for operation — same stack order, same IEEE operand order
    for both the acceleration and the cycle accumulations — so
    ``(ax, ay)`` and ``cycles`` are bit-identical to running the two
    reference traversals separately.  Fusing them halves the tree walks,
    which dominate the Nbody host profile.
    """
    x = xs[i]
    y = ys[i]
    body = tree.body
    comx = tree.comx
    comy = tree.comy
    mass = tree.mass
    half = tree.half
    child = tree.child
    eps2 = eps * eps
    theta2 = theta * theta
    ax = ay = 0.0
    cycles = 0.0
    stack = [0]
    pop = stack.pop
    push = stack.append
    while stack:
        nid = pop()
        b = body[nid]
        cycles += _VISIT_COST
        if b >= 0:
            if b != i:
                dx = comx[nid] - x
                dy = comy[nid] - y
                r2 = dx * dx + dy * dy + eps2
                inv = mass[nid] / (r2 * sqrt(r2))
                ax += dx * inv
                ay += dy * inv
                cycles += _KERNEL_COST
            continue
        dx = comx[nid] - x
        dy = comy[nid] - y
        cycles += _OPEN_TEST_COST
        r2 = dx * dx + dy * dy + eps2
        size = 2.0 * half[nid]
        if size * size < theta2 * r2:
            inv = mass[nid] / (r2 * sqrt(r2))
            ax += dx * inv
            ay += dy * inv
            cycles += _KERNEL_COST
        else:
            i4 = 4 * nid
            for q in (3, 2, 1, 0):
                c = child[i4 + q]
                cycles += INT_OP
                if c != -1:
                    push(c)
    return ax, ay, cycles


def reference_run(
    bodies: BodySet, steps: int, dt: float, theta: float, eps: float
) -> tuple[np.ndarray, np.ndarray]:
    """Sequential Barnes-Hut with the same arithmetic as the parallel
    version; returns final (pos, vel)."""
    xs = [float(v) for v in bodies.pos[:, 0]]
    ys = [float(v) for v in bodies.pos[:, 1]]
    vx = [float(v) for v in bodies.vel[:, 0]]
    vy = [float(v) for v in bodies.vel[:, 1]]
    ms = [float(v) for v in bodies.mass]
    n = len(ms)
    for _ in range(steps):
        tree = build_tree(xs, ys, ms)
        acc = [force_reference(tree, i, xs, ys, theta, eps) for i in range(n)]
        for i in range(n):
            vx[i] += acc[i][0] * dt
            vy[i] += acc[i][1] * dt
            xs[i] += vx[i] * dt
            ys[i] += vy[i] * dt
    return np.column_stack([xs, ys]), np.column_stack([vx, vy])


class BarnesHut(Application):
    """Parallel Barnes-Hut on the simulated shared-memory machine."""

    name = "Nbody"

    def __init__(
        self,
        bodies: BodySet | None = None,
        n_bodies: int = 128,
        steps: int = 10,
        dt: float = 0.02,
        theta: float = 0.5,
        eps: float = 0.05,
        boost_interval: int = 5,
        seed: int = 0,
    ):
        self.bodies = bodies if bodies is not None else uniform_disc(n_bodies, seed=seed)
        self.n = self.bodies.n
        self.steps = steps
        self.dt = dt
        self.theta = theta
        self.eps = eps
        self.boost_interval = boost_interval
        self._machine: Machine | None = None
        #: Per-step memo of the replicated tree build: every processor
        #: builds its tree from the same DRF-published positions, so one
        #: host-side build can serve all of them.  The cached inputs are
        #: compared by value before reuse, so a divergent (racy) run
        #: falls back to a private rebuild and stays correct.  Simulated
        #: timing is untouched: each processor still pays the build's
        #: Compute cost.
        self._tree_memo: tuple | None = None

    # ------------------------------------------------------------------
    def setup(self, machine: Machine) -> None:
        self._machine = machine
        shm, sync = machine.shm, machine.sync
        n = self.n
        self.px = shm.array(n, "px", align_line=True)
        self.py = shm.array(n, "py", align_line=True)
        self.vx = shm.array(n, "vx", align_line=True)
        self.vy = shm.array(n, "vy", align_line=True)
        self.ms = shm.array(n, "mass", align_line=True)
        self.px.poke_many([float(v) for v in self.bodies.pos[:, 0]])
        self.py.poke_many([float(v) for v in self.bodies.pos[:, 1]])
        self.vx.poke_many([float(v) for v in self.bodies.vel[:, 0]])
        self.vy.poke_many([float(v) for v in self.bodies.vel[:, 1]])
        self.ms.poke_many([float(v) for v in self.bodies.mass])
        self.barrier = Barrier(sync, name="bh.barrier")
        self._tree_memo = None

    def _partition(self, pid: int, nprocs: int, step: int) -> tuple[int, int]:
        """Body slice owned by ``pid`` at ``step`` (rotates on boosts)."""
        shift = (step // self.boost_interval) % nprocs if self.boost_interval else 0
        owner = (pid + shift) % nprocs
        per = (self.n + nprocs - 1) // nprocs
        lo = min(owner * per, self.n)
        return lo, min(lo + per, self.n)

    # ------------------------------------------------------------------
    def worker(self, ctx: AppContext) -> Generator[Op, None, None]:
        n = self.n
        # Zero-call access path for the per-step position gather (see
        # SharedArray.hot_access): the full-array read is the app-side
        # hot loop and the read_range delegation frame was measurable.
        pxrd, _, pxbase, pxword, pxdata = self.px.hot_access()
        pyrd, _, pybase, pyword, pydata = self.py.hot_access()
        # Masses are static: read them once (cold misses only).
        ms = yield from self.ms.read_range(0, n)
        # Velocities are consumed only by the owning processor, so they
        # live in private storage and migrate through the shared arrays
        # only when the assignment rotates (and at the end of the run).
        vxs: list[float] = []
        vys: list[float] = []
        prev_slice: tuple[int, int] | None = None
        for step in range(self.steps):
            lo, hi = self._partition(ctx.pid, ctx.nprocs, step)
            if (lo, hi) != prev_slice:
                vxs = yield from self.vx.read_range(lo, hi)
                vys = yield from self.vy.read_range(lo, hi)
                prev_slice = (lo, hi)
            # Phase 1: gather all positions, build the replicated tree.
            yield from ctx.phase(f"build.{step}")
            xs = []
            append_x = xs.append
            for i in range(n):
                pxrd.addr = pxbase + i * pxword
                yield pxrd
                append_x(pxdata[i])
            ys = []
            append_y = ys.append
            for i in range(n):
                pyrd.addr = pybase + i * pyword
                yield pyrd
                append_y(pydata[i])
            memo = self._tree_memo
            if (
                memo is not None
                and memo[0] == step
                and memo[1] == xs
                and memo[2] == ys
                and memo[3] == ms
            ):
                tree = memo[4]
            else:
                tree = build_tree(xs, ys, ms)
                self._tree_memo = (step, xs, ys, ms, tree)
            yield Compute(
                tree.nnodes * _BUILD_NODE_COST + n * 4 * _INSERT_LEVEL_COST
            )
            # Phase 2: forces on owned bodies (private computation).
            yield from ctx.phase(f"force.{step}")
            acc: dict[int, tuple[float, float]] = {}
            fmemo = _force_memo_for(xs, ys, ms, self.theta, self.eps)
            for i in range(lo, hi):
                r = fmemo.get(i)
                if r is None:
                    r = force_and_cost(tree, i, xs, ys, self.theta, self.eps)
                    fmemo[i] = r
                ax, ay, cost = r
                acc[i] = (ax, ay)
                yield Compute(cost)
            yield from self.barrier.wait()
            # Phase 3: integrate owned bodies and publish positions.
            # Writes go in per-array passes so consecutive words of a
            # cache line coalesce in the merge buffer.
            yield from ctx.phase(f"update.{step}")
            nxs, nys = [], []
            for k, i in enumerate(range(lo, hi)):
                ax, ay = acc[i]
                vxs[k] += ax * self.dt
                vys[k] += ay * self.dt
                nxs.append(xs[i] + vxs[k] * self.dt)
                nys.append(ys[i] + vys[k] * self.dt)
                yield _C_UPDATE
            yield from self.px.write_range(lo, nxs)
            yield from self.py.write_range(lo, nys)
            last_of_epoch = (
                step == self.steps - 1
                or self._partition(ctx.pid, ctx.nprocs, step + 1) != (lo, hi)
            )
            if last_of_epoch:
                yield from self.vx.write_range(lo, vxs)
                yield from self.vy.write_range(lo, vys)
            yield from self.barrier.wait()

    # ------------------------------------------------------------------
    def verify(self) -> None:
        want_pos, want_vel = reference_run(
            self.bodies, self.steps, self.dt, self.theta, self.eps
        )
        got_pos = np.column_stack([self.px.snapshot(), self.py.snapshot()])
        got_vel = np.column_stack([self.vx.snapshot(), self.vy.snapshot()])
        if not np.allclose(got_pos, want_pos, rtol=1e-10, atol=1e-12):
            err = float(np.abs(got_pos - want_pos).max())
            raise AssertionError(f"Barnes-Hut positions diverge, max err {err}")
        if not np.allclose(got_vel, want_vel, rtol=1e-10, atol=1e-12):
            err = float(np.abs(got_vel - want_vel).max())
            raise AssertionError(f"Barnes-Hut velocities diverge, max err {err}")
