"""Barnes-Hut N-body simulation (2-D).

Bodies are statically assigned to processors; every time step runs the
paper's three phases:

1. **gather/build** — every processor reads all body positions and
   masses through shared memory and builds its (replicated) quadtree
   privately.  The body arrays carry the application's producer-consumer
   pattern: each position is produced by its owner and consumed by all
   processors, so update-based protocols deliver new positions into
   caches while the invalidate protocol pays a miss per line per step.
2. **force** — forces on owned bodies are computed from the private
   tree (pure computation).
3. **update** — owners integrate and write back their bodies' positions
   and velocities.

Every ``boost_interval`` steps the body-to-processor assignment rotates,
emulating the paper's "artificial boost to affect the sharing pattern
every 10 time steps" (the set of producers for each line changes).
"""

from __future__ import annotations

from collections.abc import Generator

import numpy as np

from ..runtime.context import AppContext, Machine
from ..runtime.primitives import Barrier
from ..sim.events import Compute, Op
from ..workloads.bodies import BodySet, uniform_disc
from .base import Application
from .costs import FDIV, FLOP, FMA, FSQRT, INT_OP, LOOP_OVERHEAD
from .quadtree import QuadTree, build_tree, force_reference, opens

#: cycles per quadtree node allocated/summarised during the build phase
_BUILD_NODE_COST = 12 * INT_OP + 4 * FLOP
#: cycles per insertion descent level
_INSERT_LEVEL_COST = 6 * INT_OP


def traversal_cost(tree: QuadTree, i: int, xs, ys, theta: float, eps: float) -> float:
    """Cycles for the force traversal of body ``i`` (mirrors
    :func:`force_reference`'s control flow)."""
    x, y = xs[i], ys[i]
    cycles = 0.0
    stack = [0]
    while stack:
        nid = stack.pop()
        b = tree.body[nid]
        cycles += LOOP_OVERHEAD + INT_OP
        if b >= 0:
            if b != i:
                cycles += 4 * FMA + FSQRT + FDIV
            continue
        dx = tree.comx[nid] - x
        dy = tree.comy[nid] - y
        cycles += 3 * FLOP
        if not opens(tree.half[nid], dx, dy, eps, theta):
            cycles += 4 * FMA + FSQRT + FDIV
        else:
            for q in range(3, -1, -1):
                c = tree.child[4 * nid + q]
                cycles += INT_OP
                if c != -1:
                    stack.append(c)
    return cycles


def reference_run(
    bodies: BodySet, steps: int, dt: float, theta: float, eps: float
) -> tuple[np.ndarray, np.ndarray]:
    """Sequential Barnes-Hut with the same arithmetic as the parallel
    version; returns final (pos, vel)."""
    xs = [float(v) for v in bodies.pos[:, 0]]
    ys = [float(v) for v in bodies.pos[:, 1]]
    vx = [float(v) for v in bodies.vel[:, 0]]
    vy = [float(v) for v in bodies.vel[:, 1]]
    ms = [float(v) for v in bodies.mass]
    n = len(ms)
    for _ in range(steps):
        tree = build_tree(xs, ys, ms)
        acc = [force_reference(tree, i, xs, ys, theta, eps) for i in range(n)]
        for i in range(n):
            vx[i] += acc[i][0] * dt
            vy[i] += acc[i][1] * dt
            xs[i] += vx[i] * dt
            ys[i] += vy[i] * dt
    return np.column_stack([xs, ys]), np.column_stack([vx, vy])


class BarnesHut(Application):
    """Parallel Barnes-Hut on the simulated shared-memory machine."""

    name = "Nbody"

    def __init__(
        self,
        bodies: BodySet | None = None,
        n_bodies: int = 128,
        steps: int = 10,
        dt: float = 0.02,
        theta: float = 0.5,
        eps: float = 0.05,
        boost_interval: int = 5,
        seed: int = 0,
    ):
        self.bodies = bodies if bodies is not None else uniform_disc(n_bodies, seed=seed)
        self.n = self.bodies.n
        self.steps = steps
        self.dt = dt
        self.theta = theta
        self.eps = eps
        self.boost_interval = boost_interval
        self._machine: Machine | None = None

    # ------------------------------------------------------------------
    def setup(self, machine: Machine) -> None:
        self._machine = machine
        shm, sync = machine.shm, machine.sync
        n = self.n
        self.px = shm.array(n, "px", align_line=True)
        self.py = shm.array(n, "py", align_line=True)
        self.vx = shm.array(n, "vx", align_line=True)
        self.vy = shm.array(n, "vy", align_line=True)
        self.ms = shm.array(n, "mass", align_line=True)
        self.px.poke_many([float(v) for v in self.bodies.pos[:, 0]])
        self.py.poke_many([float(v) for v in self.bodies.pos[:, 1]])
        self.vx.poke_many([float(v) for v in self.bodies.vel[:, 0]])
        self.vy.poke_many([float(v) for v in self.bodies.vel[:, 1]])
        self.ms.poke_many([float(v) for v in self.bodies.mass])
        self.barrier = Barrier(sync, name="bh.barrier")

    def _partition(self, pid: int, nprocs: int, step: int) -> tuple[int, int]:
        """Body slice owned by ``pid`` at ``step`` (rotates on boosts)."""
        shift = (step // self.boost_interval) % nprocs if self.boost_interval else 0
        owner = (pid + shift) % nprocs
        per = (self.n + nprocs - 1) // nprocs
        lo = min(owner * per, self.n)
        return lo, min(lo + per, self.n)

    # ------------------------------------------------------------------
    def worker(self, ctx: AppContext) -> Generator[Op, None, None]:
        n = self.n
        # Masses are static: read them once (cold misses only).
        ms = yield from self.ms.read_range(0, n)
        # Velocities are consumed only by the owning processor, so they
        # live in private storage and migrate through the shared arrays
        # only when the assignment rotates (and at the end of the run).
        vxs: list[float] = []
        vys: list[float] = []
        prev_slice: tuple[int, int] | None = None
        for step in range(self.steps):
            lo, hi = self._partition(ctx.pid, ctx.nprocs, step)
            if (lo, hi) != prev_slice:
                vxs = yield from self.vx.read_range(lo, hi)
                vys = yield from self.vy.read_range(lo, hi)
                prev_slice = (lo, hi)
            # Phase 1: gather all positions, build the replicated tree.
            yield from ctx.phase(f"build.{step}")
            xs = yield from self.px.read_range(0, n)
            ys = yield from self.py.read_range(0, n)
            tree = build_tree(xs, ys, ms)
            yield Compute(
                tree.nnodes * _BUILD_NODE_COST + n * 4 * _INSERT_LEVEL_COST
            )
            # Phase 2: forces on owned bodies (private computation).
            yield from ctx.phase(f"force.{step}")
            acc: dict[int, tuple[float, float]] = {}
            for i in range(lo, hi):
                acc[i] = force_reference(tree, i, xs, ys, self.theta, self.eps)
                yield Compute(traversal_cost(tree, i, xs, ys, self.theta, self.eps))
            yield from self.barrier.wait()
            # Phase 3: integrate owned bodies and publish positions.
            # Writes go in per-array passes so consecutive words of a
            # cache line coalesce in the merge buffer.
            yield from ctx.phase(f"update.{step}")
            nxs, nys = [], []
            for k, i in enumerate(range(lo, hi)):
                ax, ay = acc[i]
                vxs[k] += ax * self.dt
                vys[k] += ay * self.dt
                nxs.append(xs[i] + vxs[k] * self.dt)
                nys.append(ys[i] + vys[k] * self.dt)
                yield Compute(4 * FMA + LOOP_OVERHEAD)
            yield from self.px.write_range(lo, nxs)
            yield from self.py.write_range(lo, nys)
            last_of_epoch = (
                step == self.steps - 1
                or self._partition(ctx.pid, ctx.nprocs, step + 1) != (lo, hi)
            )
            if last_of_epoch:
                yield from self.vx.write_range(lo, vxs)
                yield from self.vy.write_range(lo, vys)
            yield from self.barrier.wait()

    # ------------------------------------------------------------------
    def verify(self) -> None:
        want_pos, want_vel = reference_run(
            self.bodies, self.steps, self.dt, self.theta, self.eps
        )
        got_pos = np.column_stack([self.px.snapshot(), self.py.snapshot()])
        got_vel = np.column_stack([self.vx.snapshot(), self.vy.snapshot()])
        if not np.allclose(got_pos, want_pos, rtol=1e-10, atol=1e-12):
            err = float(np.abs(got_pos - want_pos).max())
            raise AssertionError(f"Barnes-Hut positions diverge, max err {err}")
        if not np.allclose(got_vel, want_vel, rtol=1e-10, atol=1e-12):
            err = float(np.abs(got_vel - want_vel).max())
            raise AssertionError(f"Barnes-Hut velocities diverge, max err {err}")
