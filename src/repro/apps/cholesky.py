"""Sparse Cholesky factorisation with a central work queue.

Fan-in (left-looking) column factorisation: a column task reads every
factor column that updates it (``cmod``), accumulates locally, scales
(``cdiv``), publishes the finished column, then decrements the
dependency counts of its dependents — newly-ready columns enter the
central work queue.  Communication comes from fetching remote columns
and from the contended central queue, so the pattern is totally dynamic,
exactly the character the paper ascribes to its Cholesky.

The paper's matrix groups columns with similar structure into
supernodes; our generated matrices have short supernode chains, so task
granularity is a single column (the supernode partition is computed and
reported for reference).
"""

from __future__ import annotations

from collections.abc import Generator
from math import sqrt

import numpy as np

from ..runtime.context import AppContext, Machine
from ..runtime.primitives import Lock
from ..runtime.workqueue import TaskPool
from ..sim.events import Compute, Op
from ..workloads.matrices import (
    SparseSPD,
    grid_laplacian,
    symbolic_cholesky,
)
from .base import Application
from .costs import DISPATCH, FDIV, FMA, FSQRT, INT_OP, LOOP_OVERHEAD

# Constant-cost Compute ops shared by every yield of the same site.  The
# engine consumes an op (reads .cycles) before resuming the generator
# and these are never mutated, so one immutable instance per cost is
# safe — and saves an allocation per simulated instruction.
_C_DISPATCH = Compute(DISPATCH)
_C_GATHER = Compute(INT_OP + LOOP_OVERHEAD)
_C_CMOD = Compute(FMA + LOOP_OVERHEAD)
_C_SQRT = Compute(FSQRT)
_C_CDIV = Compute(FDIV + LOOP_OVERHEAD)
_C_LOOP = Compute(LOOP_OVERHEAD)


class Cholesky(Application):
    """Parallel sparse Cholesky with central-queue scheduling."""

    name = "Cholesky"

    #: Number of dependency-count locks (columns hash onto them).
    NLOCKS = 32

    def __init__(self, matrix: SparseSPD | None = None, grid: tuple[int, int] = (12, 12)):
        self.a = matrix if matrix is not None else grid_laplacian(*grid)
        self.symbolic = symbolic_cholesky(self.a)
        self.n = self.a.n
        # Column-compressed layout of L in one flat shared array.
        self.colptr = np.zeros(self.n + 1, dtype=np.int64)
        for j, struct in enumerate(self.symbolic.col_struct):
            self.colptr[j + 1] = self.colptr[j] + len(struct)
        #: row index -> position within column (private metadata)
        self.row_pos = [
            {int(r): k for k, r in enumerate(struct)}
            for struct in self.symbolic.col_struct
        ]
        self.a_colptr = np.zeros(self.n + 1, dtype=np.int64)
        for j, rows in enumerate(self.a.cols):
            self.a_colptr[j + 1] = self.a_colptr[j] + len(rows)
        self._machine: Machine | None = None

    # ------------------------------------------------------------------
    def setup(self, machine: Machine) -> None:
        self._machine = machine
        shm, sync = machine.shm, machine.sync
        nnz_l = int(self.colptr[-1])
        nnz_a = int(self.a_colptr[-1])
        self.lvals = shm.array(nnz_l, "lvals", fill=0.0, align_line=True)
        self.avals = shm.array(nnz_a, "avals", fill=0.0, align_line=True)
        flat_a: list[float] = []
        for vals in self.a.vals:
            flat_a.extend(float(v) for v in vals)
        self.avals.poke_many(flat_a)
        self.dep = shm.array(self.n, "dep", fill=0, align_line=True)
        counts = self.symbolic.dep_counts()
        self.dep.poke_many([int(c) for c in counts])
        self.locks = [Lock(sync, name=f"chol.dep{k}") for k in range(self.NLOCKS)]
        self.pool = TaskPool(shm, sync, capacity=self.n + 1, name="chol.queue")
        leaves = [j for j in range(self.n) if counts[j] == 0]
        self.pool.seed(leaves)

    # ------------------------------------------------------------------
    def worker(self, ctx: AppContext) -> Generator[Op, None, None]:
        sym = self.symbolic
        colptr = self.colptr
        row_pos = self.row_pos
        # Zero-call access paths for the factor kernels (see
        # SharedArray.hot_access): the gather/cmod/cdiv loops are the
        # app-side hot path and per-element sub-generators dominated it.
        ard, _, abase, aword, adata = self.avals.hot_access()
        lrd, lwr, lbase, lword, ldata = self.lvals.hot_access()
        yield from ctx.phase("factor")
        while True:
            j = yield from self.pool.get_task()
            if j is None:
                break
            yield _C_DISPATCH
            struct = sym.col_struct[j]
            base_j = int(colptr[j])
            # Accumulator for column j, initialised from A's column.
            acc = dict.fromkeys((int(i) for i in struct), 0.0)
            a_base = int(self.a_colptr[j])
            for k, i in enumerate(self.a.cols[j]):
                ard.addr = abase + (a_base + k) * aword
                yield ard
                acc[int(i)] = float(adata[a_base + k])
                yield _C_GATHER
            # cmod(j, k) for every column k with L[j,k] != 0.
            for k in sym.row_struct[j]:
                k = int(k)
                base_k = int(colptr[k])
                pos_jk = row_pos[k][j]
                lrd.addr = lbase + (base_k + pos_jk) * lword
                yield lrd
                ljk = float(ldata[base_k + pos_jk])
                struct_k = sym.col_struct[k]
                for kk in range(pos_jk, len(struct_k)):
                    i = int(struct_k[kk])
                    lrd.addr = lbase + (base_k + kk) * lword
                    yield lrd
                    acc[i] -= ljk * float(ldata[base_k + kk])
                    yield _C_CMOD
            # cdiv(j): scale by the diagonal and publish the column.
            diag = sqrt(acc[j])
            yield _C_SQRT
            lwr.addr = lbase + base_j * lword
            yield lwr
            ldata[base_j] = diag
            for k, i in enumerate(struct[1:], start=1):
                val = acc[int(i)] / diag
                yield _C_CDIV
                lwr.addr = lbase + (base_j + k) * lword
                yield lwr
                ldata[base_j + k] = val
            # Publish readiness: dependents of j are exactly the rows of
            # column j's off-diagonal structure.  task_done comes last so
            # the outstanding count never transiently reaches zero while
            # successors are still to be enqueued.
            for i in struct[1:]:
                d = int(i)
                lock = self.locks[d % self.NLOCKS]
                yield from lock.acquire()
                remaining = yield from self.dep.add(d, -1)
                yield from lock.release()
                if remaining == 0:
                    yield from self.pool.add_task(d)
                yield _C_LOOP
            yield from self.pool.task_done()

    # ------------------------------------------------------------------
    def computed_factor(self) -> np.ndarray:
        """Dense lower-triangular L assembled from the shared array."""
        l = np.zeros((self.n, self.n))
        flat = self.lvals.snapshot()
        for j, struct in enumerate(self.symbolic.col_struct):
            base = int(self.colptr[j])
            for k, i in enumerate(struct):
                l[int(i), j] = flat[base + k]
        return l

    def verify(self) -> None:
        l = self.computed_factor()
        want = np.linalg.cholesky(self.a.dense())
        if not np.allclose(l, want, rtol=1e-8, atol=1e-8):
            err = float(np.abs(l - want).max())
            raise AssertionError(f"Cholesky factor mismatch, max abs err {err}")
