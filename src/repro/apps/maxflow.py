"""Parallel Maxflow: Goldberg's push-relabel algorithm.

Follows the Anderson-Setubal parallel implementation the paper uses:
each processor discharges active vertices from a *local* work queue;
local queues interact with a *global* queue for load balancing; vertex
data (excess, height, arc flows) lives in shared memory guarded by
per-vertex locks (pairs acquired in vertex-id order).  The
producer-consumer relationship is dynamic and essentially random, and
the computation per datum is small — the paper's most
communication-bound application.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Generator

from ..runtime.context import AppContext, Machine
from ..runtime.primitives import Lock
from ..runtime.workqueue import CentralQueue
from ..sim.events import Compute, Op
from ..workloads.graphs import FlowNetwork, random_flow_network
from .base import Application
from .costs import DISPATCH, INT_OP, LOOP_OVERHEAD

#: Local-queue length beyond which half the work is shared globally.
_LOCAL_HIGH = 8
#: Cycles of backoff between termination-check polls.
_POLL_BACKOFF = 200.0

# Constant-cost Compute ops shared by every yield of the same site; the
# engine consumes .cycles before the generator resumes and never mutates
# the op, so a single immutable instance per cost is safe.
_C_POLL = Compute(_POLL_BACKOFF)
_C_DISPATCH = Compute(DISPATCH)
_C_ARC = Compute(2 * INT_OP + LOOP_OVERHEAD)
_C_PUSH = Compute(6 * INT_OP)


class Maxflow(Application):
    """Push-relabel max-flow with local queues + global load balancing."""

    name = "Maxflow"

    def __init__(
        self, net: FlowNetwork | None = None, n: int = 64, extra_edges: int = 128, seed: int = 0
    ):
        self.net = net if net is not None else random_flow_network(n, extra_edges, seed=seed)
        self._machine: Machine | None = None

    # ------------------------------------------------------------------
    def setup(self, machine: Machine) -> None:
        self._machine = machine
        shm, sync = machine.shm, machine.sync
        net = self.net
        n, m = net.n, net.num_arcs
        # excess/height/flow are written only under the vertex (pair)
        # locks but read optimistically without them — stale reads are
        # re-validated under the locks in _push/_relabel, so the reads
        # are declared relaxed for the race detector (the paper's
        # "labeled" competing accesses).  Write/write ordering is still
        # checked.  The same holds for the active_count poll in worker().
        # active is NOT relaxed: every access to active[v] happens under
        # a vertex lock covering v (repro lint flags the label as unused
        # otherwise).
        self.excess = shm.array(n, "excess", fill=0, align_line=True, relaxed="read")
        self.height = shm.array(n, "height", fill=0, align_line=True, relaxed="read")
        self.flow = shm.array(m, "flow", fill=0, align_line=True, relaxed="read")
        self.cap = shm.array(m, "cap", fill=0, align_line=True)
        self.cap.poke_many([int(c) for c in net.cap])
        self.active = shm.array(n, "active", fill=0, align_line=True)
        self.active_count = shm.scalar("mf.active_count", fill=0, relaxed="read")
        self.count_lock = Lock(sync, name="mf.count_lock")
        self.vlocks = [Lock(sync, name=f"mf.v{v}") for v in range(n)]
        self.global_q = CentralQueue(shm, sync, capacity=4 * n + 8, name="mf.global")

        # Initial preflow: saturate the source's out-arcs (setup time).
        s, t = net.source, net.sink
        self.height.poke(s, n)
        initial_active: list[int] = []
        for e in net.adj[s]:
            e = int(e)
            if net.tail[e] != s:
                continue
            c = int(net.cap[e])
            if c <= 0:
                continue
            w = int(net.head[e])
            self.flow.poke(e, c)
            self.flow.poke(e ^ 1, -c)
            self.excess.poke(w, self.excess.peek(w) + c)
            self.excess.poke(s, self.excess.peek(s) - c)
            if w not in (s, t) and self.active.peek(w) == 0 and self.excess.peek(w) > 0:
                self.active.poke(w, 1)
                initial_active.append(w)
        self.active_count.poke(0, len(initial_active))
        # Deal initial work round-robin to the processors' local queues.
        p = machine.config.nprocs
        self._seeds: list[list[int]] = [[] for _ in range(p)]
        for k, v in enumerate(initial_active):
            self._seeds[k % p].append(v)

    # ------------------------------------------------------------------
    def _bump_active(self, delta: int) -> Generator[Op, None, None]:
        yield from self.count_lock.acquire()
        yield from self.active_count.incr(delta)
        yield from self.count_lock.release()

    def worker(self, ctx: AppContext) -> Generator[Op, None, None]:
        net = self.net
        s, t = net.source, net.sink
        local: deque[int] = deque(self._seeds[ctx.pid])
        yield from ctx.phase("discharge")
        while True:
            if local:
                v = local.popleft()
            else:
                v = yield from self.global_q.get()
                if v is None:
                    remaining = yield from self.active_count.get()
                    if remaining <= 0:
                        break
                    yield _C_POLL
                    continue
            yield _C_DISPATCH
            newly_active = yield from self._discharge(ctx, v)
            for w in newly_active:
                local.append(w)
            if len(local) > _LOCAL_HIGH:
                # Load balancing: push the back half to the global queue.
                while len(local) > _LOCAL_HIGH // 2:
                    yield from self.global_q.put(local.pop())

    def _discharge(self, ctx: AppContext, v: int) -> Generator[Op, None, list[int]]:
        """Discharge vertex ``v`` until its excess is gone.

        Returns vertices that became active (to enqueue).  ``v`` is
        deactivated (and the global active count decremented) before
        returning; a late push that re-activates it is handled by the
        pusher seeing active[v] == 0.
        """
        net = self.net
        s, t = net.source, net.sink
        # Zero-call access paths for the optimistic scan (see
        # SharedArray.hot_access); the locked re-validation paths in
        # _push/_relabel keep the generator API.
        erd, _, ebase, eword, edata = self.excess.hot_access()
        hrd, _, hbase, hword, hdata = self.height.hot_access()
        crd, _, cbase, cword, cdata = self.cap.hot_access()
        frd, _, fbase, fword, fdata = self.flow.hot_access()
        new_active: list[int] = []
        while True:
            erd.addr = ebase + v * eword
            yield erd
            ev = edata[v]
            if ev <= 0:
                break
            pushed = False
            hrd.addr = hbase + v * hword
            yield hrd
            hv = hdata[v]
            for e in net.adj[v]:
                e = int(e)
                if int(net.tail[e]) != v:
                    continue
                w = int(net.head[e])
                yield _C_ARC
                hrd.addr = hbase + w * hword
                yield hrd
                hw = hdata[w]
                if hv != hw + 1:
                    continue
                crd.addr = cbase + e * cword
                yield crd
                c = cdata[e]
                frd.addr = fbase + e * fword
                yield frd
                f = fdata[e]
                if c - f <= 0:
                    continue
                woke = yield from self._push(v, w, e)
                if woke is not None:
                    new_active.append(woke)
                pushed = True
                erd.addr = ebase + v * eword
                yield erd
                ev = edata[v]
                if ev <= 0:
                    break
            if ev <= 0:
                break
            if not pushed:
                lifted = yield from self._relabel(v)
                if not lifted:
                    # No residual arc at all: trapped excess (cannot
                    # happen on connected inputs; guard against hangs).
                    break
                hv = yield from self.height.read(v)
        # Deactivate v under its lock, re-checking for late pushes.
        yield from self.vlocks[v].acquire()
        ev = yield from self.excess.read(v)
        if ev > 0 and v not in (s, t):
            yield from self.vlocks[v].release()
            new_active.append(v)
            return new_active
        yield from self.active.write(v, 0)
        yield from self.vlocks[v].release()
        yield from self._bump_active(-1)
        return new_active

    def _push(self, v: int, w: int, e: int) -> Generator[Op, None, int | None]:
        """Push along arc ``e`` = (v, w) under the pair of vertex locks.

        Returns ``w`` if it became active and should be enqueued.
        """
        net = self.net
        s, t = net.source, net.sink
        a, b = (v, w) if v < w else (w, v)
        yield from self.vlocks[a].acquire()
        yield from self.vlocks[b].acquire()
        woke: int | None = None
        ev = yield from self.excess.read(v)
        hv = yield from self.height.read(v)
        hw = yield from self.height.read(w)
        c = yield from self.cap.read(e)
        f = yield from self.flow.read(e)
        delta = min(ev, c - f)
        yield _C_PUSH
        if delta > 0 and hv == hw + 1:
            yield from self.flow.write(e, f + delta)
            fr = yield from self.flow.read(e ^ 1)
            yield from self.flow.write(e ^ 1, fr - delta)
            yield from self.excess.write(v, ev - delta)
            ew = yield from self.excess.read(w)
            yield from self.excess.write(w, ew + delta)
            if w not in (s, t) and ew == 0:
                is_active = yield from self.active.read(w)
                if not is_active:
                    yield from self.active.write(w, 1)
                    woke = w
        yield from self.vlocks[b].release()
        yield from self.vlocks[a].release()
        if woke is not None:
            yield from self._bump_active(+1)
        return woke

    def _relabel(self, v: int) -> Generator[Op, None, bool]:
        """Lift ``v`` to one above its lowest residual neighbour."""
        net = self.net
        yield from self.vlocks[v].acquire()
        best: int | None = None
        for e in net.adj[v]:
            e = int(e)
            if int(net.tail[e]) != v:
                continue
            c = yield from self.cap.read(e)
            f = yield from self.flow.read(e)
            yield _C_ARC
            if c - f <= 0:
                continue
            hw = yield from self.height.read(int(net.head[e]))
            if best is None or hw < best:
                best = int(hw)
        if best is None:
            yield from self.vlocks[v].release()
            return False
        hv = yield from self.height.read(v)
        if best + 1 > hv:
            yield from self.height.write(v, best + 1)
        yield from self.vlocks[v].release()
        return True

    # ------------------------------------------------------------------
    def flow_value(self) -> int:
        return int(self.excess.peek(self.net.sink))

    def verify(self) -> None:
        from ..workloads.graphs import reference_max_flow

        net = self.net
        got = self.flow_value()
        want = reference_max_flow(net)
        if got != want:
            raise AssertionError(f"max-flow value {got} != reference {want}")
        # Conservation and capacity invariants.
        for v in range(net.n):
            if v in (net.source, net.sink):
                continue
            if self.excess.peek(v) != 0:
                raise AssertionError(f"vertex {v} left with excess {self.excess.peek(v)}")
        for e in range(net.num_arcs):
            f = self.flow.peek(e)
            if f > net.cap[e]:
                raise AssertionError(f"arc {e} over capacity: {f} > {net.cap[e]}")
            if self.flow.peek(e ^ 1) != -f:
                raise AssertionError(f"arc pair {e} antisymmetry violated")
