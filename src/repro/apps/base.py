"""Application interface.

An :class:`Application` owns its shared state for one simulation run:
``setup(machine)`` allocates shared arrays and synchronisation objects,
``worker(ctx)`` is the SPMD thread body, and ``verify()`` checks the
computed result against an independent reference — the execution-driven
simulator runs the *real* algorithm, so every run is checkable.
"""

from __future__ import annotations

from collections.abc import Generator

from ..config import MachineConfig
from ..runtime.context import AppContext, Machine
from ..sim.events import Op
from ..sim.stats import SimResult


class Application:
    """Base class for the paper's four applications."""

    #: Canonical name used in figures and tables.
    name = "app"

    def setup(self, machine: Machine) -> None:
        raise NotImplementedError

    def worker(self, ctx: AppContext) -> Generator[Op, None, None]:
        raise NotImplementedError

    def verify(self) -> None:
        """Raise AssertionError if the computed result is wrong."""
        raise NotImplementedError


def run_on(
    app: Application,
    system: str,
    config: MachineConfig,
    verify: bool = True,
    max_ops: int | None = None,
) -> SimResult:
    """Run a fresh application instance on one memory system.

    ``app`` must be newly constructed (applications hold mutable shared
    state).  Returns the :class:`SimResult`; the machine's memory system
    and network are attached as ``result.extra`` style attributes via the
    returned machine in :func:`run_machine` when more detail is needed.
    """
    machine = Machine(config, system, max_ops=max_ops)
    app.setup(machine)
    result = machine.run(app.worker)
    if verify:
        app.verify()
    return result


def run_machine(
    app: Application,
    system: str,
    config: MachineConfig,
    verify: bool = True,
    max_ops: int | None = None,
) -> tuple[Machine, SimResult]:
    """Like :func:`run_on` but also returns the machine for inspection."""
    machine = Machine(config, system, max_ops=max_ops)
    app.setup(machine)
    result = machine.run(app.worker)
    if verify:
        app.verify()
    return machine, result
