"""The paper's four applications, runnable on any memory system."""

from .barneshut import BarnesHut, reference_run
from .base import Application, run_machine, run_on
from .cholesky import Cholesky
from .factory import APP_REGISTRY, AppFactory
from .intsort import IntegerSort, bucket_stable_ranks
from .maxflow import Maxflow
from .presets import SCALES, default_scale, large_scale, paper_scale, preset, smoke_scale

__all__ = [
    "APP_REGISTRY",
    "AppFactory",
    "Application",
    "BarnesHut",
    "Cholesky",
    "IntegerSort",
    "Maxflow",
    "SCALES",
    "bucket_stable_ranks",
    "default_scale",
    "large_scale",
    "paper_scale",
    "preset",
    "smoke_scale",
    "reference_run",
    "run_machine",
    "run_on",
]
