"""The paper's four applications, runnable on any memory system."""

from .barneshut import BarnesHut, reference_run
from .base import Application, run_machine, run_on
from .cholesky import Cholesky
from .intsort import IntegerSort, bucket_stable_ranks
from .maxflow import Maxflow
from .presets import default_scale, paper_scale, smoke_scale

#: Factories for the paper's application set, keyed by figure name.
APP_REGISTRY = {
    "Cholesky": Cholesky,
    "IS": IntegerSort,
    "Maxflow": Maxflow,
    "Nbody": BarnesHut,
}

__all__ = [
    "APP_REGISTRY",
    "Application",
    "BarnesHut",
    "Cholesky",
    "IntegerSort",
    "Maxflow",
    "bucket_stable_ranks",
    "default_scale",
    "paper_scale",
    "smoke_scale",
    "reference_run",
    "run_machine",
    "run_on",
]
