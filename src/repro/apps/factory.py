"""Picklable application factories.

``run_study``/``sweep`` build a fresh :class:`Application` per run from a
zero-argument factory.  A ``lambda`` works for in-process execution but
cannot cross a process-pool boundary; :class:`AppFactory` is the
picklable, hashable equivalent — it names an application class from
:data:`APP_REGISTRY` plus its constructor keyword arguments, so a job
spec can be shipped to a worker process and can key an on-disk result
cache (see ``repro.core.parallel``).
"""

from __future__ import annotations

from .barneshut import BarnesHut
from .base import Application
from .cholesky import Cholesky
from .intsort import IntegerSort
from .maxflow import Maxflow
from .racy import RacyDemo

#: Application classes, keyed by figure name.  ``RacyDemo`` is not part
#: of the study presets — it is the race detector's regression oracle
#: (``repro check --app RacyDemo``).
APP_REGISTRY: dict[str, type[Application]] = {
    "Cholesky": Cholesky,
    "IS": IntegerSort,
    "Maxflow": Maxflow,
    "Nbody": BarnesHut,
    "RacyDemo": RacyDemo,
}


class AppFactory:
    """A picklable ``lambda: AppClass(**kwargs)``.

    ``app`` must be a key of :data:`APP_REGISTRY`; ``kwargs`` are passed
    to the class constructor on every call.  Instances compare equal by
    value and have a deterministic ``repr``, which is what the result
    cache hashes.
    """

    __slots__ = ("app", "kwargs")

    def __init__(self, app: str, **kwargs: object):
        if app not in APP_REGISTRY:
            raise ValueError(
                f"unknown application {app!r}; choose from {', '.join(APP_REGISTRY)}"
            )
        self.app = app
        self.kwargs = tuple(sorted(kwargs.items()))

    def __call__(self) -> Application:
        return APP_REGISTRY[self.app](**dict(self.kwargs))

    def __repr__(self) -> str:
        args = ", ".join(f"{k}={v!r}" for k, v in self.kwargs)
        return f"AppFactory({self.app!r}{', ' if args else ''}{args})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AppFactory):
            return NotImplemented
        return self.app == other.app and self.kwargs == other.kwargs

    def __hash__(self) -> int:
        return hash((self.app, self.kwargs))

    def __getstate__(self) -> tuple[str, tuple]:
        return (self.app, self.kwargs)

    def __setstate__(self, state: tuple[str, tuple]) -> None:
        object.__setattr__(self, "app", state[0])
        object.__setattr__(self, "kwargs", state[1])
