"""Exact overhead attribution: *which* data, sync objects, phases and
home nodes every stall cycle is paid for.

The paper's headline numbers decompose execution time into read-stall /
write-stall / buffer-flush totals per processor; this module explains
them.  :class:`AttributionCollector` is a memory-system decorator (same
composition contract as :class:`repro.sim.trace.TracingMemory`) that
charges every overhead cycle to a *cell* — the cross product of the
current application phase and either an address block (data accesses) or
a sync object (acquire / release / barrier / fence) — while maintaining
per-processor per-category accumulators with the **same addends in the
same order** as the engine's ``ProcStats``, so the attributed totals
equal the :class:`repro.sim.stats.SimResult` totals bit-for-bit.

:func:`build_report` folds the cells into four ranked dimensions at
once:

* **block** — named :class:`~repro.runtime.sharedmem.SharedArray`
  region (``excess[0:8]``), plus one ``(sync ops)`` row, so the
  dimension partitions the attributed overhead;
* **sync** — lock / barrier / flag / fence object via the
  ``sync_kind``/``sync_id`` plumbing, labelled like the static analyzer
  (:func:`repro.analysis.naming.sync_label`), plus a ``(data)`` row;
* **phase** — the application ``ctx.phase(...)`` markers (cycles before
  the first marker land in ``(startup)``);
* **home** — the directory's addr→home mapping, plus a route-weighted
  per-link load derived from the requester→home pairs of stalled
  accesses.

:func:`diff_reports` aligns two reports on system-independent keys
(array names, sync labels, phase labels — block numbering differs
between the z-machine's one-word lines and the real systems' 32-byte
lines) and decomposes the overhead *delta*, which is what makes Table 1
and the scenario reports explainable: "RCinv pays the gap on ``excess``
inside the ``discharge`` phase" is a sentence this module can back with
cycles.

Known limits: the latency-tolerance wrapper's ``ReadNB``/``Stall`` ops
are charged by the engine without consulting the memory system, so runs
through :mod:`repro.runtime.multithread` surface as a nonzero residual;
the standard applications never use them and their residual is zero.
"""

from __future__ import annotations

import json
import os
from math import fsum
from pathlib import Path

from ..analysis.naming import sync_label
from ..sim.stats import AccessResult, SyncPoint

#: JSON schema version of attribution reports.
SCHEMA = 1

#: Document kind tag (validated by :func:`load_report` / ``repro diff``).
REPORT_KIND = "attribution"
DIFF_KIND = "attribution-diff"

#: Overhead categories attributed (the paper's stall decomposition).
OVERHEAD_CATEGORIES = ("read_stall", "write_stall", "buffer_flush")

#: The four attribution dimensions, in display order.
DIMENSIONS = ("block", "sync", "phase", "home")

#: Pseudo-row keys that close the block/sync/home dimensions into
#: partitions of the attributed overhead.
SYNC_ROW = "(sync ops)"
DATA_ROW = "(data)"

#: Phase label charged before the first ``ctx.phase(...)`` marker.
STARTUP_PHASE = "(startup)"

#: Residual beyond which a report is flagged inexact (same discipline as
#: the interval-metrics acceptance tests).
EXACT_TOLERANCE = 1e-6


class AttributionCollector:
    """Memory-system decorator charging overhead cycles to cells.

    Attach after any tracer/checker so their delegation keeps working::

        machine = Machine(cfg, "RCinv"); app.setup(machine)
        collector = AttributionCollector.attach(machine)
        result = machine.run(app.worker)
        report = build_report(collector, result, app="IS", system="RCinv")

    The engine's flyweight-hit shortcut survives the wrap (``__getattr__``
    delegates ``_hit_result`` inward and identity is preserved), so the
    stall-free common case costs one dict upsert and nothing else.
    """

    def __init__(self, inner, nprocs: int, shm=None):
        self.inner = inner
        self.nprocs = nprocs
        #: Optional :class:`repro.runtime.sharedmem.SharedMemory`; when
        #: set, block cells resolve to array names in reports.
        self.shm = shm
        self._line = inner.line_size
        #: Stall-free flyweight of the wrapped system: results that *are*
        #: this object carry zero stalls by construction, so the hot path
        #: skips the three attribute reads entirely.
        self._hit = getattr(inner, "_hit_result", None)
        #: Bound addr→home hook of the wrapped system (report-time only
        #: on the non-stall path; bound once so stalled accesses do not
        #: pay a delegation chain per call).
        self._home_of = getattr(inner, "home_of", None)
        # Phase interning: labels -> small ints, one current id per proc.
        self._phase_names: list[str] = [STARTUP_PHASE]
        self._phase_ids: dict[str, int] = {STARTUP_PHASE: 0}
        self._cur = [0] * nprocs
        #: (time, proc, label) for every phase marker, in issue order.
        self.phase_marks: list[tuple[float, int, str]] = []
        #: (phase_id, block) -> [read_stall, write_stall, buffer_flush, accesses]
        self._data: dict[tuple[int, int], list] = {}
        #: (phase_id, sync_kind, sync_id) -> [rs, ws, bf, events]
        self._sync: dict[tuple[int, str, int], list] = {}
        #: (requester, home) -> stall cycles of stalled data accesses —
        #: feeds the derived per-link load, not the exact-sum contract.
        self._pairs: dict[tuple[int, int], float] = {}
        #: Per-processor [read_stall, write_stall, buffer_flush] updated
        #: with the engine's exact addends in the engine's order; zero
        #: addends are skipped (``x + 0.0 == x`` for these non-negative
        #: accumulators), so each entry is bit-identical to ProcStats.
        self._acc = [[0.0, 0.0, 0.0] for _ in range(nprocs)]
        self.accesses = 0
        self.sync_events = 0

    # -- construction ---------------------------------------------------
    @classmethod
    def attach(cls, machine) -> AttributionCollector:
        """Interpose a collector between a Machine's engine and memory."""
        collector = cls(
            machine.engine.memsys,
            machine.config.nprocs,
            shm=getattr(machine, "shm", None),
        )
        machine.engine.memsys = collector
        return collector

    # -- memory-system decorator surface ---------------------------------
    def read(self, proc: int, addr: int, now: float) -> AccessResult:
        res = self.inner.read(proc, addr, now)
        self.accesses += 1
        key = (self._cur[proc], addr // self._line)
        cell = self._data.get(key)
        if cell is None:
            cell = self._data[key] = [0.0, 0.0, 0.0, 0]
        cell[3] += 1
        if res is self._hit:
            return res
        rs = res.read_stall
        ws = res.write_stall
        bf = res.buffer_flush
        if rs == 0.0 and ws == 0.0 and bf == 0.0:
            return res
        cell[0] += rs
        cell[1] += ws
        cell[2] += bf
        acc = self._acc[proc]
        acc[0] += rs
        acc[1] += ws
        acc[2] += bf
        if self._home_of is not None:
            pair = (proc, self._home_of(key[1]))
            self._pairs[pair] = self._pairs.get(pair, 0.0) + rs + ws + bf
        return res

    def write(self, proc: int, addr: int, now: float) -> AccessResult:
        res = self.inner.write(proc, addr, now)
        self.accesses += 1
        key = (self._cur[proc], addr // self._line)
        cell = self._data.get(key)
        if cell is None:
            cell = self._data[key] = [0.0, 0.0, 0.0, 0]
        cell[3] += 1
        if res is self._hit:
            return res
        rs = res.read_stall
        ws = res.write_stall
        bf = res.buffer_flush
        if rs == 0.0 and ws == 0.0 and bf == 0.0:
            return res
        cell[0] += rs
        cell[1] += ws
        cell[2] += bf
        acc = self._acc[proc]
        acc[0] += rs
        acc[1] += ws
        acc[2] += bf
        if self._home_of is not None:
            pair = (proc, self._home_of(key[1]))
            self._pairs[pair] = self._pairs.get(pair, 0.0) + rs + ws + bf
        return res

    def _sync_cell(self, proc: int, sync: SyncPoint | None) -> list:
        if sync is not None:
            key = (self._cur[proc], sync.kind, sync.sync_id)
        else:
            key = (self._cur[proc], "sync", -1)
        cell = self._sync.get(key)
        if cell is None:
            cell = self._sync[key] = [0.0, 0.0, 0.0, 0]
        return cell

    def _charge_sync(self, proc: int, cell: list, res: AccessResult) -> None:
        cell[3] += 1
        rs = res.read_stall
        ws = res.write_stall
        bf = res.buffer_flush
        if rs == 0.0 and ws == 0.0 and bf == 0.0:
            return
        cell[0] += rs
        cell[1] += ws
        cell[2] += bf
        acc = self._acc[proc]
        acc[0] += rs
        acc[1] += ws
        acc[2] += bf

    def acquire(self, proc: int, now: float, sync: SyncPoint | None = None) -> AccessResult:
        res = self.inner.acquire(proc, now, sync=sync)
        self.sync_events += 1
        self._charge_sync(proc, self._sync_cell(proc, sync), res)
        return res

    def release(self, proc: int, now: float, sync: SyncPoint | None = None) -> AccessResult:
        # Barriers and fences arrive here too (the engine models both as
        # release-semantics operations); ``sync.kind`` keeps them apart.
        res = self.inner.release(proc, now, sync=sync)
        self.sync_events += 1
        self._charge_sync(proc, self._sync_cell(proc, sync), res)
        return res

    def sync_note(self, proc: int, now: float, sync: SyncPoint) -> None:
        """Count a zero-cost flag set/wait into its sync cell."""
        self.inner.sync_note(proc, now, sync)
        self.sync_events += 1
        self._sync_cell(proc, sync)[3] += 1

    def phase_note(self, proc: int, now: float, label: str) -> None:
        """Switch ``proc``'s attribution target to phase ``label``."""
        self.inner.phase_note(proc, now, label)
        pid = self._phase_ids.get(label)
        if pid is None:
            pid = self._phase_ids[label] = len(self._phase_names)
            self._phase_names.append(label)
        self._cur[proc] = pid
        self.phase_marks.append((now, proc, label))

    def __getattr__(self, name: str):
        # Delegate everything else (line_size, publish, caches, ...) inward.
        return getattr(self.inner, name)

    # -- accessors --------------------------------------------------------
    def proc_totals(self) -> dict[str, list[float]]:
        """Per-processor attributed totals, bit-identical to ProcStats."""
        return {
            cat: [self._acc[p][i] for p in range(self.nprocs)]
            for i, cat in enumerate(OVERHEAD_CATEGORIES)
        }

    def phase_name(self, phase_id: int) -> str:
        return self._phase_names[phase_id]


# ---------------------------------------------------------------------------
# block naming


def block_span_name(shm, line_size: int, block: int) -> tuple[str, str]:
    """Resolve a block to ``(element-span name, owning array name)``.

    Same byte-span intersection the tracer and race detector use; the
    second element drops the index ranges (``excess[0:8]`` -> ``excess``)
    and is the system-independent key :func:`diff_reports` aligns on.
    """
    fallback = f"block:{block}"
    if shm is None:
        return fallback, fallback
    lo, hi = block * line_size, (block + 1) * line_size
    spans: list[str] = []
    arrays: list[str] = []
    for arr in shm.arrays:
        word = arr._word
        base, end = arr.base, arr.base + arr.n * word
        if lo < end and hi > base:
            e0 = max(0, (lo - base) // word)
            e1 = min(arr.n, (hi - base + word - 1) // word)
            name = arr.name or f"@0x{arr.base:x}"
            spans.append(f"{name}[{e0}:{e1}]" if arr.n > 1 else name)
            arrays.append(name)
    if not spans:
        return fallback, fallback
    return "+".join(spans), "+".join(arrays)


def _sync_row_label(sync_names, kind: str, sync_id: int) -> str:
    """Canonical label for a sync cell (``lock:mf.count_lock#0``)."""
    if sync_id < 0:
        return kind  # fence / anonymous: no per-object id
    obj_kind = "flag" if kind.startswith("flag") else kind
    name = sync_names.get((obj_kind, sync_id), "") if sync_names else ""
    return sync_label(kind, name, sync_id)


# ---------------------------------------------------------------------------
# report construction


def _zero_row() -> dict[str, float]:
    return {"read_stall": 0.0, "write_stall": 0.0, "buffer_flush": 0.0, "count": 0}


def _fold(row: dict, rs: float, ws: float, bf: float, count) -> None:
    row["read_stall"] += rs
    row["write_stall"] += ws
    row["buffer_flush"] += bf
    row["count"] += count


def _finish_rows(rows: dict[str, dict], total_overhead: float) -> list[dict]:
    out = []
    for key, row in rows.items():
        overhead = row["read_stall"] + row["write_stall"] + row["buffer_flush"]
        entry = {"key": key, **row, "overhead": overhead}
        entry["share_pct"] = (
            round(100.0 * overhead / total_overhead, 2) if total_overhead > 0 else 0.0
        )
        out.append(entry)
    out.sort(key=lambda r: (-r["overhead"], r["key"]))
    return out


def build_report(
    collector: AttributionCollector,
    result,
    app: str = "",
    system: str = "",
    scale: str = "",
    label: str = "",
    sync_names: dict[tuple[str, int], str] | None = None,
) -> dict:
    """Fold a collector's cells into the four-dimension report document.

    ``result`` is the run's :class:`~repro.sim.stats.SimResult`; the
    report's ``totals`` come from it and ``residual`` records what the
    cells failed to attribute per category (zero for every standard
    application — asserted by tests/test_attrib.py).
    """
    nprocs = collector.nprocs
    totals = {
        "busy": fsum(p.busy for p in result.procs),
        "read_stall": fsum(p.read_stall for p in result.procs),
        "write_stall": fsum(p.write_stall for p in result.procs),
        "buffer_flush": fsum(p.buffer_flush for p in result.procs),
        "sync_wait": fsum(p.sync_wait for p in result.procs),
    }
    totals["overhead"] = totals["read_stall"] + totals["write_stall"] + totals["buffer_flush"]
    attributed = {
        cat: fsum(acc[i] for acc in collector._acc)
        for i, cat in enumerate(OVERHEAD_CATEGORIES)
    }
    residual = {cat: totals[cat] - attributed[cat] for cat in OVERHEAD_CATEGORIES}
    exact = all(abs(v) <= EXACT_TOLERANCE for v in residual.values())
    attributed_overhead = sum(attributed.values())

    shm, line = collector.shm, collector._line
    phase_names = collector._phase_names
    cells: list[dict] = []
    for (pid, block), (rs, ws, bf, n) in sorted(collector._data.items()):
        name, array = block_span_name(shm, line, block)
        home = collector._home_of(block) if collector._home_of is not None else None
        cells.append(
            {
                "phase": phase_names[pid], "kind": "data", "key": array,
                "name": name, "block": block, "home": home,
                "read_stall": rs, "write_stall": ws, "buffer_flush": bf,
                "count": n,
            }
        )
    for (pid, kind, sid), (rs, ws, bf, n) in sorted(collector._sync.items()):
        cells.append(
            {
                "phase": phase_names[pid], "kind": "sync",
                "key": _sync_row_label(sync_names, kind, sid),
                "name": _sync_row_label(sync_names, kind, sid),
                "sync_kind": kind, "sync_id": sid, "home": None,
                "read_stall": rs, "write_stall": ws, "buffer_flush": bf,
                "count": n,
            }
        )

    # Dimension folds.  Every dimension partitions the attributed
    # overhead: block/home absorb sync cells into a "(sync ops)" row,
    # sync absorbs data cells into "(data)".
    data_total = _zero_row()
    sync_total = _zero_row()
    by_block: dict[str, dict] = {}
    by_sync: dict[str, dict] = {}
    by_phase: dict[str, dict] = {}
    by_home: dict[str, dict] = {}
    block_meta: dict[str, dict] = {}
    for c in cells:
        rs, ws, bf, n = c["read_stall"], c["write_stall"], c["buffer_flush"], c["count"]
        _fold(by_phase.setdefault(c["phase"], _zero_row()), rs, ws, bf, n)
        if c["kind"] == "data":
            _fold(data_total, rs, ws, bf, n)
            _fold(by_block.setdefault(c["name"], _zero_row()), rs, ws, bf, n)
            meta = block_meta.setdefault(
                c["name"], {"array": c["key"], "block": c["block"], "home": c["home"]}
            )
            if meta["block"] != c["block"]:
                meta["block"] = None  # name spans several blocks across phases
            home_key = f"node {c['home']}" if c["home"] is not None else "(no home)"
            _fold(by_home.setdefault(home_key, _zero_row()), rs, ws, bf, n)
        else:
            _fold(sync_total, rs, ws, bf, n)
            _fold(by_sync.setdefault(c["name"], _zero_row()), rs, ws, bf, n)
    if sync_total["count"]:
        by_block[SYNC_ROW] = dict(sync_total)
        by_home[SYNC_ROW] = dict(sync_total)
    if data_total["count"]:
        by_sync[DATA_ROW] = dict(data_total)

    dims = {
        "block": _finish_rows(by_block, attributed_overhead),
        "sync": _finish_rows(by_sync, attributed_overhead),
        "phase": _finish_rows(by_phase, attributed_overhead),
        "home": _finish_rows(by_home, attributed_overhead),
    }
    for row in dims["block"]:
        meta = block_meta.get(row["key"])
        if meta is not None:
            row.update(meta)

    # Home-dimension context: directory population and the derived
    # route-weighted link load (a stalled cycle is credited to every hop
    # of its requester->home route, so links do NOT sum to the totals).
    directory = getattr(collector.inner, "directory", None)
    if directory is not None and collector._home_of is not None:
        dir_blocks = directory.blocks_by_home(collector._home_of, nprocs)
        for row in dims["home"]:
            if row["key"].startswith("node "):
                row["dir_blocks"] = dir_blocks[int(row["key"][5:])]
    links = _link_load(collector)

    phases = [{"label": STARTUP_PHASE, "first_mark": 0.0}]
    seen = {STARTUP_PHASE}
    for t, _proc, mark_label in sorted(collector.phase_marks):
        if mark_label not in seen:
            seen.add(mark_label)
            phases.append({"label": mark_label, "first_mark": t})

    return {
        "schema": SCHEMA,
        "kind": REPORT_KIND,
        "app": app,
        "system": system,
        "label": label,
        "scale": scale,
        "nprocs": nprocs,
        "line_size": line,
        "total_time": result.total_time,
        "ops": result.ops,
        "totals": totals,
        "attributed": attributed,
        "residual": residual,
        "exact": exact,
        "counts": {
            "accesses": collector.accesses,
            "sync_events": collector.sync_events,
            "data_cells": len(collector._data),
            "sync_cells": len(collector._sync),
        },
        "phases": phases,
        "dims": dims,
        "links": links,
        "cells": cells,
    }


def _link_load(collector: AttributionCollector) -> list[dict]:
    """Per-link stall load from the requester→home pairs (derived view)."""
    if not collector._pairs:
        return []
    config = getattr(collector.inner, "config", None)
    if config is None:
        return []
    from ..network.topology import make_topology

    dims = config.mesh_dims if config.topology in ("mesh", "torus") else None
    try:
        topo = make_topology(config.topology, config.nprocs, dims)
    except ValueError:
        return []
    load: dict[tuple[int, int], float] = {}
    for (src, dst), stall in collector._pairs.items():
        for link in topo.route(src, dst):
            load[link] = load.get(link, 0.0) + stall
    rows = [
        {"link": f"{u}->{v}", "overhead": cycles}
        for (u, v), cycles in load.items()
    ]
    rows.sort(key=lambda r: (-r["overhead"], r["link"]))
    return rows


# ---------------------------------------------------------------------------
# differential mode


def load_report(path: str | os.PathLike) -> dict:
    """Read and validate an attribution report written by ``--out``."""
    doc = json.loads(Path(path).read_text())
    if not isinstance(doc, dict) or doc.get("kind") != REPORT_KIND:
        raise ValueError(f"{path} is not an attribution report (kind != {REPORT_KIND!r})")
    return doc


def _aligned(report: dict, dim: str) -> dict[tuple[str, str], dict]:
    """Cells re-aggregated on system-independent ``(phase, key)`` pairs.

    ``dim`` picks the key: array name (block), sync label (sync), the
    empty string (phase — the phase alone aligns), or home node (home).
    Block *numbers* never appear: the z-machine's one-word lines and the
    real systems' 32-byte lines number blocks differently, so arrays and
    labels are the only keys two systems share.
    """
    out: dict[tuple[str, str], dict] = {}
    for c in report["cells"]:
        if dim == "block":
            key = c["key"] if c["kind"] == "data" else SYNC_ROW
        elif dim == "sync":
            key = c["name"] if c["kind"] == "sync" else DATA_ROW
        elif dim == "home":
            key = f"node {c['home']}" if c.get("home") is not None else SYNC_ROW
        else:  # phase
            key = ""
        row = out.setdefault((c["phase"], key), _zero_row())
        _fold(row, c["read_stall"], c["write_stall"], c["buffer_flush"], c["count"])
    return out


def _diff_dim(a: dict, b: dict, dim: str, gap: float, collapse_phase: bool) -> list[dict]:
    ca, cb = _aligned(a, dim), _aligned(b, dim)
    if collapse_phase:
        # Fold the phase axis away for the per-dimension tables; the
        # hotspot list keeps it.
        def collapse(cells: dict) -> dict:
            out: dict[tuple[str, str], dict] = {}
            for (phase, key), row in cells.items():
                merged = out.setdefault(("", key if dim != "phase" else phase), _zero_row())
                _fold(merged, row["read_stall"], row["write_stall"], row["buffer_flush"], row["count"])
            return out

        ca, cb = collapse(ca), collapse(cb)
    rows = []
    for cell_key in sorted(set(ca) | set(cb)):
        phase, key = cell_key
        ra = ca.get(cell_key, _zero_row())
        rb = cb.get(cell_key, _zero_row())
        deltas = {
            cat: rb[cat] - ra[cat] for cat in OVERHEAD_CATEGORIES
        }
        delta = sum(deltas.values())
        if delta == 0.0 and all(v == 0.0 for v in deltas.values()):
            continue
        a_overhead = sum(ra[cat] for cat in OVERHEAD_CATEGORIES)
        row = {
            "key": key,
            "a": a_overhead,
            "b": a_overhead + delta,
            "delta": delta,
            "share_of_gap_pct": round(100.0 * delta / gap, 2) if gap else None,
            **{f"delta_{cat}": deltas[cat] for cat in OVERHEAD_CATEGORIES},
        }
        if phase:
            row["phase"] = phase
        rows.append(row)
    rows.sort(key=lambda r: (-abs(r["delta"]), r["key"]))
    return rows


def diff_reports(a: dict, b: dict) -> dict:
    """Decompose the overhead delta between two attribution reports.

    The gap is ``b - a`` per category and dimension row; a self-diff is
    all-zero and swapping the arguments negates every delta (the
    antisymmetry tests/test_attrib.py pins).  Reports from different
    apps still diff (keys simply fail to align), but the result is only
    meaningful for the same workload under two systems or scenarios.
    """
    for doc in (a, b):
        if doc.get("kind") != REPORT_KIND:
            raise ValueError(f"diff_reports needs attribution reports, got {doc.get('kind')!r}")
    delta = {
        cat: b["totals"][cat] - a["totals"][cat]
        for cat in (*OVERHEAD_CATEGORIES, "overhead", "busy", "sync_wait")
    }
    delta["total_time"] = b["total_time"] - a["total_time"]
    gap = delta["overhead"]

    def _side(doc: dict) -> dict:
        return {
            "app": doc["app"], "system": doc["system"], "label": doc["label"],
            "scale": doc["scale"], "total_time": doc["total_time"],
            "overhead": doc["totals"]["overhead"],
        }

    return {
        "schema": SCHEMA,
        "kind": DIFF_KIND,
        "a": _side(a),
        "b": _side(b),
        "delta": delta,
        "gap": gap,
        "dims": {
            dim: _diff_dim(a, b, dim, gap, collapse_phase=True) for dim in DIMENSIONS
        },
        # Finest alignment: (phase, array-or-sync-label) — the rows the
        # worked examples in docs/observability.md quote.
        "hotspots": _diff_dim(a, b, "block", gap, collapse_phase=False),
    }


# ---------------------------------------------------------------------------
# formatting


def _describe(doc: dict) -> str:
    label = f" [{doc['label']}]" if doc.get("label") else ""
    return f"{doc['app']} on {doc['system']}{label}"


def format_attribution(report: dict, by: str = "all", top: int = 10) -> str:
    """Ranked attribution tables for one report (``repro attribute``)."""
    t = report["totals"]
    lines = [
        f"overhead attribution: {_describe(report)} "
        f"({report['scale'] or 'default'} scale, P={report['nprocs']})",
        f"  total {report['total_time']:,.0f} cycles; overhead {t['overhead']:,.1f} "
        f"(read {t['read_stall']:,.1f}, write {t['write_stall']:,.1f}, "
        f"flush {t['buffer_flush']:,.1f}); "
        f"exact: {'yes' if report['exact'] else 'NO (see residual)'}",
    ]
    dims = DIMENSIONS if by == "all" else (by,)
    for dim in dims:
        rows = report["dims"][dim]
        lines.append(f"by {dim}:")
        lines.append(
            f"  {'key':<34s} {'read':>12s} {'write':>12s} {'flush':>12s} "
            f"{'overhead':>12s} {'share':>7s} {'events':>9s}"
        )
        for row in rows[:top]:
            lines.append(
                f"  {row['key'][:34]:<34s} {row['read_stall']:>12.1f} "
                f"{row['write_stall']:>12.1f} {row['buffer_flush']:>12.1f} "
                f"{row['overhead']:>12.1f} {row['share_pct']:>6.1f}% {row['count']:>9d}"
            )
        if len(rows) > top:
            rest = sum(r["overhead"] for r in rows[top:])
            lines.append(f"  ... {len(rows) - top} more row(s), {rest:,.1f} cycles")
    if report["links"] and (by in ("all", "home")):
        hottest = report["links"][0]
        lines.append(
            f"hottest link (route-weighted): {hottest['link']} "
            f"({hottest['overhead']:,.1f} stall cycles routed over it)"
        )
    return "\n".join(lines)


def format_diff(diff: dict, by: str = "all", top: int = 10) -> str:
    """Human-readable overhead-delta decomposition (``repro diff``)."""
    gap = diff["gap"]
    lines = [
        f"overhead diff: A = {_describe(diff['a'])}  vs  B = {_describe(diff['b'])}",
        f"  overhead {diff['a']['overhead']:,.1f} -> {diff['b']['overhead']:,.1f} "
        f"(gap {gap:+,.1f} cycles; total time {diff['delta']['total_time']:+,.1f})",
    ]
    if gap == 0.0 and not any(diff["dims"][d] for d in DIMENSIONS):
        lines.append("  reports are identical: every attributed cell matches")
        return "\n".join(lines)
    dims = DIMENSIONS if by == "all" else (by,)
    for dim in dims:
        rows = diff["dims"][dim]
        if not rows:
            continue
        lines.append(f"by {dim}:")
        lines.append(
            f"  {'key':<34s} {'A':>12s} {'B':>12s} {'delta':>12s} {'of gap':>8s}"
        )
        for row in rows[:top]:
            share = (
                f"{row['share_of_gap_pct']:+.1f}%"
                if row["share_of_gap_pct"] is not None
                else "-"
            )
            lines.append(
                f"  {row['key'][:34]:<34s} {row['a']:>12.1f} {row['b']:>12.1f} "
                f"{row['delta']:>+12.1f} {share:>8s}"
            )
    hot = [r for r in diff["hotspots"] if r.get("phase")][:3]
    for row in hot:
        cats = {cat: row[f"delta_{cat}"] for cat in OVERHEAD_CATEGORIES}
        dominant = max(cats, key=lambda c: abs(cats[c]))
        share = (
            f"{row['share_of_gap_pct']:+.1f}% of the gap"
            if row["share_of_gap_pct"] is not None
            else f"{row['delta']:+,.1f} cycles"
        )
        lines.append(
            f"hotspot: {share} is {dominant} on {row['key']} "
            f"in phase {row['phase']} ({row['delta']:+,.1f} cycles)"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# one-call driver


def run_attribution(
    factory,
    system: str,
    config,
    app: str = "",
    scale: str = "",
    label: str = "",
):
    """Run ``factory()`` on ``system`` under attribution.

    Returns ``(report, result)``.  Used by the CLI, the bench and the
    tests; imports the runtime lazily so ``repro.obs`` stays importable
    without the full machine stack.
    """
    from ..runtime.context import Machine

    application = factory()
    machine = Machine(config, system)
    application.setup(machine)
    collector = AttributionCollector.attach(machine)
    result = machine.run(application.worker)
    report = build_report(
        collector,
        result,
        app=app,
        system=system,
        scale=scale,
        label=label,
        sync_names=machine.sync.sync_names(),
    )
    return report, result


__all__ = [
    "DIFF_KIND",
    "DIMENSIONS",
    "EXACT_TOLERANCE",
    "OVERHEAD_CATEGORIES",
    "REPORT_KIND",
    "SCHEMA",
    "AttributionCollector",
    "block_span_name",
    "build_report",
    "diff_reports",
    "format_attribution",
    "format_diff",
    "load_report",
    "run_attribution",
]
