"""Run manifests: every study/sweep/check/bench run, self-described.

A manifest is a plain JSON-serialisable dict recording what was run
(app, systems, configuration), against which code (source fingerprint),
where (host, Python), and how it went (wall-clock, simulated events,
events/sec, cache hits).  BENCH files and study outputs embed or sit
next to one, so a number in the repo can always be traced back to the
exact run that produced it.
"""

from __future__ import annotations

import dataclasses
import json
import platform
import sys
from datetime import datetime, timezone
from pathlib import Path
from typing import Any

#: Manifest JSON schema version.
MANIFEST_SCHEMA = 1


def _config_dict(config: Any) -> Any:
    if config is None:
        return None
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        return dataclasses.asdict(config)
    return repr(config)


def _job_entry(job: Any) -> dict[str, Any]:
    """Summarise one JobResult-like object (duck-typed)."""
    result = getattr(job, "result", None)
    ops = getattr(result, "ops", 0) if result is not None else 0
    elapsed = getattr(job, "elapsed", 0.0)
    return {
        "system": getattr(job, "system", ""),
        "app": getattr(job, "app", ""),
        "cached": bool(getattr(job, "cached", False)),
        "elapsed_s": elapsed,
        "events": ops,
        "events_per_sec": (ops / elapsed) if elapsed > 0 else None,
        "total_time_cycles": getattr(result, "total_time", None) if result is not None else None,
    }


def build_manifest(
    kind: str,
    *,
    config: Any = None,
    app: str | None = None,
    systems: list[str] | None = None,
    wall_seconds: float | None = None,
    jobs: list[Any] | None = None,
    cache_hits: int | None = None,
    cache_misses: int | None = None,
    cache_size: tuple[int, int] | None = None,
    extra: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Build a manifest dict for one run.

    ``kind`` names the producing command (``study``, ``sweep``,
    ``check``, ``bench``, ``trace``, ``paper-run``...).  ``jobs`` are
    JobResult-like objects; each contributes a per-job record plus the
    aggregate events / events-per-second figures.
    """
    # Imported here so repro.obs stays importable without repro.core.
    from ..core.parallel import code_fingerprint

    manifest: dict[str, Any] = {
        "schema": MANIFEST_SCHEMA,
        "kind": kind,
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "host": {
            "node": platform.node(),
            "platform": platform.platform(),
            "python": sys.version.split()[0],
        },
        "code_fingerprint": code_fingerprint(),
    }
    if app is not None:
        manifest["app"] = app
    if systems is not None:
        manifest["systems"] = list(systems)
    if config is not None:
        manifest["config"] = _config_dict(config)
    if wall_seconds is not None:
        manifest["wall_seconds"] = wall_seconds
    if jobs:
        entries = [_job_entry(j) for j in jobs]
        manifest["jobs"] = entries
        total_events = sum(e["events"] for e in entries)
        fresh_elapsed = sum(
            e["elapsed_s"] for e in entries if not e["cached"] and e["elapsed_s"]
        )
        manifest["events"] = total_events
        if fresh_elapsed > 0:
            fresh_events = sum(e["events"] for e in entries if not e["cached"])
            manifest["events_per_sec"] = fresh_events / fresh_elapsed
        manifest["cache"] = {
            "hits": (
                cache_hits if cache_hits is not None
                else sum(1 for e in entries if e["cached"])
            ),
            "misses": (
                cache_misses if cache_misses is not None
                else sum(1 for e in entries if not e["cached"])
            ),
        }
    elif cache_hits is not None or cache_misses is not None:
        manifest["cache"] = {"hits": cache_hits or 0, "misses": cache_misses or 0}
    if "cache" in manifest:
        block = manifest["cache"]
        lookups = block["hits"] + block["misses"]
        block["hit_rate"] = round(block["hits"] / lookups, 4) if lookups else None
        if cache_size is not None:
            block["entries"], block["bytes"] = cache_size
    if extra:
        manifest.update(extra)
    return manifest


def write_manifest(path: str | Path, manifest: dict[str, Any]) -> Path:
    """Write ``manifest`` as pretty JSON; returns the path written."""
    path = Path(path)
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return path


def read_manifest(path: str | Path) -> dict[str, Any]:
    """Load a manifest written by :func:`write_manifest`."""
    return json.loads(Path(path).read_text())
