"""Observability subsystem: metrics, timelines, manifests, logging.

Four pillars (see docs/observability.md):

- :mod:`repro.obs.metrics` — interval metrics: per-processor stall
  decomposition, sync wait, network traffic and buffer depth sampled
  into fixed-width simulated-time buckets.
- :mod:`repro.obs.timeline` — Chrome trace-event / Perfetto JSON export
  of traced runs: one lane per processor, stall slices, phase markers,
  barrier/lock flow events.
- :mod:`repro.obs.manifest` — structured run manifests so BENCH files
  and studies are self-describing artifacts.
- :mod:`repro.obs.log` — the structured logger behind the CLI's
  ``--verbose``/``--quiet``/``--json`` modes.
- :mod:`repro.obs.profile` — the host self-profiler: wall-time
  attribution per simulator component (``repro profile``).
- :mod:`repro.obs.telemetry` — per-job heartbeat records streamed from
  ``run_jobs`` workers: live progress rendering plus the
  ``--telemetry-out`` replayable JSONL sink.
- :mod:`repro.obs.attrib` — exact overhead attribution: every
  read-stall/write-stall/buffer-flush cycle charged to a named shared
  region, sync object, application phase and home node, with
  differential reports (``repro attribute`` / ``repro diff``).

Everything here is strictly additive: with no collector attached the
simulation pays one ``is None`` check per resumed thread and nothing
else.
"""

from .attrib import (
    AttributionCollector,
    build_report,
    diff_reports,
    format_attribution,
    format_diff,
    load_report,
    run_attribution,
)
from .log import Logger, configure, get_logger
from .manifest import build_manifest, read_manifest, write_manifest
from .metrics import Counter, Gauge, Histogram, MetricsCollector
from .profile import HostProfiler
from .telemetry import TelemetrySession
from .timeline import attribution_to_perfetto, to_perfetto, write_trace

__all__ = [
    "AttributionCollector",
    "Counter",
    "Gauge",
    "Histogram",
    "HostProfiler",
    "Logger",
    "MetricsCollector",
    "TelemetrySession",
    "attribution_to_perfetto",
    "build_manifest",
    "build_report",
    "configure",
    "diff_reports",
    "format_attribution",
    "format_diff",
    "get_logger",
    "load_report",
    "read_manifest",
    "run_attribution",
    "to_perfetto",
    "write_manifest",
    "write_trace",
]
