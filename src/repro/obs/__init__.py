"""Observability subsystem: metrics, timelines, manifests, logging.

Four pillars (see docs/observability.md):

- :mod:`repro.obs.metrics` — interval metrics: per-processor stall
  decomposition, sync wait, network traffic and buffer depth sampled
  into fixed-width simulated-time buckets.
- :mod:`repro.obs.timeline` — Chrome trace-event / Perfetto JSON export
  of traced runs: one lane per processor, stall slices, phase markers,
  barrier/lock flow events.
- :mod:`repro.obs.manifest` — structured run manifests so BENCH files
  and studies are self-describing artifacts.
- :mod:`repro.obs.log` — the structured logger behind the CLI's
  ``--verbose``/``--quiet``/``--json`` modes.
- :mod:`repro.obs.profile` — the host self-profiler: wall-time
  attribution per simulator component (``repro profile``).
- :mod:`repro.obs.telemetry` — per-job heartbeat records streamed from
  ``run_jobs`` workers: live progress rendering plus the
  ``--telemetry-out`` replayable JSONL sink.

Everything here is strictly additive: with no collector attached the
simulation pays one ``is None`` check per resumed thread and nothing
else.
"""

from .log import Logger, configure, get_logger
from .manifest import build_manifest, read_manifest, write_manifest
from .metrics import Counter, Gauge, Histogram, MetricsCollector
from .profile import HostProfiler
from .telemetry import TelemetrySession
from .timeline import to_perfetto, write_trace

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HostProfiler",
    "Logger",
    "MetricsCollector",
    "TelemetrySession",
    "build_manifest",
    "configure",
    "get_logger",
    "read_manifest",
    "to_perfetto",
    "write_manifest",
    "write_trace",
]
