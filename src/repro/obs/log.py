"""Structured logging for the CLI and scale-run scripts.

One process-wide :class:`Logger` replaces bare ``print`` in command
handlers.  Three output modes:

- **text** (default): behaves exactly like ``print`` for
  :meth:`Logger.out` so existing CLI output (and the tests that parse
  it) is byte-identical; ``info``/``debug`` diagnostics go to stderr.
- **json**: every record becomes one JSON object per line on stdout
  (``{"level": ..., "msg": ..., ...fields}``), machine-consumable.
- **quiet**: only warnings and errors (and ``out`` payloads) survive.

Verbosity is orthogonal: ``debug`` records are dropped unless verbose.
"""

from __future__ import annotations

import json
import sys
from typing import Any, TextIO

_LEVELS = ("debug", "info", "warn", "error")


class Logger:
    """Leveled, optionally-JSON logger.

    ``out`` is the *payload* channel: in text mode it is a plain
    ``print`` to stdout (so reports/tables render untouched); in JSON
    mode payload text is wrapped as ``{"level": "out", "msg": ...}``.
    """

    def __init__(
        self,
        verbose: bool = False,
        quiet: bool = False,
        json_mode: bool = False,
        stream: TextIO | None = None,
        err_stream: TextIO | None = None,
    ):
        self.verbose = verbose
        self.quiet = quiet
        self.json_mode = json_mode
        self._stream = stream
        self._err_stream = err_stream

    @property
    def stream(self) -> TextIO:
        return self._stream if self._stream is not None else sys.stdout

    @property
    def err_stream(self) -> TextIO:
        if self.json_mode:
            # JSON mode keeps a single machine-readable channel.
            return self.stream
        return self._err_stream if self._err_stream is not None else sys.stderr

    # -- record emission -------------------------------------------------
    def _emit(self, level: str, msg: str, fields: dict[str, Any], stream: TextIO) -> None:
        if self.json_mode:
            record = {"level": level, "msg": msg}
            record.update(fields)
            print(json.dumps(record, default=str), file=self.stream)
            return
        if fields:
            detail = " ".join(f"{k}={v}" for k, v in fields.items())
            msg = f"{msg} [{detail}]"
        prefix = "" if level in ("out", "info") else f"{level}: "
        print(f"{prefix}{msg}", file=stream)

    def out(self, msg: str = "", **fields: Any) -> None:
        """Payload output (reports, tables): always shown."""
        self._emit("out", msg, fields, self.stream)

    def info(self, msg: str, **fields: Any) -> None:
        if self.quiet:
            return
        self._emit("info", msg, fields, self.err_stream)

    def debug(self, msg: str, **fields: Any) -> None:
        if not self.verbose or self.quiet:
            return
        self._emit("debug", msg, fields, self.err_stream)

    def warn(self, msg: str, **fields: Any) -> None:
        self._emit("warn", msg, fields, self.err_stream)

    def error(self, msg: str, **fields: Any) -> None:
        self._emit("error", msg, fields, self.err_stream)

    def json_out(self, payload: Any) -> None:
        """Emit a structured payload (pretty JSON on the payload channel)."""
        print(json.dumps(payload, indent=2, sort_keys=True, default=str), file=self.stream)

    def state(self) -> dict[str, bool]:
        """Picklable configuration, for re-creating this logger in pool
        workers (streams are process-local and intentionally omitted)."""
        return {
            "verbose": self.verbose,
            "quiet": self.quiet,
            "json_mode": self.json_mode,
        }


_logger = Logger()


def get_logger() -> Logger:
    """The process-wide logger (configure once in ``main``)."""
    return _logger


def configure(
    verbose: bool = False,
    quiet: bool = False,
    json_mode: bool = False,
    stream: TextIO | None = None,
    err_stream: TextIO | None = None,
) -> Logger:
    """Reconfigure and return the process-wide logger."""
    global _logger
    _logger = Logger(
        verbose=verbose, quiet=quiet, json_mode=json_mode,
        stream=stream, err_stream=err_stream,
    )
    return _logger
