"""Interval metrics: cycle accounting in fixed-width time buckets.

:class:`MetricsCollector` is both a memory-system decorator (so it
composes with :class:`repro.sim.trace.TracingMemory` and
:class:`repro.analysis.checkers.invariants.CheckedMemorySystem`) and the
engine's *observer*.  The decorator half sees every access and feeds the
latency histogram; the observer half receives the engine's exact
per-category cycle accounting — including :class:`repro.sim.events.Stall`
ops that never reach the memory system — so that summing any category
over all buckets reproduces the corresponding :class:`SimResult` total
to floating-point accuracy.

Bucketing rule: cycles of a span ``[start, start + dur)`` are spread
uniformly over the span and integrated per bucket; the final bucket
receives the exact remainder, so totals are preserved bit-for-bit up to
one rounding per span.
"""

from __future__ import annotations

from bisect import bisect_left

from ..sim.stats import AccessResult, SyncPoint

#: Cycle categories tracked per processor per bucket (the paper's stall
#: decomposition plus sync wait).
CATEGORIES = ("busy", "read_stall", "write_stall", "buffer_flush", "sync_wait")

#: Default latency-histogram bucket upper bounds (cycles).
DEFAULT_BOUNDS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 5000.0)

#: Engine stall-callback category -> bucket category.
_STALL_CATEGORY = {
    "read": "read_stall",
    "write": "write_stall",
    "flush": "buffer_flush",
    "sync": "sync_wait",
}


class Counter:
    """Monotonic event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """Point-in-time value; remembers the peak."""

    __slots__ = ("name", "value", "peak")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.peak = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.peak:
            self.peak = value


class Histogram:
    """Fixed-bound histogram (Prometheus ``le`` style, plus overflow)."""

    __slots__ = ("name", "bounds", "counts", "count", "sum")

    def __init__(self, name: str, bounds: tuple[float, ...] = DEFAULT_BOUNDS):
        if list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be sorted")
        self.name = name
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        # bisect_left yields the first bound >= value (the ``le`` bucket);
        # past-the-end lands in the overflow slot.
        self.counts[bisect_left(self.bounds, value)] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
        }


class MetricsCollector:
    """Per-interval cycle accounting + traffic/buffer gauges.

    Attach to a machine *after* any tracer/checker decorators::

        machine = Machine(cfg, "RCinv")
        metrics = MetricsCollector.attach(machine, interval=1000.0)
        result = machine.run(app.worker)
        metrics.to_dict()   # JSON-ready

    The conservative engine issues operations in global simulated-time
    order, so bucket boundaries are crossed (approximately) monotonically
    and traffic deltas / buffer depths are sampled at each crossing.
    """

    #: JSON export schema version.
    SCHEMA = 1

    def __init__(self, nprocs: int, interval: float, network=None, inner=None, engine=None):
        if interval <= 0:
            raise ValueError(f"metrics interval must be > 0, got {interval}")
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        self.nprocs = nprocs
        self.interval = float(interval)
        self.network = network
        self.inner = inner
        #: bucket index -> {category: [per-proc cycles]}
        self._buckets: dict[int, dict[str, list[float]]] = {}
        #: bucket index -> network counter deltas accrued while it was current
        self._net_delta: dict[int, dict[str, float]] = {}
        #: bucket index -> buffer depth samples at entry to the bucket
        self._depths: dict[int, dict[str, list[int]]] = {}
        #: bucket index -> accesses accrued while it was current (the
        #: same sample-at-crossing pattern as ``_net_delta``)
        self._access_delta: dict[int, int] = {}
        self._last_accesses = 0
        #: engine whose ready-queue (event-wheel) depth is sampled at
        #: bucket crossings; None outside :meth:`attach`.
        self._engine = engine
        #: bucket index -> wheel depth at entry to the bucket
        self._wheel_depth: dict[int, int] = {}
        self._cursor = 0
        #: simulated time at which the current bucket ends; deposits
        #: below it skip the _advance call entirely (the hot path).
        self._next_boundary = self.interval
        self._last_net = network.stats.snapshot() if network is not None else None
        self.latency = Histogram("access_latency_cycles")
        self.accesses = Counter("accesses")
        self.sync_events = Counter("sync_events")
        self.phases: list[tuple[float, int, str]] = []
        if inner is not None:
            # Data accesses bypass the decorator entirely (bound inner
            # methods shadow any class-level wrapper): their accounting
            # arrives through the engine-observer callbacks instead, so
            # the hottest path pays no extra Python frame.
            self.read = inner.read
            self.write = inner.write

    # -- construction ----------------------------------------------------
    @classmethod
    def attach(cls, machine, interval: float = 1000.0) -> MetricsCollector:
        """Interpose a collector on ``machine`` (decorator + observer)."""
        collector = cls(
            machine.config.nprocs,
            interval,
            network=machine.network,
            inner=machine.engine.memsys,
            engine=machine.engine,
        )
        machine.engine.memsys = collector
        machine.engine.observer = collector
        return collector

    # -- memory-system decorator surface ---------------------------------
    # read/write are bound straight to the inner system in __init__;
    # access counting and the latency histogram are fed by on_access.

    def acquire(self, proc: int, now: float, sync: SyncPoint | None = None) -> AccessResult:
        self.sync_events.inc()
        return self.inner.acquire(proc, now, sync=sync)

    def release(self, proc: int, now: float, sync: SyncPoint | None = None) -> AccessResult:
        self.sync_events.inc()
        return self.inner.release(proc, now, sync=sync)

    def sync_note(self, proc: int, now: float, sync: SyncPoint) -> None:
        self.sync_events.inc()
        self.inner.sync_note(proc, now, sync)

    def phase_note(self, proc: int, now: float, label: str) -> None:
        self.inner.phase_note(proc, now, label)

    def __getattr__(self, name: str):
        # Delegate everything else (line_size, publish, caches, ...) inward.
        return getattr(self.inner, name)

    # -- engine-observer surface -----------------------------------------
    def on_busy(self, proc: int, start: float, cycles: float) -> None:
        # Inlined single-bucket fast path (one deposit per Compute op).
        if start >= self._next_boundary:
            self._advance(start)
        w = self.interval
        b0 = int(start // w)
        if start + cycles <= (b0 + 1) * w:
            bucket = self._buckets.get(b0)
            if bucket is None:
                bucket = {cat: [0.0] * self.nprocs for cat in CATEGORIES}
                self._buckets[b0] = bucket
            bucket["busy"][proc] += cycles
            return
        self._deposit_one(proc, start, cycles, "busy", cycles)

    def on_access(
        self,
        proc: int,
        issue: float,
        complete: float,
        read_stall: float,
        write_stall: float,
        buffer_flush: float,
        busy: float,
    ) -> None:
        latency = complete - issue
        acc = self.accesses
        acc.value += 1
        self.latency.observe(latency)
        if read_stall == 0.0 and write_stall == 0.0 and buffer_flush == 0.0:
            # Hit path (the overwhelming majority): one category, and
            # almost always within a single bucket — inlined.
            if issue >= self._next_boundary:
                self._advance(issue)
            w = self.interval
            b0 = int(issue // w)
            if complete <= (b0 + 1) * w:
                bucket = self._buckets.get(b0)
                if bucket is None:
                    bucket = {cat: [0.0] * self.nprocs for cat in CATEGORIES}
                    self._buckets[b0] = bucket
                bucket["busy"][proc] += busy
                return
            self._deposit_one(proc, issue, latency, "busy", busy)
            return
        self._deposit(
            proc, issue, latency,
            busy=busy, read_stall=read_stall,
            write_stall=write_stall, buffer_flush=buffer_flush,
        )

    def on_stall(self, proc: int, start: float, cycles: float, category: str) -> None:
        self._deposit_one(proc, start, cycles, _STALL_CATEGORY[category], cycles)

    def on_sync_wait(self, proc: int, start: float, cycles: float) -> None:
        self._deposit_one(proc, start, cycles, "sync_wait", cycles)

    def on_phase(self, proc: int, time: float, label: str) -> None:
        self.phases.append((time, proc, label))

    # -- bucketing --------------------------------------------------------
    def _bucket(self, index: int) -> dict[str, list[float]]:
        bucket = self._buckets.get(index)
        if bucket is None:
            bucket = {cat: [0.0] * self.nprocs for cat in CATEGORIES}
            self._buckets[index] = bucket
        return bucket

    def _advance(self, t: float) -> None:
        """Sample gauges when simulated time enters a new bucket."""
        b = int(t // self.interval)
        if b <= self._cursor:
            return
        if self._last_net is not None:
            snap = self.network.stats.snapshot()
            delta = {k: snap[k] - self._last_net[k] for k in snap}
            old = self._net_delta.get(self._cursor)
            if old is not None:
                for k, v in delta.items():
                    old[k] += v
            else:
                self._net_delta[self._cursor] = delta
            self._last_net = snap
        acc = self.accesses.value
        if acc != self._last_accesses:
            cur = self._access_delta.get(self._cursor, 0)
            self._access_delta[self._cursor] = cur + acc - self._last_accesses
            self._last_accesses = acc
        if self._engine is not None:
            self._wheel_depth[b] = self._engine.queue_depth()
        depths = self._sample_depths()
        if depths:
            self._depths[b] = depths
        self._cursor = b
        self._next_boundary = (b + 1) * self.interval

    def _sample_depths(self) -> dict[str, list[int]]:
        out: dict[str, list[int]] = {}
        store = getattr(self, "store_buffers", None) if self.inner is not None else None
        if store is not None:
            out["store_buffer"] = [len(sb._pending) for sb in store]
        merge = getattr(self, "merge_buffers", None) if self.inner is not None else None
        if merge is not None:
            out["merge_buffer"] = [len(mb) for mb in merge]
        return out

    def _deposit_one(self, proc: int, start: float, dur: float, cat: str, amount: float) -> None:
        """Single-category deposit: the specialised hot path."""
        if start >= self._next_boundary:
            self._advance(start)
        w = self.interval
        b0 = int(start // w)
        if dur > 0.0:
            end = start + dur
            b1 = int(end // w)
            if b1 * w == end:
                b1 -= 1
            if b1 != b0:
                rate = amount / dur
                assigned = 0.0
                for b in range(b0, b1):
                    lo = start if b == b0 else b * w
                    share = rate * ((b + 1) * w - lo)
                    self._bucket(b)[cat][proc] += share
                    assigned += share
                # Exact remainder into the final bucket.
                self._bucket(b1)[cat][proc] += amount - assigned
                return
        self._bucket(b0)[cat][proc] += amount

    def _deposit(self, proc: int, start: float, dur: float, **amounts: float) -> None:
        if start >= self._next_boundary:
            self._advance(start)
        w = self.interval
        if dur <= 0.0:
            cells = self._bucket(int(start // w))
            for cat, amount in amounts.items():
                if amount > 0.0:
                    cells[cat][proc] += amount
            return
        end = start + dur
        b0 = int(start // w)
        b1 = int(end // w)
        if b1 * w == end:
            b1 -= 1  # span ends exactly on a boundary: last bucket is b1 - 1
        if b0 == b1:
            cells = self._bucket(b0)
            for cat, amount in amounts.items():
                if amount > 0.0:
                    cells[cat][proc] += amount
            return
        for cat, amount in amounts.items():
            if amount <= 0.0:
                continue
            rate = amount / dur
            assigned = 0.0
            for b in range(b0, b1):
                lo = start if b == b0 else b * w
                share = rate * ((b + 1) * w - lo)
                self._bucket(b)[cat][proc] += share
                assigned += share
            # Exact remainder into the final bucket: totals are preserved.
            self._bucket(b1)[cat][proc] += amount - assigned

    # -- reporting --------------------------------------------------------
    def totals(self) -> dict[str, float]:
        """Machine-wide per-category totals summed over every bucket.

        Matches the corresponding :class:`repro.sim.stats.SimResult`
        sums (the acceptance invariant for interval metrics).
        """
        out = dict.fromkeys(CATEGORIES, 0.0)
        for bucket in self._buckets.values():
            for cat in CATEGORIES:
                out[cat] += sum(bucket[cat])
        return out

    def per_proc_totals(self) -> dict[str, list[float]]:
        out = {cat: [0.0] * self.nprocs for cat in CATEGORIES}
        for bucket in self._buckets.values():
            for cat in CATEGORIES:
                cells = bucket[cat]
                acc = out[cat]
                for p in range(self.nprocs):
                    acc[p] += cells[p]
        return out

    def to_dict(self) -> dict:
        """JSON-ready export (see docs/observability.md for the schema)."""
        # Flush accesses accrued since the last bucket crossing into the
        # current bucket (idempotent: the counter delta is consumed).
        acc = self.accesses.value
        if acc != self._last_accesses:
            cur = self._access_delta.get(self._cursor, 0)
            self._access_delta[self._cursor] = cur + acc - self._last_accesses
            self._last_accesses = acc
        buckets = []
        for index in sorted(self._buckets):
            cells = self._buckets[index]
            entry: dict = {
                "index": index,
                "t0": index * self.interval,
                "t1": (index + 1) * self.interval,
            }
            for cat in CATEGORIES:
                entry[cat] = list(cells[cat])
            net = self._net_delta.get(index)
            if net is not None:
                entry["network"] = net
            depths = self._depths.get(index)
            if depths is not None:
                entry["buffer_depth"] = depths
            accesses = self._access_delta.get(index)
            if accesses is not None:
                entry["accesses"] = accesses
            wheel = self._wheel_depth.get(index)
            if wheel is not None:
                entry["wheel_depth"] = wheel
            buckets.append(entry)
        return {
            "schema": self.SCHEMA,
            "interval": self.interval,
            "nprocs": self.nprocs,
            "categories": list(CATEGORIES),
            "buckets": buckets,
            "totals": self.totals(),
            "counters": {
                "accesses": self.accesses.value,
                "sync_events": self.sync_events.value,
            },
            "latency_histogram": self.latency.to_dict(),
            "phases": [
                {"time": t, "proc": p, "label": label} for t, p, label in self.phases
            ],
        }
