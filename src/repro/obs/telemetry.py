"""Live run telemetry for multi-job studies, sweeps and benches.

Long ``--jobs N`` runs used to be silent for minutes.  This module
streams per-job heartbeat records from :func:`repro.core.parallel.run_jobs`
workers back to the parent process, where a :class:`TelemetrySession`

* renders live per-job progress lines (``[7/30] IS/RCinv ...``) on the
  logger's diagnostic channel, including a completion-based ETA, and
* optionally persists every record to a replayable JSONL sink
  (``--telemetry-out``).

Records are plain dicts with a fixed schema::

    {"schema": 1, "job": 3, "seq": 1, "event": "finish",
     "app": "IS", "system": "RCinv", "events": 30591,
     "elapsed_s": 0.05, "events_per_sec": 611820.0,
     "cached": false, "eta_s": 3.1, "ts": 1754650000.0}

``job`` is the spec index within the run and ``seq`` orders a job's own
records (0 = start, 1 = finish).  Worker processes emit records over a
``multiprocessing.Manager`` queue; arrival order is nondeterministic, so
the JSONL sink is sorted by ``(job, seq)`` at close — replaying a run
twice yields the same record sequence (timing fields aside), which is
what the determinism tests pin.

The session is process-wide (like the logger): the CLI opens one around
a command via :func:`session`, and ``run_jobs`` picks it up through
:func:`get_session` without threading a parameter through every caller.
"""
# Wall-clock use is deliberate here: telemetry times the *host*, never
# the simulation (obs/ is outside the determinism lint's core roots).

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from queue import Empty
from typing import Any, Iterator

from .log import get_logger

#: Record schema version (bump on breaking field changes).
SCHEMA = 1

#: Fields that vary run-to-run on a real host; replay comparisons and
#: the determinism tests ignore exactly these.
VOLATILE_FIELDS = ("elapsed_s", "events_per_sec", "eta_s", "ts")


def job_started(job: int, app: str, system: str) -> dict[str, Any]:
    """Heartbeat record for a job entering execution."""
    return {
        "schema": SCHEMA,
        "job": job,
        "seq": 0,
        "event": "start",
        "app": app,
        "system": system,
        "ts": time.time(),
    }


def job_finished(
    job: int,
    app: str,
    system: str,
    events: int,
    elapsed_s: float,
    cached: bool,
) -> dict[str, Any]:
    """Heartbeat record for a completed (or cache-served) job."""
    return {
        "schema": SCHEMA,
        "job": job,
        "seq": 1,
        "event": "finish",
        "app": app,
        "system": system,
        "events": events,
        "elapsed_s": round(elapsed_s, 6),
        "events_per_sec": round(events / elapsed_s, 1) if elapsed_s > 0 else None,
        "cached": cached,
        "ts": time.time(),
    }


class TelemetrySession:
    """Collects heartbeat records; renders progress; writes the sink.

    Thread-safe: records arrive from the queue-drainer thread (pool
    runs) or the caller's thread (in-process runs).  ``total`` may be
    attached late (``run_jobs`` knows the job count, the CLI does not).
    """

    def __init__(
        self,
        out: str | os.PathLike | None = None,
        render: bool = False,
        total: int | None = None,
    ):
        self.out = Path(out) if out is not None else None
        self.render = render
        self.total = total
        self.records: list[dict[str, Any]] = []
        self._lock = threading.Lock()
        self._started = time.time()
        self._finished = 0
        self._manager: Any = None
        self._queue: Any = None
        self._drainer: threading.Thread | None = None
        self._stop = threading.Event()

    # -- record intake ---------------------------------------------------
    def attach_total(self, total: int) -> None:
        """Declare how many jobs the current run fans out."""
        with self._lock:
            self.total = total
            self._finished = 0
            self._started = time.time()

    def emit(self, record: dict[str, Any]) -> None:
        """Ingest one heartbeat record (enriches ETA, renders, stores)."""
        with self._lock:
            if record.get("event") == "finish":
                self._finished += 1
                record["eta_s"] = self._eta()
            self.records.append(record)
            line = self._progress_line(record) if self.render else None
        if line:
            get_logger().info(line)

    def _eta(self) -> float | None:
        """Completion-based ETA in seconds (None until estimable)."""
        if not self.total or not self._finished:
            return None
        elapsed = time.time() - self._started
        remaining = self.total - self._finished
        return round(elapsed / self._finished * remaining, 1)

    def _progress_line(self, record: dict[str, Any]) -> str | None:
        if record.get("event") != "finish":
            return None
        done = self._finished
        total = self.total if self.total is not None else "?"
        name = f"{record.get('app', '?')}/{record.get('system', '?')}"
        if record.get("cached"):
            detail = "cache hit"
        else:
            eps = record.get("events_per_sec")
            detail = (
                f"{record.get('events', 0):,} ev, {eps:,.0f} ev/s"
                if eps
                else f"{record.get('events', 0):,} ev"
            )
        eta = record.get("eta_s")
        suffix = f", eta {eta:.0f}s" if eta else ""
        return f"[{done}/{total}] {name}: {detail}{suffix}"

    # -- worker-queue plumbing -------------------------------------------
    def remote_queue(self) -> Any:
        """A queue worker processes can ``put`` records on.

        Lazily starts a ``multiprocessing.Manager`` and a drainer
        thread that feeds :meth:`emit`; both are torn down by
        :meth:`close`.
        """
        if self._queue is None:
            import multiprocessing

            self._manager = multiprocessing.Manager()
            self._queue = self._manager.Queue()
            self._stop.clear()
            self._drainer = threading.Thread(
                target=self._drain, name="telemetry-drain", daemon=True
            )
            self._drainer.start()
        return self._queue

    def _drain(self) -> None:
        while True:
            try:
                record = self._queue.get(timeout=0.05)
            except Empty:
                if self._stop.is_set():
                    return
                continue
            except (EOFError, OSError, ConnectionError):
                return
            self.emit(record)

    def drain_pending(self) -> None:
        """Block until every queued record has been ingested."""
        if self._queue is None:
            return
        # The drainer owns get(); poll emptiness rather than racing it.
        deadline = time.time() + 5.0
        while time.time() < deadline:
            try:
                if self._queue.empty():
                    return
            except (EOFError, OSError, ConnectionError):
                return
            time.sleep(0.01)

    # -- teardown --------------------------------------------------------
    def close(self) -> None:
        """Stop the drainer, shut the manager down, write the sink."""
        self.drain_pending()
        self._stop.set()
        if self._drainer is not None:
            self._drainer.join(timeout=5.0)
            self._drainer = None
        if self._manager is not None:
            self._manager.shutdown()
            self._manager = None
            self._queue = None
        if self.out is not None:
            self.out.parent.mkdir(parents=True, exist_ok=True)
            with open(self.out, "w") as fh:
                for record in sorted(
                    self.records, key=lambda r: (r.get("job", -1), r.get("seq", 0))
                ):
                    fh.write(json.dumps(record, sort_keys=True) + "\n")


_session: TelemetrySession | None = None


def get_session() -> TelemetrySession | None:
    """The active process-wide session, or None outside one."""
    return _session


@contextmanager
def session(
    out: str | os.PathLike | None = None,
    render: bool = False,
    total: int | None = None,
) -> Iterator[TelemetrySession]:
    """Open a process-wide :class:`TelemetrySession` for a command."""
    global _session
    previous = _session
    _session = TelemetrySession(out=out, render=render, total=total)
    try:
        yield _session
    finally:
        try:
            _session.close()
        finally:
            _session = previous


def load_records(path: str | os.PathLike) -> list[dict[str, Any]]:
    """Read a telemetry JSONL sink back into records (for replay)."""
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def stable_view(records: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Records with the host-timing fields stripped.

    Two runs of the same job set produce identical stable views — the
    property the determinism tests pin.
    """
    return [
        {k: v for k, v in record.items() if k not in VOLATILE_FIELDS}
        for record in records
    ]


__all__ = [
    "SCHEMA",
    "VOLATILE_FIELDS",
    "TelemetrySession",
    "get_session",
    "job_finished",
    "job_started",
    "load_records",
    "session",
    "stable_view",
]
