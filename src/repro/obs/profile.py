"""Self-profiler: host wall-time attribution for the simulation engine.

The paper decomposes *simulated* cycles into overhead categories
relative to the zero-overhead z-machine.  This module gives the host
simulator the same story about itself: where do *wall-clock*
nanoseconds go while the engine runs?  Components:

``wheel``
    Event-wheel scheduling: ``pop_and_peek`` at segment entry and the
    fused ``push_pop_peek`` at segment exit.
``app``
    Application Python execution — the generator ``send`` that runs
    real workload code between two yielded ops.
``mem``
    Memory-system transaction handling (directory/cache protocol
    models), excluding time spent inside the network.
``network``
    Network routing/transfer calls made by the memory system.
``tracer``
    Overhead of attached memory-system decorators (TracingMemory,
    MetricsCollector, CheckedMemorySystem): outer-call time minus
    inner-system time.  Zero when nothing is attached.
``sync``
    Synchronisation manager calls (locks, barriers, flags) including
    the wakes they trigger.
``observer``
    Engine-observer callbacks (interval metrics) on the data hot path.
``dispatch``
    Everything else inside the scheduler loop: op-class dispatch,
    stall-decomposition accounting, run-ahead checks, stale-entry
    discards.

Profiling is **off by default** and costs one attribute check per
:meth:`repro.sim.engine.Engine.run` call when disabled — the engine's
hot loop is untouched and results stay bit-identical (pinned by the
golden-equivalence suite).  When enabled, the engine executes
:func:`run_profiled` instead: the same conservative schedule, the same
float-operation order (so the :class:`~repro.sim.stats.SimResult` is
bit-identical to an unprofiled run), with ``perf_counter_ns`` marks at
component boundaries.  Measured overhead is recorded in
``BENCH_profile.json`` (see :func:`repro.core.bench.run_profile_bench`).

Typical use::

    machine = Machine(cfg, "RCinv")
    prof = HostProfiler.attach(machine)
    result = machine.run(app.worker)
    print(prof.table())
    write_trace("flame.json", prof.to_perfetto())
"""

from __future__ import annotations

import gc
from time import perf_counter_ns
from typing import Any

from ..sim.events import (
    Acquire,
    BarrierWait,
    Compute,
    Fence,
    FlagSet,
    FlagWait,
    Phase,
    Read,
    ReadNB,
    Release,
    SelfInvalidate,
    Stall,
    Write,
)
from ..sim.stats import AccessResult, SimResult, SyncPoint

_INF = float("inf")

#: Host-time components, in display order.
COMPONENTS = (
    "wheel", "app", "mem", "network", "tracer", "sync", "observer", "dispatch",
)

#: One-line description per component (for tables and docs).
COMPONENT_HELP = {
    "wheel": "event-wheel pop/push scheduling",
    "app": "application generator execution",
    "mem": "memory-system transaction handling",
    "network": "network routing/transfer",
    "tracer": "tracer/metrics/checker decorator overhead",
    "sync": "sync manager (locks/barriers/flags)",
    "observer": "engine-observer metric callbacks",
    "dispatch": "engine dispatch + cycle accounting",
}

#: Network entry points timed by the profiler.
_NETWORK_METHODS = ("transfer", "fanout", "multicast")

#: Memory-system entry points timed on the innermost system.
_MEMSYS_METHODS = ("read", "write", "acquire", "release", "publish", "self_invalidate")


class HostProfiler:
    """Accumulates host nanoseconds per simulator component.

    Attach with :meth:`attach` *after* any tracer/metrics decorators so
    decorator overhead is split out into the ``tracer`` component.
    """

    def __init__(self) -> None:
        self.ns: dict[str, int] = dict.fromkeys(COMPONENTS, 0)
        #: Total profiled wall time (ns) of the run.
        self.wall_ns = 0
        #: Ops executed and scheduling segments observed.
        self.ops = 0
        self.segments = 0
        #: Total nanoseconds inside network calls (flushed into
        #: ``ns["network"]`` at the end of a profiled run).
        self._net_ns = 0
        #: Reentrancy guard: fanout/multicast may call transfer
        #: internally; only the outermost network call is timed.
        self._net_depth = 0
        #: Total nanoseconds inside the innermost memory system (only
        #: tracked when a decorator chain is wrapped; flushed at end).
        self._inner_ns = 0
        #: Whether a decorator chain was found and inner timing is live.
        self.has_decorators = False

    # -- construction ----------------------------------------------------
    @classmethod
    def attach(cls, machine: Any) -> HostProfiler:
        """Enable profiling on ``machine``; returns the profiler.

        Wraps the network's transfer entry points (so ``network`` time
        is split out of ``mem``) and, when the engine's memory system is
        a decorator chain, the innermost system's entry points (so
        decorator overhead lands in ``tracer``).
        """
        profiler = cls()
        profiler._wrap_network(machine.network)
        profiler._wrap_inner(machine.engine.memsys)
        machine.engine.profiler = profiler
        return profiler

    def _wrap_network(self, network: Any) -> None:
        for name in _NETWORK_METHODS:
            fn = getattr(network, name, None)
            if fn is None:
                continue
            setattr(network, name, self._timed_net(fn))

    def _timed_net(self, fn):
        pcn = perf_counter_ns

        def timed(*args, **kwargs):
            if self._net_depth:
                return fn(*args, **kwargs)
            self._net_depth = 1
            t0 = pcn()
            try:
                return fn(*args, **kwargs)
            finally:
                self._net_ns += pcn() - t0
                self._net_depth = 0

        return timed

    def _wrap_inner(self, memsys: Any) -> None:
        """Time the innermost system of a decorator chain.

        Decorators (tracer/metrics/checker) expose the wrapped system as
        ``.inner``; without one there is nothing to split and ``tracer``
        stays zero.  Decorators that bound the inner's methods directly
        (MetricsCollector's read/write bypass) are re-pointed at the
        timed versions so the split stays exact.
        """
        chain = []
        sys = memsys
        while hasattr(sys, "inner") and sys.inner is not None:
            chain.append(sys)
            sys = sys.inner
        if not chain:
            return
        self.has_decorators = True
        pcn = perf_counter_ns
        for name in _MEMSYS_METHODS:
            fn = getattr(sys, name, None)
            if fn is None:
                continue

            def timed(*args, _fn=fn, **kwargs):
                t0 = pcn()
                try:
                    return _fn(*args, **kwargs)
                finally:
                    self._inner_ns += pcn() - t0

            # Re-point decorator-level direct bindings at the timed
            # version before shadowing the inner method itself
            # (MetricsCollector binds read/write straight to the inner
            # system; bound methods compare ``==`` on func + receiver).
            for deco in chain:
                if deco.__dict__.get(name) == fn:
                    setattr(deco, name, timed)
            setattr(sys, name, timed)

    # -- reporting -------------------------------------------------------
    def attributed_ns(self) -> int:
        """Nanoseconds attributed to any component."""
        return sum(self.ns.values())

    def to_dict(self) -> dict:
        """JSON-ready attribution document."""
        wall = self.wall_ns
        attributed = self.attributed_ns()
        return {
            "schema": 1,
            "profile": "host-component-attribution",
            "wall_ns": wall,
            "attributed_ns": attributed,
            "unattributed_ns": wall - attributed,
            "ops": self.ops,
            "segments": self.segments,
            "ns_per_op": round(wall / self.ops, 1) if self.ops else None,
            "has_decorators": self.has_decorators,
            "components": {
                name: {
                    "ns": self.ns[name],
                    "pct": round(100.0 * self.ns[name] / wall, 2) if wall else 0.0,
                    "help": COMPONENT_HELP[name],
                }
                for name in COMPONENTS
            },
        }

    def table(self) -> str:
        """Human-readable per-component attribution table."""
        wall = self.wall_ns
        lines = [
            f"host profile: {self.ops:,} ops in {wall / 1e9:.3f}s wall "
            f"({wall / self.ops:,.0f} ns/op, {self.segments:,} segments)"
            if self.ops
            else "host profile: no ops executed",
            f"{'component':>10s} {'time (ms)':>10s} {'share':>7s}  what",
        ]
        for name in COMPONENTS:
            ns = self.ns[name]
            pct = 100.0 * ns / wall if wall else 0.0
            lines.append(
                f"{name:>10s} {ns / 1e6:>10.2f} {pct:>6.1f}%  {COMPONENT_HELP[name]}"
            )
        other = wall - self.attributed_ns()
        pct = 100.0 * other / wall if wall else 0.0
        lines.append(f"{'(untracked)':>10s} {other / 1e6:>10.2f} {pct:>6.1f}%  marks + loop entry/exit")
        return "\n".join(lines)

    def to_perfetto(self) -> dict:
        """Perfetto-compatible flame view of the attribution.

        Aggregate flame: one host lane with a root ``engine.run`` slice
        whose children are the components laid side by side, each sized
        by its accumulated time (1 us of trace time per 1 us of host
        time).  Loadable in https://ui.perfetto.dev like any timeline.
        """
        wall_us = self.wall_ns / 1e3
        events: list[dict] = [
            {"ph": "M", "pid": 0, "tid": 0, "ts": 0, "name": "process_name",
             "args": {"name": "repro self-profile"}},
            {"ph": "M", "pid": 0, "tid": 0, "ts": 0, "name": "thread_name",
             "args": {"name": "host"}},
            {"ph": "X", "pid": 0, "tid": 0, "cat": "profile", "name": "engine.run",
             "ts": 0, "dur": wall_us,
             "args": {"ops": self.ops, "segments": self.segments}},
        ]
        cursor = 0.0
        for name in COMPONENTS:
            dur = self.ns[name] / 1e3
            if dur <= 0.0:
                continue
            events.append(
                {"ph": "X", "pid": 0, "tid": 0, "cat": "profile", "name": name,
                 "ts": cursor, "dur": dur,
                 "args": {"help": COMPONENT_HELP[name]}}
            )
            cursor += dur
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"profile": "host-component-attribution", "wall_ns": self.wall_ns},
        }


def run_profiled(engine: Any, prof: HostProfiler) -> SimResult:
    """Profiled twin of :meth:`repro.sim.engine.Engine.run`.

    Identical conservative schedule, identical float-operation order —
    the returned :class:`SimResult` is bit-identical to an unprofiled
    run (pinned by tests/test_profile.py against the goldens).  The only
    differences are ``perf_counter_ns`` marks at component boundaries
    and method-call (rather than inlined) wheel operations at segment
    exits, whose cost is *part of what is being measured*.

    To keep overhead low on a ~2 us/op hot loop where a clock read
    costs ~100 ns, marks are two-tier:

    * **exact** — wheel spans at every segment boundary, sync-manager
      and memory-system spans on the rare synchronisation ops, observer
      callback spans, and the total intra-segment span;
    * **sampled** — every 16th *segment* additionally takes per-op
      app/mem/tail marks; the exact intra-segment total (minus the
      exactly-measured sync/observer/mem parts) is apportioned across
      ``app``, ``mem`` and ``dispatch`` by the sampled shares at flush
      time.  Ops in unsampled segments pay a single local-bool branch
      per mark site and no clock reads at all.

    Component totals therefore always sum to the measured span exactly;
    only the app/mem/dispatch *split* is statistical (hundreds of
    sampled segments on any non-trivial run).  Sampling is keyed off
    the deterministic segment counter, so it never perturbs the
    simulation.

    Keep the simulation semantics in lockstep with ``Engine.run``: any
    change to the op-handling arithmetic there must be mirrored here.
    """
    pcn = perf_counter_ns
    threads = engine._threads
    tlist: list[Any] = [None] * engine.config.nprocs
    for th in threads.values():
        tlist[th.tid] = th
    queue = engine._queue
    pop_and_peek = queue.pop_and_peek
    push_pop_peek = queue.push_pop_peek
    memsys = engine.memsys
    mem_read = memsys.read
    mem_write = memsys.write
    syncmgr = engine.syncmgr
    max_ops = engine.max_ops
    ops_limit = max_ops if max_ops is not None else _INF
    ops = engine._ops_executed
    obs = engine.observer
    charge = engine._charge
    hit_res = getattr(memsys, "_hit_result", None)
    lock_episode = engine._lock_episode
    barrier_episode = engine._barrier_episode
    flag_epoch = engine._flag_epoch
    has_inner = prof.has_decorators
    deg = engine._degrade
    if deg is not None:
        cpu_f = deg.cpu_factors(engine.config.nprocs)
        burst_period = deg.burst_period
        burst_len = burst_period * deg.burst_duty
        burst_factor = deg.burst_factor
        burst_phase = deg.burst_phase
    else:
        cpu_f = []
        burst_period = burst_len = burst_phase = 0.0
        burst_factor = 1.0

    # Exact accumulators (local ints: a dict item-add per mark would
    # roughly double the profiling cost; flushed to ``prof.ns`` at end).
    ns_wheel = ns_sync = ns_observer = 0
    ns_mem_x = 0  # exact memory-system spans on the rare sync-op paths
    ns_intra = 0  # total time between segment boundaries
    # Sampled shares (every 16th segment) used to split ns_intra at flush.
    s_app = s_mem = s_tail = 0
    t0 = t1 = t2 = 0
    segments = 0
    gc_was_enabled = gc.isenabled()
    gc.disable()
    t_run0 = pcn()
    try:
        entry, horizon = pop_and_peek()
        bound = pcn()
        ns_wheel += bound - t_run0
        while True:
            if entry is None:
                break
            time, _seq, tid = entry
            thread = tlist[tid]
            if thread.done or thread.blocked or thread.time != time:
                entry, horizon = pop_and_peek()
                now_ns = pcn()
                ns_wheel += now_ns - bound
                bound = now_ns
                continue
            segments += 1
            # Segment-level sampling: every 16th segment (including the
            # first, so tiny runs still sample) takes the fine-grained
            # app/mem/tail marks; a rare sync op flips it off for the
            # segment remainder since its span is measured exactly.
            sampled = (segments & 15) == 1
            engine._horizon = hz = horizon
            send = thread.gen.send
            stats = thread.stats
            t = thread.time
            fb = thread.feedback
            while True:
                if sampled:
                    t0 = pcn()
                try:
                    op = send(fb)
                except StopIteration:
                    thread.done = True
                    thread.time = t
                    stats.finish_time = t
                    now_ns = pcn()
                    ns_intra += now_ns - bound
                    entry, horizon = pop_and_peek()
                    bound = pcn()
                    ns_wheel += bound - now_ns
                    break
                if sampled:
                    t1 = pcn()
                    s_app += t1 - t0
                    t2 = t1
                ops += 1
                if ops > ops_limit:
                    raise RuntimeError(
                        f"operation budget exceeded ({engine.max_ops}); "
                        "likely runaway application loop"
                    )
                cls = op.__class__
                now = t
                fb = None
                if cls is Read:
                    res = mem_read(tid, op.addr, now)
                    if sampled:
                        t2 = pcn()
                        s_mem += t2 - t1
                    stats.reads += 1
                    if res is hit_res:
                        stats.read_hits += 1
                        rt = res.time
                        busy = rt - now
                        if busy <= 0.0:
                            busy = 0.0
                        stats.busy += busy
                        t = rt
                        if obs is not None and busy > 0.0:
                            now_ns = pcn()
                            obs.on_access(tid, now, rt, 0.0, 0.0, 0.0, busy)
                            o2 = pcn()
                            ns_observer += o2 - now_ns
                            if sampled:
                                t2 += o2 - now_ns
                    else:
                        if res.hit:
                            stats.read_hits += 1
                        else:
                            stats.read_misses += 1
                        rt = res.time
                        elapsed = rt - now
                        if elapsed < -1e-9:
                            raise RuntimeError(
                                f"memory system returned completion {rt} before issue {now}"
                            )
                        rs = res.read_stall
                        ws = res.write_stall
                        bf = res.buffer_flush
                        stalls = rs + ws + bf
                        stats.read_stall += rs
                        stats.write_stall += ws
                        stats.buffer_flush += bf
                        busy = elapsed - stalls
                        if busy <= 0.0:
                            busy = 0.0
                        stats.busy += busy
                        t = rt
                        if obs is not None and elapsed > 0.0:
                            now_ns = pcn()
                            obs.on_access(tid, now, rt, rs, ws, bf, busy)
                            o2 = pcn()
                            ns_observer += o2 - now_ns
                            if sampled:
                                t2 += o2 - now_ns
                elif cls is Compute:
                    cycles = op.cycles
                    if deg is not None:
                        f = cpu_f[tid]
                        if (
                            burst_period > 0.0
                            and (now + tid * burst_phase) % burst_period < burst_len
                        ):
                            f *= burst_factor
                        cycles = cycles * f
                    stats.busy += cycles
                    t = now + cycles
                    if obs is not None and cycles > 0.0:
                        now_ns = pcn()
                        obs.on_busy(tid, now, cycles)
                        o2 = pcn()
                        ns_observer += o2 - now_ns
                        if sampled:
                            t2 += o2 - now_ns
                elif cls is Write:
                    res = mem_write(tid, op.addr, now)
                    if sampled:
                        t2 = pcn()
                        s_mem += t2 - t1
                    stats.writes += 1
                    if res is hit_res:
                        rt = res.time
                        busy = rt - now
                        if busy <= 0.0:
                            busy = 0.0
                        stats.busy += busy
                        t = rt
                        if obs is not None and busy > 0.0:
                            now_ns = pcn()
                            obs.on_access(tid, now, rt, 0.0, 0.0, 0.0, busy)
                            o2 = pcn()
                            ns_observer += o2 - now_ns
                            if sampled:
                                t2 += o2 - now_ns
                    else:
                        rt = res.time
                        elapsed = rt - now
                        if elapsed < -1e-9:
                            raise RuntimeError(
                                f"memory system returned completion {rt} before issue {now}"
                            )
                        rs = res.read_stall
                        ws = res.write_stall
                        bf = res.buffer_flush
                        stalls = rs + ws + bf
                        stats.read_stall += rs
                        stats.write_stall += ws
                        stats.buffer_flush += bf
                        busy = elapsed - stalls
                        if busy <= 0.0:
                            busy = 0.0
                        stats.busy += busy
                        t = rt
                        if obs is not None and elapsed > 0.0:
                            now_ns = pcn()
                            obs.on_access(tid, now, rt, rs, ws, bf, busy)
                            o2 = pcn()
                            ns_observer += o2 - now_ns
                            if sampled:
                                t2 += o2 - now_ns
                elif cls is Acquire:
                    sampled = False
                    tA = pcn()
                    sync = SyncPoint("lock", op.lock_id, lock_episode(op.lock_id))
                    res = memsys.acquire(tid, now, sync)
                    tB = pcn()
                    ns_mem_x += tB - tA
                    t = charge(stats, tid, now, res)
                    stats.acquires += 1
                    grant = syncmgr.acquire(tid, op.lock_id, t)
                    tC = pcn()
                    ns_sync += tC - tB
                    if grant is None:
                        thread.blocked = True
                        thread.block_time = t
                        thread.time = t
                        thread.feedback = None
                        now_ns = pcn()
                        ns_intra += now_ns - bound
                        entry, horizon = pop_and_peek()
                        bound = pcn()
                        ns_wheel += bound - now_ns
                        break
                    wait = grant - t
                    if wait > 0.0:
                        stats.sync_wait += wait
                        if obs is not None:
                            obs.on_sync_wait(tid, t, wait)
                        t = grant
                    hz = engine._horizon
                elif cls is Release:
                    sampled = False
                    tA = pcn()
                    sync = SyncPoint("lock", op.lock_id, lock_episode(op.lock_id))
                    res = memsys.release(tid, now, sync)
                    tB = pcn()
                    ns_mem_x += tB - tA
                    t = charge(stats, tid, now, res)
                    stats.releases += 1
                    done = syncmgr.release(tid, op.lock_id, t)
                    tC = pcn()
                    ns_sync += tC - tB
                    wait = done - t
                    if wait > 0.0:
                        stats.sync_wait += wait
                        if obs is not None:
                            obs.on_sync_wait(tid, t, wait)
                        t = done
                    hz = engine._horizon
                elif cls is BarrierWait:
                    sampled = False
                    tA = pcn()
                    sync = SyncPoint(
                        "barrier", op.barrier_id, barrier_episode(op.barrier_id)
                    )
                    res = memsys.release(tid, now, sync)
                    tB = pcn()
                    ns_mem_x += tB - tA
                    t = charge(stats, tid, now, res)
                    stats.barriers += 1
                    depart = syncmgr.barrier_wait(tid, op.barrier_id, t)
                    tC = pcn()
                    ns_sync += tC - tB
                    if depart is None:
                        thread.blocked = True
                        thread.block_time = t
                        thread.time = t
                        thread.feedback = None
                        now_ns = pcn()
                        ns_intra += now_ns - bound
                        entry, horizon = pop_and_peek()
                        bound = pcn()
                        ns_wheel += bound - now_ns
                        break
                    wait = depart - t
                    if wait > 0.0:
                        stats.sync_wait += wait
                        if obs is not None:
                            obs.on_sync_wait(tid, t, wait)
                        t = depart
                    hz = engine._horizon
                elif cls is Fence:
                    sampled = False
                    tA = pcn()
                    res = memsys.release(tid, now, SyncPoint("fence", -1))
                    tB = pcn()
                    ns_mem_x += tB - tA
                    t = charge(stats, tid, now, res)
                    stats.fences += 1
                elif cls is ReadNB:
                    sampled = False
                    tA = pcn()
                    res = mem_read(tid, op.addr, now)
                    tB = pcn()
                    ns_mem_x += tB - tA
                    stats.reads += 1
                    if res.hit:
                        stats.read_hits += 1
                    else:
                        stats.read_misses += 1
                    issue = engine.config.cache_hit_cycles
                    stats.busy += issue
                    t = now + issue
                    if obs is not None and issue > 0.0:
                        obs.on_busy(tid, now, issue)
                    fb = (
                        t,
                        AccessResult(
                            res.time, res.read_stall, res.write_stall,
                            res.buffer_flush, res.hit,
                        ),
                    )
                elif cls is FlagSet:
                    sampled = False
                    tA = pcn()
                    note = getattr(memsys, "sync_note", None)
                    if note is not None:
                        note(
                            tid,
                            now,
                            SyncPoint("flag_set", op.flag_id, flag_epoch(op.flag_id) + 1),
                        )
                    proceed, data_ready = memsys.publish(tid, op.blocks, now)
                    tB = pcn()
                    ns_mem_x += tB - tA
                    done = syncmgr.flag_set(tid, op.flag_id, proceed, data_ready)
                    tC = pcn()
                    ns_sync += tC - tB
                    busy = done - now
                    if busy > 0.0:
                        stats.busy += busy
                        if obs is not None:
                            obs.on_busy(tid, now, busy)
                        t = done
                    hz = engine._horizon
                elif cls is FlagWait:
                    sampled = False
                    tA = pcn()
                    note = getattr(memsys, "sync_note", None)
                    if note is not None:
                        note(tid, now, SyncPoint("flag_wait", op.flag_id, op.epoch))
                    depart = syncmgr.flag_wait(tid, op.flag_id, op.epoch, now)
                    tB = pcn()
                    ns_sync += tB - tA
                    if depart is None:
                        thread.blocked = True
                        thread.block_time = t
                        thread.time = t
                        thread.feedback = None
                        now_ns = pcn()
                        ns_intra += now_ns - bound
                        entry, horizon = pop_and_peek()
                        bound = pcn()
                        ns_wheel += bound - now_ns
                        break
                    wait = depart - now
                    if wait > 0.0:
                        stats.sync_wait += wait
                        if obs is not None:
                            obs.on_sync_wait(tid, now, wait)
                        t = depart
                    hz = engine._horizon
                elif cls is SelfInvalidate:
                    sampled = False
                    tA = pcn()
                    memsys.self_invalidate(tid, op.blocks, now)
                    tB = pcn()
                    ns_mem_x += tB - tA
                    cost = len(op.blocks) * 1.0
                    stats.busy += cost
                    t = now + cost
                    if obs is not None and cost > 0.0:
                        obs.on_busy(tid, now, cost)
                elif cls is Stall:
                    cycles = op.cycles
                    category = op.category
                    if category == "read":
                        stats.read_stall += cycles
                    elif category == "write":
                        stats.write_stall += cycles
                    elif category == "flush":
                        stats.buffer_flush += cycles
                    else:
                        stats.sync_wait += cycles
                    t = now + cycles
                    if obs is not None and cycles > 0.0:
                        obs.on_stall(tid, now, cycles, category)
                elif cls is Phase:
                    note = getattr(memsys, "phase_note", None)
                    if note is not None:
                        note(tid, now, op.label)
                    if obs is not None:
                        obs.on_phase(tid, now, op.label)
                else:
                    raise TypeError(f"thread {tid} yielded non-Op {op!r}")
                if fb is None:
                    fb = t
                if t > hz:
                    thread.time = t
                    thread.feedback = fb
                    now_ns = pcn()
                    if sampled:
                        s_tail += now_ns - t2
                    ns_intra += now_ns - bound
                    entry, horizon = push_pop_peek(t, tid)
                    bound = pcn()
                    ns_wheel += bound - now_ns
                    break
                if sampled:
                    now_ns = pcn()
                    s_tail += now_ns - t2
    finally:
        engine._ops_executed = ops
        if gc_was_enabled:
            gc.enable()
        prof.ops = ops
        prof.segments = segments
        prof.wall_ns = pcn() - t_run0
        ns = prof.ns
        ns["wheel"] += ns_wheel
        ns["sync"] += ns_sync
        ns["observer"] += ns_observer
        # The exact intra-segment total, minus the exactly-measured
        # parts, is apportioned across app/mem/dispatch by the sampled
        # shares; integer remainders land in dispatch so the component
        # totals keep summing to the measured spans exactly.
        pool = ns_intra - ns_sync - ns_observer - ns_mem_x
        denom = s_app + s_mem + s_tail
        if denom > 0:
            app = pool * s_app // denom
            memp = pool * s_mem // denom
        else:
            app = memp = 0
        ns["app"] += app
        ns["dispatch"] += pool - app - memp
        # Carve the wrapper totals out of the raw memory-system time:
        # tracer = outer - inner, mem = inner - network.
        mem_raw = memp + ns_mem_x
        net = prof._net_ns
        prof._net_ns = 0
        if has_inner:
            inner = prof._inner_ns
            prof._inner_ns = 0
            ns["tracer"] += mem_raw - inner
            ns["mem"] += inner - net
        else:
            ns["mem"] += mem_raw - net
        ns["network"] += net
    blocked = [th.tid for th in threads.values() if th.blocked]
    unfinished = [th.tid for th in threads.values() if not th.done]
    if blocked:
        from ..sim.engine import DeadlockError

        raise DeadlockError(
            f"simulation deadlocked: threads {blocked} blocked, "
            f"threads {unfinished} unfinished"
        )
    total = max((th.stats.finish_time for th in threads.values()), default=0.0)
    procs = [threads[tid].stats for tid in sorted(threads)]
    return SimResult(total_time=total, procs=procs, ops=ops)


__all__ = ["COMPONENTS", "COMPONENT_HELP", "HostProfiler", "run_profiled"]
