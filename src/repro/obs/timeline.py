"""Chrome trace-event / Perfetto JSON export of traced runs.

Converts :class:`repro.sim.trace.TracingMemory` event lists into the
`trace-event format <https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
understood by ``chrome://tracing`` and https://ui.perfetto.dev:

- one lane (*thread*) per simulated processor carrying complete ("X")
  slices for every access, named by kind and hit/miss, with the stall
  decomposition in ``args``;
- one extra lane per processor carrying application ``phase`` spans;
- flow events ("s"/"t"/"f") stitching barrier episodes across the
  arriving processors and lock hand-offs from release to next acquire.

Simulated cycles are written as microsecond timestamps (1 cycle = 1 us)
— absolute units are meaningless in a simulator, relative extents are
what the timeline is for.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..analysis.naming import sync_label

#: tid offset for the per-processor phase lanes.
PHASE_LANE = 1000

_SyncNames = dict[tuple[str, int], str]


def _sync_name(names: _SyncNames | None, kind: str, sync_id: int | None) -> str:
    if names is None or sync_id is None:
        return ""
    if kind.startswith("flag"):
        kind = "flag"
    return names.get((kind, sync_id), "")


def _slice_name(e, names: _SyncNames | None = None) -> str:
    if e.sync_kind is not None:
        if e.sync_id is None:
            return e.sync_kind
        return sync_label(e.sync_kind, _sync_name(names, e.sync_kind, e.sync_id), e.sync_id)
    if e.kind in ("read", "write"):
        return f"{e.kind} {'hit' if e.hit else 'miss'}"
    return e.kind


def to_perfetto(
    events,
    nprocs: int,
    total_time: float | None = None,
    app: str = "",
    system: str = "",
    sync_names: _SyncNames | None = None,
    metrics: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Build a trace-event JSON document from trace events.

    ``events`` is a :class:`~repro.sim.trace.TracingMemory` or any
    iterable of :class:`~repro.sim.trace.TraceEvent`.  ``sync_names``
    (from :meth:`SyncManager.sync_names`) labels sync slices and flow
    events with their declaration names, matching the spelling used by
    the static analyzer's reports.  ``metrics`` (a
    :meth:`MetricsCollector.to_dict` document) adds per-bucket counter
    tracks — events/sec, event-wheel depth, store-buffer depth — above
    the processor lanes.
    """
    source = events
    events = list(getattr(events, "events", events))
    if total_time is None:
        total_time = max((e.complete for e in events), default=0.0)

    meta: list[dict[str, Any]] = []
    title = " ".join(x for x in (app, "on", system) if x) if (app or system) else "simulation"
    meta.append(
        {"ph": "M", "pid": 0, "tid": 0, "ts": 0, "name": "process_name",
         "args": {"name": f"repro {title}"}}
    )
    has_phases = any(e.kind == "phase" for e in events)
    for p in range(nprocs):
        meta.append(
            {"ph": "M", "pid": 0, "tid": p, "ts": 0, "name": "thread_name",
             "args": {"name": f"proc {p}"}}
        )
        meta.append(
            {"ph": "M", "pid": 0, "tid": p, "ts": 0, "name": "thread_sort_index",
             "args": {"sort_index": 2 * p}}
        )
        if has_phases:
            meta.append(
                {"ph": "M", "pid": 0, "tid": PHASE_LANE + p, "ts": 0, "name": "thread_name",
                 "args": {"name": f"phases p{p}"}}
            )
            meta.append(
                {"ph": "M", "pid": 0, "tid": PHASE_LANE + p, "ts": 0,
                 "name": "thread_sort_index", "args": {"sort_index": 2 * p + 1}}
            )

    body: list[dict[str, Any]] = []
    phase_marks: dict[int, list] = {}
    for e in events:
        if e.kind == "phase":
            phase_marks.setdefault(e.proc, []).append(e)
            continue
        entry: dict[str, Any] = {
            "ph": "X", "pid": 0, "tid": e.proc, "cat": "sim",
            "name": _slice_name(e, sync_names),
            "ts": e.issue, "dur": e.complete - e.issue,
        }
        args: dict[str, Any] = {}
        if e.addr is not None:
            args["addr"] = e.addr
        for field in ("read_stall", "write_stall", "buffer_flush"):
            v = getattr(e, field)
            if v:
                args[field] = v
        if e.episode is not None:
            args["episode"] = e.episode
        if args:
            entry["args"] = args
        body.append(entry)

    # -- application phase lanes ---------------------------------------
    for proc, marks in phase_marks.items():
        marks.sort(key=lambda e: e.issue)
        for i, mark in enumerate(marks):
            end = marks[i + 1].issue if i + 1 < len(marks) else total_time
            body.append(
                {"ph": "X", "pid": 0, "tid": PHASE_LANE + proc, "cat": "phase",
                 "name": mark.label or "phase",
                 "ts": mark.issue, "dur": max(0.0, end - mark.issue)}
            )

    # -- barrier flow events -------------------------------------------
    barriers: dict[tuple[int, int], list] = {}
    for e in events:
        if e.kind == "release" and e.sync_kind == "barrier":
            barriers.setdefault((e.sync_id, e.episode or 0), []).append(e)
    for (bar_id, episode), arrivals in barriers.items():
        if len(arrivals) < 2:
            continue
        arrivals.sort(key=lambda e: e.issue)
        flow_id = f"barrier{bar_id}.e{episode}"
        bar_name = sync_label("barrier", _sync_name(sync_names, "barrier", bar_id), bar_id)
        for i, e in enumerate(arrivals):
            ph = "s" if i == 0 else ("f" if i == len(arrivals) - 1 else "t")
            entry = {
                "ph": ph, "pid": 0, "tid": e.proc, "cat": "flow",
                "name": bar_name, "id": flow_id, "ts": e.issue,
            }
            if ph == "f":
                entry["bp"] = "e"
            body.append(entry)

    # -- lock hand-off flow events -------------------------------------
    locks: dict[int, list] = {}
    for e in events:
        if e.sync_kind == "lock" and e.kind in ("acquire", "release"):
            locks.setdefault(e.sync_id, []).append(e)
    for lock_id, ops in locks.items():
        ops.sort(key=lambda e: e.issue)
        lock_name = sync_label("lock", _sync_name(sync_names, "lock", lock_id), lock_id)
        handoff = 0
        pending = None  # last unmatched release
        for e in ops:
            if e.kind == "release":
                pending = e
            elif pending is not None and e.proc != pending.proc:
                flow_id = f"lock{lock_id}.h{handoff}"
                handoff += 1
                body.append(
                    {"ph": "s", "pid": 0, "tid": pending.proc, "cat": "flow",
                     "name": lock_name, "id": flow_id, "ts": pending.issue}
                )
                body.append(
                    {"ph": "f", "bp": "e", "pid": 0, "tid": e.proc, "cat": "flow",
                     "name": lock_name, "id": flow_id, "ts": e.issue}
                )
                pending = None

    body.extend(_counter_events(metrics))
    body.sort(key=lambda entry: entry["ts"])
    other: dict[str, Any] = {"app": app, "system": system, "total_time_cycles": total_time}
    # When the caller passed a TracingMemory (not a bare event list),
    # embed its hot-block rankings so the --out sidecar carries them.
    hottest = getattr(source, "hottest_blocks", None)
    if callable(hottest):
        other["hottest_blocks"] = hottest()
        accessed = getattr(source, "hottest_accessed", None)
        if callable(accessed):
            other["hottest_accessed"] = accessed()
        dropped = getattr(source, "dropped", 0)
        if dropped:
            other["dropped_events"] = dropped
    return {
        "traceEvents": meta + body,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def attribution_to_perfetto(report: dict[str, Any], top: int = 8) -> dict[str, Any]:
    """Perfetto counter heatmap from an attribution report.

    One ``"C"`` counter track per top-``top`` named region (ranked by
    attributed overhead) plus one machine-wide track per stall category,
    each sampled at the first mark of every application phase with the
    overhead cycles that region/category accumulated *inside that
    phase*.  Scrubbing the result next to a ``repro trace`` timeline of
    the same run shows where in simulated time each hot structure paid.
    """
    phases = {p["label"]: p["first_mark"] for p in report.get("phases", ())}
    hot = [r["key"] for r in report["dims"]["block"][:top]]
    per_cell: dict[tuple[str, str], float] = {}
    per_cat: dict[tuple[str, str], float] = {}
    for c in report["cells"]:
        key = c["key"] if c["kind"] == "data" else "(sync ops)"
        if key in hot:
            pair = (c["phase"], key)
            per_cell[pair] = per_cell.get(pair, 0.0) + (
                c["read_stall"] + c["write_stall"] + c["buffer_flush"]
            )
        for cat in ("read_stall", "write_stall", "buffer_flush"):
            if c[cat]:
                pair = (c["phase"], cat)
                per_cat[pair] = per_cat.get(pair, 0.0) + c[cat]

    title = " ".join(x for x in (report.get("app"), "on", report.get("system")) if x)
    events: list[dict[str, Any]] = [
        {"ph": "M", "pid": 0, "tid": 0, "ts": 0, "name": "process_name",
         "args": {"name": f"repro attribution {title}".rstrip()}}
    ]
    for (phase, key), overhead in per_cell.items():
        events.append(
            {"ph": "C", "pid": 0, "tid": 0, "cat": "attrib",
             "name": f"stall: {key}", "ts": phases.get(phase, 0.0),
             "args": {"value": round(overhead, 1)}}
        )
    for (phase, cat), overhead in per_cat.items():
        events.append(
            {"ph": "C", "pid": 0, "tid": 0, "cat": "attrib",
             "name": f"total {cat.replace('_', ' ')}", "ts": phases.get(phase, 0.0),
             "args": {"value": round(overhead, 1)}}
        )
    events.sort(key=lambda entry: (entry["ts"], entry["name"]))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "kind": "attribution-heatmap",
            "app": report.get("app", ""),
            "system": report.get("system", ""),
            "total_time_cycles": report.get("total_time"),
            "tracks": len(hot),
        },
    }


def _counter_events(metrics: dict[str, Any] | None) -> list[dict[str, Any]]:
    """Perfetto ``C`` counter tracks from an interval-metrics document.

    One sample per bucket, stamped at the bucket's start: simulated
    events per second (1 cycle = 1 us, so ``accesses / interval * 1e6``),
    the event-wheel (ready queue) depth and the machine-wide store- and
    merge-buffer depths sampled at the bucket crossing.
    """
    if not metrics:
        return []
    interval = metrics.get("interval") or 0.0
    out: list[dict[str, Any]] = []
    for bucket in metrics.get("buckets", ()):
        ts = bucket["t0"]
        accesses = bucket.get("accesses")
        if accesses is not None and interval > 0:
            rate = round(accesses / interval * 1e6, 1)
            out.append(
                {"ph": "C", "pid": 0, "tid": 0, "cat": "metrics",
                 "name": "events/sec", "ts": ts, "args": {"value": rate}}
            )
        wheel = bucket.get("wheel_depth")
        if wheel is not None:
            out.append(
                {"ph": "C", "pid": 0, "tid": 0, "cat": "metrics",
                 "name": "wheel depth", "ts": ts, "args": {"value": wheel}}
            )
        depths = bucket.get("buffer_depth")
        if depths:
            for kind, per_proc in depths.items():
                out.append(
                    {"ph": "C", "pid": 0, "tid": 0, "cat": "metrics",
                     "name": f"{kind.replace('_', ' ')} depth", "ts": ts,
                     "args": {"value": sum(per_proc)}}
                )
    return out


def write_trace(path: str | Path, document: dict[str, Any]) -> Path:
    """Write a trace-event document as JSON; returns the path written."""
    path = Path(path)
    path.write_text(json.dumps(document) + "\n")
    return path
