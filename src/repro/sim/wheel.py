"""Indexed event wheel (calendar queue) for the simulation scheduler.

The engine's ready queue holds ``(time, seq, tid)`` entries and must pop
them in exact lexicographic order — ``seq`` breaks same-time ties in
arrival order, ``tid`` is carried for the scheduler.  A single global
``heapq`` does this in ``O(log n)`` per operation with a constant factor
that grows with the number of stale (lazily deleted) entries sitting in
the heap.

:class:`EventWheel` keeps the same *exact* order while indexing entries
by time: simulated time is partitioned into fixed-width epochs
(``epoch = floor(time / width)``), and because every entry of epoch
``e`` strictly precedes every entry of epoch ``e' > e``, popping from
the smallest non-empty epoch's heap yields the global minimum —
cross-epoch ordering is free.  Each per-epoch heap stays tiny (at most
the number of runnable threads plus a few stale entries), so
``heappush``/``heappop`` run at their constant floor regardless of how
many events are parked in far-future epochs.

The smallest epoch's bucket is held directly in ``_cur_bucket`` (not in
the dict): the overwhelmingly common push lands in the current epoch and
costs one comparison plus a C ``heappush``, keeping the wheel at
plain-heapq speed for small machines while the epoch index takes over at
large P / deep event populations.

Deletion is lazy: :meth:`cancel` marks a ``seq`` and the entry is
discarded when it surfaces at :meth:`pop`.  (The engine itself never
cancels — it re-checks thread state on pop — but the wheel supports it
so other schedulers can use the structure directly.)

The order contract is pinned by Hypothesis property tests against a
plain ``heapq`` reference (``tests/test_event_wheel.py``).
"""

from __future__ import annotations

from heapq import heappop, heappush, heappushpop

_INF = float("inf")


class EventWheel:  # lint: hot
    """Calendar queue over ``(time, seq, tid)`` entries, exact heap order.

    ``width`` is the epoch width in simulated cycles.  Any positive width
    is correct; it only tunes how entries spread across per-epoch heaps.
    Times must be non-negative and finite.
    """

    __slots__ = ("_width", "_buckets", "_epochs", "_cur_epoch", "_cur_bucket",
                 "_lo", "_hi", "_seq", "_pending", "_cancelled")

    def __init__(self, width: float = 1024.0):
        if not width > 0.0:
            raise ValueError(f"epoch width must be positive, got {width}")
        self._width = width
        #: Smallest epoch holding entries (None when the wheel was never
        #: pushed to / fully drained) and its heap, kept out of the dict.
        self._cur_epoch: int | None = None
        self._cur_bucket: list[tuple[float, int, int]] = []
        #: Time boundaries of the current epoch, ``[_lo, _hi)``.  Kept so
        #: the push fast path is two float compares, no division; when no
        #: current epoch exists ``_lo = inf`` makes the test always fail.
        self._lo = _INF
        self._hi = -_INF
        #: Future epochs: epoch -> heap of (time, seq, tid) entries.
        self._buckets: dict[int, list[tuple[float, int, int]]] = {}
        #: Heap of the epochs present in ``_buckets`` (no duplicates).
        self._epochs: list[int] = []
        #: Arrival counter: the wheel assigns each entry its ``seq`` so
        #: same-time entries pop in push order.
        self._seq = 0
        #: Entries pushed and not yet popped/discarded (cancelled included).
        self._pending = 0
        self._cancelled: set[int] = set()

    # ------------------------------------------------------------------
    def push(self, time: float, tid: int) -> int:
        """Insert an entry; returns the ``seq`` assigned to it.

        Same-time entries pop in push (arrival) order.
        """
        seq = self._seq + 1
        self._seq = seq
        if self._lo <= time < self._hi:
            heappush(self._cur_bucket, (time, seq, tid))
        else:
            self._push_slow(time, seq, tid)
        self._pending += 1
        return seq

    def _push_slow(self, time: float, seq: int, tid: int) -> None:
        """Insert outside the current epoch (or with no epoch open)."""
        width = self._width
        epoch = int(time / width)
        cur = self._cur_epoch
        if cur is None:
            self._cur_epoch = epoch
            self._cur_bucket = [(time, seq, tid)]
            self._lo = epoch * width
            self._hi = self._lo + width
        elif epoch == cur:
            # Only reachable when ``width`` is not a power of two and the
            # boundary compare disagrees with the division at an edge.
            heappush(self._cur_bucket, (time, seq, tid))
        elif epoch > cur:
            bucket = self._buckets.get(epoch)
            if bucket is None:
                self._buckets[epoch] = [(time, seq, tid)]
                heappush(self._epochs, epoch)
            else:
                heappush(bucket, (time, seq, tid))
        else:
            # Entry earlier than the current epoch (e.g. a wake for a
            # long-blocked thread): demote the current bucket and open a
            # fresh minimum epoch.
            self._buckets[cur] = self._cur_bucket
            heappush(self._epochs, cur)
            self._cur_epoch = epoch
            self._cur_bucket = [(time, seq, tid)]
            self._lo = epoch * width
            self._hi = self._lo + width

    def pop(self) -> tuple[float, int, int] | None:
        """Remove and return the smallest live entry, or None when empty.

        Cancelled entries are silently discarded as they surface.
        """
        cancelled = self._cancelled
        while True:  # lint: fastpath
            bucket = self._cur_bucket
            if bucket:
                entry = heappop(bucket)
                self._pending -= 1
                if cancelled:
                    seq = entry[1]
                    if seq in cancelled:
                        cancelled.discard(seq)
                        continue
                return entry
            if not self._epochs:
                self._cur_epoch = None
                self._lo = _INF
                self._hi = -_INF
                return None
            epoch = heappop(self._epochs)
            self._cur_epoch = epoch
            self._cur_bucket = self._buckets.pop(epoch)
            self._lo = lo = epoch * self._width
            self._hi = lo + self._width

    def pop_and_peek(self) -> tuple[tuple[float, int, int] | None, float]:
        """Pop the smallest live entry and report the next entry's time.

        Returns ``(entry, next_time)`` — ``(None, inf)`` when empty.
        Fuses the scheduler's per-iteration pop + horizon peek so the
        common case (next entry in the same epoch) touches the current
        bucket exactly once.  The same lazy-deletion caveat as
        :meth:`peek_time` applies to ``next_time``.
        """
        cancelled = self._cancelled
        while True:  # lint: fastpath
            bucket = self._cur_bucket
            if bucket:
                entry = heappop(bucket)
                self._pending -= 1
                if cancelled:
                    seq = entry[1]
                    if seq in cancelled:
                        cancelled.discard(seq)
                        continue
                if bucket:
                    return entry, bucket[0][0]
                return entry, self.peek_time()
            if not self._epochs:
                self._cur_epoch = None
                self._lo = _INF
                self._hi = -_INF
                return None, _INF
            epoch = heappop(self._epochs)
            self._cur_epoch = epoch
            self._cur_bucket = self._buckets.pop(epoch)
            self._lo = lo = epoch * self._width
            self._hi = lo + self._width

    def push_pop_peek(
        self, time: float, tid: int
    ) -> tuple[tuple[float, int, int] | None, float]:
        """Push an entry, then pop the smallest live entry and peek the next.

        Equivalent to ``push(time, tid)`` followed by :meth:`pop_and_peek`
        (the pushed entry itself may be the one returned, when it is the
        global minimum).  The scheduler's segment boundary is exactly this
        pair, and when the pushed entry lands in the current epoch the two
        heap operations fuse into one C ``heappushpop``.
        """
        seq = self._seq + 1
        self._seq = seq
        if self._lo <= time < self._hi:
            bucket = self._cur_bucket
            if bucket and not self._cancelled:
                # Net heap size is unchanged, so ``_pending`` needs no
                # update and the bucket stays non-empty for the peek.
                entry = heappushpop(bucket, (time, seq, tid))
                return entry, bucket[0][0]
            heappush(bucket, (time, seq, tid))
        else:
            self._push_slow(time, seq, tid)
        self._pending += 1
        return self.pop_and_peek()

    def peek_time(self) -> float:
        """Time of the smallest pending entry; ``inf`` when empty.

        Lazy deletion means a cancelled-but-not-yet-discarded entry still
        counts here — callers using cancel() and needing an exact peek
        should pop instead.
        """
        while True:
            bucket = self._cur_bucket
            if bucket:
                return bucket[0][0]
            if not self._epochs:
                return _INF
            epoch = heappop(self._epochs)
            self._cur_epoch = epoch
            self._cur_bucket = self._buckets.pop(epoch)
            self._lo = lo = epoch * self._width
            self._hi = lo + self._width

    def cancel(self, seq: int) -> None:
        """Lazily delete the entry carrying ``seq`` when it next surfaces."""
        self._cancelled.add(seq)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Pending entries, *including* cancelled ones not yet discarded."""
        return self._pending

    def __bool__(self) -> bool:
        return self._pending > 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"EventWheel(width={self._width}, pending={self._pending}, "
            f"epochs={len(self._buckets) + (self._cur_epoch is not None)}, "
            f"cancelled={len(self._cancelled)})"
        )
