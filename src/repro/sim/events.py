"""Operations that application threads yield to the simulation engine.

Application code runs as generator coroutines.  Each ``yield`` hands the
engine one of the operation records below; the engine charges the
appropriate simulated time (consulting the memory system or the
synchronisation manager) and then resumes the generator.  This is the
Python analogue of SPASM's trap-on-every-shared-access instrumentation.
"""

from __future__ import annotations


class Op:  # lint: hot
    """Base class for all simulator operations."""

    __slots__ = ()


class Compute(Op):  # lint: hot
    """Charge ``cycles`` of busy computation time to the issuing thread."""

    __slots__ = ("cycles",)

    def __init__(self, cycles: float):
        if cycles < 0:
            raise ValueError(f"compute cycles must be >= 0, got {cycles}")
        self.cycles = cycles

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Compute({self.cycles})"


class Read(Op):  # lint: hot
    """Shared-memory read of the word at byte address ``addr``."""

    __slots__ = ("addr",)

    def __init__(self, addr: int):
        self.addr = addr

    def __repr__(self) -> str:  # pragma: no cover
        return f"Read(0x{self.addr:x})"


class Write(Op):  # lint: hot
    """Shared-memory write of the word at byte address ``addr``."""

    __slots__ = ("addr",)

    def __init__(self, addr: int):
        self.addr = addr

    def __repr__(self) -> str:  # pragma: no cover
        return f"Write(0x{self.addr:x})"


class Acquire(Op):
    """Acquire the lock with the given id (RC acquire semantics)."""

    __slots__ = ("lock_id",)

    def __init__(self, lock_id: int):
        self.lock_id = lock_id

    def __repr__(self) -> str:  # pragma: no cover
        return f"Acquire({self.lock_id})"


class Release(Op):
    """Release the lock with the given id (RC release semantics).

    The memory system drains its write buffers *before* the release is
    performed; that drain time is accounted as buffer-flush overhead.
    """

    __slots__ = ("lock_id",)

    def __init__(self, lock_id: int):
        self.lock_id = lock_id

    def __repr__(self) -> str:  # pragma: no cover
        return f"Release({self.lock_id})"


class BarrierWait(Op):
    """Wait at the barrier with the given id.

    Arrival has release semantics (buffers drained before the arrival
    message is sent), departure has acquire semantics.
    """

    __slots__ = ("barrier_id",)

    def __init__(self, barrier_id: int):
        self.barrier_id = barrier_id

    def __repr__(self) -> str:  # pragma: no cover
        return f"BarrierWait({self.barrier_id})"


class Fence(Op):
    """Stand-alone release fence: drain write buffers, no lock involved."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover
        return "Fence()"


class ReadNB(Op):
    """Non-blocking shared-memory read (latency-tolerance support).

    The memory system performs the access, but the processor clock
    advances only by the issue cost; the full :class:`AccessResult`
    (whose ``time`` field is when the data is actually available) is fed
    back to the generator, which decides how to overlap the latency —
    see ``repro.runtime.multithread``.
    """

    __slots__ = ("addr",)

    def __init__(self, addr: int):
        self.addr = addr

    def __repr__(self) -> str:  # pragma: no cover
        return f"ReadNB(0x{self.addr:x})"


class FlagSet(Op):
    """Set an event flag, publishing the data blocks that guard it.

    The paper's Section 6 proposal: use synchronisation only for control
    flow and a separate mechanism for data flow.  Setting the flag
    *issues* any buffered writes to the listed blocks (fire-and-forget —
    the producer does not wait for acknowledgements, so there is no
    buffer-flush stall) and wakes waiters once the data has reached its
    home.
    """

    __slots__ = ("flag_id", "blocks")

    def __init__(self, flag_id: int, blocks: tuple[int, ...] = ()):
        self.flag_id = flag_id
        self.blocks = blocks

    def __repr__(self) -> str:  # pragma: no cover
        return f"FlagSet({self.flag_id}, blocks={self.blocks})"


class FlagWait(Op):
    """Wait until the flag has been set at least ``epoch`` times."""

    __slots__ = ("flag_id", "epoch")

    def __init__(self, flag_id: int, epoch: int = 1):
        if epoch < 1:
            raise ValueError("epoch must be >= 1")
        self.flag_id = flag_id
        self.epoch = epoch

    def __repr__(self) -> str:  # pragma: no cover
        return f"FlagWait({self.flag_id}, epoch={self.epoch})"


class SelfInvalidate(Op):
    """Drop the issuing processor's cached copies of the given blocks.

    The consumer-side "smart self-invalidation" of the paper's Section 6:
    a local operation (no network traffic) that guarantees the next reads
    fetch fresh data.
    """

    __slots__ = ("blocks",)

    def __init__(self, blocks: tuple[int, ...]):
        self.blocks = blocks

    def __repr__(self) -> str:  # pragma: no cover
        return f"SelfInvalidate({self.blocks})"


class Phase(Op):
    """Zero-cost application phase marker (observability only).

    Emitted via :meth:`repro.runtime.context.AppContext.phase`; the
    engine charges no simulated time and forwards the marker to the
    memory system's ``phase_note`` hook so tracers and metrics
    collectors can attribute subsequent events to a named phase
    (``repro.obs``).  Timing-transparent: a run with phase markers is
    cycle-identical to the same run without them.
    """

    __slots__ = ("label",)

    def __init__(self, label: str):
        self.label = label

    def __repr__(self) -> str:  # pragma: no cover
        return f"Phase({self.label!r})"


#: Valid stall categories for :class:`Stall`.
STALL_CATEGORIES = ("read", "write", "flush", "sync")


class Stall(Op):
    """Charge ``cycles`` of stall time to an explicit category.

    Used by software schedulers (e.g. the multithreaded-processor
    wrapper) that manage latencies themselves via :class:`ReadNB`.
    """

    __slots__ = ("cycles", "category")

    def __init__(self, cycles: float, category: str = "read"):
        if cycles < 0:
            raise ValueError(f"stall cycles must be >= 0, got {cycles}")
        if category not in STALL_CATEGORIES:
            raise ValueError(
                f"unknown stall category {category!r}; choose from {STALL_CATEGORIES}"
            )
        self.cycles = cycles
        self.category = category

    def __repr__(self) -> str:  # pragma: no cover
        return f"Stall({self.cycles}, {self.category!r})"
